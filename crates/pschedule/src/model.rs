//! Polyhedral statement model: iteration domains and layout-aware access
//! relations.
//!
//! Every IR statement is promoted to a polyhedral statement (Section
//! IV-C: "we promote every assignment to a statement"). Its iteration
//! domain is the rectangular set of output × reduction indices; its
//! *access relations* map iteration points to flat array addresses
//! through the materialized layout (step ⓘⓘ), which is what makes all
//! downstream analyses layout-aware.

use polyhedra::{BasicMap, BasicSet, LinExpr, Map, Space};
use teil::ir::{Module, PointExpr};
use teil::layout::{ArrayId, LayoutPlan};

/// A statement promoted into the polyhedral model.
#[derive(Debug, Clone)]
pub struct PolyStmt {
    /// Index of the underlying IR statement in the module.
    pub stmt_idx: usize,
    /// Statement space `Sk[x0..x_{r-1}]`.
    pub space: Space,
    /// Rectangular iteration domain (output dims then reduction dims).
    pub domain: BasicSet,
    /// Extents of the iteration variables.
    pub extents: Vec<usize>,
    /// Rank of the output tensor (leading iteration variables).
    pub out_rank: usize,
    /// Write access: iteration point → flat address in `write_array`.
    pub write: Map,
    pub write_array: ArrayId,
    /// Read accesses: (array, iteration point → flat address).
    pub reads: Vec<(ArrayId, Map)>,
}

impl PolyStmt {
    /// Number of iteration variables.
    pub fn rank(&self) -> usize {
        self.extents.len()
    }
}

/// The polyhedral model of a whole kernel: statements plus the layout
/// they were materialized against.
#[derive(Debug, Clone)]
pub struct KernelModel {
    pub stmts: Vec<PolyStmt>,
    pub layout: LayoutPlan,
}

impl KernelModel {
    /// Build the model from an IR module and a layout plan.
    pub fn build(module: &Module, layout: &LayoutPlan) -> KernelModel {
        let stmts = module
            .stmts
            .iter()
            .enumerate()
            .map(|(i, stmt)| {
                let extents = module.iter_extents(stmt);
                let rank = extents.len();
                let dims: Vec<String> = (0..rank).map(|d| format!("x{d}")).collect();
                let dim_refs: Vec<&str> = dims.iter().map(String::as_str).collect();
                let space = Space::set(&format!("S{i}"), &dim_refs);
                let bounds: Vec<(i64, i64)> = extents.iter().map(|&e| (0, e as i64 - 1)).collect();
                let domain = BasicSet::boxed(space.clone(), &bounds);
                let out_rank = module.shape(stmt.out).len();

                // Write access: out[x0..x_{out_rank-1}] through layout.
                let wp = layout.placement(stmt.out);
                let write_expr = access_expr(
                    rank,
                    &(0..out_rank).collect::<Vec<_>>(),
                    &wp.strides,
                    wp.offset,
                );
                let arr_name = layout.arrays[wp.array.0].name.clone();
                let write = Map::from_basic(
                    BasicMap::from_affine(
                        space.clone(),
                        Space::set(&arr_name, &["addr"]),
                        &[write_expr],
                    )
                    .intersect_domain(&domain),
                );

                // Read accesses.
                let mut reads = Vec::new();
                collect_reads(&stmt.expr, |tensor, index_map| {
                    let p = layout.placement(tensor);
                    let e = access_expr(rank, index_map, &p.strides, p.offset);
                    let an = layout.arrays[p.array.0].name.clone();
                    let m = Map::from_basic(
                        BasicMap::from_affine(space.clone(), Space::set(&an, &["addr"]), &[e])
                            .intersect_domain(&domain),
                    );
                    reads.push((p.array, m));
                });

                PolyStmt {
                    stmt_idx: i,
                    space,
                    domain,
                    extents,
                    out_rank,
                    write,
                    write_array: wp.array,
                    reads,
                }
            })
            .collect();
        KernelModel {
            stmts,
            layout: layout.clone(),
        }
    }

    /// All arrays written by some statement.
    pub fn written_arrays(&self) -> Vec<ArrayId> {
        let mut out: Vec<ArrayId> = Vec::new();
        for s in &self.stmts {
            if !out.contains(&s.write_array) {
                out.push(s.write_array);
            }
        }
        out
    }
}

/// Build the affine address expression for an access with `index_map`
/// through `strides`/`offset`, over `rank` iteration variables.
fn access_expr(rank: usize, index_map: &[usize], strides: &[i64], offset: i64) -> LinExpr {
    let mut coeffs = vec![0i64; rank];
    for (d, &v) in index_map.iter().enumerate() {
        coeffs[v] += strides[d];
    }
    LinExpr::new(&coeffs, offset)
}

fn collect_reads(e: &PointExpr, mut f: impl FnMut(teil::ir::TensorId, &[usize])) {
    e.walk(&mut |node| {
        if let PointExpr::Access { tensor, index_map } = node {
            f(*tensor, index_map);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use teil::lower::lower;
    use teil::transform::factorize;

    fn model(n: usize, factor: bool) -> (Module, KernelModel) {
        let typed =
            cfdlang::check(&cfdlang::parse(&cfdlang::examples::inverse_helmholtz(n)).unwrap())
                .unwrap();
        let mut m = lower(&typed).unwrap();
        if factor {
            m = factorize(&m);
        }
        let layout = LayoutPlan::row_major(&m);
        let km = KernelModel::build(&m, &layout);
        (m, km)
    }

    #[test]
    fn domains_are_boxes_of_right_volume() {
        let (m, km) = model(4, false);
        assert_eq!(km.stmts.len(), 3);
        // First contraction: 4^6 points.
        assert_eq!(km.stmts[0].rank(), 6);
        assert_eq!(km.stmts[0].extents, vec![4; 6]);
        // Hadamard: 4^3.
        assert_eq!(km.stmts[1].rank(), 3);
        drop(m);
    }

    #[test]
    fn write_access_is_row_major() {
        let (_m, km) = model(4, false);
        // t[x0,x1,x2] -> addr 16*x0 + 4*x1 + x2.
        let w = &km.stmts[0].write;
        assert!(w.contains(&[1, 2, 3, 0, 0, 0], &[16 + 8 + 3]));
        assert!(!w.contains(&[1, 2, 3, 0, 0, 0], &[0]));
    }

    #[test]
    fn read_accesses_cover_all_factors() {
        let (_m, km) = model(4, false);
        // Contraction body reads S three times and u once.
        assert_eq!(km.stmts[0].reads.len(), 4);
        // Hadamard reads D and t.
        assert_eq!(km.stmts[1].reads.len(), 2);
    }

    #[test]
    fn read_access_respects_index_map() {
        let (m, km) = model(4, false);
        // u[x3,x4,x5] in the first contraction.
        let u = m.find("u").unwrap();
        let plan = &km.layout;
        let ua = plan.placement(u).array;
        let (_, um) = km.stmts[0]
            .reads
            .iter()
            .find(|(a, _)| *a == ua)
            .expect("u read");
        assert!(um.contains(&[0, 0, 0, 1, 2, 3], &[16 + 8 + 3]));
        assert!(!um.contains(&[1, 2, 3, 0, 0, 0], &[16 + 8 + 3]));
    }

    #[test]
    fn factored_model_has_seven_statements() {
        let (_m, km) = model(4, true);
        assert_eq!(km.stmts.len(), 7);
        for s in &km.stmts {
            assert!(s.rank() == 4 || s.rank() == 3);
        }
    }

    #[test]
    fn access_outside_domain_rejected() {
        let (_m, km) = model(4, false);
        let w = &km.stmts[0].write;
        // Iteration point outside the 0..=3 box is not in the relation.
        assert!(!w.contains(&[4, 0, 0, 0, 0, 0], &[64]));
    }

    #[test]
    fn repeated_operand_counts_once_per_access() {
        let (m, km) = model(4, false);
        let s_id = m.find("S").unwrap();
        let sa = km.layout.placement(s_id).array;
        let s_reads = km.stmts[0].reads.iter().filter(|(a, _)| *a == sa).count();
        assert_eq!(s_reads, 3, "S appears three times in the contraction");
    }
}
