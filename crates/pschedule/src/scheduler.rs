//! Pluto-like rescheduling (step ⓘⓘⓘ of Figure 4).
//!
//! The paper uses isl's Pluto scheduler with RAW dependence distance as
//! the cost function (to shrink live intervals) and RAR coincidence as a
//! secondary affinity objective. This module implements the same
//! optimization on the schedule shape of [`crate::schedule`]:
//!
//! 1. per-statement **loop permutations** are chosen by iterative local
//!    search minimizing a structural cost — RAW edges want the consumer
//!    to traverse the producer's output in the order it was produced
//!    (leading-depth alignment shortens the window between a write and
//!    its reads), RAR edges contribute a smaller coincidence bonus;
//! 2. optional producer–consumer **fusion** merges a pointwise consumer
//!    into its producer's loop nest (same `seq`, micro-ordered) whenever
//!    the polyhedral legality check admits it;
//! 3. the final schedule is validated exactly against the RAW relations
//!    ([`crate::deps::legal`]) — candidates that fail validation are
//!    discarded in favour of the reference schedule.

use crate::deps::{legal, Dependences};
use crate::model::KernelModel;
use crate::schedule::Schedule;
use teil::ir::{Module, PointExpr};

/// Tunables for the rescheduler.
#[derive(Debug, Clone)]
pub struct SchedulerOptions {
    /// Search loop permutations (otherwise keep identity order).
    pub permute: bool,
    /// Attempt pointwise producer–consumer fusion.
    pub fuse: bool,
    /// Maximum statement rank for exhaustive permutation search; higher
    /// ranks fall back to identity (the cost model's alignment gains are
    /// concentrated in the leading dimensions anyway).
    pub max_perm_rank: usize,
    /// Local-search sweeps over all statements.
    pub sweeps: usize,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        SchedulerOptions {
            permute: true,
            fuse: false,
            max_perm_rank: 5,
            sweeps: 3,
        }
    }
}

/// Compute an optimized schedule. Always returns a legal schedule (falls
/// back to the reference schedule if search produces nothing better).
pub fn reschedule(
    module: &Module,
    model: &KernelModel,
    deps: &Dependences,
    opts: &SchedulerOptions,
) -> Schedule {
    let mut sched = Schedule::reference(model);
    if opts.permute {
        optimize_permutations(module, model, deps, &mut sched, opts);
    }
    if opts.fuse {
        fuse_pointwise(module, model, deps, &mut sched);
    }
    if legal(model, deps, &sched) {
        sched
    } else {
        // Defensive: the structural search should never produce an
        // illegal schedule (permutations don't cross statement bounds and
        // fusion is validated eagerly), but the reference schedule is the
        // guaranteed-legal fallback.
        Schedule::reference(model)
    }
}

/// Iterative per-statement permutation search.
fn optimize_permutations(
    module: &Module,
    model: &KernelModel,
    deps: &Dependences,
    sched: &mut Schedule,
    opts: &SchedulerOptions,
) {
    let cm = CostModel::build(module, model, deps);
    for _ in 0..opts.sweeps {
        let mut changed = false;
        for si in 0..model.stmts.len() {
            let rank = model.stmts[si].rank();
            if rank > opts.max_perm_rank {
                continue;
            }
            let mut best = sched.perms[si].clone();
            let mut best_cost = cm.eval(sched);
            for perm in permutations(rank) {
                if perm == sched.perms[si] {
                    continue;
                }
                let saved = std::mem::replace(&mut sched.perms[si], perm.clone());
                let c = cm.eval(sched);
                if c < best_cost {
                    best_cost = c;
                    best = perm;
                } else {
                    sched.perms[si] = saved;
                    continue;
                }
                sched.perms[si] = saved;
            }
            if best != sched.perms[si] {
                sched.perms[si] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

/// One dependence edge's schedule-independent access structure: which
/// index maps the alignment computation compares. Resolved once per
/// search — `PointExpr::walk` over the statement bodies is invariant in
/// the candidate permutation, and re-walking it for every candidate
/// dominated `reschedule`'s runtime.
struct CostEdge {
    weight: usize,
    src: usize,
    dst: usize,
    /// Consumer accesses of the producer's output tensor, plus that
    /// tensor's rank (RAW alignment path).
    raw: Option<(Vec<Vec<usize>>, usize)>,
    /// Shared-operand read pairs `(producer map, consumer map)` — the
    /// RAR coincidence fallback when `raw` is absent or empty.
    rar: Vec<(Vec<usize>, Vec<usize>)>,
}

/// The pre-resolved structural cost function of one kernel under one
/// dependence graph; [`CostModel::eval`] is pure integer work over a
/// candidate schedule.
struct CostModel {
    max_rank: usize,
    edges: Vec<CostEdge>,
    /// `(statement, reduce_rank)` for statements with a reduction
    /// suffix (the HLS-friendliness penalty term).
    reductions: Vec<(usize, usize)>,
}

impl CostModel {
    fn build(module: &Module, model: &KernelModel, deps: &Dependences) -> CostModel {
        let max_rank = model.stmts.iter().map(|s| s.rank()).max().unwrap_or(0);
        let edges = deps
            .edges
            .iter()
            .map(|e| {
                let weight = match e.kind {
                    crate::deps::DependenceKind::Raw => 4,
                    crate::deps::DependenceKind::Rar => 1,
                };
                let wstmt = &module.stmts[e.src];
                let rstmt = &module.stmts[e.dst];
                let out = wstmt.out;
                let mut accesses: Vec<Vec<usize>> = Vec::new();
                rstmt.expr.walk(&mut |node| {
                    if let PointExpr::Access { tensor, index_map } = node {
                        if *tensor == out {
                            accesses.push(index_map.clone());
                        }
                    }
                });
                let (raw, rar) = if accesses.is_empty() {
                    let mut pairs = Vec::new();
                    for (tw, imw) in wstmt.expr.accesses() {
                        for (tr, imr) in rstmt.expr.accesses() {
                            if tw == tr {
                                pairs.push((imw.clone(), imr.clone()));
                            }
                        }
                    }
                    (None, pairs)
                } else {
                    (Some((accesses, module.shape(out).len())), Vec::new())
                };
                CostEdge {
                    weight,
                    src: e.src,
                    dst: e.dst,
                    raw,
                    rar,
                }
            })
            .collect();
        let reductions = module
            .stmts
            .iter()
            .enumerate()
            .filter(|(_, s)| s.reduce_rank() > 0)
            .map(|(si, s)| (si, s.reduce_rank()))
            .collect();
        CostModel {
            max_rank,
            edges,
            reductions,
        }
    }

    fn eval(&self, sched: &Schedule) -> usize {
        let mut total = 0usize;
        for e in &self.edges {
            let a = match &e.raw {
                Some((accesses, out_rank)) => {
                    let wperm = &sched.perms[e.src];
                    let rperm = &sched.perms[e.dst];
                    let mut best = 0usize;
                    for im in accesses {
                        let mut depth = 0usize;
                        while depth < wperm.len() && depth < rperm.len() {
                            let j = wperm[depth];
                            if j >= *out_rank {
                                break;
                            }
                            if im.get(j) == Some(&rperm[depth]) {
                                depth += 1;
                            } else {
                                break;
                            }
                        }
                        best = best.max(depth);
                    }
                    best
                }
                None => {
                    let mut best = 0usize;
                    for (imw, imr) in &e.rar {
                        best = best.max(read_read_alignment(sched, e.src, e.dst, imw, imr));
                    }
                    best
                }
            };
            total += e.weight * (self.max_rank.saturating_sub(a));
        }
        for &(si, reduce_rank) in &self.reductions {
            let perm = &sched.perms[si];
            let out_rank = perm.len() - reduce_rank;
            let suffix_ok = perm[perm.len() - reduce_rank..]
                .iter()
                .all(|&v| v >= out_rank);
            if !suffix_ok {
                total += 1000;
            }
        }
        total
    }
}

/// Structural schedule cost: lower is better.
///
/// For every RAW edge the cost is `max_rank - aligned(w, r)` where
/// `aligned` counts the leading schedule depths at which the reader
/// traverses the producer's output tensor in the order it is produced.
/// RAR edges contribute a quarter-weight misalignment penalty.
///
/// An additional *HLS-friendliness* term heavily penalizes schedules
/// whose reduction loops are not innermost: commercial HLS only keeps a
/// floating-point accumulation in a register (scalar recurrence, fixed
/// II) when the reduction is the innermost band — otherwise it becomes a
/// memory read-modify-write. This is the paper's "fine-tune the
/// generated code so that it is amenable to HLS" (Section IV).
pub fn cost(module: &Module, model: &KernelModel, deps: &Dependences, sched: &Schedule) -> usize {
    CostModel::build(module, model, deps).eval(sched)
}

/// Alignment of two reads of the same operand (RAR coincidence).
fn read_read_alignment(
    sched: &Schedule,
    a: usize,
    b: usize,
    ima: &[usize],
    imb: &[usize],
) -> usize {
    let pa = &sched.perms[a];
    let pb = &sched.perms[b];
    let mut depth = 0usize;
    while depth < pa.len() && depth < pb.len() {
        // At this depth, does each statement iterate the same operand
        // dimension?
        let da = ima.iter().position(|&v| v == pa[depth]);
        let db = imb.iter().position(|&v| v == pb[depth]);
        match (da, db) {
            (Some(x), Some(y)) if x == y => depth += 1,
            _ => break,
        }
    }
    depth
}

/// Fuse pointwise consumers into their producers where legal.
fn fuse_pointwise(module: &Module, model: &KernelModel, deps: &Dependences, sched: &mut Schedule) {
    for e in deps.raw().cloned().collect::<Vec<_>>() {
        let (w, r) = (e.src, e.dst);
        if sched.fused(w, r) {
            continue;
        }
        // Candidate: consumer reads producer's output with the identity
        // map and both statements have the producer's full output rank.
        let out = module.stmts[w].out;
        let identity_read = {
            let mut ok = false;
            module.stmts[r].expr.walk(&mut |n| {
                if let PointExpr::Access { tensor, index_map } = n {
                    if *tensor == out && index_map.iter().enumerate().all(|(d, &v)| d == v) {
                        ok = true;
                    }
                }
            });
            ok
        };
        if !identity_read {
            continue;
        }
        let trial_seq = sched.seq[w];
        let saved = (sched.seq[r], sched.micro[r]);
        sched.seq[r] = trial_seq;
        sched.micro[r] = sched.micro[w] + 1;
        if legal(model, deps, sched) {
            // Keep the fusion and close the sequence gap.
            continue;
        }
        sched.seq[r] = saved.0;
        sched.micro[r] = saved.1;
    }
}

/// All permutations of `0..n` (n! — callers cap `n`).
pub fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..n).collect();
    heap_permute(&mut cur, n, &mut out);
    out
}

fn heap_permute(a: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(a.clone());
        return;
    }
    for i in 0..k {
        heap_permute(a, k - 1, out);
        if k.is_multiple_of(2) {
            a.swap(i, k - 1);
        } else {
            a.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teil::layout::LayoutPlan;
    use teil::lower::lower;
    use teil::transform::factorize;

    fn setup(src: &str, factored: bool) -> (Module, KernelModel, Dependences) {
        let typed = cfdlang::check(&cfdlang::parse(src).unwrap()).unwrap();
        let mut m = lower(&typed).unwrap();
        if factored {
            m = factorize(&m);
        }
        let layout = LayoutPlan::row_major(&m);
        let km = KernelModel::build(&m, &layout);
        let deps = Dependences::analyze(&km);
        (m, km, deps)
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        assert_eq!(permutations(1), vec![vec![0]]);
    }

    #[test]
    fn rescheduled_helmholtz_is_legal() {
        let (m, km, deps) = setup(&cfdlang::examples::inverse_helmholtz(3), true);
        let s = reschedule(&m, &km, &deps, &SchedulerOptions::default());
        assert!(legal(&km, &deps, &s));
    }

    #[test]
    fn reschedule_does_not_worsen_cost() {
        let (m, km, deps) = setup(&cfdlang::examples::inverse_helmholtz(3), true);
        let reference = Schedule::reference(&km);
        let tuned = reschedule(&m, &km, &deps, &SchedulerOptions::default());
        assert!(cost(&m, &km, &deps, &tuned) <= cost(&m, &km, &deps, &reference));
    }

    #[test]
    fn pointwise_chain_fuses() {
        // b = a + a ; c = b * b — c reads b with the identity map and
        // both are pointwise, so fusion is legal.
        let src = "var input a : [4]\nvar b : [4]\nvar output c : [4]\nb = a + a\nc = b * b";
        let (m, km, deps) = setup(src, false);
        let opts = SchedulerOptions {
            fuse: true,
            ..Default::default()
        };
        let s = reschedule(&m, &km, &deps, &opts);
        assert!(s.fused(0, 1), "pointwise chain should fuse: {s:?}");
        assert!(legal(&km, &deps, &s));
    }

    #[test]
    fn reduction_consumer_does_not_fuse() {
        // Hadamard after a contraction cannot fuse across the reduction.
        let (m, km, deps) = setup(&cfdlang::examples::inverse_helmholtz(3), false);
        let opts = SchedulerOptions {
            fuse: true,
            ..Default::default()
        };
        let s = reschedule(&m, &km, &deps, &opts);
        assert!(!s.fused(0, 1));
        assert!(legal(&km, &deps, &s));
    }

    #[test]
    fn alignment_prefers_matching_traversal() {
        // Producer writes t[i,j,k] in order (i,j,k); the Hadamard reads
        // t[i,j,k] identity-mapped, so identity perms align fully and
        // misordering the consumer's loops must raise the cost.
        let (m, km, deps) = setup(&cfdlang::examples::inverse_helmholtz(3), false);
        let s = Schedule::reference(&km);
        let aligned = cost(&m, &km, &deps, &s);
        let mut skewed = s.clone();
        skewed.perms[1].reverse();
        assert!(cost(&m, &km, &deps, &skewed) > aligned);
    }
}
