//! Affine schedules into a common lexicographic schedule space.
//!
//! A schedule assigns every statement instance a tuple in an anonymous
//! integer space ordered lexicographically (Section IV-C). We use the
//! shape
//!
//! ```text
//! [ seq, x_{σ(0)}, x_{σ(1)}, ..., pad 0s ..., micro ]
//! ```
//!
//! * `seq` — outer sequence position (statements with equal `seq` are
//!   fused and share loops),
//! * `σ` — the per-statement loop permutation chosen by the rescheduler,
//! * `micro` — trailing constant ordering fused statements within an
//!   iteration point.
//!
//! The *reference schedule* is program order with identity permutations;
//! it encodes exactly the orders the CFDlang program admits and is the
//! baseline every rescheduling is validated against.

use crate::model::KernelModel;
use polyhedra::{LinExpr, Map, Space};

/// An affine schedule for all statements of a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Dimensionality of the schedule space.
    pub dim: usize,
    /// Outer sequence constant per statement.
    pub seq: Vec<i64>,
    /// Loop permutation per statement (`perm[d]` = iteration variable
    /// placed at schedule depth `d`).
    pub perms: Vec<Vec<usize>>,
    /// Trailing micro-sequence constant per statement.
    pub micro: Vec<i64>,
}

impl Schedule {
    /// The reference schedule: program order, identity permutations.
    pub fn reference(model: &KernelModel) -> Schedule {
        let max_rank = model.stmts.iter().map(|s| s.rank()).max().unwrap_or(0);
        Schedule {
            dim: 1 + max_rank + 1,
            seq: (0..model.stmts.len() as i64).collect(),
            perms: model
                .stmts
                .iter()
                .map(|s| (0..s.rank()).collect())
                .collect(),
            micro: vec![0; model.stmts.len()],
        }
    }

    /// The affine map `stmt[x...] → [seq, x_{σ(0)}, ..., 0.., micro]` for
    /// one statement.
    pub fn stmt_map(&self, model: &KernelModel, si: usize) -> Map {
        let stmt = &model.stmts[si];
        let rank = stmt.rank();
        let mut exprs: Vec<LinExpr> = Vec::with_capacity(self.dim);
        exprs.push(LinExpr::constant(rank, self.seq[si]));
        for d in 0..self.dim - 2 {
            if d < self.perms[si].len() {
                exprs.push(LinExpr::var(rank, self.perms[si][d]));
            } else {
                exprs.push(LinExpr::constant(rank, 0));
            }
        }
        exprs.push(LinExpr::constant(rank, self.micro[si]));
        Map::from_affine(stmt.space.clone(), Space::anon(self.dim), &exprs)
            .intersect_domain(&polyhedra::Set::from_basic(stmt.domain.clone()))
    }

    /// Schedule tuple of a concrete iteration point of a statement.
    pub fn tuple_of(&self, si: usize, point: &[usize]) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.dim);
        out.push(self.seq[si]);
        for d in 0..self.dim - 2 {
            if d < self.perms[si].len() {
                out.push(point[self.perms[si][d]] as i64);
            } else {
                out.push(0);
            }
        }
        out.push(self.micro[si]);
        out
    }

    /// The virtual schedule (Section IV-F): tuples strictly before /
    /// after every real statement, modelling the host writing inputs
    /// (`first`) and reading outputs (`last`).
    pub fn first_tuple(&self) -> Vec<i64> {
        let mut t = vec![0i64; self.dim];
        t[0] = self.seq.iter().copied().min().unwrap_or(0) - 1;
        t
    }

    /// See [`Schedule::first_tuple`].
    pub fn last_tuple(&self) -> Vec<i64> {
        let mut t = vec![0i64; self.dim];
        t[0] = self.seq.iter().copied().max().unwrap_or(0) + 1;
        t
    }

    /// Whether two statements are fused (same outer sequence constant).
    pub fn fused(&self, a: usize, b: usize) -> bool {
        self.seq[a] == self.seq[b]
    }

    /// Statement indices grouped by sequence constant, in execution
    /// order; fused statements share a group ordered by `micro`.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut order: Vec<usize> = (0..self.seq.len()).collect();
        order.sort_by_key(|&i| (self.seq[i], self.micro[i]));
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for i in order {
            match groups.last_mut() {
                Some(g) if self.seq[g[0]] == self.seq[i] => g.push(i),
                _ => groups.push(vec![i]),
            }
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teil::layout::LayoutPlan;
    use teil::lower::lower;

    fn model(n: usize) -> KernelModel {
        let typed =
            cfdlang::check(&cfdlang::parse(&cfdlang::examples::inverse_helmholtz(n)).unwrap())
                .unwrap();
        let m = lower(&typed).unwrap();
        let layout = LayoutPlan::row_major(&m);
        KernelModel::build(&m, &layout)
    }

    #[test]
    fn reference_schedule_is_program_order() {
        let km = model(4);
        let s = Schedule::reference(&km);
        assert_eq!(s.seq, vec![0, 1, 2]);
        assert_eq!(s.dim, 1 + 6 + 1);
        assert_eq!(s.perms[0], vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn tuple_of_matches_map() {
        let km = model(4);
        let s = Schedule::reference(&km);
        let map = s.stmt_map(&km, 0);
        let pt = [1usize, 2, 3, 0, 1, 2];
        let tup = s.tuple_of(0, &pt);
        let pt_i: Vec<i64> = pt.iter().map(|&x| x as i64).collect();
        assert!(map.contains(&pt_i, &tup));
    }

    #[test]
    fn virtual_tuples_bracket_everything() {
        let km = model(4);
        let s = Schedule::reference(&km);
        let first = s.first_tuple();
        let last = s.last_tuple();
        let lt = polyhedra::lex_lt_map(s.dim);
        for si in 0..km.stmts.len() {
            let t = s.tuple_of(si, &vec![0; km.stmts[si].rank()]);
            assert!(lt.contains(&first, &t));
            assert!(lt.contains(&t, &last));
        }
    }

    #[test]
    fn permuted_schedule_reorders_tuple() {
        let km = model(4);
        let mut s = Schedule::reference(&km);
        s.perms[1] = vec![2, 0, 1]; // Hadamard has rank 3
        let tup = s.tuple_of(1, &[5, 6, 7]);
        assert_eq!(tup[1..4], [7, 5, 6]);
    }

    #[test]
    fn groups_follow_seq_and_micro() {
        let km = model(4);
        let mut s = Schedule::reference(&km);
        s.seq = vec![0, 0, 1];
        s.micro = vec![0, 1, 0];
        let g = s.groups();
        assert_eq!(g, vec![vec![0, 1], vec![2]]);
        assert!(s.fused(0, 1));
        assert!(!s.fused(1, 2));
    }
}
