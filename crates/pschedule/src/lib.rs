//! `pschedule` — polyhedral scheduling and liveness for the CFDlang flow.
//!
//! This crate implements steps ⓘⓘⓘ (rescheduling) and ⓘⓥ (analysis /
//! Mnemosyne metadata generation) of the compilation flow in Figure 4 of
//! the paper, on top of the `polyhedra` engine:
//!
//! * [`model`] — promotes every IR statement to a polyhedral statement
//!   with an iteration domain and layout-aware read/write access
//!   relations (the *operand maps* of Section IV-B),
//! * [`schedule`] — affine schedules `S : stmt[...] → [...]` into a
//!   common lexicographically-ordered schedule space; the *reference
//!   schedule* follows program order (Section IV-C),
//! * [`deps`] — value-based RAW/RAR dependence analysis and polyhedral
//!   legality checking of candidate schedules,
//! * [`scheduler`] — a Pluto-like rescheduler: per-statement loop
//!   permutation and producer–consumer fusion chosen to minimize RAW
//!   dependence distance and maximize RAR coincidence, validated exactly
//!   against the dependence relations (Section IV-E),
//! * [`liveness`] — the paper's liveness analysis (Section IV-F):
//!   `I = (S×S)∘RAW`, `L = ge_le∘I`, address-space and memory-interface
//!   compatibility, and the memory compatibility graph of Figure 5,
//! * [`link`] — cross-kernel analysis for multi-kernel programs:
//!   inter-kernel dependences (tensor handoffs), kernel-sequence live
//!   intervals, and the cross-kernel compatibility rules behind
//!   program-wide PLM sharing.

pub mod deps;
pub mod link;
pub mod liveness;
pub mod model;
pub mod schedule;
pub mod scheduler;

pub use deps::{legal, Dependence, DependenceKind, Dependences};
pub use link::{ArraySeqInfo, CrossLiveness, Handoff};
pub use liveness::{CompatKind, CompatibilityGraph, Liveness};
pub use model::{KernelModel, PolyStmt};
pub use schedule::Schedule;
pub use scheduler::{reschedule, SchedulerOptions};
