//! Liveness analysis and the memory compatibility graph (Section IV-F).
//!
//! For every array we build the interval relation over schedule tuples
//!
//! ```text
//! P = A⁻¹ ∘ B   where   A : array[i] → [write tuple]
//!                       B : array[i] → [read tuple]
//! ```
//!
//! (the paper's `I = (S×S) ∘ RAW`), restrict it to forward intervals, and
//! expand it with `ge_le` ([`polyhedra::between_set`]) into the set `L` of
//! schedule points at which the array holds a live value. Inputs receive
//! a *virtual write* strictly before every statement (`first`) and
//! outputs a *virtual read* after every statement (`last`), exactly as in
//! the paper's modified virtual schedule.
//!
//! Two arrays are **address-space compatible** when their live sets are
//! disjoint — they may then share addresses. Two arrays are
//! **memory-interface compatible** when no schedule point writes both or
//! reads both — they may then share physical ports. Both relations feed
//! the Mnemosyne configuration (Figure 5 of the paper).

use crate::model::KernelModel;
use crate::schedule::Schedule;
use polyhedra::{between_set_pruned, BasicSet, LinExpr, Map, Set, Space};
use std::collections::HashMap;
use teil::ir::{Module, TensorKind};
use teil::layout::ArrayId;

/// Result of liveness analysis over a schedule.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Schedule-space dimensionality.
    pub dim: usize,
    /// Arrays analyzed (live arrays of the layout plan).
    pub arrays: Vec<ArrayId>,
    /// Live schedule points per array (the paper's `range(L)`).
    pub live: HashMap<ArrayId, Set>,
    /// Schedule points at which each array is written.
    pub writes_at: HashMap<ArrayId, Set>,
    /// Schedule points at which each array is read.
    pub reads_at: HashMap<ArrayId, Set>,
}

impl Liveness {
    /// Run the analysis for a kernel under a schedule (serial).
    pub fn analyze(module: &Module, model: &KernelModel, sched: &Schedule) -> Liveness {
        Liveness::analyze_jobs(module, model, sched, 1)
    }

    /// Run the analysis with up to `jobs` worker threads (`0` = one per
    /// available core). The per-array expansions are independent, so
    /// they stripe across a scoped thread pool; results are merged in
    /// array order, making the outcome bit-identical for every `jobs`
    /// value.
    pub fn analyze_jobs(
        module: &Module,
        model: &KernelModel,
        sched: &Schedule,
        jobs: usize,
    ) -> Liveness {
        let dim = sched.dim;
        let layout = &model.layout;
        let arrays = layout.live_arrays();
        // Per-statement schedule maps are array-independent: build once.
        let stmt_maps: Vec<Map> = (0..model.stmts.len())
            .map(|si| sched.stmt_map(model, si))
            .collect();

        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1)
        } else {
            jobs
        }
        .min(arrays.len().max(1));

        let analyzed: Vec<(Set, Set, Set)> = if jobs <= 1 {
            arrays
                .iter()
                .map(|&arr| analyze_array(module, model, sched, &stmt_maps, dim, arr))
                .collect()
        } else {
            // Worker `w` takes arrays w, w+jobs, ...; reassembling by
            // index restores declaration order exactly.
            let mut indexed: Vec<(usize, (Set, Set, Set))> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..jobs)
                    .map(|w| {
                        let arrays = &arrays;
                        let stmt_maps = &stmt_maps;
                        scope.spawn(move || {
                            (w..arrays.len())
                                .step_by(jobs)
                                .map(|i| {
                                    (
                                        i,
                                        analyze_array(
                                            module, model, sched, stmt_maps, dim, arrays[i],
                                        ),
                                    )
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("liveness worker panicked"))
                    .collect()
            });
            indexed.sort_by_key(|(i, _)| *i);
            indexed.into_iter().map(|(_, r)| r).collect()
        };

        let mut live = HashMap::new();
        let mut writes_at = HashMap::new();
        let mut reads_at = HashMap::new();
        for (&arr, (l, w, r)) in arrays.iter().zip(analyzed) {
            live.insert(arr, l);
            writes_at.insert(arr, w);
            reads_at.insert(arr, r);
        }
        Liveness {
            dim,
            arrays,
            live,
            writes_at,
            reads_at,
        }
    }

    /// Whether two arrays may share an address space (disjoint live
    /// sets).
    pub fn address_space_compatible(&self, a: ArrayId, b: ArrayId) -> bool {
        self.live[&a].disjoint(&self.live[&b])
    }

    /// Whether two arrays may share memory ports: no schedule point
    /// writes both, and no schedule point reads both.
    pub fn memory_interface_compatible(&self, a: ArrayId, b: ArrayId) -> bool {
        self.writes_at[&a].disjoint(&self.writes_at[&b])
            && self.reads_at[&a].disjoint(&self.reads_at[&b])
    }
}

/// One array's liveness expansion: `(live, writes_at, reads_at)`.
fn analyze_array(
    module: &Module,
    model: &KernelModel,
    sched: &Schedule,
    stmt_maps: &[Map],
    dim: usize,
    arr: ArrayId,
) -> (Set, Set, Set) {
    let layout = &model.layout;
    let arr_decl = &layout.arrays[arr.0];
    let arr_space = Space::set(&arr_decl.name, &["addr"]);
    let arr_dom = BasicSet::boxed(arr_space.clone(), &[(0, arr_decl.size as i64 - 1)]);

    // A : array[addr] → write schedule tuples.
    let mut a = Map::empty(arr_space.clone(), Space::anon(dim));
    for (si, stmt) in model.stmts.iter().enumerate() {
        if stmt.write_array == arr {
            a = a.union(&stmt.write.reverse().compose(&stmt_maps[si]));
        }
    }
    // Virtual write for host-written (input) tensors.
    if holds_kind(module, model, arr, TensorKind::Input) {
        a = a.union(&const_map(&arr_space, &arr_dom, &sched.first_tuple()));
    }

    // B : array[addr] → read schedule tuples.
    let mut b = Map::empty(arr_space.clone(), Space::anon(dim));
    for (si, stmt) in model.stmts.iter().enumerate() {
        for (ra, rm) in &stmt.reads {
            if *ra == arr {
                b = b.union(&rm.reverse().compose(&stmt_maps[si]));
            }
        }
    }
    // Virtual read for host-read (output) tensors.
    if holds_kind(module, model, arr, TensorKind::Output) {
        b = b.union(&const_map(&arr_space, &arr_dom, &sched.last_tuple()));
    }

    // P : write tuple → read tuple over the same element. The
    // seed additionally intersected with `lex_le_map(dim)` to
    // keep forward intervals only; that conjunct is implied
    // inside `between_set` (w <=lex x <=lex r forces w <=lex r by
    // transitivity of the total lex order, and backward pairs
    // expand to empty parts that `prune_empty` drops), so it is
    // omitted — it multiplied the part count by dim+1 before the
    // expensive ge_le expansion.
    let p = a.reverse().compose(&b);
    let l = between_set_pruned(&p, dim);

    (l, a.range().prune_empty(), b.range().prune_empty())
}

fn holds_kind(module: &Module, model: &KernelModel, arr: ArrayId, kind: TensorKind) -> bool {
    model
        .layout
        .placements
        .iter()
        .any(|p| p.array == arr && module.decl(p.tensor).kind == kind)
}

/// The constant map `{ array[addr] → tuple }` restricted to the array
/// domain.
fn const_map(arr_space: &Space, arr_dom: &BasicSet, tuple: &[i64]) -> Map {
    let exprs: Vec<LinExpr> = tuple.iter().map(|&v| LinExpr::constant(1, v)).collect();
    Map::from_affine(arr_space.clone(), Space::anon(tuple.len()), &exprs)
        .intersect_domain(&Set::from_basic(arr_dom.clone()))
}

/// Edge kind in the compatibility graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompatKind {
    /// Lifetimes disjoint: arrays may overlay the same addresses.
    AddressSpace,
    /// Port usage disjoint: arrays may share physical banks.
    MemoryInterface,
}

/// The memory compatibility graph of Figure 5.
#[derive(Debug, Clone)]
pub struct CompatibilityGraph {
    /// `(array, name, words, interface?)` per node.
    pub nodes: Vec<(ArrayId, String, usize, bool)>,
    /// Compatibility edges between node indices.
    pub edges: Vec<(usize, usize, CompatKind)>,
}

impl CompatibilityGraph {
    /// Build the graph from a liveness result.
    pub fn build(model: &KernelModel, lv: &Liveness) -> CompatibilityGraph {
        let layout = &model.layout;
        let nodes: Vec<(ArrayId, String, usize, bool)> = lv
            .arrays
            .iter()
            .map(|&a| {
                let d = &layout.arrays[a.0];
                (a, d.name.clone(), d.size, d.interface)
            })
            .collect();
        let mut edges = Vec::new();
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                if lv.address_space_compatible(nodes[i].0, nodes[j].0) {
                    edges.push((i, j, CompatKind::AddressSpace));
                } else if lv.memory_interface_compatible(nodes[i].0, nodes[j].0) {
                    edges.push((i, j, CompatKind::MemoryInterface));
                }
            }
        }
        CompatibilityGraph { nodes, edges }
    }

    /// Whether nodes `i` and `j` have an edge of (at least) the given
    /// kind. Address-space compatibility implies a sharing opportunity
    /// for memory-interface purposes as well.
    pub fn compatible(&self, i: usize, j: usize, kind: CompatKind) -> bool {
        self.edges.iter().any(|&(a, b, k)| {
            ((a, b) == (i.min(j), i.max(j)))
                && (k == kind
                    || (kind == CompatKind::MemoryInterface && k == CompatKind::AddressSpace))
        })
    }

    /// Node index by array name.
    pub fn node_by_name(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|(_, n, _, _)| n == name)
    }

    /// Render as Graphviz dot (interface arrays grouped, like Figure 5).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("graph compat {\n  rankdir=LR;\n");
        s.push_str("  subgraph cluster_iface { label=\"interface\";\n");
        for (i, (_, name, _, iface)) in self.nodes.iter().enumerate() {
            if *iface {
                s.push_str(&format!("    n{i} [label=\"{name}\"];\n"));
            }
        }
        s.push_str("  }\n");
        for (i, (_, name, _, iface)) in self.nodes.iter().enumerate() {
            if !*iface {
                s.push_str(&format!("  n{i} [label=\"{name}\"];\n"));
            }
        }
        for &(a, b, k) in &self.edges {
            let style = match k {
                CompatKind::AddressSpace => "solid",
                CompatKind::MemoryInterface => "dashed",
            };
            s.push_str(&format!("  n{a} -- n{b} [style={style}];\n"));
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teil::layout::LayoutPlan;
    use teil::lower::lower;
    use teil::transform::factorize;

    fn setup(n: usize, factored: bool) -> (Module, KernelModel, Schedule) {
        let typed =
            cfdlang::check(&cfdlang::parse(&cfdlang::examples::inverse_helmholtz(n)).unwrap())
                .unwrap();
        let mut m = lower(&typed).unwrap();
        if factored {
            m = factorize(&m);
        }
        let layout = LayoutPlan::row_major(&m);
        let km = KernelModel::build(&m, &layout);
        let s = Schedule::reference(&km);
        (m, km, s)
    }

    fn arr(m: &Module, km: &KernelModel, name: &str) -> ArrayId {
        km.layout.placement(m.find(name).unwrap()).array
    }

    #[test]
    fn inputs_live_from_first() {
        let (m, km, s) = setup(3, false);
        let lv = Liveness::analyze(&m, &km, &s);
        let u = arr(&m, &km, "u");
        // u is live at the virtual first tuple and during statement 0.
        assert!(lv.live[&u].contains(&s.first_tuple()));
        let pt0 = s.tuple_of(0, &[0, 0, 0, 0, 0, 0]);
        assert!(lv.live[&u].contains(&pt0));
        // u is dead during statement 1 (Hadamard).
        let pt1 = s.tuple_of(1, &[0, 0, 0]);
        assert!(!lv.live[&u].contains(&pt1));
    }

    #[test]
    fn outputs_live_to_last() {
        let (m, km, s) = setup(3, false);
        let lv = Liveness::analyze(&m, &km, &s);
        let v = arr(&m, &km, "v");
        assert!(lv.live[&v].contains(&s.last_tuple()));
        // v is dead during statement 0.
        assert!(!lv.live[&v].contains(&s.tuple_of(0, &[0; 6])));
    }

    #[test]
    fn temp_lifetime_spans_def_to_last_use() {
        let (m, km, s) = setup(3, false);
        let lv = Liveness::analyze(&m, &km, &s);
        let t = arr(&m, &km, "t");
        // t written in stmt 0, read in stmt 1.
        assert!(lv.live[&t].contains(&s.tuple_of(0, &[2, 2, 2, 0, 0, 0])));
        assert!(lv.live[&t].contains(&s.tuple_of(1, &[0, 0, 0])));
        // Dead during stmt 2? t is read only by stmt 1.
        assert!(!lv.live[&t].contains(&s.tuple_of(2, &[0; 6])));
    }

    #[test]
    fn u_and_r_are_address_space_compatible() {
        let (m, km, s) = setup(3, false);
        let lv = Liveness::analyze(&m, &km, &s);
        let u = arr(&m, &km, "u");
        let r = arr(&m, &km, "r");
        // u dies after stmt 0; r is born at stmt 1.
        assert!(lv.address_space_compatible(u, r));
    }

    #[test]
    fn t_and_r_conflict() {
        let (m, km, s) = setup(3, false);
        let lv = Liveness::analyze(&m, &km, &s);
        let t = arr(&m, &km, "t");
        let r = arr(&m, &km, "r");
        // r is written at the points where t is still being read.
        assert!(!lv.address_space_compatible(t, r));
    }

    #[test]
    fn s_conflicts_with_everything_it_overlaps() {
        let (m, km, s) = setup(3, false);
        let lv = Liveness::analyze(&m, &km, &s);
        let s_arr = arr(&m, &km, "S");
        let t = arr(&m, &km, "t");
        let v = arr(&m, &km, "v");
        assert!(!lv.address_space_compatible(s_arr, t));
        assert!(!lv.address_space_compatible(s_arr, v));
    }

    #[test]
    fn factored_temp_chain_compatibilities() {
        let (m, km, s) = setup(3, true);
        let lv = Liveness::analyze(&m, &km, &s);
        let t0 = arr(&m, &km, "t0");
        let t1 = arr(&m, &km, "t1");
        let t2 = arr(&m, &km, "t2");
        let t = arr(&m, &km, "t");
        // Adjacent stages conflict; stages two apart are compatible.
        assert!(!lv.address_space_compatible(t0, t1));
        assert!(lv.address_space_compatible(t0, t));
        assert!(lv.address_space_compatible(t0, t2));
        assert!(lv.address_space_compatible(t1, t2));
    }

    #[test]
    fn memory_interface_compat_for_disjoint_readers() {
        let (m, km, s) = setup(3, false);
        let lv = Liveness::analyze(&m, &km, &s);
        let d = arr(&m, &km, "D");
        let u = arr(&m, &km, "u");
        // D is read only in stmt 1, u only in stmt 0; both are written
        // at the virtual first tuple, which is shared... so interface
        // compatibility requires distinguishing host writes. They are
        // written at the same virtual point: not interface compatible.
        assert!(!lv.memory_interface_compatible(d, u));
        // D (read at stmt 1) and t (written stmt 0, read stmt 1): reads
        // coincide at stmt 1 -> not interface compatible either.
        let t = arr(&m, &km, "t");
        assert!(!lv.memory_interface_compatible(d, t));
        // u (read stmt 0) and r (written stmt 1, read stmt 2): disjoint
        // read sets and disjoint write sets.
        let r = arr(&m, &km, "r");
        assert!(lv.memory_interface_compatible(u, r));
    }

    #[test]
    fn compat_graph_matches_analysis() {
        let (m, km, s) = setup(3, true);
        let lv = Liveness::analyze(&m, &km, &s);
        let g = CompatibilityGraph::build(&km, &lv);
        assert_eq!(g.nodes.len(), 10); // S D u v t r t0 t1 t2 t3
        let i_t0 = g.node_by_name("t0").unwrap();
        let i_t2 = g.node_by_name("t2").unwrap();
        assert!(g.compatible(i_t0, i_t2, CompatKind::AddressSpace));
        let i_t1 = g.node_by_name("t1").unwrap();
        assert!(!g.compatible(i_t0, i_t1, CompatKind::AddressSpace));
        let dot = g.to_dot();
        assert!(dot.contains("cluster_iface"));
        assert!(dot.contains("t0"));
    }
}
