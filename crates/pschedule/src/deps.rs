//! Value-based dependence analysis and schedule legality.
//!
//! Because CFDlang programs are pseudo-SSA at the tensor level (every
//! tensor assigned exactly once, no aliasing before memory sharing), the
//! dataflow is exactly:
//!
//! * **RAW** — producer statement writes array element, consumer reads
//!   it; the rescheduler uses these as hard ordering constraints and as
//!   the cost function for reducing live ranges,
//! * **RAR** — two statements read the same element; used as an affinity
//!   (coincidence) bonus only.
//!
//! Legality of a candidate schedule is checked exactly: a schedule is
//! legal iff for every RAW dependence the writer's tuple is
//! lexicographically before the reader's, i.e. the *violated* relation
//! `dep ∩ { (w, r) : S(w) ≥lex S(r) }` is empty.

use crate::model::KernelModel;
use crate::schedule::Schedule;
use polyhedra::{lex_le_map, Map};

/// Kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DependenceKind {
    /// Read-after-write (true dataflow).
    Raw,
    /// Read-after-read (locality affinity, not an ordering constraint).
    Rar,
}

/// One dependence edge between two statements.
#[derive(Debug, Clone)]
pub struct Dependence {
    pub kind: DependenceKind,
    /// Source statement index (the writer for RAW).
    pub src: usize,
    /// Destination statement index (the reader).
    pub dst: usize,
    /// The array carrying the dependence.
    pub array: teil::layout::ArrayId,
    /// Instance-wise relation `src[x] → dst[y]` (pairs touching the same
    /// array element).
    pub relation: Map,
}

/// All dependences of a kernel.
#[derive(Debug, Clone, Default)]
pub struct Dependences {
    pub edges: Vec<Dependence>,
}

impl Dependences {
    /// Compute RAW and RAR dependences of a model.
    pub fn analyze(model: &KernelModel) -> Dependences {
        let mut edges = Vec::new();
        let n = model.stmts.len();
        // RAW: writer w, reader r sharing an element of the same array.
        for w in 0..n {
            let ws = &model.stmts[w];
            for r in 0..n {
                let rs = &model.stmts[r];
                for (arr, read) in &rs.reads {
                    if *arr != ws.write_array {
                        continue;
                    }
                    // { w_iter → r_iter : write_addr(w) = read_addr(r) }
                    let rel = ws.write.compose(&read.reverse());
                    if !rel.is_empty() {
                        edges.push(Dependence {
                            kind: DependenceKind::Raw,
                            src: w,
                            dst: r,
                            array: *arr,
                            relation: rel,
                        });
                    }
                }
            }
        }
        // RAR: reader pairs over the same array (src < dst suffices for
        // the affinity heuristic).
        for a in 0..n {
            for b in (a + 1)..n {
                let sa = &model.stmts[a];
                let sb = &model.stmts[b];
                for (arr_a, ra) in &sa.reads {
                    for (arr_b, rb) in &sb.reads {
                        if arr_a != arr_b {
                            continue;
                        }
                        let rel = ra.compose(&rb.reverse());
                        if !rel.is_empty() {
                            edges.push(Dependence {
                                kind: DependenceKind::Rar,
                                src: a,
                                dst: b,
                                array: *arr_a,
                                relation: rel,
                            });
                            break; // one RAR edge per array pair is enough
                        }
                    }
                }
            }
        }
        Dependences { edges }
    }

    /// Only the RAW edges.
    pub fn raw(&self) -> impl Iterator<Item = &Dependence> {
        self.edges.iter().filter(|e| e.kind == DependenceKind::Raw)
    }

    /// Only the RAR edges.
    pub fn rar(&self) -> impl Iterator<Item = &Dependence> {
        self.edges.iter().filter(|e| e.kind == DependenceKind::Rar)
    }
}

/// Tag distinguishing legality keys from other compound-key families in
/// the shared memo (see [`polyhedra::intern::KeyBuilder::new`]).
const LEGAL_KEY_TAG: i64 = 1;

/// Whether a schedule satisfies every RAW dependence strictly.
///
/// For each RAW edge, builds the out-of-order relation
/// `O = S_src ∘ lex_ge ∘ S_dst⁻¹` (pairs whose writer is scheduled at or
/// after the reader) and checks that `dep ∩ O` is empty.
///
/// The verdict is a deterministic function of the schedule dimension and
/// the (relation, writer-map, reader-map) systems of every RAW edge, so
/// it is memoized process-wide on exactly that content — the compose
/// chains above dominate `reschedule`'s runtime otherwise. The forced-FM
/// oracle mode bypasses the memo (legacy path).
pub fn legal(model: &KernelModel, deps: &Dependences, sched: &Schedule) -> bool {
    use polyhedra::intern;
    let edges: Vec<(&Dependence, Map, Map)> = deps
        .raw()
        .map(|d| {
            (
                d,
                sched.stmt_map(model, d.src),
                sched.stmt_map(model, d.dst),
            )
        })
        .collect();
    if polyhedra::intern::oracle_mode() == polyhedra::OracleMode::Fm {
        return legal_eval(sched.dim, &edges);
    }
    let mut kb = intern::KeyBuilder::new(LEGAL_KEY_TAG);
    kb.scalar(sched.dim as i64);
    for (d, sw, sr) in &edges {
        for m in [&d.relation, sw, sr] {
            kb.scalar(m.parts.len() as i64);
            for p in &m.parts {
                kb.system(&p.system);
            }
        }
    }
    let key = kb.finish();
    if let Some(verdict) = intern::lookup_legal(&key) {
        return verdict;
    }
    let verdict = legal_eval(sched.dim, &edges);
    intern::store_legal(key, verdict);
    verdict
}

/// The uncached legality check over pre-built `(edge, S_src, S_dst)`
/// triples.
fn legal_eval(dim: usize, edges: &[(&Dependence, Map, Map)]) -> bool {
    let lex_ge = lex_le_map(dim).reverse();
    for (d, sw, sr) in edges {
        // O : src[x] → dst[y] with S(src x) >=lex S(dst y).
        let out_of_order = sw.compose(&lex_ge).compose(&sr.reverse());
        let violated = d.relation.intersect(&out_of_order);
        if !violated.is_empty() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use teil::layout::LayoutPlan;
    use teil::lower::lower;
    use teil::transform::factorize;

    fn model(n: usize, factored: bool) -> KernelModel {
        let typed =
            cfdlang::check(&cfdlang::parse(&cfdlang::examples::inverse_helmholtz(n)).unwrap())
                .unwrap();
        let mut m = lower(&typed).unwrap();
        if factored {
            m = factorize(&m);
        }
        let layout = LayoutPlan::row_major(&m);
        KernelModel::build(&m, &layout)
    }

    #[test]
    fn helmholtz_has_expected_raw_chain() {
        let km = model(3, false);
        let deps = Dependences::analyze(&km);
        let raw: Vec<(usize, usize)> = deps.raw().map(|d| (d.src, d.dst)).collect();
        // t (S0) feeds Hadamard (S1); r (S1) feeds v (S2).
        assert!(raw.contains(&(0, 1)));
        assert!(raw.contains(&(1, 2)));
        assert!(!raw.contains(&(0, 2)));
    }

    #[test]
    fn rar_on_shared_operand() {
        let km = model(3, false);
        let deps = Dependences::analyze(&km);
        // Both contractions read S: a RAR edge between S0 and S2 exists.
        assert!(deps.rar().any(|d| (d.src, d.dst) == (0, 2)));
    }

    #[test]
    fn reference_schedule_is_legal() {
        let km = model(3, false);
        let deps = Dependences::analyze(&km);
        let s = Schedule::reference(&km);
        assert!(legal(&km, &deps, &s));
    }

    #[test]
    fn reversed_program_order_is_illegal() {
        let km = model(3, false);
        let deps = Dependences::analyze(&km);
        let mut s = Schedule::reference(&km);
        s.seq = vec![2, 1, 0];
        assert!(!legal(&km, &deps, &s));
    }

    #[test]
    fn loop_permutations_stay_legal() {
        // Permuting loops within a statement cannot break cross-statement
        // RAW edges that are carried at the sequence dimension.
        let km = model(3, false);
        let deps = Dependences::analyze(&km);
        let mut s = Schedule::reference(&km);
        s.perms[0] = vec![5, 4, 3, 2, 1, 0];
        s.perms[2] = vec![2, 1, 0, 5, 4, 3];
        assert!(legal(&km, &deps, &s));
    }

    #[test]
    fn illegal_fusion_detected() {
        // Fusing producer and consumer at the same point with the
        // *consumer first* (micro order reversed) violates RAW.
        let km = model(3, false);
        let deps = Dependences::analyze(&km);
        let mut s = Schedule::reference(&km);
        // Fuse S1 (Hadamard) and S2 (second contraction): S2 reads r at
        // iteration points different from where S1 writes it, so fusing
        // them at equal depth is illegal no matter the micro order: the
        // contraction at point (i,j,k) reads r[l,m,n] for all l,m,n,
        // including points S1 has not reached yet.
        s.seq = vec![0, 1, 1];
        s.micro = vec![0, 0, 1];
        assert!(!legal(&km, &deps, &s));
    }

    #[test]
    fn legal_fusion_of_pointwise_consumer() {
        // In the factored module, the Hadamard (r = D ∘ t) reads t at
        // exactly the point the final contraction stage wrote — fusing
        // with micro ordering writer-before-reader is legal iff the loop
        // orders match.
        let km = model(3, true);
        let deps = Dependences::analyze(&km);
        // Find the statement writing t's array and the Hadamard reading it.
        // In the factored Helmholtz these are stmt 2 (t) and 3 (r).
        let mut s = Schedule::reference(&km);
        s.seq = vec![0, 1, 2, 2, 3, 4, 5];
        s.micro = vec![0, 0, 0, 1, 0, 0, 0];
        // Final t-stage has rank 4 (i,j,k,l); Hadamard rank 3 (i,j,k):
        // loops (i,j,k) coincide on the first three depths, and the
        // writer's 4th loop is a reduction that finishes before micro 1…
        // lexicographically [2, i,j,k, l, 0] vs [2, i,j,k, 0, 1]: the
        // reader at (i,j,k,0,1) must come after ALL writer points
        // (i,j,k,l,0); with l >= 1 > 0 the writer tuple [2,i,j,k,1,0]
        // is lexicographically after the reader [2,i,j,k,0,1] — illegal!
        assert!(!legal(&km, &deps, &s));
        // Putting the reduction dim *before* the shared dims fixes it...
        // but then it is no longer a per-point fusion. The legality
        // checker correctly rejects naive fusion across a reduction.
    }
}
