//! Cross-kernel link analysis for multi-kernel programs.
//!
//! A multi-kernel program executes its kernels as a chain: stage 0 runs
//! to completion, hands its outputs to stage 1 through name-matched
//! tensors, and so on. That sequential structure induces a *second*
//! liveness problem, coarser than the per-kernel one of [`liveness`]:
//! every array of every kernel occupies a live interval in
//! **kernel-sequence space** (stage indices `0..K`), and two arrays of
//! *different* kernels may overlay one physical PLM buffer whenever
//!
//! * their sequence intervals are disjoint (one is dead before the
//!   other is born — e.g. any two temporaries of different stages), or
//! * they are two ends of the same **handoff** (a producer's output and
//!   a consumer's equally named input hold the same values, so
//!   co-locating them makes the kernel-to-kernel transfer free).
//!
//! The intervals are:
//!
//! | array | interval |
//! |-------|----------|
//! | temporary of stage `k` | `[k, k]` |
//! | external input of stage `k` | `[0, k]` (host loads all inputs before stage 0) |
//! | external output of stage `k` | `[k, K-1]` (host drains after the last stage) |
//! | handoff produced at `k`, last consumed at `j` | `[k, j]` (both ends) |
//!
//! [`CrossLiveness::analyze`] computes the handoffs (the inter-kernel
//! dependences), the intervals and the alias pairs from the kernels'
//! tensor IR modules; `mnemosyne` turns them into cross-kernel
//! compatibility edges for its sharing solver.
//!
//! [`liveness`]: crate::liveness

use teil::{Module, TensorKind};

/// One inter-kernel tensor handoff (an edge of the program's kernel
/// dependence chain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handoff {
    pub name: String,
    /// Producing kernel (stage index).
    pub from: usize,
    /// Consuming kernel.
    pub to: usize,
    /// Buffer size in 64-bit words.
    pub words: usize,
}

/// Kernel-sequence liveness of one array of one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArraySeqInfo {
    pub name: String,
    /// First stage at which the buffer holds live data.
    pub start: usize,
    /// Last stage at which the buffer is read.
    pub end: usize,
    /// Host-visible in the merged system (external input / final
    /// output); handoff buffers and temporaries are fabric-internal.
    pub external: bool,
    /// Index into [`CrossLiveness::handoffs`] when this array is one
    /// end of a handoff.
    pub handoff: Option<usize>,
}

impl ArraySeqInfo {
    /// The live interval as a closed integer interval over stage
    /// indices.
    pub fn interval(&self) -> polyhedra::ClosedInterval {
        polyhedra::ClosedInterval::new(self.start as i64, self.end as i64)
    }
}

/// The cross-kernel analysis result: handoffs plus per-kernel,
/// per-array sequence intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossLiveness {
    /// Kernel names in execution order.
    pub kernels: Vec<String>,
    /// Inter-kernel dependences.
    pub handoffs: Vec<Handoff>,
    /// Per kernel: one entry per declared tensor, in module declaration
    /// order.
    pub arrays: Vec<Vec<ArraySeqInfo>>,
}

impl CrossLiveness {
    /// Analyze a chain of compiled kernels. `modules[k]` is kernel `k`'s
    /// canonicalized tensor IR. Fails when a handoff pair disagrees on
    /// shape (the frontend checks this too; this guards direct IR use).
    pub fn analyze(names: &[String], modules: &[&Module]) -> Result<CrossLiveness, String> {
        assert_eq!(names.len(), modules.len());
        let nk = names.len();
        // Resolve handoffs: each input of kernel j binds to the most
        // recent preceding kernel that outputs the same name.
        let mut handoffs: Vec<Handoff> = Vec::new();
        for (j, m) in modules.iter().enumerate() {
            for id in m.of_kind(TensorKind::Input) {
                let name = m.name(id);
                let producer = (0..j)
                    .rev()
                    .find_map(|i| Some((i, modules[i].find_of_kind(name, TensorKind::Output)?)));
                if let Some((i, out_id)) = producer {
                    if modules[i].shape(out_id) != m.shape(id) {
                        return Err(format!(
                            "handoff '{name}' shape mismatch between kernels '{}' and '{}'",
                            names[i], names[j]
                        ));
                    }
                    handoffs.push(Handoff {
                        name: name.to_string(),
                        from: i,
                        to: j,
                        words: m.shape(id).iter().product::<usize>().max(1),
                    });
                }
            }
        }
        // Sequence intervals. A handoff buffer is live from its
        // producer stage to its *last* consumer stage, at both ends.
        let mut arrays: Vec<Vec<ArraySeqInfo>> = Vec::with_capacity(nk);
        for (k, m) in modules.iter().enumerate() {
            let mut infos = Vec::new();
            for decl in &m.tensors {
                let name = decl.name.as_str();
                let (start, end, external, handoff) = match decl.kind {
                    TensorKind::Temp => (k, k, false, None),
                    TensorKind::Input => {
                        match handoffs.iter().position(|h| h.to == k && h.name == name) {
                            Some(hi) => {
                                let from = handoffs[hi].from;
                                let last = last_consumer(&handoffs, from, name);
                                (from, last, false, Some(hi))
                            }
                            None => (0, k, true, None),
                        }
                    }
                    TensorKind::Output => {
                        match handoffs.iter().rposition(|h| h.from == k && h.name == name) {
                            Some(hi) => {
                                let last = last_consumer(&handoffs, k, name);
                                (k, last, false, Some(hi))
                            }
                            None => (k, nk - 1, true, None),
                        }
                    }
                };
                infos.push(ArraySeqInfo {
                    name: name.to_string(),
                    start,
                    end,
                    external,
                    handoff,
                });
            }
            arrays.push(infos);
        }
        Ok(CrossLiveness {
            kernels: names.to_vec(),
            handoffs,
            arrays,
        })
    }

    /// Look up an array's sequence info by kernel index and name.
    pub fn info(&self, kernel: usize, name: &str) -> Option<&ArraySeqInfo> {
        self.arrays[kernel].iter().find(|a| a.name == name)
    }

    /// Whether two arrays of *different* kernels may overlay one buffer:
    /// either they are ends of the same handoff (same values), or their
    /// sequence intervals are disjoint.
    pub fn cross_compatible(
        &self,
        ka: usize,
        a: &ArraySeqInfo,
        kb: usize,
        b: &ArraySeqInfo,
    ) -> bool {
        if ka == kb {
            return false;
        }
        if let (Some(ha), Some(hb)) = (a.handoff, b.handoff) {
            let (ha, hb) = (&self.handoffs[ha], &self.handoffs[hb]);
            // All ends of one handed-off value share one buffer.
            if ha.name == hb.name && ha.from == hb.from {
                return true;
            }
        }
        a.interval().disjoint(&b.interval())
    }

    /// Stages that must run before stage `k` (its direct producers).
    pub fn producers_of(&self, k: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .handoffs
            .iter()
            .filter(|h| h.to == k)
            .map(|h| h.from)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total handoff traffic per element in 64-bit words (stays inside
    /// the accelerator fabric; never crosses the DMA).
    pub fn handoff_words(&self) -> usize {
        // Each handed-off value is one shared buffer regardless of how
        // many consumers read it.
        let mut seen: Vec<(usize, &str)> = Vec::new();
        let mut words = 0;
        for h in &self.handoffs {
            if !seen.contains(&(h.from, h.name.as_str())) {
                seen.push((h.from, h.name.as_str()));
                words += h.words;
            }
        }
        words
    }
}

/// Last stage that consumes the value produced at `from` under `name`
/// (at least the producer stage itself).
fn last_consumer(handoffs: &[Handoff], from: usize, name: &str) -> usize {
    handoffs
        .iter()
        .filter(|h| h.from == from && h.name == name)
        .map(|h| h.to)
        .max()
        .unwrap_or(from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teil::lower::lower;
    use teil::transform::factorize;

    fn modules_for(src: &str) -> (Vec<String>, Vec<Module>) {
        let set = cfdlang::check_set(&cfdlang::parse_set(src).unwrap()).unwrap();
        let names: Vec<String> = set.kernels.iter().map(|k| k.name.clone()).collect();
        let mods: Vec<Module> = set
            .kernels
            .iter()
            .map(|k| factorize(&lower(&k.typed).unwrap()))
            .collect();
        (names, mods)
    }

    #[test]
    fn simulation_step_handoffs_and_ranges() {
        let (names, mods) = modules_for(&cfdlang::examples::simulation_step(4));
        let refs: Vec<&Module> = mods.iter().collect();
        let x = CrossLiveness::analyze(&names, &refs).unwrap();
        assert_eq!(x.handoffs.len(), 2);
        assert_eq!(x.handoffs[0].name, "u");
        assert_eq!((x.handoffs[0].from, x.handoffs[0].to), (0, 1));
        assert_eq!(x.handoffs[1].name, "v");
        assert_eq!((x.handoffs[1].from, x.handoffs[1].to), (1, 2));
        assert_eq!(x.producers_of(1), vec![0]);
        assert_eq!(x.producers_of(0), Vec::<usize>::new());
        // u lives [0, 1] at both ends; external inputs start at 0; the
        // final output w lives [2, 2].
        let u_out = x.info(0, "u").unwrap();
        assert_eq!((u_out.start, u_out.end, u_out.external), (0, 1, false));
        let u_in = x.info(1, "u").unwrap();
        assert_eq!((u_in.start, u_in.end), (0, 1));
        let s = x.info(1, "S").unwrap();
        assert_eq!((s.start, s.end, s.external), (0, 1, true));
        let w = x.info(2, "w").unwrap();
        assert_eq!((w.start, w.end, w.external), (2, 2, true));
        // Handoff words: u (64) + v (64).
        assert_eq!(x.handoff_words(), 128);
    }

    #[test]
    fn cross_compatibility_rules() {
        let (names, mods) = modules_for(&cfdlang::examples::simulation_step(4));
        let refs: Vec<&Module> = mods.iter().collect();
        let x = CrossLiveness::analyze(&names, &refs).unwrap();
        // Handoff ends are compatible (aliased).
        let u_out = x.info(0, "u").unwrap();
        let u_in = x.info(1, "u").unwrap();
        assert!(x.cross_compatible(0, u_out, 1, u_in));
        // Temporaries of different stages are compatible...
        let t = x.info(1, "t").unwrap();
        let w = x.info(2, "w").unwrap();
        assert!(x.cross_compatible(2, w, 1, t));
        // ...but a live handoff is not compatible with arrays inside
        // its interval.
        assert!(!x.cross_compatible(1, t, 0, u_out));
        // Same kernel is never cross-compatible (the per-kernel
        // analysis owns that case).
        let r = x.info(1, "r").unwrap();
        assert!(!x.cross_compatible(1, t, 1, r));
    }

    #[test]
    fn axpy_chain_links() {
        let (names, mods) = modules_for(&cfdlang::examples::axpy_chain(3));
        let refs: Vec<&Module> = mods.iter().collect();
        let x = CrossLiveness::analyze(&names, &refs).unwrap();
        assert_eq!(x.handoffs.len(), 1);
        assert_eq!(x.handoffs[0].name, "w");
        // x is an external input to both kernels (no aliasing).
        let x0 = x.info(0, "x").unwrap();
        let x1 = x.info(1, "x").unwrap();
        assert!(x0.external && x1.external);
        assert!(!x.cross_compatible(0, x0, 1, x1));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut a = Module::default();
        a.declare("h", vec![4], TensorKind::Output);
        let mut b = Module::default();
        b.declare("h", vec![5], TensorKind::Input);
        let names = vec!["a".to_string(), "b".to_string()];
        let err = CrossLiveness::analyze(&names, &[&a, &b]).unwrap_err();
        assert!(err.contains("shape mismatch"), "{err}");
    }
}
