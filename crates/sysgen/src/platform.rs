//! First-class target platforms: the portable replacement for the
//! ZCU106 assumption that used to be smeared across the layers.
//!
//! A [`Platform`] bundles everything a compilation needs to know about
//! one deployment target:
//!
//! * the programmable-logic resources ([`BoardSpec`]) that bound
//!   Eq. (3) — `[H]·k + [M]·m ≤ [A]`,
//! * the host CPU ([`HostCpuModel`]) that runs the generated main loop
//!   and the software reference (the cycle coefficients `zynq::arm`
//!   consumes),
//! * the host↔PL DMA fabric ([`DmaSpec`]) that the transfer model and
//!   the full-system simulator charge per burst,
//! * the **achievable fabric-clock ladder**: the synthesis clocks this
//!   part realistically closes timing at, plus the default the paper
//!   flow uses.
//!
//! [`Platform::catalog`] ships five real boards, from the small
//! Pynq-Z2 (Zynq-7020) up to an Alveo U250 datacenter card. The
//! ZCU106 entry reproduces the paper's calibration exactly — its
//! board, host and DMA numbers are byte-for-byte the constants the
//! pre-platform code hardcoded, so ZCU106 results are bit-identical
//! across the refactor.

use crate::board::BoardSpec;
use serde::{Deserialize, Serialize};

/// Host CPU description: clock plus average retired-cycle costs per
/// dynamic operation (the coefficients of the software cost model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostCpuModel {
    pub name: String,
    /// Core clock in Hz.
    pub hz: f64,
    pub cycles_per_load: f64,
    pub cycles_per_store: f64,
    pub cycles_per_flop: f64,
    /// Loop bookkeeping per innermost iteration.
    pub cycles_per_iter: f64,
    /// Integer multiply in address computation (flat-index code only).
    pub cycles_per_addr_mul: f64,
    pub cycles_per_addr_add: f64,
}

impl HostCpuModel {
    /// The calibrated Cortex-A53 of the Zynq UltraScale+ boards — the
    /// paper's host, anchored so the ~177 kFLOP Inverse Helmholtz
    /// element lands at ~2 ms (Figure 10).
    pub fn cortex_a53(hz: f64) -> HostCpuModel {
        HostCpuModel {
            name: "Cortex-A53".into(),
            hz,
            cycles_per_load: 8.0,
            cycles_per_store: 8.0,
            cycles_per_flop: 3.0,
            cycles_per_iter: 4.0,
            cycles_per_addr_mul: 0.75,
            cycles_per_addr_add: 0.35,
        }
    }

    /// The Cortex-A9 of the Zynq-7000 boards: VFP double precision is
    /// slower per FLOP and the smaller L1 costs more per access.
    pub fn cortex_a9(hz: f64) -> HostCpuModel {
        HostCpuModel {
            name: "Cortex-A9".into(),
            hz,
            cycles_per_load: 10.0,
            cycles_per_store: 10.0,
            cycles_per_flop: 4.0,
            cycles_per_iter: 4.0,
            cycles_per_addr_mul: 1.0,
            cycles_per_addr_add: 0.5,
        }
    }

    /// A datacenter x86 host (Alveo-class cards): wide out-of-order
    /// cores retire FP multiply–adds well under one cycle per FLOP.
    pub fn xeon(hz: f64) -> HostCpuModel {
        HostCpuModel {
            name: "Xeon".into(),
            hz,
            cycles_per_load: 4.0,
            cycles_per_store: 4.0,
            cycles_per_flop: 0.5,
            cycles_per_iter: 1.0,
            cycles_per_addr_mul: 0.3,
            cycles_per_addr_add: 0.15,
        }
    }
}

/// Host↔PL DMA fabric description: effective bandwidth and the fixed
/// setup latency per transfer burst.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaSpec {
    pub bytes_per_sec: f64,
    pub setup_s: f64,
}

/// One deployment target: PL resources, host CPU, DMA fabric and the
/// achievable fabric-clock ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Catalog key (`--board` accepts it case-insensitively).
    pub id: String,
    /// Programmable-logic resources — the `[A]` vector of Eq. (3).
    pub board: BoardSpec,
    pub host: HostCpuModel,
    pub dma: DmaSpec,
    /// Fabric clocks (MHz) this part closes timing at, ascending.
    pub clock_ladder_mhz: Vec<f64>,
    /// The clock a plain compile synthesizes at.
    pub default_clock_mhz: f64,
}

impl Platform {
    /// The Xilinx Zynq UltraScale+ ZCU106 (xczu7ev-ffvc1156-2) used in
    /// the paper: ~230K LUTs, ~460K FFs, 312 BRAM36, 1,728 DSPs; quad
    /// Cortex-A53 at 1.2 GHz; kernels synthesized at 200 MHz. The DMA
    /// bandwidth is calibrated to the transfer fraction implied by
    /// Figures 9/10 (~0.7 GB/s effective on the HP ports).
    pub fn zcu106() -> Platform {
        Platform {
            id: "zcu106".into(),
            board: BoardSpec {
                name: "ZCU106 (xczu7ev)".into(),
                luts: 230_400,
                ffs: 460_800,
                dsps: 1_728,
                brams: 312,
            },
            host: HostCpuModel::cortex_a53(1.2e9),
            dma: DmaSpec {
                bytes_per_sec: 0.70e9,
                setup_s: 4.0e-6,
            },
            clock_ladder_mhz: vec![100.0, 150.0, 200.0, 300.0],
            default_clock_mhz: 200.0,
        }
    }

    /// The Zynq UltraScale+ ZCU102 (xczu9eg-ffvb1156-2): the larger
    /// sibling of the ZCU106 with the same A53 host complex and HP
    /// ports.
    pub fn zcu102() -> Platform {
        Platform {
            id: "zcu102".into(),
            board: BoardSpec {
                name: "ZCU102 (xczu9eg)".into(),
                luts: 274_080,
                ffs: 548_160,
                dsps: 2_520,
                brams: 912,
            },
            host: HostCpuModel::cortex_a53(1.2e9),
            dma: DmaSpec {
                bytes_per_sec: 0.70e9,
                setup_s: 4.0e-6,
            },
            clock_ladder_mhz: vec![100.0, 150.0, 200.0, 300.0],
            default_clock_mhz: 200.0,
        }
    }

    /// The Zynq-7000 ZC706 (xc7z045-ffg900-2): 28 nm fabric (slower
    /// clock ladder), dual Cortex-A9 at 800 MHz, slower HP-port DMA.
    pub fn zc706() -> Platform {
        Platform {
            id: "zc706".into(),
            board: BoardSpec {
                name: "ZC706 (xc7z045)".into(),
                luts: 218_600,
                ffs: 437_200,
                dsps: 900,
                brams: 545,
            },
            host: HostCpuModel::cortex_a9(800.0e6),
            dma: DmaSpec {
                bytes_per_sec: 0.40e9,
                setup_s: 6.0e-6,
            },
            clock_ladder_mhz: vec![100.0, 150.0, 200.0],
            default_clock_mhz: 150.0,
        }
    }

    /// The Pynq-Z2 (xc7z020-clg400-1): the small-board scenario —
    /// designs that fit the ZCU106 at k = 16 must degrade to small
    /// replications here or report infeasible.
    pub fn pynq_z2() -> Platform {
        Platform {
            id: "pynq-z2".into(),
            board: BoardSpec {
                name: "Pynq-Z2 (xc7z020)".into(),
                luts: 53_200,
                ffs: 106_400,
                dsps: 220,
                brams: 140,
            },
            host: HostCpuModel::cortex_a9(650.0e6),
            dma: DmaSpec {
                bytes_per_sec: 0.30e9,
                setup_s: 6.0e-6,
            },
            clock_ladder_mhz: vec![50.0, 100.0, 142.0],
            default_clock_mhz: 100.0,
        }
    }

    /// The Alveo U250 (xcu250-figd2104-2L): a datacenter card behind
    /// PCIe — vastly more fabric, but each DMA burst pays the driver
    /// round-trip.
    pub fn u250() -> Platform {
        Platform {
            id: "u250".into(),
            board: BoardSpec {
                name: "Alveo U250 (xcu250)".into(),
                luts: 1_728_000,
                ffs: 3_456_000,
                dsps: 12_288,
                brams: 2_688,
            },
            host: HostCpuModel::xeon(2.5e9),
            dma: DmaSpec {
                bytes_per_sec: 12.0e9,
                setup_s: 15.0e-6,
            },
            clock_ladder_mhz: vec![150.0, 200.0, 300.0],
            default_clock_mhz: 300.0,
        }
    }

    /// Every platform this build knows, small to large.
    pub fn catalog() -> Vec<Platform> {
        vec![
            Platform::pynq_z2(),
            Platform::zc706(),
            Platform::zcu106(),
            Platform::zcu102(),
            Platform::u250(),
        ]
    }

    /// Look a platform up by id or alias, case-insensitively and
    /// ignoring `-`/`_` (so `ZCU106`, `zcu-106`, `xczu7ev` all work).
    pub fn by_name(name: &str) -> Option<Platform> {
        let norm = |s: &str| -> String {
            s.chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_ascii_lowercase()
        };
        let want = norm(name);
        if want.is_empty() {
            return None;
        }
        Platform::catalog().into_iter().find(|p| {
            norm(&p.id) == want
                || norm(&p.board.name) == want
                || aliases(&p.id).iter().any(|a| norm(a) == want)
        })
    }

    /// Default fabric clock in Hz.
    pub fn fabric_hz(&self) -> f64 {
        self.default_clock_mhz * 1e6
    }

    /// Whether `mhz` is on this platform's achievable ladder.
    pub fn supports_clock(&self, mhz: f64) -> bool {
        self.clock_ladder_mhz
            .iter()
            .any(|&c| (c - mhz).abs() < 1e-6)
    }
}

fn aliases(id: &str) -> &'static [&'static str] {
    match id {
        "zcu106" => &["xczu7ev"],
        "zcu102" => &["xczu9eg"],
        "zc706" => &["xc7z045", "z7045"],
        "pynq-z2" => &["pynq", "xc7z020", "z7020"],
        "u250" => &["alveo-u250", "xcu250", "alveo"],
        _ => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcu106_matches_paper_calibration() {
        let p = Platform::zcu106();
        assert_eq!(p.board.brams, 312);
        // Paper: 11,318 LUT = 4.9%, 9,523 FF = 2.1%, 15 DSP = 0.9%.
        assert!((p.board.lut_pct(11_318) - 4.9).abs() < 0.05);
        assert!((p.board.ff_pct(9_523) - 2.1).abs() < 0.05);
        assert!((p.board.dsp_pct(15) - 0.9).abs() < 0.05);
        // Clock ratio: the A53 is 6× faster than the 200 MHz fabric.
        assert!((p.host.hz / p.fabric_hz() - 6.0).abs() < 1e-9);
        assert!(p.supports_clock(200.0));
        assert_eq!(p.default_clock_mhz, 200.0);
        // The paper's DMA calibration.
        assert_eq!(p.dma.bytes_per_sec, 0.70e9);
        assert_eq!(p.dma.setup_s, 4.0e-6);
    }

    #[test]
    fn catalog_is_ordered_and_unique() {
        let cat = Platform::catalog();
        assert!(cat.len() >= 4, "ISSUE requires >= 4 platforms");
        for w in cat.windows(2) {
            assert!(
                w[0].board.luts <= w[1].board.luts,
                "catalog sorted small to large"
            );
            assert_ne!(w[0].id, w[1].id);
        }
        for p in &cat {
            assert!(!p.clock_ladder_mhz.is_empty());
            assert!(
                p.supports_clock(p.default_clock_mhz),
                "{}: default clock must be on the ladder",
                p.id
            );
            let mut sorted = p.clock_ladder_mhz.clone();
            sorted.sort_by(f64::total_cmp);
            assert_eq!(sorted, p.clock_ladder_mhz, "{}: ladder ascending", p.id);
        }
    }

    #[test]
    fn lookup_accepts_aliases_and_case() {
        assert_eq!(Platform::by_name("ZCU106").unwrap().id, "zcu106");
        assert_eq!(Platform::by_name("xczu7ev").unwrap().id, "zcu106");
        assert_eq!(Platform::by_name("pynq").unwrap().id, "pynq-z2");
        assert_eq!(Platform::by_name("PYNQ_Z2").unwrap().id, "pynq-z2");
        assert_eq!(Platform::by_name("alveo").unwrap().id, "u250");
        assert_eq!(Platform::by_name("ZCU106 (xczu7ev)").unwrap().id, "zcu106");
        assert!(Platform::by_name("de10-nano").is_none());
        // No substring matching: partial or empty names never resolve.
        assert!(Platform::by_name("").is_none());
        assert!(Platform::by_name("z").is_none());
        assert!(Platform::by_name("-").is_none());
    }

    #[test]
    fn small_board_is_strictly_smaller() {
        let small = Platform::pynq_z2().board;
        let big = Platform::zcu106().board;
        assert!(small.luts < big.luts);
        assert!(small.brams < big.brams);
        assert!(small.dsps < big.dsps);
    }
}
