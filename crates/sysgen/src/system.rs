//! Replicated system construction and Eq. (3).

use crate::board::BoardSpec;
use crate::host::HostProgram;
use crate::platform::Platform;
use hls::HlsReport;
use mnemosyne::MemorySubsystem;
use serde::{Deserialize, Serialize};

/// A replication choice: `k` accelerators and `m` PLM systems with
/// `m = 2^j · k` (the paper's power-of-two constraint keeps the steering
/// logic trivial).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    pub k: usize,
    pub m: usize,
}

impl SystemConfig {
    /// Executions per accelerator per main-loop round.
    pub fn batch(&self) -> usize {
        self.m / self.k
    }

    /// Validity of the k/m relation.
    pub fn valid(&self) -> bool {
        self.k >= 1
            && self.m >= self.k
            && self.m.is_multiple_of(self.k)
            && self.batch().is_power_of_two()
    }
}

/// Integration-logic resource model, calibrated against Table I: the
/// fixed infrastructure (AXI DMA, AXI-lite peripheral, timers, reset/
/// clock) plus per-replica steering (data mux/demux, start broadcast,
/// done collection, batch counter slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegrationModel {
    pub base_lut: usize,
    pub base_ff: usize,
    pub base_bram: usize,
    pub glue_lut_per_kernel: usize,
    pub glue_ff_per_kernel: usize,
    /// Extra steering per PLM beyond the first batch (k < m).
    pub glue_lut_per_extra_plm: usize,
}

impl Default for IntegrationModel {
    fn default() -> Self {
        IntegrationModel {
            base_lut: 6_800,
            base_ff: 6_100,
            base_bram: 8,
            glue_lut_per_kernel: 1_480,
            glue_ff_per_kernel: 60,
            glue_lut_per_extra_plm: 220,
        }
    }
}

/// A fully elaborated system instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemDesign {
    pub config: SystemConfig,
    /// The target the design was built for (board budget, DMA fabric,
    /// host CPU, clock ladder).
    pub platform: Platform,
    /// Per-kernel HLS report.
    pub kernel: HlsReport,
    /// Per-kernel memory subsystem.
    pub memory: MemorySubsystem,
    /// Totals including integration logic.
    pub luts: usize,
    pub ffs: usize,
    pub dsps: usize,
    pub brams: usize,
    pub host: HostProgram,
}

impl SystemDesign {
    /// Build a system, checking Eq. (3) against the platform's board.
    /// Returns `None` when the configuration does not fit.
    pub fn build(
        platform: &Platform,
        kernel: &HlsReport,
        memory: &MemorySubsystem,
        cfg: SystemConfig,
        host: HostProgram,
    ) -> Option<SystemDesign> {
        assert!(cfg.valid(), "invalid (k, m) = ({}, {})", cfg.k, cfg.m);
        let board = &platform.board;
        let im = IntegrationModel::default();
        let luts = im.base_lut
            + cfg.k * (kernel.luts + im.glue_lut_per_kernel)
            + cfg.m * memory.luts
            + (cfg.m - cfg.k) * im.glue_lut_per_extra_plm;
        let ffs = im.base_ff + cfg.k * (kernel.ffs + im.glue_ff_per_kernel) + cfg.m * memory.ffs;
        let dsps = cfg.k * kernel.dsps;
        let brams = im.base_bram + cfg.k * kernel.brams + cfg.m * memory.brams;
        let fits =
            luts <= board.luts && ffs <= board.ffs && dsps <= board.dsps && brams <= board.brams;
        if !fits {
            return None;
        }
        Some(SystemDesign {
            config: cfg,
            platform: platform.clone(),
            kernel: kernel.clone(),
            memory: memory.clone(),
            luts,
            ffs,
            dsps,
            brams,
            host,
        })
    }

    /// The board budget the design fits.
    pub fn board(&self) -> &BoardSpec {
        &self.platform.board
    }

    /// Eq. (3) slack per resource: `[A] - ([H]·k + [M]·m)`.
    pub fn slack(&self) -> (isize, isize, isize, isize) {
        let board = self.board();
        (
            board.luts as isize - self.luts as isize,
            board.ffs as isize - self.ffs as isize,
            board.dsps as isize - self.dsps as isize,
            board.brams as isize - self.brams as isize,
        )
    }

    /// The largest resource-utilization fraction across LUT/FF/DSP/BRAM
    /// — the "fit" axis of the portfolio Pareto frontier.
    pub fn utilization(&self) -> f64 {
        let board = self.board();
        [
            self.luts as f64 / board.luts as f64,
            self.ffs as f64 / board.ffs as f64,
            self.dsps as f64 / board.dsps as f64,
            self.brams as f64 / board.brams as f64,
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }
}

/// All feasible `(k, m)` pairs with `k ∈ {1, 2, 4, ...}` and
/// `m = 2^j · k`, by checking Eq. (3) for each.
pub fn enumerate_configs(
    platform: &Platform,
    kernel: &HlsReport,
    memory: &MemorySubsystem,
) -> Vec<SystemConfig> {
    let mut out = Vec::new();
    let mut k = 1usize;
    while k <= 64 {
        let mut m = k;
        while m <= 64 {
            let cfg = SystemConfig { k, m };
            let host = HostProgram::placeholder(cfg);
            if SystemDesign::build(platform, kernel, memory, cfg, host).is_some() {
                out.push(cfg);
            }
            m *= 2;
        }
        k *= 2;
    }
    out
}

/// The largest feasible `k = m` (power of two) — the configuration the
/// paper uses for its main results.
pub fn max_equal_config(
    platform: &Platform,
    kernel: &HlsReport,
    memory: &MemorySubsystem,
) -> Option<SystemConfig> {
    enumerate_configs(platform, kernel, memory)
        .into_iter()
        .filter(|c| c.k == c.m)
        .max_by_key(|c| c.k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemosyne::{MemoryOptions, MnemosyneConfig};

    fn kernel_report() -> HlsReport {
        HlsReport {
            kernel: "kernel_body".into(),
            clock_mhz: Platform::zcu106().default_clock_mhz,
            latency_cycles: 500_000,
            luts: 2_314,
            ffs: 2_999,
            dsps: 15,
            brams: 0,
            loops: vec![],
        }
    }

    fn memory(sharing: bool) -> MemorySubsystem {
        // The p=11 Helmholtz memory config (see mnemosyne tests).
        let mut cfg = MnemosyneConfig::default();
        let w = 1331;
        let names: [(&str, usize, bool); 10] = [
            ("S", 121, true),
            ("D", w, true),
            ("u", w, true),
            ("v", w, true),
            ("t", w, false),
            ("r", w, false),
            ("t0", w, false),
            ("t1", w, false),
            ("t2", w, false),
            ("t3", w, false),
        ];
        for (n, words, iface) in names {
            cfg.arrays.push(mnemosyne::ArraySpec {
                name: n.into(),
                words,
                interface: iface,
                read_ports: 1,
                write_ports: 1,
            });
        }
        // Interval compatibilities for the temporaries (stage order).
        let lt = [
            (4, 2, 3),
            (5, 3, 4),
            (6, 0, 1),
            (7, 1, 2),
            (8, 4, 5),
            (9, 5, 6),
        ];
        for (i, &(ai, s1, e1)) in lt.iter().enumerate() {
            for &(aj, s2, e2) in &lt[i + 1..] {
                if e1 < s2 || e2 < s1 {
                    cfg.address_space_compatible.push((ai.min(aj), ai.max(aj)));
                }
            }
        }
        mnemosyne::synthesize(
            &cfg,
            &MemoryOptions {
                sharing,
                ..Default::default()
            },
        )
    }

    #[test]
    fn config_validity() {
        assert!(SystemConfig { k: 2, m: 8 }.valid());
        assert_eq!(SystemConfig { k: 2, m: 8 }.batch(), 4);
        // The paper's constraint is on the ratio m/k (a power of two),
        // not on k itself.
        assert!(SystemConfig { k: 3, m: 6 }.valid());
        assert!(!SystemConfig { k: 4, m: 2 }.valid());
        assert!(!SystemConfig { k: 3, m: 7 }.valid());
    }

    #[test]
    fn no_sharing_fits_eight_kernels() {
        // Paper: 31 BRAM/PLM → max m = k = 8. Our model: 28 BRAM → the
        // same maximum (16 × 28 = 448 > 312).
        let b = Platform::zcu106();
        let mem = memory(false);
        assert_eq!(mem.brams, 28);
        let max = max_equal_config(&b, &kernel_report(), &mem).unwrap();
        assert_eq!((max.k, max.m), (8, 8));
    }

    #[test]
    fn sharing_fits_sixteen_kernels() {
        // Paper: 18 BRAM/PLM → max m = k = 16 (the headline result).
        let b = Platform::zcu106();
        let mem = memory(true);
        assert_eq!(mem.brams, 16);
        let max = max_equal_config(&b, &kernel_report(), &mem).unwrap();
        assert_eq!((max.k, max.m), (16, 16));
    }

    #[test]
    fn table1_lut_totals_within_ten_percent() {
        let b = Platform::zcu106();
        let mem = memory(true);
        let paper = [
            (1usize, 11_292usize),
            (2, 15_572),
            (4, 24_480),
            (8, 42_141),
            (16, 77_235),
        ];
        for (k, lut_paper) in paper {
            let cfg = SystemConfig { k, m: k };
            let d = SystemDesign::build(
                &b,
                &kernel_report(),
                &mem,
                cfg,
                HostProgram::placeholder(cfg),
            )
            .unwrap();
            let rel = (d.luts as f64 - lut_paper as f64).abs() / lut_paper as f64;
            assert!(
                rel < 0.10,
                "k={k}: model {} vs paper {lut_paper} ({:.1}% off)",
                d.luts,
                rel * 100.0
            );
        }
    }

    #[test]
    fn dsp_totals_match_paper_exactly() {
        let b = Platform::zcu106();
        let mem = memory(true);
        for k in [1usize, 2, 4, 8, 16] {
            let cfg = SystemConfig { k, m: k };
            let d = SystemDesign::build(
                &b,
                &kernel_report(),
                &mem,
                cfg,
                HostProgram::placeholder(cfg),
            )
            .unwrap();
            assert_eq!(d.dsps, 15 * k);
        }
    }

    #[test]
    fn k_less_than_m_configs_enumerate() {
        let b = Platform::zcu106();
        let mem = memory(true);
        let configs = enumerate_configs(&b, &kernel_report(), &mem);
        assert!(configs.contains(&SystemConfig { k: 1, m: 1 }));
        assert!(configs.contains(&SystemConfig { k: 2, m: 4 }));
        assert!(configs.contains(&SystemConfig { k: 4, m: 16 }));
        assert!(!configs.contains(&SystemConfig { k: 32, m: 32 }));
    }

    #[test]
    fn slack_is_nonnegative_for_built_systems() {
        let b = Platform::zcu106();
        let mem = memory(true);
        let cfg = SystemConfig { k: 16, m: 16 };
        let d = SystemDesign::build(
            &b,
            &kernel_report(),
            &mem,
            cfg,
            HostProgram::placeholder(cfg),
        )
        .unwrap();
        let (l, f, ds, br) = d.slack();
        assert!(l >= 0 && f >= 0 && ds >= 0 && br >= 0);
    }

    #[test]
    fn infeasible_config_rejected() {
        let b = Platform::zcu106();
        let mem = memory(false);
        let cfg = SystemConfig { k: 16, m: 16 };
        assert!(SystemDesign::build(
            &b,
            &kernel_report(),
            &mem,
            cfg,
            HostProgram::placeholder(cfg)
        )
        .is_none());
    }
}
