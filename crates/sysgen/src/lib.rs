//! `sysgen` — parallel system generation (Section V-B) over portable
//! target platforms.
//!
//! # The `Platform` decomposition
//!
//! Every compilation targets one [`Platform`] from the catalog
//! ([`Platform::catalog`]), which decomposes the deployment target into
//! four orthogonal pieces:
//!
//! * **[`BoardSpec`]** — the programmable-logic resource vector `[A]`
//!   of Eq. (3): LUTs, FFs, DSPs, BRAM36 blocks. Nothing else; the
//!   board is pure budget.
//! * **[`HostCpuModel`]** — the CPU that runs the generated main loop
//!   and the software reference: clock plus average retired-cycle
//!   coefficients per load/store/FLOP/iteration/address-op. The
//!   `zynq::ArmCostModel` is derived from this.
//! * **[`DmaSpec`]** — the host↔PL transfer fabric: effective
//!   bandwidth and fixed per-burst setup latency, consumed by
//!   `zynq::DmaModel`.
//! * **clock ladder** — the fabric clocks the part realistically
//!   closes timing at ([`Platform::clock_ladder_mhz`]), with
//!   [`Platform::default_clock_mhz`] as the plain-compile choice. The
//!   HLS model synthesizes the kernel at the selected rung; the
//!   portfolio DSE sweeps the whole ladder.
//!
//! The ZCU106 entry carries the paper's calibration exactly: Table I's
//! base infrastructure ≈ 6.8k LUT with ≈ 4.4–4.9k LUT per added
//! replica ([`IntegrationModel`]), the in-text kernel footprint
//! (2,314 LUT / 2,999 FF / 15 DSP at 200 MHz), the 1.2 GHz quad
//! Cortex-A53 host, and the ~0.7 GB/s effective HP-port DMA implied by
//! Figures 9/10. Table I's totals reproduce within 10% for every
//! `k = m ∈ {1, 2, 4, 8, 16}` row (LUT: 11,292 / 15,572 / 24,480 /
//! 42,141 / 77,235) and the DSP column exactly (15·k).
//!
//! # System construction
//!
//! The system generator reads the HLS kernel report, the Mnemosyne
//! memory subsystem and the selected platform, and builds the
//! replicated architecture of Figure 7:
//!
//! * it solves Eq. (3) — `[H]·k + [M]·m ≤ [A]` with `m` a power-of-two
//!   multiple of `k` — against the platform's board to find feasible
//!   replication factors,
//! * it instantiates `k` accelerators and `m` PLM systems plus the
//!   integration logic: the AXI-lite peripheral that presents the `k`
//!   accelerators to the host as a single `ap_ctrl` device, the batch
//!   counter that steers accelerators across PLMs when `k < m`, and the
//!   data-steering network from the DMA to the PLM instances,
//! * it emits the host program skeleton: `Ne/m` main-loop iterations of
//!   input transfer → `m/k` start/wait rounds → output transfer.
//!
//! A request that exceeds the selected board (e.g. the ZCU106's
//! `k = m = 16` asked of a Pynq-Z2) is *not* an error at this layer:
//! [`SystemDesign::build`] returns `None`, and
//! [`max_equal_config`] degrades to the largest replication the small
//! board admits. Callers that insist on an explicit configuration get
//! a structured does-not-fit error from the flow above.

pub mod board;
pub mod host;
pub mod multi;
pub mod netlist;
pub mod platform;
pub mod system;

pub use board::BoardSpec;
pub use host::HostProgram;
pub use multi::{
    enumerate_program_configs, enumerate_program_designs, max_equal_program_config,
    MultiSystemDesign, ProgramHostProgram, ProgramSystemConfig, StageDesign,
};
pub use netlist::emit_system_verilog;
pub use platform::{DmaSpec, HostCpuModel, Platform};
pub use system::{
    enumerate_configs, max_equal_config, IntegrationModel, SystemConfig, SystemDesign,
};
