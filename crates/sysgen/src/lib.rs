//! `sysgen` — parallel system generation (Section V-B).
//!
//! The system generator reads the HLS kernel report, the Mnemosyne memory
//! subsystem and the board description, and builds the replicated
//! architecture of Figure 7:
//!
//! * it solves Eq. (3) — `[H]·k + [M]·m ≤ [A]` with `m` a power-of-two
//!   multiple of `k` — to find feasible replication factors,
//! * it instantiates `k` accelerators and `m` PLM systems plus the
//!   integration logic: the AXI-lite peripheral that presents the `k`
//!   accelerators to the host as a single `ap_ctrl` device, the batch
//!   counter that steers accelerators across PLMs when `k < m`, and the
//!   data-steering network from the DMA to the PLM instances,
//! * it emits the host program skeleton: `Ne/m` main-loop iterations of
//!   input transfer → `m/k` start/wait rounds → output transfer.
//!
//! Resource totals are calibrated against Table I of the paper (base
//! infrastructure ≈ 6.8k LUT, ≈ 4.4–4.9k LUT per added replica).

pub mod board;
pub mod host;
pub mod multi;
pub mod netlist;
pub mod system;

pub use board::BoardSpec;
pub use host::HostProgram;
pub use multi::{
    enumerate_program_configs, enumerate_program_designs, max_equal_program_config,
    MultiSystemDesign, ProgramHostProgram, ProgramSystemConfig, StageDesign,
};
pub use netlist::emit_system_verilog;
pub use system::{enumerate_configs, max_equal_config, SystemConfig, SystemDesign};
