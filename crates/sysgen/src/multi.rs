//! Multi-accelerator system construction for multi-kernel programs.
//!
//! A whole CFD time-step compiles into **one** shared-memory
//! accelerator system: every kernel of the program gets its own
//! replicated accelerator bank (`ks[i]` instances of stage `i`), all
//! banks execute against the same `m` PLM sets (which hold the merged,
//! cross-kernel-shared program memory of
//! `mnemosyne::synthesize_program`), and a single DMA engine plus
//! AXI-lite peripheral serve the union. Eq. (3) generalizes to
//!
//! ```text
//! Σ_i [H_i]·k_i  +  [M]·m  +  glue  ≤  [A]
//! ```
//!
//! with the same power-of-two batching constraint per stage
//! (`m = 2^j · k_i`). The host program runs `Ne/m` main-loop rounds:
//! transfer the *external* inputs for `m` elements, run each stage's
//! `m/k_i` start/wait batches in chain order (handoffs stay inside the
//! PLM fabric — co-located buffers make them free), then transfer the
//! external outputs back.

use crate::board::BoardSpec;
use crate::platform::Platform;
use crate::system::{IntegrationModel, SystemConfig};
use hls::HlsReport;
use mnemosyne::MemorySubsystem;
use serde::{Deserialize, Serialize};

/// Replication choice for a program: `ks[i]` accelerators for stage `i`
/// and `m` shared PLM sets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramSystemConfig {
    pub ks: Vec<usize>,
    pub m: usize,
}

impl ProgramSystemConfig {
    /// The same replication for every stage.
    pub fn uniform(k: usize, m: usize, stages: usize) -> ProgramSystemConfig {
        ProgramSystemConfig {
            ks: vec![k; stages],
            m,
        }
    }

    /// Executions per accelerator of stage `i` per main-loop round.
    pub fn batch(&self, stage: usize) -> usize {
        self.m / self.ks[stage]
    }

    /// Every stage must satisfy the paper's `m = 2^j · k` relation.
    pub fn valid(&self) -> bool {
        !self.ks.is_empty()
            && self.ks.iter().all(|&k| {
                k >= 1 && self.m >= k && self.m.is_multiple_of(k) && (self.m / k).is_power_of_two()
            })
    }

    /// The per-stage view of stage `i` (for reporting).
    pub fn stage_config(&self, stage: usize) -> SystemConfig {
        SystemConfig {
            k: self.ks[stage],
            m: self.m,
        }
    }
}

/// One kernel stage of the program system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageDesign {
    pub name: String,
    /// Accelerator instances of this stage.
    pub k: usize,
    /// Per-instance HLS report.
    pub kernel: HlsReport,
}

/// Host program for a chained multi-kernel system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramHostProgram {
    pub config: ProgramSystemConfig,
    pub stage_names: Vec<String>,
    /// External input bytes per element (host → PLM over DMA).
    pub bytes_in_per_element: usize,
    /// External output bytes per element (PLM → host over DMA).
    pub bytes_out_per_element: usize,
    /// Kernel-to-kernel handoff bytes per element — stays inside the
    /// fabric, never crosses the DMA.
    pub handoff_bytes_per_element: usize,
}

impl ProgramHostProgram {
    /// Main-loop iterations to process `elements` elements.
    pub fn rounds(&self, elements: usize) -> usize {
        elements.div_ceil(self.config.m)
    }

    /// Generate the C host-side skeleton for inspection.
    pub fn to_c(&self, elements: usize) -> String {
        let m = self.config.m;
        let mut body = String::new();
        for (i, name) in self.stage_names.iter().enumerate() {
            let k = self.config.ks[i];
            let batch = self.config.batch(i);
            body.push_str(&format!(
                "\t\tfor (int b = 0; b < {batch}; ++b) {{ /* stage '{name}' */\n\
                 \t\t\taxi_lite_write(CTRL_START_{i}, 1); /* broadcast to {k} kernels */\n\
                 \t\t\twait_for_interrupt();\n\
                 \t\t}}\n"
            ));
        }
        format!(
            "/* generated host code: {stages}-stage program, m = {m} PLM sets */\n\
             void run_simulation(const double *in, double *out) {{\n\
             \tfor (size_t i = 0; i < {rounds}; ++i) {{\n\
             \t\tdma_write(in + i * {m} * {bi} / 8, {total_in});\n\
             {body}\
             \t\t/* handoffs ({hb} B/element) stay in the PLM fabric */\n\
             \t\tdma_read(out + i * {m} * {bo} / 8, {total_out});\n\
             \t}}\n\
             }}\n",
            stages = self.stage_names.len(),
            rounds = self.rounds(elements),
            bi = self.bytes_in_per_element,
            bo = self.bytes_out_per_element,
            hb = self.handoff_bytes_per_element,
            total_in = self.bytes_in_per_element * m,
            total_out = self.bytes_out_per_element * m,
        )
    }
}

/// A fully elaborated multi-kernel system instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSystemDesign {
    pub config: ProgramSystemConfig,
    /// The target the design was built for.
    pub platform: Platform,
    pub stages: Vec<StageDesign>,
    /// The merged program memory subsystem of *one* PLM set.
    pub memory: MemorySubsystem,
    /// Totals including integration logic.
    pub luts: usize,
    pub ffs: usize,
    pub dsps: usize,
    pub brams: usize,
    pub host: ProgramHostProgram,
}

impl MultiSystemDesign {
    /// Build a program system, checking the generalized Eq. (3) over
    /// the union of all stages. Returns `None` when it does not fit.
    pub fn build(
        platform: &Platform,
        stages: &[(String, HlsReport)],
        memory: &MemorySubsystem,
        cfg: ProgramSystemConfig,
        host: ProgramHostProgram,
    ) -> Option<MultiSystemDesign> {
        assert_eq!(stages.len(), cfg.ks.len(), "one k per stage");
        assert!(cfg.valid(), "invalid program configuration {cfg:?}");
        let board = &platform.board;
        let im = IntegrationModel::default();
        let mut luts = im.base_lut + cfg.m * memory.luts;
        let mut ffs = im.base_ff + cfg.m * memory.ffs;
        let mut dsps = 0usize;
        let mut brams = im.base_bram + cfg.m * memory.brams;
        for (i, (_, hlsr)) in stages.iter().enumerate() {
            let k = cfg.ks[i];
            luts +=
                k * (hlsr.luts + im.glue_lut_per_kernel) + (cfg.m - k) * im.glue_lut_per_extra_plm;
            ffs += k * (hlsr.ffs + im.glue_ff_per_kernel);
            dsps += k * hlsr.dsps;
            brams += k * hlsr.brams;
        }
        let fits =
            luts <= board.luts && ffs <= board.ffs && dsps <= board.dsps && brams <= board.brams;
        if !fits {
            return None;
        }
        Some(MultiSystemDesign {
            stages: stages
                .iter()
                .enumerate()
                .map(|(i, (name, hlsr))| StageDesign {
                    name: name.clone(),
                    k: cfg.ks[i],
                    kernel: hlsr.clone(),
                })
                .collect(),
            config: cfg,
            platform: platform.clone(),
            memory: memory.clone(),
            luts,
            ffs,
            dsps,
            brams,
            host,
        })
    }

    /// View a single-kernel design as the equivalent one-stage program
    /// system: same replication, same resource totals, same external
    /// byte interface, no handoffs. This is how the single-kernel flow
    /// plugs into program-level consumers (the batch-stream runtime, the
    /// service-throughput DSE objective).
    pub fn from_single(d: &crate::system::SystemDesign) -> MultiSystemDesign {
        let cfg = ProgramSystemConfig {
            ks: vec![d.config.k],
            m: d.config.m,
        };
        MultiSystemDesign {
            config: cfg.clone(),
            platform: d.platform.clone(),
            stages: vec![StageDesign {
                name: d.kernel.kernel.clone(),
                k: d.config.k,
                kernel: d.kernel.clone(),
            }],
            memory: d.memory.clone(),
            luts: d.luts,
            ffs: d.ffs,
            dsps: d.dsps,
            brams: d.brams,
            host: ProgramHostProgram {
                stage_names: vec![d.kernel.kernel.clone()],
                config: cfg,
                bytes_in_per_element: d.host.bytes_in_per_element,
                bytes_out_per_element: d.host.bytes_out_per_element,
                handoff_bytes_per_element: 0,
            },
        }
    }

    /// The board budget the design fits.
    pub fn board(&self) -> &BoardSpec {
        &self.platform.board
    }

    /// Slack per resource: `[A] - (Σ[H_i]·k_i + [M]·m)`.
    pub fn slack(&self) -> (isize, isize, isize, isize) {
        let board = self.board();
        (
            board.luts as isize - self.luts as isize,
            board.ffs as isize - self.ffs as isize,
            board.dsps as isize - self.dsps as isize,
            board.brams as isize - self.brams as isize,
        )
    }

    /// The largest resource-utilization fraction across LUT/FF/DSP/BRAM.
    pub fn utilization(&self) -> f64 {
        let board = self.board();
        [
            self.luts as f64 / board.luts as f64,
            self.ffs as f64 / board.ffs as f64,
            self.dsps as f64 / board.dsps as f64,
            self.brams as f64 / board.brams as f64,
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }

    /// Per-round kernel-execution seconds summed over the chained
    /// stages (each stage runs `m/k_i` serial batches).
    pub fn chain_exec_seconds(&self) -> f64 {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, s)| self.config.batch(i) as f64 * s.kernel.latency_seconds())
            .sum()
    }
}

/// All feasible **uniform** program designs (`k_i = k` for all stages,
/// `m = 2^j · k`), fully built with placeholder hosts — callers that
/// only need the configurations can project them out, callers that
/// report resources get them without rebuilding Eq. (3).
pub fn enumerate_program_designs(
    platform: &Platform,
    stages: &[(String, HlsReport)],
    memory: &MemorySubsystem,
) -> Vec<MultiSystemDesign> {
    let mut out = Vec::new();
    let mut k = 1usize;
    while k <= 64 {
        let mut m = k;
        while m <= 64 {
            let cfg = ProgramSystemConfig::uniform(k, m, stages.len());
            let host = ProgramHostProgram::placeholder(cfg.clone(), stages);
            if let Some(d) = MultiSystemDesign::build(platform, stages, memory, cfg, host) {
                out.push(d);
            }
            m *= 2;
        }
        k *= 2;
    }
    out
}

/// All feasible **uniform** program configurations.
pub fn enumerate_program_configs(
    platform: &Platform,
    stages: &[(String, HlsReport)],
    memory: &MemorySubsystem,
) -> Vec<ProgramSystemConfig> {
    enumerate_program_designs(platform, stages, memory)
        .into_iter()
        .map(|d| d.config)
        .collect()
}

/// The largest feasible uniform `k = m` program configuration.
pub fn max_equal_program_config(
    platform: &Platform,
    stages: &[(String, HlsReport)],
    memory: &MemorySubsystem,
) -> Option<ProgramSystemConfig> {
    enumerate_program_configs(platform, stages, memory)
        .into_iter()
        .filter(|c| c.ks.iter().all(|&k| k == c.m))
        .max_by_key(|c| c.m)
}

impl ProgramHostProgram {
    /// A placeholder for feasibility enumeration (no transfer sizes).
    pub fn placeholder(
        config: ProgramSystemConfig,
        stages: &[(String, HlsReport)],
    ) -> ProgramHostProgram {
        ProgramHostProgram {
            stage_names: stages.iter().map(|(n, _)| n.clone()).collect(),
            config,
            bytes_in_per_element: 0,
            bytes_out_per_element: 0,
            handoff_bytes_per_element: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostProgram;
    use crate::system::SystemDesign;

    fn report(latency: u64, luts: usize) -> HlsReport {
        HlsReport {
            kernel: "kernel_body".into(),
            clock_mhz: Platform::zcu106().default_clock_mhz,
            latency_cycles: latency,
            luts,
            ffs: 2_999,
            dsps: 15,
            brams: 0,
            loops: vec![],
        }
    }

    fn memory() -> MemorySubsystem {
        MemorySubsystem {
            units: vec![],
            brams: 16,
            luts: 450,
            ffs: 250,
        }
    }

    #[test]
    fn config_validity_per_stage() {
        assert!(ProgramSystemConfig::uniform(2, 4, 3).valid());
        assert!(ProgramSystemConfig {
            ks: vec![1, 2, 4],
            m: 4
        }
        .valid());
        assert!(!ProgramSystemConfig {
            ks: vec![3, 2],
            m: 4
        }
        .valid());
        assert!(!ProgramSystemConfig { ks: vec![], m: 1 }.valid());
    }

    #[test]
    fn single_stage_matches_system_design_totals() {
        // The degenerate one-kernel program must cost exactly what the
        // single-kernel Eq. (3) computes.
        let board = Platform::zcu106();
        let hlsr = report(500_000, 2_314);
        let mem = memory();
        let cfg = SystemConfig { k: 4, m: 4 };
        let single =
            SystemDesign::build(&board, &hlsr, &mem, cfg, HostProgram::placeholder(cfg)).unwrap();
        let pcfg = ProgramSystemConfig::uniform(4, 4, 1);
        let stages = vec![("main".to_string(), hlsr)];
        let multi = MultiSystemDesign::build(
            &board,
            &stages,
            &mem,
            pcfg.clone(),
            ProgramHostProgram::placeholder(pcfg.clone(), &stages),
        )
        .unwrap();
        assert_eq!(
            (multi.luts, multi.ffs, multi.dsps, multi.brams),
            (single.luts, single.ffs, single.dsps, single.brams)
        );
    }

    #[test]
    fn union_budget_rejects_what_stages_accept_alone() {
        let board = Platform::zcu106();
        let hlsr = report(500_000, 2_314);
        // One kernel with its own 16-BRAM PLM set fits at k = m = 16;
        // the three-kernel program's merged PLM set (36 BRAMs even
        // after cross-kernel sharing) blows the shared BRAM budget at
        // the same replication.
        let one = ProgramSystemConfig::uniform(16, 16, 1);
        let stages1 = vec![("a".to_string(), hlsr.clone())];
        assert!(MultiSystemDesign::build(
            &board,
            &stages1,
            &memory(),
            one.clone(),
            ProgramHostProgram::placeholder(one.clone(), &stages1)
        )
        .is_some());
        let merged = MemorySubsystem {
            units: vec![],
            brams: 36,
            luts: 1_200,
            ffs: 700,
        };
        let three = ProgramSystemConfig::uniform(16, 16, 3);
        let stages3: Vec<(String, HlsReport)> = ["a", "b", "c"]
            .iter()
            .map(|n| (n.to_string(), hlsr.clone()))
            .collect();
        assert!(MultiSystemDesign::build(
            &board,
            &stages3,
            &merged,
            three.clone(),
            ProgramHostProgram::placeholder(three.clone(), &stages3)
        )
        .is_none());
        let max = max_equal_program_config(&board, &stages3, &merged).unwrap();
        assert!(max.m < 16, "{max:?}");
    }

    #[test]
    fn per_stage_replication_and_chain_latency() {
        let board = Platform::zcu106();
        let fast = report(100_000, 2_000);
        let slow = report(400_000, 2_500);
        let mem = memory();
        let stages = vec![("fast".to_string(), fast), ("slow".to_string(), slow)];
        // Give the slow stage 4 replicas, the fast one 1 — batches 4 / 1.
        let cfg = ProgramSystemConfig {
            ks: vec![1, 4],
            m: 4,
        };
        let d = MultiSystemDesign::build(
            &board,
            &stages,
            &mem,
            cfg.clone(),
            ProgramHostProgram::placeholder(cfg.clone(), &stages),
        )
        .unwrap();
        assert_eq!(d.config.batch(0), 4);
        assert_eq!(d.config.batch(1), 1);
        // Chain exec = 4×fast + 1×slow per round.
        let hz = Platform::zcu106().fabric_hz();
        let want = 4.0 * 100_000.0 / hz + 400_000.0 / hz;
        assert!((d.chain_exec_seconds() - want).abs() < 1e-12);
        let (l, f, ds, br) = d.slack();
        assert!(l >= 0 && f >= 0 && ds >= 0 && br >= 0);
    }

    #[test]
    fn from_single_preserves_totals_and_interface() {
        let platform = Platform::zcu106();
        let hlsr = report(500_000, 2_314);
        let mem = memory();
        let cfg = SystemConfig { k: 2, m: 4 };
        let host = HostProgram {
            config: cfg,
            bytes_in_per_element: 800,
            bytes_out_per_element: 400,
        };
        let d = SystemDesign::build(&platform, &hlsr, &mem, cfg, host).unwrap();
        let m = MultiSystemDesign::from_single(&d);
        assert_eq!(
            (m.luts, m.ffs, m.dsps, m.brams),
            (d.luts, d.ffs, d.dsps, d.brams)
        );
        assert_eq!(m.config.ks, vec![2]);
        assert_eq!(m.config.m, 4);
        assert_eq!(m.host.bytes_in_per_element, 800);
        assert_eq!(m.host.bytes_out_per_element, 400);
        assert_eq!(m.host.handoff_bytes_per_element, 0);
        assert_eq!(m.stages.len(), 1);
    }

    #[test]
    fn host_skeleton_mentions_every_stage() {
        let cfg = ProgramSystemConfig {
            ks: vec![2, 1],
            m: 4,
        };
        let host = ProgramHostProgram {
            config: cfg,
            stage_names: vec!["interp".into(), "helm".into()],
            bytes_in_per_element: 800,
            bytes_out_per_element: 400,
            handoff_bytes_per_element: 512,
        };
        let c = host.to_c(100);
        assert!(c.contains("stage 'interp'"));
        assert!(c.contains("stage 'helm'"));
        assert!(c.contains("broadcast to 2 kernels"));
        assert!(c.contains("512 B/element"));
        assert_eq!(host.rounds(100), 25);
    }
}
