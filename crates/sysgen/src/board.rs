//! FPGA board descriptions: the programmable-logic resource vector.
//!
//! A `BoardSpec` is the `[A]` side of Eq. (3) and nothing else. The
//! host CPU, DMA fabric and clock ladder that used to live here belong
//! to the surrounding [`Platform`](crate::platform::Platform) — boards
//! are looked up through the platform catalog, never constructed ad
//! hoc.

use serde::{Deserialize, Serialize};

/// Programmable-logic resources of a target device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoardSpec {
    pub name: String,
    pub luts: usize,
    pub ffs: usize,
    pub dsps: usize,
    pub brams: usize,
}

impl BoardSpec {
    /// Percentage of the board's LUTs.
    pub fn lut_pct(&self, used: usize) -> f64 {
        100.0 * used as f64 / self.luts as f64
    }

    /// Percentage of the board's FFs.
    pub fn ff_pct(&self, used: usize) -> f64 {
        100.0 * used as f64 / self.ffs as f64
    }

    /// Percentage of the board's DSPs.
    pub fn dsp_pct(&self, used: usize) -> f64 {
        100.0 * used as f64 / self.dsps as f64
    }

    /// Percentage of the board's BRAM36 blocks.
    pub fn bram_pct(&self, used: usize) -> f64 {
        100.0 * used as f64 / self.brams as f64
    }
}
