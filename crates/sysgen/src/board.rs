//! FPGA board descriptions.

use serde::{Deserialize, Serialize};

/// Programmable-logic resources of a target device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoardSpec {
    pub name: String,
    pub luts: usize,
    pub ffs: usize,
    pub dsps: usize,
    pub brams: usize,
    /// Host CPU clock (Hz) — the ARM Cortex-A53 on Zynq boards.
    pub cpu_hz: f64,
    /// Fabric clock for the accelerators (Hz).
    pub fabric_hz: f64,
    /// Effective host↔PL DMA bandwidth (bytes/second).
    pub dma_bytes_per_sec: f64,
    /// Fixed DMA setup latency per transfer burst (seconds).
    pub dma_setup_s: f64,
}

impl BoardSpec {
    /// The Xilinx Zynq UltraScale+ ZCU106 (xczu7ev-ffvc1156-2) used in
    /// the paper: ~230K LUTs, ~460K FFs, 312 BRAM36, 1,728 DSPs; quad
    /// Cortex-A53 at 1.2 GHz; kernels synthesized at 200 MHz. The DMA
    /// bandwidth is calibrated to the transfer fraction implied by
    /// Figures 9/10 (~0.7 GB/s effective on the HP ports).
    pub fn zcu106() -> BoardSpec {
        BoardSpec {
            name: "ZCU106 (xczu7ev)".into(),
            luts: 230_400,
            ffs: 460_800,
            dsps: 1_728,
            brams: 312,
            cpu_hz: 1.2e9,
            fabric_hz: 200.0e6,
            dma_bytes_per_sec: 0.70e9,
            dma_setup_s: 4.0e-6,
        }
    }

    /// Percentage of the board's LUTs.
    pub fn lut_pct(&self, used: usize) -> f64 {
        100.0 * used as f64 / self.luts as f64
    }

    /// Percentage of the board's FFs.
    pub fn ff_pct(&self, used: usize) -> f64 {
        100.0 * used as f64 / self.ffs as f64
    }

    /// Percentage of the board's DSPs.
    pub fn dsp_pct(&self, used: usize) -> f64 {
        100.0 * used as f64 / self.dsps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcu106_matches_paper_figures() {
        let b = BoardSpec::zcu106();
        assert_eq!(b.brams, 312);
        // Paper: 11,318 LUT = 4.9%, 9,523 FF = 2.1%, 15 DSP = 0.9%.
        assert!((b.lut_pct(11_318) - 4.9).abs() < 0.05);
        assert!((b.ff_pct(9_523) - 2.1).abs() < 0.05);
        assert!((b.dsp_pct(15) - 0.9).abs() < 0.05);
        // Clock ratio: CPU is 6× faster than the fabric.
        assert!((b.cpu_hz / b.fabric_hz - 6.0).abs() < 1e-9);
    }
}
