//! Host-side program description (Section V-B).
//!
//! The generated host code runs the accelerator for all `Ne` elements of
//! the CFD simulation in `Ne/m` main-loop iterations: transfer `m`
//! elements' inputs to power-of-two aligned PLM addresses, run `m/k`
//! start/interrupt rounds, transfer `m` outputs back. This structure is
//! what the `zynq` full-system simulator executes.

use crate::system::SystemConfig;
use serde::{Deserialize, Serialize};

/// One step of the host main loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostStep {
    /// DMA `bytes` from DRAM into `count` PLM systems.
    TransferIn { bytes: usize, count: usize },
    /// Write the start command; `k` accelerators execute one batch.
    StartRound,
    /// Wait for the done interrupt of the round.
    WaitDone,
    /// DMA `bytes` of outputs back to DRAM.
    TransferOut { bytes: usize, count: usize },
}

/// The host program skeleton for a system configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostProgram {
    pub config: SystemConfig,
    /// Input bytes per element (Σ input arrays × 8).
    pub bytes_in_per_element: usize,
    /// Output bytes per element.
    pub bytes_out_per_element: usize,
}

impl HostProgram {
    /// Build from the kernel's parameter list.
    pub fn from_kernel(kernel: &cgen::CKernel, config: SystemConfig) -> HostProgram {
        let bytes_in: usize = kernel
            .params
            .iter()
            .filter(|p| p.role == cgen::ParamRole::Input)
            .map(|p| p.words * 8)
            .sum();
        let bytes_out: usize = kernel
            .params
            .iter()
            .filter(|p| p.role == cgen::ParamRole::Output)
            .map(|p| p.words * 8)
            .sum();
        HostProgram {
            config,
            bytes_in_per_element: bytes_in,
            bytes_out_per_element: bytes_out,
        }
    }

    /// A placeholder for feasibility enumeration (no transfer sizes).
    pub fn placeholder(config: SystemConfig) -> HostProgram {
        HostProgram {
            config,
            bytes_in_per_element: 0,
            bytes_out_per_element: 0,
        }
    }

    /// Main-loop iterations to process `elements` elements (the final
    /// partial batch still costs a full round).
    pub fn rounds(&self, elements: usize) -> usize {
        elements.div_ceil(self.config.m)
    }

    /// The step sequence of one main-loop iteration.
    pub fn round_steps(&self) -> Vec<HostStep> {
        let mut steps = vec![HostStep::TransferIn {
            bytes: self.bytes_in_per_element * self.config.m,
            count: self.config.m,
        }];
        for _ in 0..self.config.batch() {
            steps.push(HostStep::StartRound);
            steps.push(HostStep::WaitDone);
        }
        steps.push(HostStep::TransferOut {
            bytes: self.bytes_out_per_element * self.config.m,
            count: self.config.m,
        });
        steps
    }

    /// Generate the C host-side source skeleton (for inspection; the
    /// simulator consumes the structured form).
    pub fn to_c(&self, elements: usize) -> String {
        let m = self.config.m;
        let k = self.config.k;
        format!(
            "/* generated host code: {k} accelerators, {m} PLM systems */\n\
             void run_simulation(const double *in, double *out) {{\n\
             \tfor (size_t i = 0; i < {rounds}; ++i) {{\n\
             \t\tdma_write(in + i * {m} * {bi} / 8, {total_in});\n\
             \t\tfor (int b = 0; b < {batch}; ++b) {{\n\
             \t\t\taxi_lite_write(CTRL_START, 1); /* broadcast to {k} kernels */\n\
             \t\t\twait_for_interrupt();\n\
             \t\t}}\n\
             \t\tdma_read(out + i * {m} * {bo} / 8, {total_out});\n\
             \t}}\n\
             }}\n",
            rounds = self.rounds(elements),
            batch = self.config.batch(),
            bi = self.bytes_in_per_element,
            bo = self.bytes_out_per_element,
            total_in = self.bytes_in_per_element * m,
            total_out = self.bytes_out_per_element * m,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(k: usize, m: usize) -> HostProgram {
        HostProgram {
            config: SystemConfig { k, m },
            bytes_in_per_element: 22_264,  // S + D + u at p=11
            bytes_out_per_element: 10_648, // v
        }
    }

    #[test]
    fn rounds_cover_all_elements() {
        let p = prog(8, 8);
        assert_eq!(p.rounds(50_000), 6250);
        assert_eq!(p.rounds(50_001), 6251);
        assert_eq!(prog(16, 16).rounds(50_000), 3125);
    }

    #[test]
    fn round_steps_structure() {
        let p = prog(2, 8);
        let steps = p.round_steps();
        // transfer-in, 4 × (start, wait), transfer-out.
        assert_eq!(steps.len(), 1 + 2 * 4 + 1);
        assert!(matches!(steps[0], HostStep::TransferIn { bytes, count }
            if bytes == 22_264 * 8 && count == 8));
        assert!(matches!(steps.last(), Some(HostStep::TransferOut { .. })));
    }

    #[test]
    fn equal_km_single_round() {
        let p = prog(8, 8);
        let starts = p
            .round_steps()
            .iter()
            .filter(|s| matches!(s, HostStep::StartRound))
            .count();
        assert_eq!(starts, 1);
    }

    #[test]
    fn helmholtz_transfer_sizes() {
        // S (121) + D (1331) + u (1331) doubles in; v (1331) out.
        let bytes_in = (121 + 1331 + 1331) * 8;
        let bytes_out = 1331 * 8;
        let p = prog(1, 1);
        assert_eq!(p.bytes_in_per_element, bytes_in);
        assert_eq!(p.bytes_out_per_element, bytes_out);
    }

    #[test]
    fn c_skeleton_mentions_broadcast() {
        let c = prog(4, 8).to_c(100);
        assert!(c.contains("broadcast to 4 kernels"));
        assert!(c.contains("for (int b = 0; b < 2; ++b)"));
    }
}
