//! No-op `Serialize` / `Deserialize` derive macros (see the `serde` shim).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
