//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, and nothing in this
//! repository actually serializes (there is no `serde_json` either) — the
//! `#[derive(Serialize, Deserialize)]` attributes on model types are
//! forward-looking metadata. This shim accepts the derives and expands
//! them to nothing, so the annotated code compiles unchanged and the real
//! `serde` can be swapped back in via `[workspace.dependencies]` when a
//! registry is reachable.

pub use serde_derive::{Deserialize, Serialize};
