//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `Bencher`, and the
//! `criterion_group!` / `criterion_main!` macros with the call shapes the
//! benches in `crates/bench` use. Instead of criterion's statistical
//! machinery, each benchmark is warmed up and then timed over a fixed
//! number of batches; the mean and min per-iteration wall time are
//! printed. Deliberately dependency-free; swap for the real `criterion`
//! in `[workspace.dependencies]` when a registry is reachable.

use std::time::{Duration, Instant};

/// Top-level harness handle, passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: default_samples(30),
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(name.as_ref(), default_samples(30), f);
        self
    }
}

/// Sample-count override for CI smoke runs: `CRITERION_SAMPLES=N` caps
/// every benchmark (including explicit `sample_size` calls) at `N`
/// batches, so bench binaries can be exercised cheaply without changing
/// their code.
fn sample_cap() -> Option<usize> {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
}

fn default_samples(n: usize) -> usize {
    sample_cap().map_or(n, |cap| n.min(cap))
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed batches per benchmark (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = default_samples(n.max(1));
        self
    }

    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(name.as_ref(), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        min: Duration::MAX,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("  {name}: no iterations recorded");
        return;
    }
    let mean = b.total.as_secs_f64() / b.iters as f64;
    println!(
        "  {name}: mean {} / iter, min {} ({} iters)",
        fmt_secs(mean),
        fmt_secs(b.min.as_secs_f64()),
        b.iters
    );
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Per-benchmark timing state; `iter` runs and times the closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm-up: one untimed call (also sizes the batch so fast
        // closures are not dominated by clock reads).
        let warm = Instant::now();
        std::hint::black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let d = t.elapsed();
            self.total += d;
            self.min = self.min.min(d / batch as u32);
            self.iters += batch;
        }
    }
}

/// `criterion_group!(name, target1, target2, ...)` — defines `fn name()`
/// that runs every target against a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(group1, group2, ...)` — defines `main` running each
/// group, honoring `--bench`-style invocation (extra CLI args ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
