//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this repository uses —
//! `StdRng::seed_from_u64` and `Rng::gen_range` over `f64` ranges — on a
//! SplitMix64 generator. Deterministic for a given seed, which is all the
//! verification and oracle tests require. Swap for the real `rand` in
//! `[workspace.dependencies]` when a registry is reachable.

/// Minimal counterpart of `rand::Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[range.start, range.end)`.
    fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// Minimal counterpart of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// SplitMix64: passes through every 64-bit seed to a well-mixed
    /// stream; plenty for generating test inputs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(-1.0..1.0);
            assert_eq!(x, b.gen_range(-1.0..1.0));
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..100)
            .filter(|_| a.gen_range(0.0..1.0) == b.gen_range(0.0..1.0))
            .count();
        assert_eq!(same, 0);
    }
}
