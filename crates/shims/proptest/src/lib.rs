//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the test suites here use: the `proptest!` macro
//! (with `#![proptest_config(...)]`), `prop_assert!` / `prop_assert_eq!`,
//! integer-range and boolean strategies, tuple strategies, fixed-length
//! `collection::vec`, and `Strategy::prop_map`. Inputs are drawn from a
//! deterministic SplitMix64 stream seeded from the test's module path, so
//! runs are reproducible; there is no shrinking — a failing case panics
//! with the ordinary assertion message. Swap for the real `proptest` in
//! `[workspace.dependencies]` when a registry is reachable.

pub mod test_runner {
    /// Deterministic source the strategies draw from (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct ShimRng {
        state: u64,
    }

    impl ShimRng {
        pub fn seeded(seed: u64) -> Self {
            ShimRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// FNV-1a over the test path: a stable per-test seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod strategy {
    use crate::test_runner::ShimRng;

    /// Minimal counterpart of `proptest::strategy::Strategy`: a value
    /// generator (no shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut ShimRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            MapStrategy { inner: self, f }
        }
    }

    #[derive(Debug, Clone)]
    pub struct MapStrategy<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for MapStrategy<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut ShimRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut ShimRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i32, i64, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut ShimRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::ShimRng;

    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Counterpart of `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut ShimRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::ShimRng;

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Fixed-length counterpart of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut ShimRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod config {
    /// Counterpart of `proptest::test_runner::Config`: only the case
    /// count is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }
}

pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// No shrinking: assertion failures panic directly with the generated
/// inputs left to the assertion message.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::config::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::ShimRng::seeded(
                    $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
                );
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in -4i64..5, n in 2usize..6, s in 0u64..1000) {
            prop_assert!((-4..5).contains(&a));
            prop_assert!((2..6).contains(&n));
            prop_assert!(s < 1000);
        }

        #[test]
        fn composite_strategies_generate(
            v in crate::collection::vec((-4i64..5, -4i64..5), 3),
            b in crate::bool::ANY,
        ) {
            prop_assert_eq!(v.len(), 3);
            let _ = b;
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_runner::ShimRng::seeded(7);
        let s = (0i64..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = crate::strategy::Strategy::generate(&s, &mut rng);
            assert_eq!(v % 2, 0);
            assert!((0..20).contains(&v));
        }
    }
}
