//! Loop scheduling and latency estimation.
//!
//! Innermost loops are pipelined (`#pragma HLS pipeline`, Section V-A1);
//! their initiation interval is `II = max(RecMII, ResMII)`:
//!
//! * **RecMII** — a scalar floating-point accumulation carries a
//!   recurrence through the adder, so `RecMII = latency(dadd)`; an
//!   in-memory accumulation additionally pays the read-modify-write
//!   round trip,
//! * **ResMII** — each PLM port serves one access per cycle, so a body
//!   issuing `n` accesses to the same array against `p` ports needs
//!   `ceil(n/p)` cycles.
//!
//! Outer loops execute sequentially with a small control overhead per
//! iteration, exactly like Vivado's default (non-flattened) loop
//! hierarchy.

use crate::ops::OpLibrary;
use crate::HlsOptions;
use cgen::{CExpr, CKernel, CStmt};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-loop scheduling report (one entry per pipelined leaf loop).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopReport {
    /// Loop label: dotted path of loop variables, e.g. `i0.i1.i2.i3`.
    pub label: String,
    /// Trip count of the pipelined loop.
    pub trip: u64,
    /// Initiation interval.
    pub ii: u64,
    /// Pipeline depth (cycles from issue to result).
    pub depth: u64,
    /// Whether the loop was pipelined.
    pub pipelined: bool,
    /// Total cycles for one entry of this loop.
    pub latency: u64,
    /// Per-iteration floating-point multiplies (for FU binding).
    pub muls_per_iter: usize,
    /// Per-iteration floating-point adds/subs.
    pub adds_per_iter: usize,
    /// Per-iteration divides.
    pub divs_per_iter: usize,
}

/// Cycles of loop-control overhead per sequential iteration/entry.
const LOOP_OVERHEAD: u64 = 2;
/// Fixed function prologue/epilogue.
const FUNC_OVERHEAD: u64 = 10;

/// Compute per-loop reports and the total kernel latency in cycles.
pub fn kernel_latency(
    kernel: &CKernel,
    opts: &HlsOptions,
    lib: &OpLibrary,
) -> (Vec<LoopReport>, u64) {
    let mut loops = Vec::new();
    let mut total = FUNC_OVERHEAD;
    for s in &kernel.body {
        total += stmt_latency(s, opts, lib, &mut loops, "");
    }
    (loops, total)
}

fn stmt_latency(
    s: &CStmt,
    opts: &HlsOptions,
    lib: &OpLibrary,
    loops: &mut Vec<LoopReport>,
    path: &str,
) -> u64 {
    match s {
        CStmt::DeclScalar { .. } => 0,
        // Statements at sequential level (writeback, zero-init without a
        // loop): one memory access plus the expression.
        CStmt::Store { expr, .. } | CStmt::StoreAccum { expr, .. } => {
            expr_depth(expr, lib) + lib.mem_latency
        }
        CStmt::AccumScalar { expr, .. } => expr_depth(expr, lib) + lib.dadd.latency,
        CStmt::For { var, extent, body } => {
            let label = if path.is_empty() {
                var.clone()
            } else {
                format!("{path}.{var}")
            };
            let is_leaf = !body.iter().any(|b| matches!(b, CStmt::For { .. }));
            if is_leaf && opts.pipeline {
                let rep = pipeline_leaf(&label, *extent as u64, body, opts, lib);
                let lat = rep.latency + LOOP_OVERHEAD;
                loops.push(rep);
                lat
            } else {
                // Sequential loop around children.
                let mut body_lat = 0u64;
                for b in body {
                    body_lat += stmt_latency(b, opts, lib, loops, &label);
                }
                (*extent as u64) * (body_lat + LOOP_OVERHEAD)
            }
        }
    }
}

/// Schedule one pipelined leaf loop.
fn pipeline_leaf(
    label: &str,
    trip: u64,
    body: &[CStmt],
    opts: &HlsOptions,
    lib: &OpLibrary,
) -> LoopReport {
    let mut rec_mii = 1u64;
    let mut depth = 0u64;
    let mut reads: HashMap<&str, usize> = HashMap::new();
    let mut writes: HashMap<&str, usize> = HashMap::new();
    let mut muls = 0usize;
    let mut adds = 0usize;
    let mut divs = 0usize;

    for s in body {
        match s {
            CStmt::AccumScalar { expr, .. } => {
                rec_mii = rec_mii.max(lib.dadd.latency);
                depth = depth.max(expr_depth(expr, lib) + lib.dadd.latency);
                count_expr(expr, &mut reads, &mut muls, &mut adds, &mut divs);
                adds += 1; // the accumulation add
            }
            CStmt::Store { target, expr } => {
                depth = depth.max(expr_depth(expr, lib) + lib.mem_latency);
                count_expr(expr, &mut reads, &mut muls, &mut adds, &mut divs);
                *writes.entry(target.array.as_str()).or_default() += 1;
            }
            CStmt::StoreAccum { target, expr } => {
                // Read-modify-write through memory.
                rec_mii = rec_mii.max(lib.dadd.latency + 2 * lib.mem_latency);
                depth = depth.max(expr_depth(expr, lib) + lib.dadd.latency + 2 * lib.mem_latency);
                count_expr(expr, &mut reads, &mut muls, &mut adds, &mut divs);
                adds += 1;
                *reads.entry(target.array.as_str()).or_default() += 1;
                *writes.entry(target.array.as_str()).or_default() += 1;
            }
            CStmt::DeclScalar { .. } => {}
            CStmt::For { .. } => unreachable!("leaf loop"),
        }
    }

    let u = opts.unroll.max(1) as u64;
    let res_mii_reads = reads
        .iter()
        .map(|(arr, &n)| {
            let (rp, _) = opts.ports_for(arr);
            (n as u64 * u).div_ceil(rp as u64)
        })
        .max()
        .unwrap_or(1);
    let res_mii_writes = writes
        .iter()
        .map(|(arr, &n)| {
            let (_, wp) = opts.ports_for(arr);
            (n as u64 * u).div_ceil(wp as u64)
        })
        .max()
        .unwrap_or(1);
    let res_mii = res_mii_reads.max(res_mii_writes);
    let ii = rec_mii.max(res_mii).max(1);
    let eff_trips = trip.div_ceil(u);
    // (trips-1)·II issue slots, plus the last iteration's II-1 residual
    // port cycles, plus the pipeline drain.
    let latency = depth + eff_trips.saturating_sub(1) * ii + (ii - 1);
    LoopReport {
        label: label.to_string(),
        trip,
        ii,
        depth,
        pipelined: true,
        latency,
        muls_per_iter: muls * u as usize,
        adds_per_iter: adds * u as usize,
        divs_per_iter: divs * u as usize,
    }
}

/// Critical-path depth of an expression.
fn expr_depth(e: &CExpr, lib: &OpLibrary) -> u64 {
    match e {
        CExpr::Load(_) => lib.mem_latency,
        CExpr::Const(_) | CExpr::Var(_) => 0,
        CExpr::Bin { op, lhs, rhs } => {
            expr_depth(lhs, lib).max(expr_depth(rhs, lib)) + lib.spec(*op).latency
        }
    }
}

fn count_expr<'a>(
    e: &'a CExpr,
    reads: &mut HashMap<&'a str, usize>,
    muls: &mut usize,
    adds: &mut usize,
    divs: &mut usize,
) {
    match e {
        CExpr::Load(a) => *reads.entry(a.array.as_str()).or_default() += 1,
        CExpr::Const(_) | CExpr::Var(_) => {}
        CExpr::Bin { op, lhs, rhs } => {
            match op {
                cfdlang::BinOp::Mul => *muls += 1,
                cfdlang::BinOp::Add | cfdlang::BinOp::Sub => *adds += 1,
                cfdlang::BinOp::Div => *divs += 1,
            }
            count_expr(lhs, reads, muls, adds, divs);
            count_expr(rhs, reads, muls, adds, divs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgen::{build_kernel, CodegenOptions};
    use pschedule::{KernelModel, Schedule};
    use teil::layout::LayoutPlan;
    use teil::lower::lower;
    use teil::transform::factorize;

    fn kernel(src: &str, factored: bool) -> CKernel {
        let typed = cfdlang::check(&cfdlang::parse(src).unwrap()).unwrap();
        let mut m = lower(&typed).unwrap();
        if factored {
            m = factorize(&m);
        }
        let layout = LayoutPlan::row_major(&m);
        let km = KernelModel::build(&m, &layout);
        let s = Schedule::reference(&km);
        build_kernel(&m, &km, &s, &CodegenOptions::default())
    }

    #[test]
    fn pointwise_loop_achieves_ii_one() {
        let k = kernel(&cfdlang::examples::axpy(4), false);
        let (loops, _) =
            kernel_latency(&k, &HlsOptions::default(), &OpLibrary::ultrascale_200mhz());
        let inner = loops.last().unwrap();
        assert_eq!(inner.ii, 1, "{inner:?}");
    }

    #[test]
    fn accumulation_ii_is_adder_latency() {
        let k = kernel(&cfdlang::examples::inverse_helmholtz(11), true);
        let lib = OpLibrary::ultrascale_200mhz();
        let (loops, _) = kernel_latency(&k, &HlsOptions::default(), &lib);
        // The six contraction stages all pipeline their reduction loop at
        // II = dadd latency.
        let red: Vec<&LoopReport> = loops.iter().filter(|l| l.ii == lib.dadd.latency).collect();
        assert_eq!(red.len(), 6, "{loops:?}");
    }

    #[test]
    fn factored_kernel_latency_in_expected_band() {
        // 6 stages × 11^3 entries × (depth + 10·II + overhead) + Hadamard.
        let k = kernel(&cfdlang::examples::inverse_helmholtz(11), true);
        let (_, total) =
            kernel_latency(&k, &HlsOptions::default(), &OpLibrary::ultrascale_200mhz());
        assert!(
            (400_000..800_000).contains(&total),
            "latency {total} outside expected band"
        );
    }

    #[test]
    fn factorization_speeds_up_kernel() {
        let naive = kernel(&cfdlang::examples::inverse_helmholtz(11), false);
        let fact = kernel(&cfdlang::examples::inverse_helmholtz(11), true);
        let lib = OpLibrary::ultrascale_200mhz();
        let (_, t_naive) = kernel_latency(&naive, &HlsOptions::default(), &lib);
        let (_, t_fact) = kernel_latency(&fact, &HlsOptions::default(), &lib);
        // O(p^6) vs O(p^4): at p=11 roughly 20× fewer pipelined iterations.
        assert!(
            t_naive > 10 * t_fact,
            "naive {t_naive} vs factored {t_fact}"
        );
    }

    #[test]
    fn unroll_reduces_pointwise_latency_with_ports() {
        let k = kernel(&cfdlang::examples::axpy(8), false);
        let lib = OpLibrary::ultrascale_200mhz();
        let base = kernel_latency(&k, &HlsOptions::default(), &lib).1;
        let unrolled = kernel_latency(
            &k,
            &HlsOptions {
                unroll: 4,
                array_read_ports: 4,
                array_write_ports: 4,
                ..Default::default()
            },
            &lib,
        )
        .1;
        assert!(unrolled < base, "unrolled {unrolled} vs base {base}");
    }

    #[test]
    fn unroll_without_ports_is_useless() {
        let k = kernel(&cfdlang::examples::axpy(8), false);
        let lib = OpLibrary::ultrascale_200mhz();
        let base = kernel_latency(&k, &HlsOptions::default(), &lib).1;
        let unrolled = kernel_latency(
            &k,
            &HlsOptions {
                unroll: 4,
                ..Default::default()
            },
            &lib,
        )
        .1;
        // ResMII grows with the lane count: no win.
        assert!(unrolled as f64 > base as f64 * 0.9);
    }

    #[test]
    fn per_array_partition_matches_global_ports() {
        // Partitioning exactly the accessed arrays gives the same II as
        // raising the global port count.
        let k = kernel(&cfdlang::examples::axpy(8), false);
        let lib = OpLibrary::ultrascale_200mhz();
        let global = kernel_latency(
            &k,
            &HlsOptions {
                unroll: 4,
                array_read_ports: 4,
                array_write_ports: 4,
                ..Default::default()
            },
            &lib,
        )
        .1;
        let targeted = kernel_latency(
            &k,
            &HlsOptions {
                unroll: 4,
                partition: vec![
                    ("x".into(), 4),
                    ("y".into(), 4),
                    ("a".into(), 4),
                    ("o".into(), 4),
                ],
                ..Default::default()
            },
            &lib,
        )
        .1;
        assert_eq!(global, targeted);
    }

    #[test]
    fn partial_partition_leaves_bottleneck() {
        // Partitioning only one of the read arrays leaves the other as
        // the ResMII bottleneck under unrolling.
        let k = kernel(&cfdlang::examples::axpy(8), false);
        let lib = OpLibrary::ultrascale_200mhz();
        let opts = HlsOptions {
            unroll: 4,
            partition: vec![("x".into(), 4)],
            ..Default::default()
        };
        let (loops, _) = kernel_latency(&k, &opts, &lib);
        assert!(loops.iter().any(|l| l.ii >= 4), "{loops:?}");
    }

    #[test]
    fn no_pipeline_is_slower() {
        let k = kernel(&cfdlang::examples::inverse_helmholtz(5), true);
        let lib = OpLibrary::ultrascale_200mhz();
        let on = kernel_latency(&k, &HlsOptions::default(), &lib).1;
        let off = kernel_latency(
            &k,
            &HlsOptions {
                pipeline: false,
                ..Default::default()
            },
            &lib,
        )
        .1;
        assert!(off > on, "pipelined {on} vs sequential {off}");
    }

    #[test]
    fn loop_labels_are_paths() {
        let k = kernel(&cfdlang::examples::inverse_helmholtz(4), true);
        let (loops, _) =
            kernel_latency(&k, &HlsOptions::default(), &OpLibrary::ultrascale_200mhz());
        assert!(loops.iter().any(|l| l.label.contains('.')), "{loops:?}");
    }
}
