//! Resource estimation: functional units, control, addressing, interface
//! and (non-decoupled) internal array mapping.

use crate::latency::LoopReport;
use crate::ops::OpLibrary;
use crate::HlsOptions;
use cgen::{CKernel, CStmt};
use serde::{Deserialize, Serialize};

/// Aggregated resource estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    pub luts: usize,
    pub ffs: usize,
    pub dsps: usize,
    /// BRAM36 blocks used *inside* the accelerator (local arrays in
    /// non-decoupled mode; decoupled kernels use external PLM units).
    pub brams: usize,
}

/// Calibrated micro-architecture constants (see crate docs): control per
/// loop, port wiring per parameter, address-generation logic per access.
const CTRL_LUT_PER_LOOP: usize = 25;
const CTRL_FF_PER_LOOP: usize = 40;
const IFACE_LUT_PER_PARAM: usize = 15;
const IFACE_FF_PER_PARAM: usize = 35;
const ADDR_FF_PER_ACCESS: usize = 30;

/// Estimate the kernel's resources.
pub fn estimate_resources(
    kernel: &CKernel,
    opts: &HlsOptions,
    lib: &OpLibrary,
    loops: &[LoopReport],
) -> ResourceEstimate {
    // Function-level FU binding: sequentially executing loops share FU
    // instances, so the kernel instantiates the *maximum* concurrent need
    // across pipelined loops (per unrolled lane).
    let fu_muls = loops
        .iter()
        .map(|l| l.muls_per_iter)
        .max()
        .unwrap_or(0)
        .max(usize::from(total_muls(kernel) > 0));
    let fu_adds = loops.iter().map(|l| l.adds_per_iter).max().unwrap_or(0);
    let fu_divs = loops.iter().map(|l| l.divs_per_iter).max().unwrap_or(0);

    let mut luts = fu_muls * lib.dmul.luts + fu_adds * lib.dadd.luts + fu_divs * lib.ddiv.luts;
    let mut ffs = fu_muls * lib.dmul.ffs + fu_adds * lib.dadd.ffs + fu_divs * lib.ddiv.ffs;
    let mut dsps = fu_muls * lib.dmul.dsps + fu_adds * lib.dadd.dsps + fu_divs * lib.ddiv.dsps;

    // Control logic per loop.
    let mut n_loops = 0usize;
    let mut n_accesses = 0usize;
    let mut addr_terms = 0usize;
    let mut any_strided = false;
    kernel.visit_stmts(&mut |s| match s {
        CStmt::For { .. } => n_loops += 1,
        CStmt::Store { target, expr } | CStmt::StoreAccum { target, expr } => {
            n_accesses += 1 + expr.loads().len();
            addr_terms += target.addr.add_terms() + target.addr.mul_terms();
            for l in expr.loads() {
                addr_terms += l.addr.add_terms() + l.addr.mul_terms();
            }
            any_strided |=
                target.addr.mul_terms() > 0 || expr.loads().iter().any(|l| l.addr.mul_terms() > 0);
        }
        CStmt::AccumScalar { expr, .. } => {
            n_accesses += expr.loads().len();
            for l in expr.loads() {
                addr_terms += l.addr.add_terms() + l.addr.mul_terms();
                any_strided |= l.addr.mul_terms() > 0;
            }
        }
        CStmt::DeclScalar { .. } => {}
    });
    luts += n_loops * CTRL_LUT_PER_LOOP;
    ffs += n_loops * CTRL_FF_PER_LOOP;
    luts += addr_terms * lib.addr_lut_per_term;
    ffs += n_accesses * ADDR_FF_PER_ACCESS;
    if any_strided {
        dsps += lib.addr_dsp;
    }

    // Interface wiring per exported array.
    luts += kernel.params.len() * IFACE_LUT_PER_PARAM;
    ffs += kernel.params.len() * IFACE_FF_PER_PARAM;

    // Internal arrays (non-decoupled mode): Vivado maps each local with
    // power-of-two depth padding; small arrays fall into LUTRAM.
    let mut brams = 0usize;
    for l in &kernel.locals {
        if l.words <= opts.lutram_threshold {
            luts += l.words; // distributed RAM cost
        } else {
            let depth_p2 = l.words.next_power_of_two();
            brams += (depth_p2.div_ceil(opts.bram_words)).max(1);
        }
    }
    ResourceEstimate {
        luts,
        ffs,
        dsps,
        brams,
    }
}

fn total_muls(kernel: &CKernel) -> usize {
    let mut n = 0usize;
    kernel.visit_stmts(&mut |s| {
        if let CStmt::Store { expr, .. }
        | CStmt::StoreAccum { expr, .. }
        | CStmt::AccumScalar { expr, .. } = s
        {
            let (_, f) = expr.counts();
            n += f;
        }
    });
    n
}

#[cfg(test)]
mod tests {
    use crate::{synthesize, HlsOptions};
    use cgen::{build_kernel, CodegenOptions};
    use pschedule::{KernelModel, Schedule};
    use teil::layout::LayoutPlan;
    use teil::lower::lower;
    use teil::transform::factorize;

    fn kernel(src: &str, factored: bool, decoupled: bool) -> cgen::CKernel {
        let typed = cfdlang::check(&cfdlang::parse(src).unwrap()).unwrap();
        let mut m = lower(&typed).unwrap();
        if factored {
            m = factorize(&m);
        }
        let layout = LayoutPlan::row_major(&m);
        let km = KernelModel::build(&m, &layout);
        let s = Schedule::reference(&km);
        build_kernel(
            &m,
            &km,
            &s,
            &CodegenOptions {
                decoupled,
                ..Default::default()
            },
        )
    }

    #[test]
    fn helmholtz_kernel_matches_paper_report() {
        // Paper (Vivado HLS 2019.2): 2,314 LUT / 2,999 FF / 15 DSP.
        let k = kernel(&cfdlang::examples::inverse_helmholtz(11), true, true);
        let r = synthesize(&k, &HlsOptions::default());
        assert_eq!(r.dsps, 15, "DSP must match the paper exactly");
        assert!(
            (2100..=2600).contains(&r.luts),
            "LUT {} vs paper 2,314",
            r.luts
        );
        assert!(
            (2700..=3300).contains(&r.ffs),
            "FF {} vs paper 2,999",
            r.ffs
        );
        assert_eq!(r.brams, 0, "decoupled kernel holds no arrays");
    }

    #[test]
    fn non_decoupled_internal_brams_match_paper() {
        // Paper: temporaries inside the accelerator → 24 BRAMs (Vivado's
        // power-of-two padding: 1331 → 2048 → 4 BRAMs × 6 temporaries).
        let k = kernel(&cfdlang::examples::inverse_helmholtz(11), true, false);
        let r = synthesize(&k, &HlsOptions::default());
        assert_eq!(r.brams, 24);
    }

    #[test]
    fn lutram_threshold_diverts_small_arrays() {
        // A p=4 non-decoupled kernel: temporaries are 64 words ≤ 128 →
        // LUTRAM, no BRAM.
        let k = kernel(&cfdlang::examples::inverse_helmholtz(4), true, false);
        let r = synthesize(&k, &HlsOptions::default());
        assert_eq!(r.brams, 0);
    }

    #[test]
    fn naive_kernel_uses_same_fus() {
        // The unfactored contraction has 3 muls + 1 acc per iteration:
        // more multipliers bound concurrently.
        let fact = synthesize(
            &kernel(&cfdlang::examples::inverse_helmholtz(11), true, true),
            &HlsOptions::default(),
        );
        let naive = synthesize(
            &kernel(&cfdlang::examples::inverse_helmholtz(11), false, true),
            &HlsOptions::default(),
        );
        assert!(
            naive.dsps > fact.dsps,
            "naive {} vs {}",
            naive.dsps,
            fact.dsps
        );
    }

    #[test]
    fn unrolling_multiplies_fus() {
        let k = kernel(&cfdlang::examples::axpy(8), false, true);
        let base = synthesize(&k, &HlsOptions::default());
        let un = synthesize(
            &k,
            &HlsOptions {
                unroll: 4,
                array_read_ports: 4,
                array_write_ports: 4,
                ..Default::default()
            },
        );
        assert!(un.dsps > base.dsps);
        assert!(un.luts > base.luts);
    }

    #[test]
    fn division_kernel_pays_divider() {
        let k = kernel(
            "var input a : [8]\nvar input b : [8]\nvar output o : [8]\no = a / b",
            false,
            true,
        );
        let r = synthesize(&k, &HlsOptions::default());
        assert!(r.luts > 3000, "divider LUT cost missing: {}", r.luts);
    }
}
