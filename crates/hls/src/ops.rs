//! Floating-point operator library for UltraScale+ at 200 MHz.
//!
//! Latencies and resource costs follow the Xilinx Floating-Point
//! Operator characterization for `-2` speed-grade UltraScale+ parts at
//! 200 MHz with maximal DSP usage, nudged so that the paper's factored
//! Inverse Helmholtz kernel reproduces its reported footprint
//! (2,314 LUT / 2,999 FF / 15 DSP).

use cfdlang::BinOp;
use serde::{Deserialize, Serialize};

/// Cost/latency entry for one operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpSpec {
    /// Pipeline latency in cycles.
    pub latency: u64,
    pub luts: usize,
    pub ffs: usize,
    pub dsps: usize,
}

/// The operator library.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpLibrary {
    pub dadd: OpSpec,
    pub dmul: OpSpec,
    pub ddiv: OpSpec,
    /// 64-bit memory port access (read or write) latency.
    pub mem_latency: u64,
    /// Address-generation DSP cost per kernel with strided accesses.
    pub addr_dsp: usize,
    /// LUT cost of one address expression (constant-stride multiply-add
    /// chains map to shift-add logic).
    pub addr_lut_per_term: usize,
}

impl OpLibrary {
    /// The library used throughout the evaluation.
    pub fn ultrascale_200mhz() -> OpLibrary {
        OpLibrary {
            dadd: OpSpec {
                latency: 5,
                luts: 390,
                ffs: 600,
                dsps: 3,
            },
            dmul: OpSpec {
                latency: 6,
                luts: 220,
                ffs: 330,
                dsps: 11,
            },
            ddiv: OpSpec {
                latency: 29,
                luts: 3200,
                ffs: 3600,
                dsps: 0,
            },
            mem_latency: 1,
            addr_dsp: 1,
            addr_lut_per_term: 12,
        }
    }

    /// The library for an arbitrary synthesis clock: operator pipeline
    /// depths scale with the clock (a 300 MHz datapath needs deeper
    /// pipelines than the 200 MHz calibration point; a 100 MHz one is
    /// shallower), while per-operator resource costs stay put. At
    /// exactly 200 MHz this returns [`OpLibrary::ultrascale_200mhz`]
    /// unchanged, so the paper's calibration is bit-identical.
    pub fn for_clock(clock_mhz: f64) -> OpLibrary {
        let base = OpLibrary::ultrascale_200mhz();
        let ratio = clock_mhz / 200.0;
        if (ratio - 1.0).abs() < 1e-12 {
            return base;
        }
        let scale = |spec: OpSpec| OpSpec {
            latency: ((spec.latency as f64 * ratio).ceil() as u64).max(1),
            ..spec
        };
        OpLibrary {
            dadd: scale(base.dadd),
            dmul: scale(base.dmul),
            ddiv: scale(base.ddiv),
            mem_latency: ((base.mem_latency as f64 * ratio).ceil() as u64).max(1),
            ..base
        }
    }

    /// Spec for a binary operator.
    pub fn spec(&self, op: BinOp) -> OpSpec {
        match op {
            BinOp::Add | BinOp::Sub => self.dadd,
            BinOp::Mul => self.dmul,
            BinOp::Div => self.ddiv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_mac_datapath_is_fifteen_dsps_with_addressing() {
        // The paper's kernel: one shared dmul + one dadd + address engine
        // = 11 + 3 + 1 = 15 DSPs.
        let lib = OpLibrary::ultrascale_200mhz();
        assert_eq!(
            lib.dmul.dsps + lib.dadd.dsps + lib.addr_dsp,
            15,
            "kernel DSP calibration"
        );
    }

    #[test]
    fn sub_uses_adder() {
        let lib = OpLibrary::ultrascale_200mhz();
        assert_eq!(lib.spec(BinOp::Sub), lib.dadd);
        assert_eq!(lib.spec(BinOp::Mul), lib.dmul);
    }

    #[test]
    fn clock_scaling_is_identity_at_calibration_point() {
        assert_eq!(OpLibrary::for_clock(200.0), OpLibrary::ultrascale_200mhz());
        let fast = OpLibrary::for_clock(300.0);
        let slow = OpLibrary::for_clock(100.0);
        let base = OpLibrary::ultrascale_200mhz();
        assert!(fast.dmul.latency > base.dmul.latency);
        assert!(slow.dmul.latency < base.dmul.latency);
        assert!(slow.dadd.latency >= 1);
        // Resources do not move with the clock.
        assert_eq!(fast.dmul.dsps, base.dmul.dsps);
        assert_eq!(slow.ddiv.luts, base.ddiv.luts);
    }

    #[test]
    fn divider_is_expensive() {
        let lib = OpLibrary::ultrascale_200mhz();
        assert!(lib.ddiv.latency > 4 * lib.dadd.latency);
        assert!(lib.ddiv.luts > 5 * lib.dadd.luts);
    }
}
