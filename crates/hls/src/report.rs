//! The synthesis report (the artifact the system generator consumes).

use crate::latency::LoopReport;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Vivado-style synthesis summary for one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HlsReport {
    pub kernel: String,
    pub clock_mhz: f64,
    /// Kernel latency for one invocation, in cycles.
    pub latency_cycles: u64,
    pub luts: usize,
    pub ffs: usize,
    pub dsps: usize,
    /// BRAMs inside the accelerator (0 in decoupled mode).
    pub brams: usize,
    pub loops: Vec<LoopReport>,
}

impl HlsReport {
    /// The same report under a different kernel label — multi-kernel
    /// systems label each stage's report with the stage name (every
    /// kernel synthesizes as `kernel_body` on its own).
    pub fn renamed(&self, kernel: impl Into<String>) -> HlsReport {
        HlsReport {
            kernel: kernel.into(),
            ..self.clone()
        }
    }

    /// Latency in seconds at the synthesis clock.
    pub fn latency_seconds(&self) -> f64 {
        self.latency_cycles as f64 / (self.clock_mhz * 1e6)
    }

    /// Latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.latency_seconds() * 1e6
    }
}

impl fmt::Display for HlsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== HLS Report: {} @ {:.0} MHz ==",
            self.kernel, self.clock_mhz
        )?;
        writeln!(
            f,
            "  latency: {} cycles ({:.1} us)",
            self.latency_cycles,
            self.latency_us()
        )?;
        writeln!(
            f,
            "  resources: {} LUT, {} FF, {} DSP, {} BRAM",
            self.luts, self.ffs, self.dsps, self.brams
        )?;
        writeln!(f, "  pipelined loops:")?;
        for l in &self.loops {
            writeln!(
                f,
                "    {:<24} trip {:>6}  II {:>2}  depth {:>3}  latency {:>8}",
                l.label, l.trip, l.ii, l.depth, l.latency
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_units() {
        let r = HlsReport {
            kernel: "k".into(),
            clock_mhz: 200.0,
            latency_cycles: 200_000,
            luts: 1,
            ffs: 2,
            dsps: 3,
            brams: 0,
            loops: vec![],
        };
        assert!((r.latency_seconds() - 0.001).abs() < 1e-12);
        assert!((r.latency_us() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn renamed_keeps_everything_but_the_label() {
        let r = HlsReport {
            kernel: "kernel_body".into(),
            clock_mhz: 200.0,
            latency_cycles: 200_000,
            luts: 1,
            ffs: 2,
            dsps: 3,
            brams: 4,
            loops: vec![],
        };
        let s = r.renamed("interpolate");
        assert_eq!(s.kernel, "interpolate");
        assert_eq!(
            (s.latency_cycles, s.luts, s.ffs, s.dsps, s.brams),
            (r.latency_cycles, r.luts, r.ffs, r.dsps, r.brams)
        );
    }

    #[test]
    fn display_contains_summary() {
        let r = HlsReport {
            kernel: "kernel_body".into(),
            clock_mhz: 200.0,
            latency_cycles: 42,
            luts: 2314,
            ffs: 2999,
            dsps: 15,
            brams: 0,
            loops: vec![LoopReport {
                label: "i0.i1".into(),
                trip: 11,
                ii: 5,
                depth: 12,
                pipelined: true,
                latency: 62,
                muls_per_iter: 1,
                adds_per_iter: 1,
                divs_per_iter: 0,
            }],
        };
        let s = r.to_string();
        assert!(s.contains("2314 LUT"));
        assert!(s.contains("15 DSP"));
        assert!(s.contains("II  5"));
    }
}
