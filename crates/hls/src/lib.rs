//! `hls` — a high-level-synthesis model standing in for Vivado HLS.
//!
//! The paper feeds compiler-generated C into Vivado HLS 2019.2 and
//! consumes two artifacts: the **resource report** (LUT/FF/DSP/BRAM,
//! used by the system generator to solve Eq. (3)) and the **kernel
//! latency** (used by the timing evaluation). This crate reproduces both
//! from the same loop-nest IR that the C emitter prints, so the "C code"
//! the HLS model sees is exactly the code a real HLS run would see.
//!
//! The model implements the standard HLS analyses:
//!
//! * **operator library** ([`ops`]) — double-precision add/mul/div
//!   latencies and resource costs on UltraScale+ at 200 MHz, calibrated
//!   so the paper's factored Inverse Helmholtz kernel lands at its
//!   reported 2,314 LUT / 2,999 FF / 15 DSP,
//! * **loop pipelining** ([`latency`]) — innermost loops are pipelined;
//!   the initiation interval is `max(RecMII, ResMII)` where RecMII
//!   captures the floating-point accumulation recurrence and ResMII the
//!   memory-port pressure per PLM,
//! * **function-level FU binding** ([`resources`]) — sequentially
//!   executing loop nests share one floating-point unit per operator
//!   type (per unrolled lane),
//! * **internal array mapping** — in non-decoupled mode, local arrays
//!   map to BRAM with Vivado's power-of-two depth padding (which is why
//!   the paper measures 24 BRAMs inside the accelerator vs 18 in
//!   Mnemosyne PLMs for the same data).

pub mod latency;
pub mod ops;
pub mod report;
pub mod resources;

pub use latency::{kernel_latency, LoopReport};
pub use ops::OpLibrary;
pub use report::HlsReport;
pub use resources::estimate_resources;

use cgen::CKernel;

/// HLS tool options (the pragmas the flow applies).
#[derive(Debug, Clone)]
pub struct HlsOptions {
    /// Target clock (the paper synthesizes at 200 MHz).
    pub clock_mhz: f64,
    /// Pipeline innermost loops (`#pragma HLS pipeline`).
    pub pipeline: bool,
    /// Unroll factor applied to innermost loops (`#pragma HLS unroll`).
    pub unroll: usize,
    /// Read/write ports available per array (PLM ports; array
    /// partitioning raises this).
    pub array_read_ports: u32,
    pub array_write_ports: u32,
    /// Per-array cyclic partition factors (`#pragma HLS array_partition
    /// cyclic factor=F variable=name`): multiplies the ports of the named
    /// array, demanding a multi-bank PLM from the memory generator
    /// (Section V-A1 / V-A2).
    pub partition: Vec<(String, u32)>,
    /// Arrays at or below this word count map to LUTRAM instead of BRAM
    /// when kept inside the accelerator.
    pub lutram_threshold: usize,
    /// Words per BRAM36 (512 × 64-bit).
    pub bram_words: usize,
}

impl Default for HlsOptions {
    fn default() -> Self {
        HlsOptions {
            clock_mhz: 200.0,
            pipeline: true,
            unroll: 1,
            array_read_ports: 1,
            array_write_ports: 1,
            partition: Vec::new(),
            lutram_threshold: 128,
            bram_words: 512,
        }
    }
}

impl HlsOptions {
    /// Effective `(read, write)` ports of an array after partitioning.
    pub fn ports_for(&self, array: &str) -> (u32, u32) {
        let factor = self
            .partition
            .iter()
            .find(|(n, _)| n == array)
            .map(|(_, f)| *f)
            .unwrap_or(1)
            .max(1);
        (
            self.array_read_ports * factor,
            self.array_write_ports * factor,
        )
    }
}

/// Run "synthesis": produce the report for a kernel.
pub fn synthesize(kernel: &CKernel, opts: &HlsOptions) -> HlsReport {
    let lib = OpLibrary::for_clock(opts.clock_mhz);
    let (loops, total_latency) = latency::kernel_latency(kernel, opts, &lib);
    let res = resources::estimate_resources(kernel, opts, &lib, &loops);
    HlsReport {
        kernel: kernel.name.clone(),
        clock_mhz: opts.clock_mhz,
        latency_cycles: total_latency,
        luts: res.luts,
        ffs: res.ffs,
        dsps: res.dsps,
        brams: res.brams,
        loops,
    }
}
