//! `cgen` — code generation from scheduled tensor kernels (step ⓥ).
//!
//! The code generator turns a scheduled kernel into a loop-nest program
//! ([`CKernel`]) that serves three consumers:
//!
//! 1. [`emit::emit_c99`] renders it as the C99 source handed to the HLS
//!    tool, with every array exported as a function parameter — the
//!    decoupled kernel/PLM interface of Figure 6,
//! 2. the `hls` crate walks the same structure to schedule operations and
//!    estimate resources,
//! 3. [`exec`] executes it directly on flat arrays, which is how the
//!    repository validates that generated code computes exactly what the
//!    `teil` interpreter defines (and how the ARM "SW HLS code" variant
//!    of Figure 10 is cost-modelled).
//!
//! Reductions whose loops are innermost use a scalar accumulator
//! (HLS-friendly: the recurrence stays in a register); other schedules
//! fall back to zero-init plus in-memory accumulation.

pub mod build;
pub mod emit;
pub mod exec;
pub mod ir;

pub use build::{build_kernel, CodegenOptions};
pub use emit::{emit_c99, emit_c99_as};
pub use exec::{run_kernel, ExecCounts};
pub use ir::{AffineAddr, ArrAccess, CExpr, CKernel, CParam, CStmt, ParamRole};
