//! Direct execution of generated loop programs.
//!
//! This is the repository's stand-in for "compile the generated C and run
//! it": the loop program is interpreted over flat `f64` arrays, producing
//! both the functional result (validated against the `teil` interpreter)
//! and the operation counts that parameterize the ARM cost model for the
//! paper's *SW HLS code* measurement (Figure 10).

use crate::ir::{ArrAccess, CExpr, CKernel, CStmt};
use std::collections::HashMap;

/// Operation counts of one kernel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounts {
    pub fp_ops: u64,
    pub loads: u64,
    pub stores: u64,
    /// Integer multiplies spent on address computation.
    pub addr_muls: u64,
    /// Integer additions spent on address computation.
    pub addr_adds: u64,
    /// Loop iterations executed (innermost bodies).
    pub iters: u64,
}

/// Execute a kernel over named flat arrays. Arrays listed as parameters
/// must be present in `mem` with the right size; locals are allocated and
/// dropped internally.
pub fn run_kernel(k: &CKernel, mem: &mut HashMap<String, Vec<f64>>) -> Result<ExecCounts, String> {
    for p in &k.params {
        let a = mem
            .get(&p.name)
            .ok_or_else(|| format!("missing array '{}'", p.name))?;
        if a.len() != p.words {
            return Err(format!(
                "array '{}' has {} words, expected {}",
                p.name,
                a.len(),
                p.words
            ));
        }
    }
    // Locals live only for the call.
    for l in &k.locals {
        mem.entry(l.name.clone())
            .or_insert_with(|| vec![0.0; l.words]);
    }
    let mut counts = ExecCounts::default();
    let mut vars: Vec<(String, i64)> = Vec::new();
    let mut scalars: HashMap<String, f64> = HashMap::new();
    for s in &k.body {
        exec_stmt(s, mem, &mut vars, &mut scalars, &mut counts)?;
    }
    for l in &k.locals {
        mem.remove(&l.name);
    }
    Ok(counts)
}

fn exec_stmt(
    s: &CStmt,
    mem: &mut HashMap<String, Vec<f64>>,
    vars: &mut Vec<(String, i64)>,
    scalars: &mut HashMap<String, f64>,
    counts: &mut ExecCounts,
) -> Result<(), String> {
    match s {
        CStmt::For { var, extent, body } => {
            vars.push((var.clone(), 0));
            for i in 0..*extent as i64 {
                vars.last_mut().expect("pushed").1 = i;
                for b in body {
                    exec_stmt(b, mem, vars, scalars, counts)?;
                }
            }
            vars.pop();
            Ok(())
        }
        CStmt::DeclScalar { name, init } => {
            scalars.insert(name.clone(), *init);
            Ok(())
        }
        CStmt::AccumScalar { name, expr } => {
            let v = eval(expr, mem, vars, scalars, counts)?;
            let slot = scalars
                .get_mut(name)
                .ok_or_else(|| format!("undeclared scalar '{name}'"))?;
            *slot += v;
            counts.fp_ops += 1;
            counts.iters += 1;
            Ok(())
        }
        CStmt::Store { target, expr } => {
            let v = eval(expr, mem, vars, scalars, counts)?;
            store(target, v, false, mem, vars, counts)?;
            counts.iters += 1;
            Ok(())
        }
        CStmt::StoreAccum { target, expr } => {
            let v = eval(expr, mem, vars, scalars, counts)?;
            store(target, v, true, mem, vars, counts)?;
            counts.fp_ops += 1;
            counts.iters += 1;
            Ok(())
        }
    }
}

fn addr_of(a: &ArrAccess, vars: &[(String, i64)], counts: &mut ExecCounts) -> i64 {
    // The loop variables of the *innermost* enclosing nest appear in
    // order; an access's coefficients index the nest from its outermost
    // loop. Addresses may reference fewer loops than are live (e.g. the
    // write-back sits outside the reduction loops), so align by prefix.
    let n = a.addr.coeffs.len().min(vars.len());
    let vals: Vec<i64> = vars[..n].iter().map(|(_, v)| *v).collect();
    counts.addr_muls += a.addr.mul_terms() as u64;
    counts.addr_adds += a.addr.add_terms() as u64;
    let mut addr = a.addr.constant;
    for (c, v) in a.addr.coeffs[..n].iter().zip(&vals) {
        addr += c * v;
    }
    addr
}

fn store(
    target: &ArrAccess,
    v: f64,
    accum: bool,
    mem: &mut HashMap<String, Vec<f64>>,
    vars: &[(String, i64)],
    counts: &mut ExecCounts,
) -> Result<(), String> {
    let addr = addr_of(target, vars, counts);
    let arr = mem
        .get_mut(&target.array)
        .ok_or_else(|| format!("unknown array '{}'", target.array))?;
    let slot = arr
        .get_mut(addr as usize)
        .ok_or_else(|| format!("store OOB: {}[{addr}]", target.array))?;
    if accum {
        *slot += v;
    } else {
        *slot = v;
    }
    counts.stores += 1;
    Ok(())
}

fn eval(
    e: &CExpr,
    mem: &HashMap<String, Vec<f64>>,
    vars: &[(String, i64)],
    scalars: &HashMap<String, f64>,
    counts: &mut ExecCounts,
) -> Result<f64, String> {
    match e {
        CExpr::Const(c) => Ok(*c),
        CExpr::Var(v) => scalars
            .get(v)
            .copied()
            .ok_or_else(|| format!("undeclared scalar '{v}'")),
        CExpr::Load(a) => {
            let addr = addr_of(a, vars, counts);
            counts.loads += 1;
            mem.get(&a.array)
                .ok_or_else(|| format!("unknown array '{}'", a.array))?
                .get(addr as usize)
                .copied()
                .ok_or_else(|| format!("load OOB: {}[{addr}]", a.array))
        }
        CExpr::Bin { op, lhs, rhs } => {
            let a = eval(lhs, mem, vars, scalars, counts)?;
            let b = eval(rhs, mem, vars, scalars, counts)?;
            counts.fp_ops += 1;
            Ok(match op {
                cfdlang::BinOp::Add => a + b,
                cfdlang::BinOp::Sub => a - b,
                cfdlang::BinOp::Mul => a * b,
                cfdlang::BinOp::Div => a / b,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_kernel, CodegenOptions};
    use pschedule::{KernelModel, Schedule};
    use teil::interp::{inputs_from, Interpreter, Tensor};
    use teil::layout::LayoutPlan;
    use teil::lower::lower;
    use teil::transform::factorize;

    fn setup(src: &str, factored: bool, decoupled: bool) -> (teil::ir::Module, CKernel) {
        let typed = cfdlang::check(&cfdlang::parse(src).unwrap()).unwrap();
        let mut m = lower(&typed).unwrap();
        if factored {
            m = factorize(&m);
        }
        let layout = LayoutPlan::row_major(&m);
        let km = KernelModel::build(&m, &layout);
        let s = Schedule::reference(&km);
        let opts = CodegenOptions {
            decoupled,
            ..Default::default()
        };
        let k = build_kernel(&m, &km, &s, &opts);
        (m, k)
    }

    fn rand_tensor(shape: &[usize], seed: usize) -> Tensor {
        Tensor::from_fn(shape, |idx| {
            let h = idx
                .iter()
                .enumerate()
                .fold(seed * 2654435761, |a, (d, &i)| {
                    a.wrapping_mul(31).wrapping_add(i * 7 + d)
                });
            ((h % 1000) as f64) / 499.5 - 1.0
        })
    }

    /// Generated code must agree with the interpreter bit-for-bit when
    /// both use the same evaluation order (reference schedule).
    #[test]
    fn generated_code_matches_interpreter_exactly() {
        for factored in [false, true] {
            for decoupled in [true, false] {
                let (m, k) = setup(
                    &cfdlang::examples::inverse_helmholtz(5),
                    factored,
                    decoupled,
                );
                let s = rand_tensor(&[5, 5], 1);
                let d = rand_tensor(&[5, 5, 5], 2);
                let u = rand_tensor(&[5, 5, 5], 3);
                let ex = Interpreter::new(&m)
                    .run(&inputs_from(vec![
                        ("S", s.clone()),
                        ("D", d.clone()),
                        ("u", u.clone()),
                    ]))
                    .unwrap();
                let mut mem: HashMap<String, Vec<f64>> = HashMap::new();
                for p in &k.params {
                    mem.insert(p.name.clone(), vec![0.0; p.words]);
                }
                mem.insert("S".into(), s.data.clone());
                mem.insert("D".into(), d.data.clone());
                mem.insert("u".into(), u.data.clone());
                run_kernel(&k, &mut mem).unwrap();
                let v_ref = ex.value(&m, "v").unwrap();
                assert_eq!(
                    mem["v"], v_ref.data,
                    "factored={factored} decoupled={decoupled}"
                );
            }
        }
    }

    #[test]
    fn axpy_kernel_runs() {
        let (m, k) = setup(&cfdlang::examples::axpy(3), false, true);
        let mut mem: HashMap<String, Vec<f64>> = HashMap::new();
        for p in &k.params {
            mem.insert(p.name.clone(), vec![0.0; p.words]);
        }
        mem.insert("x".into(), vec![1.0; 27]);
        mem.insert("y".into(), vec![2.0; 27]);
        mem.insert("a".into(), vec![3.0]);
        run_kernel(&k, &mut mem).unwrap();
        assert!(mem["o"].iter().all(|&v| v == 5.0));
        drop(m);
    }

    #[test]
    fn op_counts_scale_with_volume() {
        let (_m, k) = setup(&cfdlang::examples::inverse_helmholtz(4), true, true);
        let mut mem: HashMap<String, Vec<f64>> = HashMap::new();
        for p in &k.params {
            mem.insert(p.name.clone(), vec![0.0; p.words]);
        }
        let c = run_kernel(&k, &mut mem).unwrap();
        // 6 stages × 4^4 iterations × (1 mul + 1 acc) + hadamard 4^3.
        let stage_iters = 6 * 4u64.pow(4);
        assert_eq!(c.iters, stage_iters + 4u64.pow(3) + 6 * 4u64.pow(3));
        assert!(c.fp_ops >= 2 * stage_iters);
        assert!(c.addr_muls > 0, "flat addressing costs integer muls");
    }

    #[test]
    fn missing_array_is_error() {
        let (_m, k) = setup(&cfdlang::examples::axpy(2), false, true);
        let mut mem = HashMap::new();
        assert!(run_kernel(&k, &mut mem)
            .unwrap_err()
            .contains("missing array"));
    }

    #[test]
    fn wrong_size_is_error() {
        let (_m, k) = setup(&cfdlang::examples::axpy(2), false, true);
        let mut mem: HashMap<String, Vec<f64>> = HashMap::new();
        for p in &k.params {
            mem.insert(p.name.clone(), vec![0.0; p.words + 1]);
        }
        assert!(run_kernel(&k, &mut mem).unwrap_err().contains("words"));
    }

    #[test]
    fn locals_are_cleaned_up() {
        let (_m, k) = setup(&cfdlang::examples::inverse_helmholtz(3), true, false);
        let mut mem: HashMap<String, Vec<f64>> = HashMap::new();
        for p in &k.params {
            mem.insert(p.name.clone(), vec![0.0; p.words]);
        }
        run_kernel(&k, &mut mem).unwrap();
        assert!(!mem.contains_key("t0"), "locals must not leak");
        assert!(mem.contains_key("v"));
    }
}
