//! The loop-nest program representation shared by the C emitter, the HLS
//! model and the direct evaluator.

/// Role of a kernel parameter (flat 64-bit word array).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamRole {
    /// Written by the host, read by the kernel.
    Input,
    /// Written by the kernel, read by the host.
    Output,
    /// Compiler temporary exported to the PLM (decoupled mode).
    Temp,
}

/// A kernel parameter or local array.
#[derive(Debug, Clone, PartialEq)]
pub struct CParam {
    pub name: String,
    /// Number of 64-bit words.
    pub words: usize,
    pub role: ParamRole,
}

/// An affine address over the loop variables of the enclosing nest
/// (outermost loop is variable 0).
#[derive(Debug, Clone, PartialEq)]
pub struct AffineAddr {
    pub coeffs: Vec<i64>,
    pub constant: i64,
}

impl AffineAddr {
    /// Evaluate at a loop-variable vector.
    pub fn eval(&self, vars: &[i64]) -> i64 {
        self.constant
            + self
                .coeffs
                .iter()
                .zip(vars)
                .map(|(c, v)| c * v)
                .sum::<i64>()
    }

    /// Number of multiply terms a naive C compiler / HLS front end emits
    /// for this address (non-zero, non-unit strides).
    pub fn mul_terms(&self) -> usize {
        self.coeffs.iter().filter(|&&c| c != 0 && c != 1).count()
    }

    /// Number of addition terms.
    pub fn add_terms(&self) -> usize {
        let nz = self.coeffs.iter().filter(|&&c| c != 0).count();
        nz.saturating_sub(1) + usize::from(self.constant != 0 && nz > 0)
    }

    /// Render as a C expression over `vars`.
    pub fn to_c(&self, vars: &[String]) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (d, &c) in self.coeffs.iter().enumerate() {
            match c {
                0 => {}
                1 => parts.push(vars[d].clone()),
                _ => parts.push(format!("{c} * {}", vars[d])),
            }
        }
        if self.constant != 0 || parts.is_empty() {
            parts.push(self.constant.to_string());
        }
        parts.join(" + ")
    }
}

/// A flat array access `name[addr]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrAccess {
    pub array: String,
    pub addr: AffineAddr,
}

/// Scalar C expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    Load(ArrAccess),
    Const(f64),
    /// Reference to a scalar local (accumulator).
    Var(String),
    Bin {
        op: cfdlang::BinOp,
        lhs: Box<CExpr>,
        rhs: Box<CExpr>,
    },
}

impl CExpr {
    /// Count `(loads, flops)` in the expression.
    pub fn counts(&self) -> (usize, usize) {
        match self {
            CExpr::Load(_) => (1, 0),
            CExpr::Const(_) | CExpr::Var(_) => (0, 0),
            CExpr::Bin { lhs, rhs, .. } => {
                let (l1, f1) = lhs.counts();
                let (l2, f2) = rhs.counts();
                (l1 + l2, f1 + f2 + 1)
            }
        }
    }

    /// All array accesses in the expression.
    pub fn loads(&self) -> Vec<&ArrAccess> {
        let mut out = Vec::new();
        self.collect_loads(&mut out);
        out
    }

    fn collect_loads<'a>(&'a self, out: &mut Vec<&'a ArrAccess>) {
        match self {
            CExpr::Load(a) => out.push(a),
            CExpr::Const(_) | CExpr::Var(_) => {}
            CExpr::Bin { lhs, rhs, .. } => {
                lhs.collect_loads(out);
                rhs.collect_loads(out);
            }
        }
    }
}

/// A statement of the loop program.
#[derive(Debug, Clone, PartialEq)]
pub enum CStmt {
    /// `for (int var = 0; var < extent; ++var) body`
    For {
        var: String,
        extent: usize,
        body: Vec<CStmt>,
    },
    /// `double name = init;`
    DeclScalar { name: String, init: f64 },
    /// `name += expr;` (scalar accumulator)
    AccumScalar { name: String, expr: CExpr },
    /// `array[addr] = expr;`
    Store { target: ArrAccess, expr: CExpr },
    /// `array[addr] += expr;` (in-memory accumulation)
    StoreAccum { target: ArrAccess, expr: CExpr },
}

/// A complete kernel: parameters (exported arrays), locals (arrays kept
/// inside the accelerator in non-decoupled mode) and the loop program.
#[derive(Debug, Clone, PartialEq)]
pub struct CKernel {
    pub name: String,
    pub params: Vec<CParam>,
    pub locals: Vec<CParam>,
    pub body: Vec<CStmt>,
}

impl CKernel {
    /// Find a parameter or local by name.
    pub fn array(&self, name: &str) -> Option<&CParam> {
        self.params
            .iter()
            .chain(self.locals.iter())
            .find(|p| p.name == name)
    }

    /// Total words across parameters.
    pub fn param_words(&self) -> usize {
        self.params.iter().map(|p| p.words).sum()
    }

    /// Total words across locals.
    pub fn local_words(&self) -> usize {
        self.locals.iter().map(|p| p.words).sum()
    }

    /// Depth-first visit of all statements.
    pub fn visit_stmts<'a>(&'a self, f: &mut impl FnMut(&'a CStmt)) {
        fn walk<'a>(stmts: &'a [CStmt], f: &mut impl FnMut(&'a CStmt)) {
            for s in stmts {
                f(s);
                if let CStmt::For { body, .. } = s {
                    walk(body, f);
                }
            }
        }
        walk(&self.body, f);
    }

    /// The top-level loop nests (one per schedule group).
    pub fn nests(&self) -> Vec<&CStmt> {
        self.body
            .iter()
            .filter(|s| matches!(s, CStmt::For { .. }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_addr_eval_and_c() {
        let a = AffineAddr {
            coeffs: vec![121, 11, 1],
            constant: 0,
        };
        assert_eq!(a.eval(&[1, 2, 3]), 146);
        let vars = vec!["i0".into(), "i1".into(), "i2".into()];
        assert_eq!(a.to_c(&vars), "121 * i0 + 11 * i1 + i2");
        assert_eq!(a.mul_terms(), 2);
        assert_eq!(a.add_terms(), 2);
    }

    #[test]
    fn affine_addr_constant_only() {
        let a = AffineAddr {
            coeffs: vec![0, 0],
            constant: 7,
        };
        assert_eq!(a.to_c(&["x".into(), "y".into()]), "7");
        assert_eq!(a.mul_terms(), 0);
        assert_eq!(a.add_terms(), 0);
    }

    #[test]
    fn expr_counts() {
        let load = |n: &str| {
            CExpr::Load(ArrAccess {
                array: n.into(),
                addr: AffineAddr {
                    coeffs: vec![1],
                    constant: 0,
                },
            })
        };
        let e = CExpr::Bin {
            op: cfdlang::BinOp::Mul,
            lhs: Box::new(load("a")),
            rhs: Box::new(CExpr::Bin {
                op: cfdlang::BinOp::Add,
                lhs: Box::new(load("b")),
                rhs: Box::new(CExpr::Const(1.0)),
            }),
        };
        assert_eq!(e.counts(), (2, 2));
        assert_eq!(e.loads().len(), 2);
    }
}
