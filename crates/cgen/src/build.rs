//! Build a [`CKernel`] from a scheduled tensor module.

use crate::ir::{AffineAddr, ArrAccess, CExpr, CKernel, CParam, CStmt, ParamRole};
use pschedule::{KernelModel, Schedule};
use teil::ir::{Module, PointExpr, TensorKind};
use teil::layout::LayoutPlan;

/// Codegen options.
#[derive(Debug, Clone)]
pub struct CodegenOptions {
    /// Kernel function name.
    pub name: String,
    /// Decoupled mode (the paper's contribution): temporaries are
    /// exported as parameters and implemented in PLM units. When false,
    /// temporaries stay local to the accelerator (the baseline the paper
    /// compares against: 33 BRAMs vs 18).
    pub decoupled: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            name: "kernel_body".into(),
            decoupled: true,
        }
    }
}

/// Generate the loop program implementing `sched` for `module`.
pub fn build_kernel(
    module: &Module,
    model: &KernelModel,
    sched: &Schedule,
    opts: &CodegenOptions,
) -> CKernel {
    let layout = &model.layout;
    let (params, locals) = build_params(module, layout, opts);
    let mut body = Vec::new();
    for group in sched.groups() {
        body.extend(build_group(module, model, sched, &group));
    }
    CKernel {
        name: opts.name.clone(),
        params,
        locals,
        body,
    }
}

/// Parameter order follows Figure 6: inputs, outputs, then exported
/// temporaries.
fn build_params(
    module: &Module,
    layout: &LayoutPlan,
    opts: &CodegenOptions,
) -> (Vec<CParam>, Vec<CParam>) {
    let mut params = Vec::new();
    let mut locals = Vec::new();
    let mut seen: Vec<teil::layout::ArrayId> = Vec::new();
    let mut push = |arr: teil::layout::ArrayId,
                    role: ParamRole,
                    into_params: bool,
                    params: &mut Vec<CParam>,
                    locals: &mut Vec<CParam>| {
        if seen.contains(&arr) {
            return;
        }
        seen.push(arr);
        let d = &layout.arrays[arr.0];
        let p = CParam {
            name: d.name.clone(),
            words: d.size,
            role,
        };
        if into_params {
            params.push(p);
        } else {
            locals.push(p);
        }
    };
    for kind in [TensorKind::Input, TensorKind::Output, TensorKind::Temp] {
        for id in module.of_kind(kind) {
            let arr = layout.placement(id).array;
            let role = match kind {
                TensorKind::Input => ParamRole::Input,
                TensorKind::Output => ParamRole::Output,
                TensorKind::Temp => ParamRole::Temp,
            };
            let exported = kind != TensorKind::Temp || opts.decoupled;
            push(arr, role, exported, &mut params, &mut locals);
        }
    }
    (params, locals)
}

/// Build the loop nest(s) for one schedule group (fused statements share
/// loops when their permuted extents agree; otherwise they are emitted
/// sequentially, which is always legal for a validated schedule).
fn build_group(
    module: &Module,
    model: &KernelModel,
    sched: &Schedule,
    group: &[usize],
) -> Vec<CStmt> {
    if group.len() > 1 && fusable_shapes(module, model, sched, group) {
        return vec![build_fused_nest(module, model, sched, group)];
    }
    group
        .iter()
        .flat_map(|&si| build_single_nest(module, model, sched, si))
        .collect()
}

fn fusable_shapes(module: &Module, model: &KernelModel, sched: &Schedule, group: &[usize]) -> bool {
    let first = group[0];
    let ext0 = permuted_extents(model, sched, first);
    group
        .iter()
        .all(|&si| permuted_extents(model, sched, si) == ext0 && !module.stmts[si].is_reduction())
}

fn permuted_extents(model: &KernelModel, sched: &Schedule, si: usize) -> Vec<usize> {
    sched.perms[si]
        .iter()
        .map(|&v| model.stmts[si].extents[v])
        .collect()
}

/// One fused loop nest: shared loops, bodies in micro order.
fn build_fused_nest(
    module: &Module,
    model: &KernelModel,
    sched: &Schedule,
    group: &[usize],
) -> CStmt {
    let ext = permuted_extents(model, sched, group[0]);
    let vars: Vec<String> = (0..ext.len()).map(|d| format!("i{d}")).collect();
    let mut body: Vec<CStmt> = Vec::new();
    for &si in group {
        body.push(store_stmt(module, model, sched, si, &vars, ext.len()));
    }
    wrap_loops(&vars, &ext, body)
}

/// A single statement's loop nest. Reductions with all reduce dims
/// innermost use a scalar accumulator; otherwise fall back to zero-init +
/// in-memory accumulation.
fn build_single_nest(
    module: &Module,
    model: &KernelModel,
    sched: &Schedule,
    si: usize,
) -> Vec<CStmt> {
    let stmt = &module.stmts[si];
    let pst = &model.stmts[si];
    let perm = &sched.perms[si];
    let rank = pst.rank();
    let out_rank = pst.out_rank;
    let ext = permuted_extents(model, sched, si);
    let vars: Vec<String> = (0..rank).map(|d| format!("i{d}")).collect();

    if !stmt.is_reduction() {
        let body = vec![store_stmt(module, model, sched, si, &vars, rank)];
        return vec![wrap_loops(&vars, &ext, body)];
    }

    // Accumulator form requires every reduction variable in the loop
    // suffix.
    let reduce_rank = stmt.reduce_rank();
    let suffix_ok = perm[rank - reduce_rank..].iter().all(|&v| v >= out_rank);
    if suffix_ok {
        let acc = "acc".to_string();
        let expr = point_to_cexpr(module, model, sched, si, &stmt.expr);
        let target = write_access(module, model, sched, si);
        // Innermost reduction loops around the accumulation.
        let mut inner: Vec<CStmt> = vec![CStmt::AccumScalar {
            name: acc.clone(),
            expr,
        }];
        for d in (out_rank..rank).rev() {
            inner = vec![CStmt::For {
                var: vars[d].clone(),
                extent: ext[d],
                body: inner,
            }];
        }
        let mut body = vec![CStmt::DeclScalar {
            name: acc.clone(),
            init: 0.0,
        }];
        body.extend(inner);
        body.push(CStmt::Store {
            target,
            expr: CExpr::Var(acc),
        });
        let mut nest = body;
        for d in (0..out_rank).rev() {
            nest = vec![CStmt::For {
                var: vars[d].clone(),
                extent: ext[d],
                body: nest,
            }];
        }
        return nest;
    }

    // General form: zero-init the output, then accumulate in memory.
    let out_ext: Vec<usize> = module.shape(stmt.out).to_vec();
    let zvars: Vec<String> = (0..out_ext.len()).map(|d| format!("z{d}")).collect();
    let wp = model.layout.placement(stmt.out);
    let zero_target = ArrAccess {
        array: model.layout.arrays[wp.array.0].name.clone(),
        addr: AffineAddr {
            coeffs: wp.strides.clone(),
            constant: wp.offset,
        },
    };
    let zero_nest = wrap_loops(
        &zvars,
        &out_ext,
        vec![CStmt::Store {
            target: zero_target,
            expr: CExpr::Const(0.0),
        }],
    );
    let expr = point_to_cexpr(module, model, sched, si, &stmt.expr);
    let target = write_access(module, model, sched, si);
    let accum_nest = wrap_loops(&vars, &ext, vec![CStmt::StoreAccum { target, expr }]);
    vec![zero_nest, accum_nest]
}

/// Plain (non-reduction) store for a statement.
fn store_stmt(
    module: &Module,
    model: &KernelModel,
    sched: &Schedule,
    si: usize,
    _vars: &[String],
    _depth: usize,
) -> CStmt {
    let stmt = &module.stmts[si];
    CStmt::Store {
        target: write_access(module, model, sched, si),
        expr: point_to_cexpr(module, model, sched, si, &stmt.expr),
    }
}

/// The write access of a statement, with loop variables in permuted
/// order.
fn write_access(module: &Module, model: &KernelModel, sched: &Schedule, si: usize) -> ArrAccess {
    let stmt = &module.stmts[si];
    let wp = model.layout.placement(stmt.out);
    let out_rank = model.stmts[si].out_rank;
    let index_map: Vec<usize> = (0..out_rank).collect();
    ArrAccess {
        array: model.layout.arrays[wp.array.0].name.clone(),
        addr: addr_for(&index_map, &wp.strides, wp.offset, &sched.perms[si]),
    }
}

/// Translate a point expression into a C expression under a loop
/// permutation.
#[allow(clippy::only_used_in_recursion)]
fn point_to_cexpr(
    module: &Module,
    model: &KernelModel,
    sched: &Schedule,
    si: usize,
    e: &PointExpr,
) -> CExpr {
    match e {
        PointExpr::Const(c) => CExpr::Const(*c),
        PointExpr::Access { tensor, index_map } => {
            let p = model.layout.placement(*tensor);
            CExpr::Load(ArrAccess {
                array: model.layout.arrays[p.array.0].name.clone(),
                addr: addr_for(index_map, &p.strides, p.offset, &sched.perms[si]),
            })
        }
        PointExpr::Bin { op, lhs, rhs } => CExpr::Bin {
            op: *op,
            lhs: Box::new(point_to_cexpr(module, model, sched, si, lhs)),
            rhs: Box::new(point_to_cexpr(module, model, sched, si, rhs)),
        },
    }
}

/// Affine address over *loop* variables: loop depth `d` iterates
/// iteration variable `perm[d]`, so stride contributions land at the
/// depth that iterates the accessed variable.
fn addr_for(index_map: &[usize], strides: &[i64], offset: i64, perm: &[usize]) -> AffineAddr {
    let mut coeffs = vec![0i64; perm.len()];
    for (dim, &v) in index_map.iter().enumerate() {
        let depth = perm
            .iter()
            .position(|&p| p == v)
            .expect("iteration variable in permutation");
        coeffs[depth] += strides[dim];
    }
    AffineAddr {
        coeffs,
        constant: offset,
    }
}

fn wrap_loops(vars: &[String], extents: &[usize], body: Vec<CStmt>) -> CStmt {
    let mut cur = body;
    for d in (0..vars.len()).rev() {
        cur = vec![CStmt::For {
            var: vars[d].clone(),
            extent: extents[d],
            body: cur,
        }];
    }
    match cur.into_iter().next() {
        Some(s) => s,
        None => unreachable!("loop body empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pschedule::Dependences;
    use teil::layout::LayoutPlan;
    use teil::lower::lower;
    use teil::transform::factorize;

    fn setup(src: &str, factored: bool) -> (Module, KernelModel, Schedule) {
        let typed = cfdlang::check(&cfdlang::parse(src).unwrap()).unwrap();
        let mut m = lower(&typed).unwrap();
        if factored {
            m = factorize(&m);
        }
        let layout = LayoutPlan::row_major(&m);
        let km = KernelModel::build(&m, &layout);
        let s = Schedule::reference(&km);
        (m, km, s)
    }

    #[test]
    fn params_follow_figure6_order() {
        let (m, km, s) = setup(&cfdlang::examples::inverse_helmholtz(11), true);
        let k = build_kernel(&m, &km, &s, &CodegenOptions::default());
        let names: Vec<&str> = k.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["S", "D", "u", "v", "t", "r", "t0", "t1", "t2", "t3"]
        );
        assert!(k.locals.is_empty());
        assert_eq!(k.params[0].words, 121);
        assert_eq!(k.params[2].words, 1331);
    }

    #[test]
    fn non_decoupled_keeps_temps_local() {
        let (m, km, s) = setup(&cfdlang::examples::inverse_helmholtz(11), true);
        let opts = CodegenOptions {
            decoupled: false,
            ..Default::default()
        };
        let k = build_kernel(&m, &km, &s, &opts);
        let names: Vec<&str> = k.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["S", "D", "u", "v"]);
        assert_eq!(k.locals.len(), 6);
        assert_eq!(k.local_words(), 6 * 1331);
    }

    #[test]
    fn contraction_uses_scalar_accumulator() {
        let (m, km, s) = setup(&cfdlang::examples::inverse_helmholtz(4), true);
        let k = build_kernel(&m, &km, &s, &CodegenOptions::default());
        let mut decls = 0;
        k.visit_stmts(&mut |st| {
            if matches!(st, CStmt::DeclScalar { .. }) {
                decls += 1;
            }
        });
        // Six contraction stages, each with one accumulator.
        assert_eq!(decls, 6);
    }

    #[test]
    fn permutation_moving_reduction_out_falls_back() {
        let (m, km, mut s) = setup(
            "var input S : [3 3]\nvar input u : [3]\nvar output o : [3]\no = S # u . [[1 2]]",
            false,
        );
        // o[i] = sum_l S[i,l]u[l]: vars (i=0, l=1); permute reduction out.
        s.perms[0] = vec![1, 0];
        let deps = Dependences::analyze(&km);
        assert!(pschedule::legal(&km, &deps, &s));
        let k = build_kernel(&m, &km, &s, &CodegenOptions::default());
        let mut has_accum_mem = false;
        k.visit_stmts(&mut |st| {
            if matches!(st, CStmt::StoreAccum { .. }) {
                has_accum_mem = true;
            }
        });
        assert!(
            has_accum_mem,
            "reduction-outer schedule needs memory accumulation"
        );
    }

    #[test]
    fn addresses_respect_permutation() {
        let (m, km, mut s) = setup(
            "var input A : [4 8]\nvar output o : [4 8]\no = A + A",
            false,
        );
        s.perms[0] = vec![1, 0]; // iterate columns outer
        let k = build_kernel(&m, &km, &s, &CodegenOptions::default());
        // Store target: o[8*i1 + i0] — loop var 0 now iterates x1.
        let mut seen = false;
        k.visit_stmts(&mut |st| {
            if let CStmt::Store { target, .. } = st {
                assert_eq!(target.addr.coeffs, vec![1, 8]);
                seen = true;
            }
        });
        assert!(seen);
    }

    #[test]
    fn hadamard_body_is_two_loads_one_store() {
        let (m, km, s) = setup(&cfdlang::examples::inverse_helmholtz(4), false);
        let k = build_kernel(&m, &km, &s, &CodegenOptions::default());
        let mut found = false;
        k.visit_stmts(&mut |st| {
            if let CStmt::Store { target, expr } = st {
                if target.array == "r" {
                    assert_eq!(expr.counts(), (2, 1));
                    found = true;
                }
            }
        });
        assert!(found);
    }
}
