//! `runtime` — request-level serving on one compiled accelerator
//! system.
//!
//! The compiler flow ends with a [`sysgen::MultiSystemDesign`]: one
//! shared-memory accelerator system for one CFD time-step. A production
//! deployment does not run that system for a single owner — it serves a
//! **stream of independent simulation requests** (each with its own
//! input tensors) and must decide how to share the hardware between
//! them. This crate is that layer:
//!
//! 1. **Admission** — [`generate_requests`] (or caller-built
//!    [`Request`]s) supply the queue; arrivals are either `Closed` (all
//!    queued at t=0, the throughput benchmark) or `Poisson` (open
//!    arrivals at a given rate, the latency benchmark).
//! 2. **Batching** — a [`BatchPolicy`] decides how many requests
//!    coalesce into one hardware round: `Auto` fills the design's batch
//!    factor `m` greedily (take whatever is queued when the hardware
//!    frees, never wait for stragglers), `Fixed(K)` caps the fill at
//!    `K`, `Disabled` serves one request per round — the sequential
//!    reference the differential tests compare against.
//! 3. **Time multiplexing** — [`zynq::simulate_batch_stream`] schedules
//!    the rounds on the design in closed tick arithmetic, with
//!    double-buffered DMA overlapping the transfers of neighbouring
//!    rounds when `overlap_dma` is set (and every stage keeps a spare
//!    PLM set).
//! 4. **Fault tolerance** — an armed [`zynq::FaultPlan`] injects
//!    deterministic faults (DMA stalls, transient round errors, payload
//!    corruption, hard board failure) into the schedule, and the
//!    [`RecoveryPolicy`] decides what happens next: per-request retries
//!    with capped exponential backoff in tick space, per-request
//!    deadlines that shed late work, round-level requeue after a failed
//!    round, and drain/pause/resume degradation across a board outage.
//!    Every request ends in a structured [`RequestOutcome`]. The empty
//!    plan is tick- and bit-identical to the fault-free scheduler
//!    (`tests/fault_injection.rs` proves it).
//! 5. **Execution** — each completed request's tensors run through the
//!    generated kernel chain ([`zynq::run_program_chain`]), so the
//!    service path returns real outputs, not just timings. Batching and
//!    retries never change results: outputs are bit-identical to
//!    running every request alone, and with batching disabled the tick
//!    schedule is exactly the sequential one
//!    (`tests/runtime_differential.rs` proves both).
//! 6. **Reporting** — the [`ServiceReport`] carries per-request latency
//!    traces and outcomes, p50/p99 latency (over all requests and over
//!    completed-only), requests/sec offered vs goodput, and the
//!    DMA/compute overlap fraction, as a table or JSON (`cfdc serve`,
//!    with `--faults seed:RATE --deadline T --retries N`).
//!
//! The typical entry point is `cfd_core::program::ProgramArtifacts::
//! serve`, which wires compiled artifacts into this crate; `cfdc serve`
//! drives it from the command line.

pub mod fleet;
pub mod json;

pub use fleet::{
    serve_fleet, BoardReport, FleetBoard, FleetOptions, FleetOutcome, FleetReport, RoutePolicy,
};
pub use json::json_escape;

use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sysgen::MultiSystemDesign;
use teil::ir::Module;
use teil::Tensor;
use zynq::des::{secs, to_secs, Time};
use zynq::fault::{FaultPlan, RecoverySpec};
use zynq::{SimConfig, StreamStatus};

/// Structured runtime-layer errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Poisson arrivals need a positive, finite rate.
    InvalidRate { rate_rps: f64 },
    /// An arrival-process spec that is neither `closed` nor `poisson`.
    UnknownArrival { spec: String },
    /// A serve call with an empty request queue.
    NoRequests,
    /// A fleet serve call with an empty board list.
    NoBoards,
    /// The functional execution path failed (kernel chain error).
    Exec(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidRate { rate_rps } => write!(
                f,
                "poisson arrivals need a positive finite rate, got {rate_rps}"
            ),
            RuntimeError::UnknownArrival { spec } => {
                write!(f, "unknown arrival process '{spec}' (closed | poisson)")
            }
            RuntimeError::NoRequests => write!(f, "no requests to serve"),
            RuntimeError::NoBoards => write!(f, "fleet serving needs at least one board"),
            RuntimeError::Exec(e) => write!(f, "request execution failed: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// How requests enter the queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Every request queued at t = 0 (closed backlog — the throughput
    /// view).
    Closed,
    /// Open Poisson arrivals at `rate_rps` requests per second
    /// (exponential interarrival times, deterministic per seed).
    Poisson { rate_rps: f64 },
}

impl Arrival {
    /// Parse a CLI spec: `closed` or `poisson` (the rate comes
    /// separately). Shares [`Arrival::validate`] with the request
    /// generators, so the CLI and the library reject exactly the same
    /// inputs with the same structured error.
    pub fn parse(s: &str, rate_rps: f64) -> Result<Arrival, RuntimeError> {
        let arrival = match s {
            "closed" => Arrival::Closed,
            "poisson" => Arrival::Poisson { rate_rps },
            other => {
                return Err(RuntimeError::UnknownArrival {
                    spec: other.to_string(),
                })
            }
        };
        arrival.validate()?;
        Ok(arrival)
    }

    /// The one validity check for arrival processes: a Poisson rate
    /// that is zero, negative, or non-finite is a structured
    /// [`RuntimeError::InvalidRate`] — the interarrival draw
    /// `-ln(1-u)/rate` would otherwise yield infinite or NaN arrival
    /// times that poison the whole schedule.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        if let Arrival::Poisson { rate_rps } = self {
            if !rate_rps.is_finite() || *rate_rps <= 0.0 {
                return Err(RuntimeError::InvalidRate {
                    rate_rps: *rate_rps,
                });
            }
        }
        Ok(())
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Arrival::Closed => "closed".into(),
            Arrival::Poisson { rate_rps } => format!("poisson({rate_rps:.1}/s)"),
        }
    }
}

/// How many requests share one hardware round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Fill the design's `m` PLM sets greedily (adaptive: a round takes
    /// whatever is queued when the hardware frees, at least one).
    Auto,
    /// Cap the fill at `K` (clamped to `[1, m]`).
    Fixed(usize),
    /// One request per round — the sequential reference.
    Disabled,
}

impl BatchPolicy {
    /// The fill limit against a design with `m` PLM sets.
    pub fn capacity(&self, m: usize) -> usize {
        match self {
            BatchPolicy::Auto => m,
            BatchPolicy::Fixed(k) => (*k).clamp(1, m),
            BatchPolicy::Disabled => 1,
        }
    }

    /// Parse a CLI spec: `auto`, `off`, or a fixed fill `K >= 1`.
    pub fn parse(s: &str) -> Result<BatchPolicy, String> {
        match s {
            "auto" => Ok(BatchPolicy::Auto),
            "off" => Ok(BatchPolicy::Disabled),
            other => match other.parse::<usize>() {
                Ok(k) if k >= 1 => Ok(BatchPolicy::Fixed(k)),
                _ => Err(format!(
                    "unknown batch policy '{other}' (auto | off | K>=1)"
                )),
            },
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            BatchPolicy::Auto => "auto".into(),
            BatchPolicy::Fixed(k) => format!("fixed({k})"),
            BatchPolicy::Disabled => "off".into(),
        }
    }
}

/// What the service does when faults strike: retries, backoff,
/// deadlines. Converted to a tick-space [`zynq::RecoverySpec`] for the
/// scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Retries allowed after the first attempt (at most
    /// `max_retries + 1` attempts per request).
    pub max_retries: u32,
    /// Base backoff after the first failure, seconds; doubles per
    /// further failure. 0 = requeue immediately.
    pub backoff_s: f64,
    /// Cap on the exponential backoff, seconds; 0 = 16x the base.
    pub backoff_cap_s: f64,
    /// Per-request latency budget from arrival; requests that cannot
    /// (or did not) complete inside it are timed out.
    pub deadline_s: Option<f64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff_s: 0.0,
            backoff_cap_s: 0.0,
            deadline_s: None,
        }
    }
}

impl RecoveryPolicy {
    /// Tick-space view for the scheduler.
    pub fn to_spec(self) -> RecoverySpec {
        let backoff_ticks = secs(self.backoff_s.max(0.0));
        RecoverySpec {
            max_retries: self.max_retries,
            backoff_ticks,
            backoff_cap_ticks: if self.backoff_cap_s > 0.0 {
                secs(self.backoff_cap_s)
            } else {
                backoff_ticks.saturating_mul(16)
            },
            deadline_ticks: self.deadline_s.map(secs),
        }
    }

    /// Display label (stable — part of the replayable report).
    pub fn label(&self) -> String {
        let mut s = format!("retries={}", self.max_retries);
        if self.backoff_s > 0.0 {
            s.push_str(&format!(",backoff={}s", self.backoff_s));
        }
        if let Some(d) = self.deadline_s {
            s.push_str(&format!(",deadline={d}s"));
        }
        s
    }
}

/// Online serving policy: whether `serve` runs the event-loop reactor
/// ([`zynq::simulate_online_stream`]) and which policies it arms.
///
/// The neutral policy on the event loop (`event_loop: true`, nothing
/// armed) is tick- and bit-identical to the offline fold — the
/// differential proptests at the workspace root pin the whole
/// `ServiceReport` JSON byte for byte — so flipping the loop on is
/// observable only through policy effects, never through numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlinePolicy {
    /// Run the DES reactor even with no policy armed (differential
    /// harness; also what DSE service probes use).
    pub event_loop: bool,
    /// p99 latency budget (SLO), seconds: arms adaptive batching (close
    /// a round early when the oldest queued request's budget is at
    /// risk) and sheds work that cannot complete inside the budget.
    pub slo_s: Option<f64>,
    /// Wait-queue depth beyond which new arrivals are shed
    /// (backpressure under overload).
    pub shed_queue: Option<usize>,
    /// Priority tiers (1 = FIFO). Requests carry a [`Request::tier`]
    /// (0 = highest); batch formation preempts lower tiers at every
    /// round boundary.
    pub priority_tiers: u8,
}

impl Default for OnlinePolicy {
    fn default() -> Self {
        OnlinePolicy {
            event_loop: false,
            slo_s: None,
            shed_queue: None,
            priority_tiers: 1,
        }
    }
}

impl OnlinePolicy {
    /// Whether `serve` routes through the event loop at all.
    pub fn enabled(&self) -> bool {
        self.event_loop || self.armed()
    }

    /// Whether any policy deviates from FIFO capacity-fill. The report
    /// emits its online section only when this holds, so a bare
    /// `event_loop` run stays byte-identical to the offline scheduler.
    pub fn armed(&self) -> bool {
        self.slo_s.is_some() || self.shed_queue.is_some() || self.priority_tiers > 1
    }

    /// Display label (stable — part of the replayable report).
    pub fn label(&self) -> String {
        if !self.armed() {
            return "fifo".into();
        }
        let mut parts = Vec::new();
        if let Some(slo) = self.slo_s {
            parts.push(format!("slo={slo}s"));
        }
        if let Some(q) = self.shed_queue {
            parts.push(format!("shed={q}"));
        }
        if self.priority_tiers > 1 {
            parts.push(format!("tiers={}", self.priority_tiers));
        }
        parts.join(",")
    }
}

/// How one request's service ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Outputs drained and passed their checksum inside the deadline.
    Completed,
    /// The per-request deadline expired first.
    TimedOut,
    /// Dropped because the board died and never recovered.
    Shed,
    /// Every allowed attempt failed.
    Failed { attempts: u32 },
}

impl RequestOutcome {
    /// Stable JSON/label token.
    pub fn label(&self) -> &'static str {
        match self {
            RequestOutcome::Completed => "completed",
            RequestOutcome::TimedOut => "timed_out",
            RequestOutcome::Shed => "shed",
            RequestOutcome::Failed { .. } => "failed",
        }
    }
}

/// Options for one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeOptions {
    /// Requests to generate/serve.
    pub requests: usize,
    pub arrival: Arrival,
    pub batch: BatchPolicy,
    /// Double-buffer the DMA across rounds (ignored — serial — when
    /// batching is `Disabled`, so the sequential reference stays exact).
    pub overlap_dma: bool,
    /// Seed for request inputs and Poisson arrivals.
    pub seed: u64,
    /// Run every request's tensors through the generated kernel chain
    /// (off = timing only).
    pub execute: bool,
    /// Deterministic fault injection; `FaultPlan::none()` leaves the
    /// schedule tick-identical to the fault-free simulator.
    pub faults: FaultPlan,
    /// Retry/timeout policy applied when faults (or deadlines) are
    /// armed.
    pub recovery: RecoveryPolicy,
    /// Online serving: event-loop routing, SLO batching, priority
    /// tiers, backpressure shedding.
    pub online: OnlinePolicy,
    /// Host-side cost constants (the `elements` field is unused — the
    /// stream works in requests, not elements).
    pub sim: SimConfig,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            requests: 64,
            arrival: Arrival::Closed,
            batch: BatchPolicy::Auto,
            overlap_dma: true,
            seed: 42,
            execute: false,
            faults: FaultPlan::none(),
            recovery: RecoveryPolicy::default(),
            online: OnlinePolicy::default(),
            sim: SimConfig::default(),
        }
    }
}

/// One simulation request: an independent invocation of the compiled
/// program with its own external input tensors.
#[derive(Debug, Clone)]
pub struct Request {
    pub id: usize,
    /// Arrival time (seconds from service start).
    pub arrival_s: f64,
    /// Priority tier, 0 = highest. Only consulted when
    /// [`OnlinePolicy::priority_tiers`] > 1.
    pub tier: u8,
    /// External inputs by tensor name (program-global, as in
    /// [`zynq::run_program_chain`]).
    pub inputs: HashMap<String, Tensor>,
}

/// Generate `n` timing-only requests (empty inputs) with arrival times
/// drawn from `arrival`. Deterministic per seed, and arrival-identical
/// to [`generate_requests`] for the same seed — the timing-only serve
/// paths (reports, benches) schedule exactly the stream the executing
/// path would.
///
/// Degenerate Poisson rates are rejected through the single
/// [`Arrival::validate`] path the CLI parser also uses.
pub fn generate_timing_requests(
    n: usize,
    arrival: &Arrival,
    seed: u64,
) -> Result<Vec<Request>, RuntimeError> {
    arrival.validate()?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_A881_0CA7_F00Du64);
    let mut t = 0.0f64;
    Ok((0..n)
        .map(|id| {
            let arrival_s = match arrival {
                Arrival::Closed => 0.0,
                Arrival::Poisson { rate_rps } => {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    t += -(1.0 - u).ln() / rate_rps;
                    t
                }
            };
            Request {
                id,
                arrival_s,
                tier: 0,
                inputs: HashMap::new(),
            }
        })
        .collect())
}

/// Generate `n` requests with random input tensors drawn per request
/// and arrival times drawn from `arrival`. Deterministic per seed.
/// Rejects degenerate Poisson rates like [`generate_timing_requests`].
pub fn generate_requests(
    modules: &[&Module],
    n: usize,
    arrival: &Arrival,
    seed: u64,
) -> Result<Vec<Request>, RuntimeError> {
    let mut requests = generate_timing_requests(n, arrival, seed)?;
    for req in &mut requests {
        req.inputs = zynq::random_program_inputs(modules, seed.wrapping_add(req.id as u64));
    }
    Ok(requests)
}

/// Per-request service trace (all times in seconds from service start).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    pub id: usize,
    pub arrival_s: f64,
    /// When the request's (last) round started loading. Meaningful only
    /// for requests that were admitted at least once.
    pub admitted_s: f64,
    /// When the request resolved: outputs drained for `Completed`, the
    /// give-up tick otherwise.
    pub completed_s: f64,
    /// `completed - arrival`.
    pub latency_s: f64,
    /// Hardware rounds the request participated in.
    pub attempts: u32,
    pub outcome: RequestOutcome,
}

/// Aggregate + per-request results of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    pub requests: usize,
    pub policy: BatchPolicy,
    pub arrival: Arrival,
    /// Effective fill limit per round.
    pub capacity: usize,
    /// Whether the double-buffered scheduler ran (overlap requested,
    /// batching enabled, and the design keeps a spare PLM set per
    /// stage); `overlap_fraction` is the measured quantity — it can be
    /// 0 under sparse arrivals even when this is true.
    pub overlap_dma: bool,
    /// Hardware rounds dispatched.
    pub rounds: usize,
    /// Rounds resolved by the closed-tick fast-forward.
    pub fast_forwarded_rounds: usize,
    /// Mean requests per round.
    pub mean_fill: f64,
    /// Exact tick totals (picoseconds) — the differential tests compare
    /// these, not rounded floats.
    pub exec_ticks: u64,
    pub transfer_ticks: u64,
    pub overlapped_ticks: u64,
    pub makespan_ticks: u64,
    pub makespan_s: f64,
    pub throughput_rps: f64,
    /// Latency statistics over *all* requests (for non-completed ones,
    /// resolution time - arrival).
    pub latency_mean_s: f64,
    pub latency_p50_s: f64,
    pub latency_p99_s: f64,
    pub latency_max_s: f64,
    /// p99 latency over completed requests only; `None` when nothing
    /// completed (an empty set has no percentile — emitted as `null`
    /// in JSON and `-` in tables rather than a misleading 0).
    pub latency_p99_completed_s: Option<f64>,
    /// Fraction of DMA time hidden behind compute.
    pub overlap_fraction: f64,
    /// Reliability: terminal outcome counts.
    pub completed: usize,
    /// Requests that needed more than one attempt (any terminal state).
    pub retried: usize,
    pub timed_out: usize,
    pub shed: usize,
    pub failed: usize,
    /// Rounds aborted by transient errors.
    pub transient_faults: usize,
    /// Rounds whose input DMA stalled.
    pub dma_stalls: usize,
    /// Checksum failures detected at drain.
    pub corrupt_payloads: usize,
    /// Offered load: all requests over the makespan (== throughput).
    pub offered_rps: f64,
    /// Goodput: completed requests over the makespan; `None` when
    /// nothing completed (same empty-set semantics as
    /// `latency_p99_completed_s`).
    pub goodput_rps: Option<f64>,
    /// Canonical fault-plan label (`"none"` when unarmed).
    pub fault_plan: String,
    /// The recovery policy in force.
    pub recovery: RecoveryPolicy,
    /// Whether the online event loop served this run.
    pub online: bool,
    /// The online policy in force (reported only when armed — a bare
    /// event-loop run stays byte-identical to the offline report).
    pub online_policy: OnlinePolicy,
    /// Arrivals shed at admission by queue-depth backpressure.
    pub backpressure_shed: usize,
    /// Rounds the SLO batcher closed early (below capacity with more
    /// work still on the way).
    pub early_closed_rounds: usize,
    /// Per-request traces, in request-id order.
    pub traces: Vec<RequestTrace>,
}

/// A serving run's report plus (when `execute` was set) every request's
/// output tensors, `"kernel.tensor"` → values. `outputs[i]` belongs to
/// `requests[i]` of the [`serve`] call (caller order), matching each
/// request by position, not by id.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    pub report: ServiceReport,
    pub outputs: Vec<HashMap<String, Vec<f64>>>,
}

/// Nearest-rank percentile of a sorted tick slice — the one definition
/// every latency figure (service reports, DSE probes) shares.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Serve `requests` on `design`: schedule the batched stream (under the
/// fault plan and recovery policy in `opts`), compute the service
/// statistics and (when `opts.execute`) run every completed request
/// through the generated kernel chain. `names`/`modules`/`kernels` are
/// the compiled program's stages in chain order (as in
/// [`zynq::run_program_chain`]); `kernels` may be empty when
/// `opts.execute` is off.
///
/// With `FaultPlan::none()` and no deadline the schedule is tick- and
/// bit-identical to the fault-free stream; retries never change
/// completed outputs (the functional path runs each request's own
/// tensors, batching and retries share hardware, never data).
pub fn serve(
    design: &MultiSystemDesign,
    names: &[String],
    modules: &[&Module],
    kernels: &[&cgen::CKernel],
    requests: &[Request],
    opts: &RuntimeOptions,
) -> Result<ServeOutcome, RuntimeError> {
    if requests.is_empty() {
        return Err(RuntimeError::NoRequests);
    }
    // Admission order: arrival time, ties by id (stable).
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        requests[a]
            .arrival_s
            .total_cmp(&requests[b].arrival_s)
            .then(requests[a].id.cmp(&requests[b].id))
    });
    let arrivals: Vec<Time> = order.iter().map(|&i| secs(requests[i].arrival_s)).collect();
    let capacity = opts.batch.capacity(design.config.m);
    let overlap = opts.overlap_dma && opts.batch != BatchPolicy::Disabled;
    let spec = opts.recovery.to_spec();
    let (fso, backpressure_shed, early_closed_rounds) = if opts.online.enabled() {
        let tiers = if order.iter().any(|&i| requests[i].tier != 0) {
            order.iter().map(|&i| requests[i].tier).collect()
        } else {
            Vec::new()
        };
        let online_spec = zynq::OnlineSpec {
            slo_ticks: opts.online.slo_s.map(secs),
            max_queue: opts.online.shed_queue,
            tiers,
        };
        let oo = zynq::simulate_online_stream(
            design,
            &opts.sim,
            &arrivals,
            capacity,
            overlap,
            &opts.faults,
            &spec,
            &online_spec,
        );
        (oo.fault, oo.backpressure_shed, oo.early_closed_rounds)
    } else {
        let fso = zynq::simulate_faulty_stream(
            design,
            &opts.sim,
            &arrivals,
            capacity,
            overlap,
            &opts.faults,
            &spec,
        );
        (fso, 0, 0)
    };
    let stream = &fso.stream;

    // Map the stream's arrival-order results back to request ids.
    let outcome_at = |pos: usize| -> RequestOutcome {
        match fso.statuses[pos] {
            StreamStatus::Completed => RequestOutcome::Completed,
            StreamStatus::TimedOut => RequestOutcome::TimedOut,
            StreamStatus::Shed => RequestOutcome::Shed,
            StreamStatus::Failed => RequestOutcome::Failed {
                attempts: fso.attempts[pos],
            },
        }
    };
    let mut traces: Vec<RequestTrace> = order
        .iter()
        .enumerate()
        .map(|(pos, &i)| {
            let arrival = arrivals[pos];
            let resolved = fso.resolved_ticks[pos];
            RequestTrace {
                id: requests[i].id,
                arrival_s: to_secs(arrival),
                admitted_s: to_secs(stream.admitted_ticks[pos]),
                completed_s: to_secs(resolved),
                latency_s: to_secs(resolved.saturating_sub(arrival)),
                attempts: fso.attempts[pos],
                outcome: outcome_at(pos),
            }
        })
        .collect();
    traces.sort_by_key(|t| t.id);

    let mut latency_ticks: Vec<u64> = fso
        .resolved_ticks
        .iter()
        .zip(&arrivals)
        .map(|(c, a)| c.saturating_sub(*a))
        .collect();
    latency_ticks.sort_unstable();
    let mut completed_latency_ticks: Vec<u64> = fso
        .resolved_ticks
        .iter()
        .zip(&arrivals)
        .zip(&fso.statuses)
        .filter(|(_, &s)| s == StreamStatus::Completed)
        .map(|((c, a), _)| c.saturating_sub(*a))
        .collect();
    completed_latency_ticks.sort_unstable();
    let count = |want: StreamStatus| fso.statuses.iter().filter(|&&s| s == want).count();
    let completed = count(StreamStatus::Completed);
    let n = requests.len();
    let makespan_s = to_secs(stream.makespan_ticks);
    let per_s = |k: usize| {
        if makespan_s > 0.0 {
            k as f64 / makespan_s
        } else {
            0.0
        }
    };
    let report = ServiceReport {
        requests: n,
        policy: opts.batch,
        arrival: opts.arrival,
        capacity,
        overlap_dma: stream.double_buffered,
        rounds: stream.rounds(),
        fast_forwarded_rounds: stream.fast_forwarded_rounds,
        mean_fill: n as f64 / stream.rounds().max(1) as f64,
        exec_ticks: stream.exec_ticks,
        transfer_ticks: stream.transfer_ticks,
        overlapped_ticks: stream.overlapped_ticks,
        makespan_ticks: stream.makespan_ticks,
        makespan_s,
        throughput_rps: per_s(n),
        latency_mean_s: to_secs(latency_ticks.iter().sum::<u64>() / n as u64),
        latency_p50_s: to_secs(percentile(&latency_ticks, 0.50)),
        latency_p99_s: to_secs(percentile(&latency_ticks, 0.99)),
        latency_max_s: to_secs(*latency_ticks.last().unwrap()),
        latency_p99_completed_s: (completed > 0)
            .then(|| to_secs(percentile(&completed_latency_ticks, 0.99))),
        overlap_fraction: stream.overlap_fraction(),
        completed,
        retried: fso.attempts.iter().filter(|&&a| a > 1).count(),
        timed_out: count(StreamStatus::TimedOut),
        shed: count(StreamStatus::Shed),
        failed: count(StreamStatus::Failed),
        transient_faults: fso.transient_faults,
        dma_stalls: fso.dma_stalls,
        corrupt_payloads: fso.corrupt_payloads,
        offered_rps: per_s(n),
        goodput_rps: (completed > 0).then(|| per_s(completed)),
        fault_plan: opts.faults.label(),
        recovery: opts.recovery,
        online: opts.online.enabled(),
        online_policy: opts.online.clone(),
        backpressure_shed,
        early_closed_rounds,
        traces,
    };

    // Functional path: every completed request's tensors through the
    // generated chain, independent of the batch schedule and of how
    // many retries it took (batching shares hardware, never data).
    // Requests that never completed get an empty output map.
    let outputs = if opts.execute {
        // Inverse of `order`: caller index -> admission position. One
        // O(n) pass instead of an O(n) `position` scan per request —
        // the scan made large closed backlogs quadratic.
        let mut pos_of = vec![0usize; n];
        for (pos, &i) in order.iter().enumerate() {
            pos_of[i] = pos;
        }
        let mut outs = Vec::with_capacity(n);
        for (idx, req) in requests.iter().enumerate() {
            let pos = pos_of[idx];
            if fso.statuses[pos] == StreamStatus::Completed {
                outs.push(
                    zynq::run_program_chain(names, modules, kernels, &req.inputs)
                        .map_err(RuntimeError::Exec)?,
                );
            } else {
                outs.push(HashMap::new());
            }
        }
        outs
    } else {
        Vec::new()
    };

    Ok(ServeOutcome { report, outputs })
}

impl ServiceReport {
    /// Render as an aligned text table.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "served {} requests ({} arrivals, batch {}, capacity {}/round, overlap {}):\n",
            self.requests,
            self.arrival.label(),
            self.policy.label(),
            self.capacity,
            if self.overlap_dma { "on" } else { "off" },
        ));
        s.push_str(&format!(
            "  {} rounds ({} fast-forwarded), mean fill {:.2}\n",
            self.rounds, self.fast_forwarded_rounds, self.mean_fill,
        ));
        s.push_str(&format!(
            "  throughput {:.1} req/s over {:.4} s makespan\n",
            self.throughput_rps, self.makespan_s,
        ));
        s.push_str(&format!(
            "  latency mean {:.4} s | p50 {:.4} s | p99 {:.4} s | max {:.4} s\n",
            self.latency_mean_s, self.latency_p50_s, self.latency_p99_s, self.latency_max_s,
        ));
        s.push_str(&format!(
            "  exec {:.4} s | transfers {:.4} s | overlap fraction {:.2}\n",
            to_secs(self.exec_ticks),
            to_secs(self.transfer_ticks),
            self.overlap_fraction,
        ));
        s.push_str(&format!(
            "  reliability {}/{} completed ({} retried, {} timed-out, {} shed, {} failed)\n",
            self.completed, self.requests, self.retried, self.timed_out, self.shed, self.failed,
        ));
        s.push_str(&format!(
            "  goodput {} req/s of {:.1} offered | p99 completed {} s\n",
            self.goodput_rps
                .map_or_else(|| "-".to_string(), |v| format!("{v:.1}")),
            self.offered_rps,
            self.latency_p99_completed_s
                .map_or_else(|| "-".to_string(), |v| format!("{v:.4}")),
        ));
        if self.online_policy.armed() {
            s.push_str(&format!(
                "  online [{}]: {} early-closed rounds, {} backpressure-shed\n",
                self.online_policy.label(),
                self.early_closed_rounds,
                self.backpressure_shed,
            ));
        }
        if self.fault_plan != "none" {
            s.push_str(&format!(
                "  faults [{}] policy [{}]: {} transient, {} stalls, {} corrupt\n",
                self.fault_plan,
                self.recovery.label(),
                self.transient_faults,
                self.dma_stalls,
                self.corrupt_payloads,
            ));
        }
        s
    }

    /// Serialize as JSON (hand-rolled: the dependency set has no
    /// serde_json).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!(
            "  \"policy\": \"{}\",\n",
            json_escape(&self.policy.label())
        ));
        s.push_str(&format!(
            "  \"arrival\": \"{}\",\n",
            json_escape(&self.arrival.label())
        ));
        s.push_str(&format!("  \"capacity\": {},\n", self.capacity));
        s.push_str(&format!("  \"overlap_dma\": {},\n", self.overlap_dma));
        s.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        s.push_str(&format!(
            "  \"fast_forwarded_rounds\": {},\n",
            self.fast_forwarded_rounds
        ));
        s.push_str(&format!("  \"mean_fill\": {:.4},\n", self.mean_fill));
        s.push_str(&format!(
            "  \"throughput_rps\": {:.3},\n",
            self.throughput_rps
        ));
        s.push_str(&format!("  \"makespan_s\": {:.6},\n", self.makespan_s));
        s.push_str(&format!(
            "  \"latency\": {{\"mean_s\": {:.6}, \"p50_s\": {:.6}, \"p99_s\": {:.6}, \"max_s\": {:.6}}},\n",
            self.latency_mean_s, self.latency_p50_s, self.latency_p99_s, self.latency_max_s
        ));
        s.push_str(&format!(
            "  \"dma\": {{\"exec_s\": {:.6}, \"transfer_s\": {:.6}, \"overlap_fraction\": {:.4}}},\n",
            to_secs(self.exec_ticks),
            to_secs(self.transfer_ticks),
            self.overlap_fraction
        ));
        s.push_str(&format!(
            "  \"reliability\": {{\"completed\": {}, \"retried\": {}, \"timed_out\": {}, \
             \"shed\": {}, \"failed\": {}, \"goodput_rps\": {}, \"offered_rps\": {:.3}, \
             \"p99_completed_s\": {}}},\n",
            self.completed,
            self.retried,
            self.timed_out,
            self.shed,
            self.failed,
            self.goodput_rps
                .map_or_else(|| "null".to_string(), |v| format!("{v:.3}")),
            self.offered_rps,
            self.latency_p99_completed_s
                .map_or_else(|| "null".to_string(), |v| format!("{v:.6}"))
        ));
        s.push_str(&format!(
            "  \"faults\": {{\"plan\": \"{}\", \"policy\": \"{}\", \"transient\": {}, \
             \"dma_stalls\": {}, \"corrupt\": {}}},\n",
            json_escape(&self.fault_plan),
            json_escape(&self.recovery.label()),
            self.transient_faults,
            self.dma_stalls,
            self.corrupt_payloads
        ));
        if self.online_policy.armed() {
            s.push_str(&format!(
                "  \"online\": {{\"policy\": \"{}\", \"slo_s\": {}, \"shed_queue\": {}, \
                 \"priority_tiers\": {}, \"early_closed_rounds\": {}, \
                 \"backpressure_shed\": {}}},\n",
                json_escape(&self.online_policy.label()),
                self.online_policy
                    .slo_s
                    .map_or_else(|| "null".to_string(), |v| format!("{v:.6}")),
                self.online_policy
                    .shed_queue
                    .map_or_else(|| "null".to_string(), |v| v.to_string()),
                self.online_policy.priority_tiers,
                self.early_closed_rounds,
                self.backpressure_shed
            ));
        }
        s.push_str("  \"traces\": [\n");
        for (i, t) in self.traces.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": {}, \"arrival_s\": {:.6}, \"admitted_s\": {:.6}, \
                 \"completed_s\": {:.6}, \"latency_s\": {:.6}, \"attempts\": {}, \
                 \"outcome\": \"{}\"}}{}\n",
                t.id,
                t.arrival_s,
                t.admitted_s,
                t.completed_s,
                t.latency_s,
                t.attempts,
                t.outcome.label(),
                if i + 1 == self.traces.len() { "" } else { "," },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgen::{build_kernel, CodegenOptions};
    use pschedule::{KernelModel, Schedule};
    use sysgen::Platform;
    use teil::layout::LayoutPlan;
    use teil::lower::lower;
    use teil::transform::factorize;

    pub(crate) fn design(ks: Vec<usize>, m: usize, latencies: &[u64]) -> MultiSystemDesign {
        let platform = Platform::zcu106();
        let stages: Vec<(String, hls::HlsReport)> = latencies
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                (
                    format!("stage{i}"),
                    hls::HlsReport {
                        kernel: format!("stage{i}"),
                        clock_mhz: platform.default_clock_mhz,
                        latency_cycles: l,
                        luts: 2_314,
                        ffs: 2_999,
                        dsps: 15,
                        brams: 0,
                        loops: vec![],
                    },
                )
            })
            .collect();
        let memory = mnemosyne::MemorySubsystem {
            units: vec![],
            brams: 16,
            luts: 450,
            ffs: 250,
        };
        let cfg = sysgen::ProgramSystemConfig { ks, m };
        let host = sysgen::ProgramHostProgram {
            config: cfg.clone(),
            stage_names: stages.iter().map(|(n, _)| n.clone()).collect(),
            bytes_in_per_element: 1331 * 8,
            bytes_out_per_element: 1331 * 8,
            handoff_bytes_per_element: 0,
        };
        MultiSystemDesign::build(&platform, &stages, &memory, cfg, host).unwrap()
    }

    fn timing_opts(batch: BatchPolicy, overlap: bool) -> RuntimeOptions {
        RuntimeOptions {
            batch,
            overlap_dma: overlap,
            execute: false,
            ..Default::default()
        }
    }

    pub(crate) fn timing_requests(n: usize) -> Vec<Request> {
        (0..n)
            .map(|id| Request {
                id,
                arrival_s: 0.0,
                tier: 0,
                inputs: HashMap::new(),
            })
            .collect()
    }

    #[test]
    fn batching_multiplies_throughput_over_disabled() {
        let d = design(vec![2], 8, &[200_000]);
        let reqs = timing_requests(64);
        let auto = serve(
            &d,
            &[],
            &[],
            &[],
            &reqs,
            &timing_opts(BatchPolicy::Auto, false),
        )
        .unwrap();
        let seq = serve(
            &d,
            &[],
            &[],
            &[],
            &reqs,
            &timing_opts(BatchPolicy::Disabled, false),
        )
        .unwrap();
        let speedup = auto.report.throughput_rps / seq.report.throughput_rps;
        assert!((speedup - 8.0).abs() < 1e-9, "speedup {speedup}");
        assert_eq!(auto.report.rounds, 8);
        assert_eq!(seq.report.rounds, 64);
        assert!(seq.report.fast_forwarded_rounds > 0);
    }

    #[test]
    fn fixed_policy_caps_fill_and_clamps() {
        let d = design(vec![2], 8, &[200_000]);
        let reqs = timing_requests(16);
        let two = serve(
            &d,
            &[],
            &[],
            &[],
            &reqs,
            &timing_opts(BatchPolicy::Fixed(2), false),
        )
        .unwrap();
        assert_eq!(two.report.rounds, 8);
        assert_eq!(two.report.capacity, 2);
        let big = serve(
            &d,
            &[],
            &[],
            &[],
            &reqs,
            &timing_opts(BatchPolicy::Fixed(512), false),
        )
        .unwrap();
        assert_eq!(big.report.capacity, 8, "clamped to m");
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let d = design(vec![2, 2], 4, &[100_000, 200_000]);
        let reqs = timing_requests(33);
        let r = serve(
            &d,
            &[],
            &[],
            &[],
            &reqs,
            &timing_opts(BatchPolicy::Auto, true),
        )
        .unwrap()
        .report;
        assert!(r.latency_p50_s <= r.latency_p99_s);
        assert!(r.latency_p99_s <= r.latency_max_s);
        assert!(r.latency_mean_s > 0.0);
        for t in &r.traces {
            assert!((t.latency_s - (t.completed_s - t.arrival_s)).abs() < 1e-12);
            assert!(t.admitted_s >= t.arrival_s);
        }
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_deterministic() {
        let src = cfdlang::examples::axpy(3);
        let typed = cfdlang::check(&cfdlang::parse(&src).unwrap()).unwrap();
        let module = factorize(&lower(&typed).unwrap());
        let modules = vec![&module];
        let a = generate_requests(&modules, 16, &Arrival::Poisson { rate_rps: 100.0 }, 7).unwrap();
        let b = generate_requests(&modules, 16, &Arrival::Poisson { rate_rps: 100.0 }, 7).unwrap();
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_s, y.arrival_s);
        }
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.last().unwrap().arrival_s > 0.0);
        // Different seeds change both inputs and arrivals.
        let c = generate_requests(&modules, 16, &Arrival::Poisson { rate_rps: 100.0 }, 8).unwrap();
        assert!(c[5].arrival_s != a[5].arrival_s);
        // The timing-only stream is arrival-identical (and tensor-free).
        let t = generate_timing_requests(16, &Arrival::Poisson { rate_rps: 100.0 }, 7).unwrap();
        for (x, y) in a.iter().zip(&t) {
            assert_eq!(x.arrival_s, y.arrival_s);
        }
        assert!(t.iter().all(|r| r.inputs.is_empty()));
    }

    #[test]
    fn executed_outputs_match_standalone_chain() {
        let src = cfdlang::examples::axpy(3);
        let typed = cfdlang::check(&cfdlang::parse(&src).unwrap()).unwrap();
        let module = factorize(&lower(&typed).unwrap());
        let layout = LayoutPlan::row_major(&module);
        let km = KernelModel::build(&module, &layout);
        let sched = Schedule::reference(&km);
        let kernel = build_kernel(&module, &km, &sched, &CodegenOptions::default());
        let names = vec!["main".to_string()];
        let modules = vec![&module];
        let kernels = vec![&kernel];
        let d = design(vec![2], 4, &[100_000]);
        let reqs = generate_requests(&modules, 5, &Arrival::Closed, 3).unwrap();
        let opts = RuntimeOptions {
            execute: true,
            ..Default::default()
        };
        let out = serve(&d, &names, &modules, &kernels, &reqs, &opts).unwrap();
        assert_eq!(out.outputs.len(), 5);
        for (req, got) in reqs.iter().zip(&out.outputs) {
            let solo = zynq::run_program_chain(&names, &modules, &kernels, &req.inputs).unwrap();
            assert_eq!(&solo, got, "request {} diverged", req.id);
        }
    }

    #[test]
    fn policy_and_arrival_parsing() {
        assert_eq!(BatchPolicy::parse("auto"), Ok(BatchPolicy::Auto));
        assert_eq!(BatchPolicy::parse("off"), Ok(BatchPolicy::Disabled));
        assert_eq!(BatchPolicy::parse("4"), Ok(BatchPolicy::Fixed(4)));
        assert!(BatchPolicy::parse("0").is_err());
        assert!(BatchPolicy::parse("huge?").is_err());
        assert!(Arrival::parse("closed", 0.0).is_ok());
        assert!(Arrival::parse("poisson", 50.0).is_ok());
        assert!(Arrival::parse("poisson", 0.0).is_err());
        assert!(Arrival::parse("poisson", f64::NAN).is_err());
        assert!(Arrival::parse("poisson", f64::INFINITY).is_err());
        assert!(Arrival::parse("burst", 1.0).is_err());
    }

    #[test]
    fn degenerate_poisson_rates_are_structured_errors() {
        // A zero or non-finite rate used to produce inf/NaN arrival
        // times (the -ln(1-u)/rate draw) that poisoned the schedule.
        for rate in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let arrival = Arrival::Poisson { rate_rps: rate };
            let timing = generate_timing_requests(8, &arrival, 1);
            match timing {
                Err(RuntimeError::InvalidRate { rate_rps }) => {
                    assert!(rate_rps.is_nan() == rate.is_nan() || rate_rps == rate)
                }
                other => panic!("rate {rate}: expected InvalidRate, got {other:?}"),
            }
            let full = generate_requests(&[], 8, &arrival, 1);
            assert!(
                matches!(full, Err(RuntimeError::InvalidRate { .. })),
                "rate {rate}: generate_requests must reject too"
            );
        }
        // The error renders a one-line diagnosis for the CLI.
        let msg = RuntimeError::InvalidRate { rate_rps: 0.0 }.to_string();
        assert!(msg.contains("positive finite rate"), "{msg}");
    }

    #[test]
    fn empty_fault_plan_serve_is_bit_identical_to_default() {
        // A FaultPlan with a seed but no armed classes is "empty": the
        // report (and its JSON bytes) must match the default serve
        // under every batch policy.
        let d = design(vec![2, 2], 4, &[100_000, 200_000]);
        let reqs = timing_requests(24);
        for batch in [
            BatchPolicy::Auto,
            BatchPolicy::Fixed(2),
            BatchPolicy::Disabled,
        ] {
            for overlap in [false, true] {
                let base = timing_opts(batch, overlap);
                let with_plan = RuntimeOptions {
                    faults: zynq::FaultPlan {
                        seed: 99,
                        ..zynq::FaultPlan::none()
                    },
                    ..base.clone()
                };
                let a = serve(&d, &[], &[], &[], &reqs, &base).unwrap().report;
                let b = serve(&d, &[], &[], &[], &reqs, &with_plan).unwrap().report;
                assert_eq!(a, b);
                assert_eq!(a.to_json(), b.to_json(), "JSON bytes must match");
                assert_eq!(a.completed, 24);
                assert_eq!(a.failed + a.shed + a.timed_out + a.retried, 0);
                assert_eq!(a.goodput_rps, Some(a.throughput_rps));
            }
        }
    }

    #[test]
    fn faulty_serve_reports_reliability_and_replays_byte_identically() {
        let d = design(vec![2], 8, &[200_000]);
        let reqs = timing_requests(64);
        let opts = RuntimeOptions {
            faults: zynq::FaultPlan::transient(7, 0.2),
            recovery: RecoveryPolicy {
                max_retries: 6,
                ..RecoveryPolicy::default()
            },
            ..timing_opts(BatchPolicy::Auto, true)
        };
        let a = serve(&d, &[], &[], &[], &reqs, &opts).unwrap().report;
        let b = serve(&d, &[], &[], &[], &reqs, &opts).unwrap().report;
        assert_eq!(a.to_json(), b.to_json(), "replay must be byte-identical");
        assert_eq!(a.completed, 64, "enough retries to absorb 20% faults");
        assert!(a.retried > 0, "some rounds must have failed");
        assert!(a.transient_faults > 0);
        assert!(a.goodput_rps.unwrap() <= a.offered_rps);
        assert!(a.fault_plan.contains("transient=0.2"));
        let json = a.to_json();
        for key in [
            "\"reliability\"",
            "\"goodput_rps\"",
            "\"p99_completed_s\"",
            "\"faults\"",
            "\"outcome\"",
            "\"attempts\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(a.render_table().contains("reliability"));
        assert!(a.render_table().contains("faults ["));
    }

    #[test]
    fn failed_requests_get_structured_outcomes_and_empty_outputs() {
        let src = cfdlang::examples::axpy(3);
        let typed = cfdlang::check(&cfdlang::parse(&src).unwrap()).unwrap();
        let module = factorize(&lower(&typed).unwrap());
        let layout = LayoutPlan::row_major(&module);
        let km = KernelModel::build(&module, &layout);
        let sched = Schedule::reference(&km);
        let kernel = build_kernel(&module, &km, &sched, &CodegenOptions::default());
        let names = vec!["main".to_string()];
        let modules = vec![&module];
        let kernels = vec![&kernel];
        let d = design(vec![2], 4, &[100_000]);
        let reqs = generate_requests(&modules, 6, &Arrival::Closed, 3).unwrap();
        let opts = RuntimeOptions {
            execute: true,
            // Every attempt corrupts: everything fails after the cap.
            faults: zynq::FaultPlan {
                corrupt_rate: 1.0,
                ..zynq::FaultPlan::none()
            },
            recovery: RecoveryPolicy {
                max_retries: 1,
                ..RecoveryPolicy::default()
            },
            ..Default::default()
        };
        let out = serve(&d, &names, &modules, &kernels, &reqs, &opts).unwrap();
        assert_eq!(out.report.failed, 6);
        assert_eq!(out.report.completed, 0);
        assert_eq!(out.report.goodput_rps, None);
        assert_eq!(out.report.latency_p99_completed_s, None);
        for t in &out.report.traces {
            assert_eq!(t.outcome, RequestOutcome::Failed { attempts: 2 });
            assert_eq!(t.attempts, 2);
        }
        assert_eq!(out.outputs.len(), 6);
        assert!(out.outputs.iter().all(|o| o.is_empty()));
    }

    #[test]
    fn total_outage_pins_the_empty_completed_set_semantics() {
        // Board dies at t=0, never recovers: zero requests complete, so
        // the completed-set metrics have no value — `null` in JSON and
        // `-` in tables, never a misleading 0.
        let d = design(vec![2], 4, &[100_000]);
        let reqs = timing_requests(8);
        let opts = RuntimeOptions {
            faults: zynq::FaultPlan {
                outage: Some(zynq::Outage {
                    fail_at: 0,
                    recover_at: None,
                }),
                ..zynq::FaultPlan::none()
            },
            ..timing_opts(BatchPolicy::Auto, true)
        };
        let r = serve(&d, &[], &[], &[], &reqs, &opts).unwrap().report;
        assert_eq!(r.completed, 0);
        assert_eq!(r.shed, 8);
        assert_eq!(r.goodput_rps, None);
        assert_eq!(r.latency_p99_completed_s, None);
        let j = r.to_json();
        json::validate(&j).unwrap();
        assert!(j.contains("\"goodput_rps\": null"), "{j}");
        assert!(j.contains("\"p99_completed_s\": null"), "{j}");
        let t = r.render_table();
        assert!(t.contains("goodput - req/s"), "{t}");
        assert!(t.contains("p99 completed - s"), "{t}");
    }

    #[test]
    fn bare_event_loop_report_is_byte_identical_to_offline() {
        // `--online` with no policy armed must not perturb a single
        // byte of the report (the integration proptests randomize this
        // further; this pins the plumbing).
        let d = design(vec![2, 2], 4, &[100_000, 200_000]);
        let reqs = generate_timing_requests(24, &Arrival::Poisson { rate_rps: 900.0 }, 5).unwrap();
        for batch in [
            BatchPolicy::Auto,
            BatchPolicy::Fixed(2),
            BatchPolicy::Disabled,
        ] {
            for overlap in [false, true] {
                let base = timing_opts(batch, overlap);
                let online = RuntimeOptions {
                    online: OnlinePolicy {
                        event_loop: true,
                        ..OnlinePolicy::default()
                    },
                    ..base.clone()
                };
                let a = serve(&d, &[], &[], &[], &reqs, &base).unwrap().report;
                let b = serve(&d, &[], &[], &[], &reqs, &online).unwrap().report;
                assert!(b.online && !a.online);
                assert_eq!(a.to_json(), b.to_json(), "bytes diverged");
                assert_eq!(a.makespan_ticks, b.makespan_ticks);
                assert_eq!(a.fast_forwarded_rounds, b.fast_forwarded_rounds);
            }
        }
    }

    #[test]
    fn armed_online_policies_reach_the_report_surfaces() {
        let d = design(vec![2], 8, &[200_000]);
        let mut reqs = timing_requests(32);
        for r in &mut reqs {
            r.tier = (r.id % 2) as u8;
        }
        let opts = RuntimeOptions {
            online: OnlinePolicy {
                event_loop: true,
                slo_s: Some(0.005),
                shed_queue: Some(16),
                priority_tiers: 2,
            },
            ..timing_opts(BatchPolicy::Auto, true)
        };
        let r = serve(&d, &[], &[], &[], &reqs, &opts).unwrap().report;
        let j = r.to_json();
        json::validate(&j).unwrap();
        assert!(j.contains("\"online\""), "{j}");
        assert!(j.contains("\"priority_tiers\": 2"), "{j}");
        assert!(r.render_table().contains("online ["));
        assert!(r.backpressure_shed > 0, "32 arrivals into a 16-deep queue");
        // Every completed request made its SLO.
        for t in &r.traces {
            if t.outcome == RequestOutcome::Completed {
                assert!(t.latency_s <= 0.005 + 1e-12);
            }
        }
    }

    #[test]
    fn report_json_has_the_service_keys() {
        let d = design(vec![2], 4, &[100_000]);
        let reqs = timing_requests(6);
        let r = serve(
            &d,
            &[],
            &[],
            &[],
            &reqs,
            &timing_opts(BatchPolicy::Auto, true),
        )
        .unwrap()
        .report;
        let j = r.to_json();
        for key in [
            "\"throughput_rps\"",
            "\"latency\"",
            "\"p99_s\"",
            "\"overlap_fraction\"",
            "\"traces\"",
            "\"fast_forwarded_rounds\"",
            "\"reliability\"",
            "\"goodput_rps\"",
            "\"outcome\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(r.render_table().contains("req/s"));
    }
}
