//! Fleet-scale serving: shard one request stream across a catalog of
//! heterogeneous boards and simulate every board in parallel.
//!
//! One [`crate::serve`] call time-multiplexes one compiled system. A
//! deployment that must absorb fleet-scale load runs N boards —
//! possibly different platforms and clocks, each with its own compiled
//! system and its own fault exposure — behind one dispatcher:
//!
//! ```text
//!              requests (one stream, admission order)
//!                  │
//!            ┌─────▼──────┐  route: rr | jsq | predictive
//!            │ dispatcher │  (cost model per board: probed round ticks)
//!            └─┬───┬────┬─┘
//!        ┌─────┘   │    └──────┐
//!   ┌────▼───┐ ┌───▼────┐ ┌────▼───┐
//!   │ board 0│ │ board 1│ │ board N│   per-board DES on scoped
//!   │ serve()│ │ serve()│ │ serve()│   threads (phase 1)
//!   └────┬───┘ └───┬────┘ └────┬───┘
//!        │  shed (fatal outage)│        drain + requeue on the
//!        └──────►──┤           │        surviving boards (phase 2)
//!                  │           │
//!            ┌─────▼───────────▼─┐
//!            │ deterministic merge│ → FleetReport (aggregate req/s,
//!            └───────────────────┘   goodput, p99, per-board util,
//!                                    req/s per kLUT)
//! ```
//!
//! Three properties make the layer trustworthy rather than merely fast:
//!
//! * **Fleet-of-1 ≡ serve.** Every routing policy sends the whole
//!   stream to a lone board, and the board's report *is* a
//!   [`crate::serve`] report — same code path, tick- and byte-identical
//!   (`tests/fleet_properties.rs` proves it).
//! * **Parallel ≡ serial.** Each board's DES is a pure function of its
//!   request list; results are merged by board index, so the scoped
//!   thread fan-out is bit-identical to the serial loop.
//! * **Routing never touches data.** Policies only choose *where* a
//!   request runs; completed outputs stay bit-exact against
//!   `zynq::run_program_reference` under every policy.
//!
//! Routing happens before simulation, from a deterministic cost model:
//! each board's full round cost is probed once with a one-request
//! stream (host-side round cost does not depend on fill — the host
//! always moves all `m` PLM sets), giving an estimated per-request
//! service time `round_ticks / capacity` that `jsq` and `predictive`
//! consume. A board whose [`FaultPlan`] holds an unrecovered outage
//! sheds its queued work at the failure tick; the dispatcher drains
//! those requests and requeues them — same policy, continued state —
//! on the surviving boards, with the shed tick as their new arrival.

use std::collections::HashMap;
use std::fmt;

use sysgen::MultiSystemDesign;
use teil::ir::Module;
use zynq::des::{secs, to_secs, Time};
use zynq::fault::FaultPlan;

use crate::{
    json::json_escape, percentile, serve, Request, RequestOutcome, RuntimeError, RuntimeOptions,
    ServeOutcome, ServiceReport,
};

/// How the dispatcher picks a board for each admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Admission order modulo board count — the zero-knowledge
    /// baseline.
    RoundRobin,
    /// Join-shortest-queue over the dispatcher's virtual queues
    /// (entries expire at their estimated completion tick).
    ShortestQueue,
    /// Earliest estimated completion using each board's probed cost
    /// model — heterogeneity-aware.
    Predictive,
}

impl RoutePolicy {
    /// Parse a CLI spec: `rr`, `jsq`, or `predictive`.
    pub fn parse(s: &str) -> Result<RoutePolicy, String> {
        match s {
            "rr" => Ok(RoutePolicy::RoundRobin),
            "jsq" => Ok(RoutePolicy::ShortestQueue),
            "predictive" => Ok(RoutePolicy::Predictive),
            other => Err(format!(
                "unknown routing policy '{other}' (rr | jsq | predictive)"
            )),
        }
    }

    /// Stable JSON/label token.
    pub fn label(&self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "rr",
            RoutePolicy::ShortestQueue => "jsq",
            RoutePolicy::Predictive => "predictive",
        }
    }
}

/// One board worker: a compiled system plus its own fault exposure.
#[derive(Debug, Clone)]
pub struct FleetBoard {
    /// Display name (usually the platform id, deduplicated by the
    /// caller when a platform appears twice).
    pub name: String,
    pub design: MultiSystemDesign,
    /// This board's deterministic fault plan (`FaultPlan::none()` for a
    /// healthy board). Replaces `FleetOptions::base.faults` per board.
    pub faults: FaultPlan,
}

impl FleetBoard {
    /// A healthy board named after its platform.
    pub fn healthy(design: MultiSystemDesign) -> FleetBoard {
        FleetBoard {
            name: design.platform.id.clone(),
            design,
            faults: FaultPlan::none(),
        }
    }
}

/// Options for one fleet serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOptions {
    pub route: RoutePolicy,
    /// Simulate boards on scoped threads (bit-identical to the serial
    /// loop — the differential tests compare both).
    pub parallel: bool,
    /// Per-board serving options. `base.faults` is ignored: each
    /// [`FleetBoard`] carries its own plan.
    pub base: RuntimeOptions,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            route: RoutePolicy::RoundRobin,
            parallel: true,
            base: RuntimeOptions::default(),
        }
    }
}

/// Per-board slice of a [`FleetReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct BoardReport {
    pub name: String,
    /// Platform id of the board's design.
    pub platform: String,
    /// Programmable-logic capacity of the board (the cost denominator).
    pub board_luts: usize,
    /// Requests routed here in phase 1.
    pub assigned: usize,
    /// Requests rescued onto this board after another board's outage.
    pub rescued_in: usize,
    /// Requests this board shed that a survivor picked up.
    pub rescued_out: usize,
    /// Estimated per-request service ticks from the probe (the routing
    /// cost model).
    pub est_request_ticks: u64,
    /// Fraction of the fleet makespan this board spent computing.
    pub utilization: f64,
    /// Completed requests per second per 1000 board LUTs — the
    /// cost-efficiency axis of the fleet frontier.
    pub rps_per_kluts: f64,
    /// The board's own service report (`None` when no request was ever
    /// routed here).
    pub report: Option<ServiceReport>,
}

/// Aggregate + per-board results of one fleet serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    pub route: RoutePolicy,
    pub parallel: bool,
    pub requests: usize,
    pub completed: usize,
    pub retried: usize,
    pub timed_out: usize,
    pub shed: usize,
    pub failed: usize,
    /// Requests drained off a dead board and requeued on a survivor.
    pub requeued: usize,
    /// Fleet makespan: the latest board-local makespan (all boards
    /// share the t=0 epoch).
    pub makespan_ticks: u64,
    pub makespan_s: f64,
    /// All requests over the fleet makespan.
    pub aggregate_rps: f64,
    /// Completed requests over the fleet makespan. `None` when zero
    /// requests completed — a total outage has no goodput, not a
    /// goodput of 0.0 (JSON emits `null`, the table a `-`).
    pub goodput_rps: Option<f64>,
    /// Latency statistics over all requests, measured from each
    /// request's *original* arrival (a rescued request's latency
    /// includes its time on the dead board).
    pub latency_mean_s: f64,
    pub latency_p50_s: f64,
    pub latency_p99_s: f64,
    pub latency_max_s: f64,
    pub boards: Vec<BoardReport>,
    /// Final placement: `(request id, board index)` in request-id
    /// order. Every request appears exactly once — the conservation
    /// property the proptests check.
    pub assignment: Vec<(usize, usize)>,
}

/// A fleet run's report plus (when `execute` was set) every request's
/// output tensors; `outputs[i]` belongs to `requests[i]` of the
/// [`serve_fleet`] call, matching by position like [`crate::ServeOutcome`].
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    pub report: FleetReport,
    pub outputs: Vec<HashMap<String, Vec<f64>>>,
}

/// Deterministic routing state, shared between the initial placement
/// and the outage requeue so phase 2 continues — not restarts — the
/// policy.
struct Dispatcher {
    policy: RoutePolicy,
    /// Round-robin cursor.
    next: usize,
    /// Per-board estimated completion ticks of in-flight work (virtual
    /// queues for `jsq`).
    queues: Vec<Vec<Time>>,
    /// Per-board estimated busy horizon (for `predictive`).
    busy_until: Vec<Time>,
    /// Per-board estimated service ticks per request.
    req_ticks: Vec<u64>,
}

impl Dispatcher {
    fn new(policy: RoutePolicy, req_ticks: Vec<u64>) -> Dispatcher {
        let n = req_ticks.len();
        Dispatcher {
            policy,
            next: 0,
            queues: vec![Vec::new(); n],
            busy_until: vec![0; n],
            req_ticks,
        }
    }

    /// Pick a board among `live` (candidate indices, ascending) for a
    /// request arriving at tick `t`. Ties break toward the lowest board
    /// index, so routing is a pure function of the admitted prefix.
    fn route(&mut self, t: Time, live: &[usize]) -> usize {
        debug_assert!(!live.is_empty());
        let pick = match self.policy {
            RoutePolicy::RoundRobin => {
                let b = live[self.next % live.len()];
                self.next += 1;
                b
            }
            RoutePolicy::ShortestQueue => {
                for &b in live {
                    self.queues[b].retain(|&done| done > t);
                }
                *live
                    .iter()
                    .min_by_key(|&&b| (self.queues[b].len(), b))
                    .unwrap()
            }
            RoutePolicy::Predictive => *live
                .iter()
                .min_by_key(|&&b| (self.busy_until[b].max(t) + self.req_ticks[b], b))
                .unwrap(),
        };
        let done = self.busy_until[pick].max(t) + self.req_ticks[pick];
        self.busy_until[pick] = done;
        self.queues[pick].push(done);
        pick
    }
}

/// Probe one board's full round cost: a single-request closed stream
/// without overlap. The host-side round cost is fill-independent (the
/// host always moves all `m` PLM sets), so one request prices the whole
/// round; dividing by the fill capacity prices one request.
fn probe_request_ticks(board: &FleetBoard, opts: &RuntimeOptions) -> u64 {
    let probe = zynq::simulate_batch_stream(&board.design, &opts.sim, &[0], 1, false);
    let capacity = opts.batch.capacity(board.design.config.m).max(1);
    (probe.makespan_ticks / capacity as u64).max(1)
}

/// Run `serve` for every board with a non-empty request list, either on
/// scoped threads or serially. Results land in board-index order, so
/// the merge is deterministic regardless of completion order.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn run_boards(
    boards: &[FleetBoard],
    names: &[String],
    modules: &[&Module],
    kernels: &[&cgen::CKernel],
    lists: &[Vec<Request>],
    opts: &FleetOptions,
    only: Option<&[usize]>,
    results: &mut [Option<ServeOutcome>],
) -> Result<(), RuntimeError> {
    let wanted: Vec<usize> = (0..boards.len())
        .filter(|b| !lists[*b].is_empty() && only.is_none_or(|o| o.contains(b)))
        .collect();
    let board_opts: Vec<RuntimeOptions> = boards
        .iter()
        .map(|b| RuntimeOptions {
            faults: b.faults.clone(),
            ..opts.base.clone()
        })
        .collect();
    let mut done: Vec<(usize, Result<ServeOutcome, RuntimeError>)> =
        Vec::with_capacity(wanted.len());
    if opts.parallel && wanted.len() > 1 {
        std::thread::scope(|s| {
            let handles: Vec<_> = wanted
                .iter()
                .map(|&b| {
                    let list = &lists[b];
                    let bopts = &board_opts[b];
                    let design = &boards[b].design;
                    s.spawn(move || (b, serve(design, names, modules, kernels, list, bopts)))
                })
                .collect();
            for h in handles {
                done.push(h.join().expect("board worker panicked"));
            }
        });
    } else {
        for &b in &wanted {
            done.push((
                b,
                serve(
                    &boards[b].design,
                    names,
                    modules,
                    kernels,
                    &lists[b],
                    &board_opts[b],
                ),
            ));
        }
    }
    done.sort_by_key(|(b, _)| *b);
    for (b, r) in done {
        results[b] = Some(r?);
    }
    Ok(())
}

/// Serve `requests` across a fleet of boards: route each request to a
/// board (phase 1), simulate every board's stream — in parallel when
/// `opts.parallel` — then drain requests shed by an unrecovered board
/// outage and requeue them on the surviving boards (phase 2). The
/// merged [`FleetReport`] aggregates throughput, goodput, fleet-level
/// latency percentiles, per-board utilization and cost efficiency.
///
/// `names`/`modules`/`kernels` describe the compiled program exactly as
/// in [`crate::serve`]; the functional path (and its bit-exactness
/// guarantees) is inherited unchanged because every board *runs*
/// [`crate::serve`].
pub fn serve_fleet(
    boards: &[FleetBoard],
    names: &[String],
    modules: &[&Module],
    kernels: &[&cgen::CKernel],
    requests: &[Request],
    opts: &FleetOptions,
) -> Result<FleetOutcome, RuntimeError> {
    if boards.is_empty() {
        return Err(RuntimeError::NoBoards);
    }
    if requests.is_empty() {
        return Err(RuntimeError::NoRequests);
    }
    let n = requests.len();
    let nb = boards.len();

    // Admission order: arrival time, ties by id — the same total order
    // `serve` uses, so routing is a pure function of the stream.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        requests[a]
            .arrival_s
            .total_cmp(&requests[b].arrival_s)
            .then(requests[a].id.cmp(&requests[b].id))
    });

    // Phase 1: place every request.
    let req_ticks: Vec<u64> = boards
        .iter()
        .map(|b| probe_request_ticks(b, &opts.base))
        .collect();
    let mut dispatcher = Dispatcher::new(opts.route, req_ticks.clone());
    let all: Vec<usize> = (0..nb).collect();
    let mut assignment: Vec<usize> = vec![0; n];
    let mut lists: Vec<Vec<Request>> = vec![Vec::new(); nb];
    // Caller index of each entry in a board's list, so outputs map back.
    let mut list_origin: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for &i in &order {
        let b = dispatcher.route(secs(requests[i].arrival_s), &all);
        assignment[i] = b;
        lists[b].push(requests[i].clone());
        list_origin[b].push(i);
    }
    let assigned: Vec<usize> = lists.iter().map(|l| l.len()).collect();

    let mut results: Vec<Option<ServeOutcome>> = (0..nb).map(|_| None).collect();
    run_boards(
        boards,
        names,
        modules,
        kernels,
        &lists,
        opts,
        None,
        &mut results,
    )?;

    // Phase 2: drain requests shed by a fatal outage and requeue them
    // on the surviving boards, arriving at their shed tick. `Shed` only
    // arises from an unrecovered outage, and survivors cannot shed, so
    // one wave settles the fleet. The dead board keeps its phase-1
    // report — that stream is what physically ran before the rescue —
    // but its drained requests leave the dispatcher's books, so the
    // merge below takes their final outcome from the rescue board.
    let survivors: Vec<usize> = (0..nb)
        .filter(|&b| !boards[b].faults.fatal_outage())
        .collect();
    let mut rescued_in = vec![0usize; nb];
    let mut rescued_out = vec![0usize; nb];
    let mut requeued = 0usize;
    if !survivors.is_empty() {
        // (shed tick, caller index), in deterministic drain order.
        let mut sheds: Vec<(f64, usize)> = Vec::new();
        for b in 0..nb {
            let Some(out) = &results[b] else { continue };
            if !boards[b].faults.fatal_outage() {
                continue;
            }
            for t in &out.report.traces {
                if t.outcome == RequestOutcome::Shed {
                    let i = list_origin[b]
                        .iter()
                        .zip(&lists[b])
                        .find(|(_, r)| r.id == t.id)
                        .map(|(&i, _)| i)
                        .expect("shed trace maps to a routed request");
                    sheds.push((t.completed_s, i));
                }
            }
        }
        sheds.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(requests[a.1].id.cmp(&requests[b.1].id))
        });
        if !sheds.is_empty() {
            let mut touched: Vec<usize> = Vec::new();
            for &(shed_s, i) in &sheds {
                let b = dispatcher.route(secs(shed_s), &survivors);
                // The dead board's list stays intact (its phase-1
                // stream and outputs stay positionally aligned); the
                // reassignment makes the merge skip its shed entries.
                rescued_out[assignment[i]] += 1;
                assignment[i] = b;
                let mut req = requests[i].clone();
                req.arrival_s = shed_s;
                lists[b].push(req);
                list_origin[b].push(i);
                rescued_in[b] += 1;
                if !touched.contains(&b) {
                    touched.push(b);
                }
                requeued += 1;
            }
            // Re-simulate only the rescue boards: their streams gained
            // requests. Dead boards are inert after the failure tick,
            // so their phase-1 streams stand as simulated.
            run_boards(
                boards,
                names,
                modules,
                kernels,
                &lists,
                opts,
                Some(&touched),
                &mut results,
            )?;
        }
    }

    // Deterministic merge: per-request fleet traces keyed by caller
    // index, latencies measured from the original arrivals. Entries a
    // rescue moved away (`assignment[i] != b`) are skipped — their
    // final outcome lives on the rescue board.
    let mut completed_s: Vec<f64> = vec![0.0; n];
    let mut outcomes: Vec<RequestOutcome> = vec![RequestOutcome::Shed; n];
    let mut retried = 0usize;
    for b in 0..nb {
        let Some(out) = &results[b] else { continue };
        let by_id: HashMap<usize, usize> = out
            .report
            .traces
            .iter()
            .enumerate()
            .map(|(k, t)| (t.id, k))
            .collect();
        for (&i, req) in list_origin[b].iter().zip(&lists[b]) {
            if assignment[i] != b {
                continue;
            }
            let t = &out.report.traces[by_id[&req.id]];
            completed_s[i] = t.completed_s;
            outcomes[i] = t.outcome;
            if t.attempts > 1 {
                retried += 1;
            }
        }
    }
    let mut latency_ticks: Vec<u64> = (0..n)
        .map(|i| secs(completed_s[i]).saturating_sub(secs(requests[i].arrival_s)))
        .collect();
    latency_ticks.sort_unstable();
    let count = |want: fn(&RequestOutcome) -> bool| outcomes.iter().filter(|&o| want(o)).count();
    let completed = count(|o| matches!(o, RequestOutcome::Completed));
    let makespan_ticks = results
        .iter()
        .flatten()
        .map(|o| o.report.makespan_ticks)
        .max()
        .unwrap_or(0);
    let makespan_s = to_secs(makespan_ticks);
    let per_s = |k: usize| {
        if makespan_s > 0.0 {
            k as f64 / makespan_s
        } else {
            0.0
        }
    };

    let board_reports: Vec<BoardReport> = (0..nb)
        .map(|b| {
            let report = results[b].as_ref().map(|o| o.report.clone());
            let exec_ticks = report.as_ref().map_or(0, |r| r.exec_ticks);
            let board_completed = report.as_ref().map_or(0, |r| r.completed);
            let kluts = boards[b].design.platform.board.luts as f64 / 1000.0;
            BoardReport {
                name: boards[b].name.clone(),
                platform: boards[b].design.platform.id.clone(),
                board_luts: boards[b].design.platform.board.luts,
                assigned: assigned[b],
                rescued_in: rescued_in[b],
                rescued_out: rescued_out[b],
                est_request_ticks: req_ticks[b],
                utilization: if makespan_ticks > 0 {
                    exec_ticks as f64 / makespan_ticks as f64
                } else {
                    0.0
                },
                rps_per_kluts: if kluts > 0.0 {
                    per_s(board_completed) / kluts
                } else {
                    0.0
                },
                report,
            }
        })
        .collect();

    let mut placement: Vec<(usize, usize)> =
        (0..n).map(|i| (requests[i].id, assignment[i])).collect();
    placement.sort_unstable();

    let report = FleetReport {
        route: opts.route,
        parallel: opts.parallel,
        requests: n,
        completed,
        retried,
        timed_out: count(|o| matches!(o, RequestOutcome::TimedOut)),
        shed: count(|o| matches!(o, RequestOutcome::Shed)),
        failed: count(|o| matches!(o, RequestOutcome::Failed { .. })),
        requeued,
        makespan_ticks,
        makespan_s,
        aggregate_rps: per_s(n),
        goodput_rps: (completed > 0).then(|| per_s(completed)),
        latency_mean_s: to_secs(latency_ticks.iter().sum::<u64>() / n as u64),
        latency_p50_s: to_secs(percentile(&latency_ticks, 0.50)),
        latency_p99_s: to_secs(percentile(&latency_ticks, 0.99)),
        latency_max_s: to_secs(*latency_ticks.last().unwrap()),
        boards: board_reports,
        assignment: placement,
    };

    // Outputs in caller order, pulled back through each board's origin
    // map (phase-2 boards already re-ran the functional path for their
    // final lists).
    let outputs = if opts.base.execute {
        let mut outs: Vec<HashMap<String, Vec<f64>>> = vec![HashMap::new(); n];
        for b in 0..nb {
            let Some(out) = &results[b] else { continue };
            for (&i, o) in list_origin[b].iter().zip(&out.outputs) {
                if assignment[i] == b {
                    outs[i] = o.clone();
                }
            }
        }
        outs
    } else {
        Vec::new()
    };

    Ok(FleetOutcome { report, outputs })
}

impl FleetReport {
    /// Render as an aligned text table.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "fleet served {} requests across {} boards (route {}, {}):\n",
            self.requests,
            self.boards.len(),
            self.route.label(),
            if self.parallel { "parallel" } else { "serial" },
        ));
        s.push_str(&format!(
            "  aggregate {:.1} req/s | goodput {} req/s over {:.4} s makespan\n",
            self.aggregate_rps,
            self.goodput_rps
                .map_or_else(|| "-".to_string(), |v| format!("{v:.1}")),
            self.makespan_s,
        ));
        s.push_str(&format!(
            "  latency mean {:.4} s | p50 {:.4} s | p99 {:.4} s | max {:.4} s\n",
            self.latency_mean_s, self.latency_p50_s, self.latency_p99_s, self.latency_max_s,
        ));
        s.push_str(&format!(
            "  reliability {}/{} completed ({} retried, {} timed-out, {} shed, {} failed, {} requeued across boards)\n",
            self.completed,
            self.requests,
            self.retried,
            self.timed_out,
            self.shed,
            self.failed,
            self.requeued,
        ));
        for b in &self.boards {
            let (rounds, completed, plan) = match &b.report {
                Some(r) => (r.rounds, r.completed, r.fault_plan.clone()),
                None => (0, 0, "none".into()),
            };
            s.push_str(&format!(
                "  board {:<10} [{:>9} LUT] assigned {:>4} (+{} in, -{} out) | {} rounds | {} ok | util {:.2} | {:.2} req/s/kLUT{}\n",
                b.name,
                b.board_luts,
                b.assigned,
                b.rescued_in,
                b.rescued_out,
                rounds,
                completed,
                b.utilization,
                b.rps_per_kluts,
                if plan == "none" {
                    String::new()
                } else {
                    format!(" | faults [{plan}]")
                },
            ));
        }
        s
    }

    /// Serialize as JSON (hand-rolled: the dependency set has no
    /// serde_json). Per-board reports embed the full
    /// [`ServiceReport::to_json`] document, so a fleet-of-1 JSON carries
    /// the byte-exact single-board report.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"route\": \"{}\",\n", self.route.label()));
        s.push_str(&format!("  \"parallel\": {},\n", self.parallel));
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"boards\": {},\n", self.boards.len()));
        s.push_str(&format!("  \"makespan_s\": {:.6},\n", self.makespan_s));
        s.push_str(&format!(
            "  \"aggregate_rps\": {:.3},\n",
            self.aggregate_rps
        ));
        s.push_str(&format!(
            "  \"goodput_rps\": {},\n",
            self.goodput_rps
                .map_or_else(|| "null".to_string(), |v| format!("{v:.3}"))
        ));
        s.push_str(&format!(
            "  \"latency\": {{\"mean_s\": {:.6}, \"p50_s\": {:.6}, \"p99_s\": {:.6}, \"max_s\": {:.6}}},\n",
            self.latency_mean_s, self.latency_p50_s, self.latency_p99_s, self.latency_max_s
        ));
        s.push_str(&format!(
            "  \"reliability\": {{\"completed\": {}, \"retried\": {}, \"timed_out\": {}, \
             \"shed\": {}, \"failed\": {}, \"requeued_across_boards\": {}}},\n",
            self.completed, self.retried, self.timed_out, self.shed, self.failed, self.requeued
        ));
        s.push_str("  \"per_board\": [\n");
        for (k, b) in self.boards.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"platform\": \"{}\", \"board_luts\": {}, \
                 \"assigned\": {}, \"rescued_in\": {}, \"rescued_out\": {}, \
                 \"est_request_ticks\": {}, \
                 \"utilization\": {:.4}, \"rps_per_kluts\": {:.4}, \"report\": {}}}{}\n",
                json_escape(&b.name),
                json_escape(&b.platform),
                b.board_luts,
                b.assigned,
                b.rescued_in,
                b.rescued_out,
                b.est_request_ticks,
                b.utilization,
                b.rps_per_kluts,
                match &b.report {
                    Some(r) => indent_json(&r.to_json(), 4),
                    None => "null".into(),
                },
                if k + 1 == self.boards.len() { "" } else { "," },
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"assignment\": [");
        for (k, (id, b)) in self.assignment.iter().enumerate() {
            s.push_str(&format!(
                "{{\"id\": {id}, \"board\": {b}}}{}",
                if k + 1 == self.assignment.len() {
                    ""
                } else {
                    ", "
                },
            ));
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Re-indent an embedded JSON document by `by` spaces (first line
/// stays in place — it follows a `"key": ` prefix).
fn indent_json(doc: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    doc.trim_end()
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("\n{pad}{l}")
            }
        })
        .collect()
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{design, timing_requests};
    use crate::{Arrival, BatchPolicy};
    use zynq::fault::Outage;

    fn boards3() -> Vec<FleetBoard> {
        // Three boards with distinct speeds: routing must notice.
        vec![
            FleetBoard::healthy(design(vec![2], 8, &[200_000])),
            FleetBoard::healthy(design(vec![2], 8, &[400_000])),
            FleetBoard::healthy(design(vec![2], 8, &[100_000])),
        ]
    }

    fn fleet_opts(route: RoutePolicy) -> FleetOptions {
        FleetOptions {
            route,
            parallel: false,
            base: RuntimeOptions {
                batch: BatchPolicy::Auto,
                overlap_dma: false,
                execute: false,
                ..Default::default()
            },
        }
    }

    #[test]
    fn fleet_of_one_matches_serve_exactly() {
        let d = design(vec![2], 8, &[200_000]);
        let reqs = timing_requests(48);
        let solo = serve(
            &d,
            &[],
            &[],
            &[],
            &reqs,
            &fleet_opts(RoutePolicy::RoundRobin).base,
        )
        .unwrap()
        .report;
        for route in [
            RoutePolicy::RoundRobin,
            RoutePolicy::ShortestQueue,
            RoutePolicy::Predictive,
        ] {
            let fleet = serve_fleet(
                &[FleetBoard::healthy(d.clone())],
                &[],
                &[],
                &[],
                &reqs,
                &fleet_opts(route),
            )
            .unwrap()
            .report;
            let br = fleet.boards[0].report.as_ref().unwrap();
            assert_eq!(br, &solo, "route {}", route.label());
            assert_eq!(br.to_json(), solo.to_json());
            assert_eq!(fleet.makespan_ticks, solo.makespan_ticks);
            assert_eq!(fleet.completed, solo.completed);
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let boards = boards3();
        let reqs = timing_requests(64);
        for route in [
            RoutePolicy::RoundRobin,
            RoutePolicy::ShortestQueue,
            RoutePolicy::Predictive,
        ] {
            let serial = serve_fleet(&boards, &[], &[], &[], &reqs, &fleet_opts(route))
                .unwrap()
                .report;
            let par = serve_fleet(
                &boards,
                &[],
                &[],
                &[],
                &reqs,
                &FleetOptions {
                    parallel: true,
                    ..fleet_opts(route)
                },
            )
            .unwrap()
            .report;
            assert_eq!(serial.makespan_ticks, par.makespan_ticks);
            assert_eq!(serial.assignment, par.assignment);
            // The only field allowed to differ is the `parallel` flag.
            let mut par2 = par.clone();
            par2.parallel = false;
            assert_eq!(serial, par2, "route {}", route.label());
        }
    }

    #[test]
    fn fleet_scales_throughput_over_single_board() {
        let boards = boards3();
        let reqs = timing_requests(96);
        let solo = serve(
            &boards[0].design,
            &[],
            &[],
            &[],
            &reqs,
            &fleet_opts(RoutePolicy::Predictive).base,
        )
        .unwrap()
        .report;
        let fleet = serve_fleet(
            &boards,
            &[],
            &[],
            &[],
            &reqs,
            &fleet_opts(RoutePolicy::Predictive),
        )
        .unwrap()
        .report;
        assert_eq!(fleet.completed, 96);
        assert!(
            fleet.aggregate_rps > 1.5 * solo.throughput_rps,
            "fleet {:.0} vs solo {:.0}",
            fleet.aggregate_rps,
            solo.throughput_rps
        );
        // Every board did some work under the cost-aware policy.
        for b in &fleet.boards {
            assert!(b.assigned > 0, "board {} idle", b.name);
        }
    }

    #[test]
    fn predictive_favors_the_faster_board() {
        let boards = boards3();
        let reqs = timing_requests(90);
        let fleet = serve_fleet(
            &boards,
            &[],
            &[],
            &[],
            &reqs,
            &fleet_opts(RoutePolicy::Predictive),
        )
        .unwrap()
        .report;
        // Board 2 runs at half the latency of board 0 and a quarter of
        // board 1: predictive routing must give it the largest share.
        assert!(fleet.boards[2].assigned > fleet.boards[1].assigned);
    }

    #[test]
    fn outage_drains_and_requeues_on_survivors() {
        let mut boards = boards3();
        // Board 1 dies early and never recovers: everything it had
        // queued must finish elsewhere.
        boards[1].faults = FaultPlan {
            seed: 3,
            outage: Some(Outage {
                fail_at: secs(0.0001),
                recover_at: None,
            }),
            ..FaultPlan::none()
        };
        let reqs = timing_requests(60);
        for route in [
            RoutePolicy::RoundRobin,
            RoutePolicy::ShortestQueue,
            RoutePolicy::Predictive,
        ] {
            let fleet = serve_fleet(&boards, &[], &[], &[], &reqs, &fleet_opts(route))
                .unwrap()
                .report;
            assert_eq!(
                fleet.shed,
                0,
                "route {}: sheds must be rescued",
                route.label()
            );
            assert_eq!(fleet.completed, 60, "route {}", route.label());
            assert!(
                fleet.requeued > 0,
                "route {}: outage must requeue",
                route.label()
            );
            // Conservation: every id placed exactly once, none on the
            // dead board beyond what it finished before failing.
            assert_eq!(fleet.assignment.len(), 60);
            let ids: Vec<usize> = fleet.assignment.iter().map(|(id, _)| *id).collect();
            let mut uniq = ids.clone();
            uniq.dedup();
            assert_eq!(ids, uniq);
            let kept: usize = fleet.assignment.iter().filter(|(_, b)| *b == 1).count();
            assert_eq!(
                kept + fleet.requeued,
                fleet.boards[1].assigned,
                "drained requests must leave the dead board's books"
            );
            assert_eq!(fleet.boards[1].rescued_out, fleet.requeued);
            assert_eq!(
                fleet.boards[0].rescued_in + fleet.boards[2].rescued_in,
                fleet.requeued
            );
        }
    }

    #[test]
    fn fleet_without_survivors_keeps_shed_requests() {
        let d = design(vec![2], 8, &[200_000]);
        let dead = FaultPlan {
            seed: 1,
            outage: Some(Outage {
                fail_at: secs(0.0001),
                recover_at: None,
            }),
            ..FaultPlan::none()
        };
        let boards = vec![FleetBoard {
            name: "only".into(),
            design: d.clone(),
            faults: dead.clone(),
        }];
        let reqs = timing_requests(40);
        let fleet = serve_fleet(
            &boards,
            &[],
            &[],
            &[],
            &reqs,
            &fleet_opts(RoutePolicy::RoundRobin),
        )
        .unwrap()
        .report;
        // Identical to a single-board serve under the same plan.
        let solo = serve(
            &d,
            &[],
            &[],
            &[],
            &reqs,
            &RuntimeOptions {
                faults: dead,
                ..fleet_opts(RoutePolicy::RoundRobin).base
            },
        )
        .unwrap()
        .report;
        assert_eq!(fleet.shed, solo.shed);
        assert!(fleet.shed > 0);
        assert_eq!(fleet.requeued, 0);
        assert_eq!(fleet.boards[0].report.as_ref().unwrap(), &solo);
    }

    #[test]
    fn route_parsing_and_labels() {
        assert_eq!(RoutePolicy::parse("rr"), Ok(RoutePolicy::RoundRobin));
        assert_eq!(RoutePolicy::parse("jsq"), Ok(RoutePolicy::ShortestQueue));
        assert_eq!(
            RoutePolicy::parse("predictive"),
            Ok(RoutePolicy::Predictive)
        );
        assert!(RoutePolicy::parse("random").is_err());
        assert_eq!(RoutePolicy::RoundRobin.label(), "rr");
    }

    #[test]
    fn empty_inputs_are_structured_errors() {
        let reqs = timing_requests(4);
        assert_eq!(
            serve_fleet(&[], &[], &[], &[], &reqs, &FleetOptions::default()).unwrap_err(),
            RuntimeError::NoBoards
        );
        let boards = vec![FleetBoard::healthy(design(vec![2], 8, &[200_000]))];
        assert_eq!(
            serve_fleet(&boards, &[], &[], &[], &[], &FleetOptions::default()).unwrap_err(),
            RuntimeError::NoRequests
        );
    }

    #[test]
    fn report_json_has_the_fleet_keys() {
        let boards = boards3();
        let reqs = timing_requests(24);
        let r = serve_fleet(
            &boards,
            &[],
            &[],
            &[],
            &reqs,
            &fleet_opts(RoutePolicy::ShortestQueue),
        )
        .unwrap()
        .report;
        let j = r.to_json();
        for key in [
            "\"route\"",
            "\"aggregate_rps\"",
            "\"goodput_rps\"",
            "\"per_board\"",
            "\"utilization\"",
            "\"rps_per_kluts\"",
            "\"requeued_across_boards\"",
            "\"assignment\"",
            "\"throughput_rps\"",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
        assert!(r.render_table().contains("req/s/kLUT"));
        // Poisson arrivals flow through the same admission order.
        let preqs =
            crate::generate_timing_requests(24, &Arrival::Poisson { rate_rps: 5000.0 }, 9).unwrap();
        let pr = serve_fleet(
            &boards,
            &[],
            &[],
            &[],
            &preqs,
            &fleet_opts(RoutePolicy::Predictive),
        )
        .unwrap()
        .report;
        assert_eq!(pr.requests, 24);
        assert!(pr.latency_p50_s <= pr.latency_p99_s);
    }
}
