//! Shared helpers for the hand-rolled JSON emitters.
//!
//! Every report in this workspace emits JSON by string formatting, not
//! through a serializer — the shapes are small and stable, and the
//! byte-identical replay guarantee is easier to state over a fixed
//! emitter. The one correctness hole in that approach is string
//! interpolation: board names, fault-plan labels, and kernel names flow
//! into the output verbatim, so a quote or backslash in a label would
//! emit invalid JSON. [`json_escape`] closes that hole; every emitter
//! routes externally influenced strings through it.
//!
//! [`validate`] is a minimal JSON parser (structure only, no value
//! tree) used by tests to prove emitted documents stay well-formed even
//! under hostile labels.

/// Escape `s` for inclusion inside a JSON string literal (between the
/// quotes). Escapes the two mandatory characters (`"` and `\`), the
/// common control characters by mnemonic, and the rest of the C0 range
/// as `\u00XX`. Clean labels pass through unchanged, so adding the
/// escape to an emitter cannot perturb existing output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Validate that `s` is one well-formed JSON document. Returns the
/// parse error (with byte offset) if not. Numbers are checked
/// shallowly (the emitters only write `{:.N}` floats and integers);
/// strings accept the escapes [`json_escape`] can produce plus the
/// rest of RFC 8259's set.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        Some(c) => Err(format!("unexpected byte {:?} at offset {i}", *c as char)),
        None => Err("unexpected end of input".into()),
    }
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*i..].starts_with(lit) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {i}"))
    }
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err(format!("bad number at offset {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("bad number at offset {start}"));
        }
    }
    if matches!(b.get(*i), Some(b'e') | Some(b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+') | Some(b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("bad number at offset {start}"));
        }
    }
    Ok(())
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*i], b'"');
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        *i += 1;
                        for _ in 0..4 {
                            if !b.get(*i).is_some_and(|c| c.is_ascii_hexdigit()) {
                                return Err(format!("bad \\u escape at offset {i}"));
                            }
                            *i += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at offset {i}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte at offset {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*i], b'{');
    *i += 1;
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected object key at offset {i}"));
        }
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at offset {i}"));
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {i}")),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*i], b'[');
    *i += 1;
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {i}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_labels_pass_through_unchanged() {
        for s in ["zcu106", "retries=3,deadline=0.5s", "poisson(150.0)", ""] {
            assert_eq!(json_escape(s), s);
        }
    }

    #[test]
    fn hostile_labels_escape_and_validate() {
        let nasty = "a\"b\\c\nd\te\rf\u{1}g";
        let doc = format!("{{\"label\": \"{}\"}}", json_escape(nasty));
        validate(&doc).unwrap();
        assert!(!doc.contains('\n'));
    }

    #[test]
    fn validator_accepts_report_shapes_and_rejects_breakage() {
        validate("{\"a\": [1, 2.5, -3e4], \"b\": {\"c\": null}, \"d\": true}").unwrap();
        assert!(validate("{\"a\": }").is_err());
        assert!(validate("{\"a\": \"unterminated}").is_err());
        assert!(validate("{\"a\": 1} trailing").is_err());
        assert!(validate("{\"a\": \"raw\"quote\"}").is_err());
    }
}
