//! Property-based validation of the polyhedral engine against brute force.

use polyhedra::{BasicSet, Constraint, LinExpr, Map, Set, Space};
use proptest::prelude::*;

/// Strategy: a random box over `n` dims with small bounds.
fn small_box(n: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((-4i64..5, -4i64..5), n).prop_map(|v| {
        v.into_iter()
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect::<Vec<_>>()
    })
}

/// Strategy: a random affine constraint over `n` dims with coefficients in
/// {-1, 0, 1} — the (near-)unimodular class on which FM projection with
/// integer tightening is exact, which is exactly the class the CFDlang
/// flow produces for iteration and schedule dimensions. (Layout systems
/// add large strides but always through unit-coefficient equalities; see
/// `layout_strides_stay_exact` below.)
fn small_constraint(n: usize) -> impl Strategy<Value = Constraint> {
    (
        proptest::collection::vec(-1i64..2, n),
        -5i64..6,
        proptest::bool::ANY,
    )
        .prop_map(|(coeffs, k, is_eq)| {
            let e = LinExpr::new(&coeffs, k);
            if is_eq {
                Constraint::eq(e)
            } else {
                Constraint::ge0(e)
            }
        })
}

fn space(n: usize) -> Space {
    Space::named("s", n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FM projection of the trailing dim equals the brute-force shadow.
    #[test]
    fn projection_matches_bruteforce(bounds in small_box(3), c in small_constraint(3)) {
        let b = BasicSet::boxed(space(3), &bounds).constrain(c);
        let projected = b.project_out_trailing(1);
        // Brute-force shadow of the integer points.
        let mut shadow: Vec<Vec<i64>> = Vec::new();
        for p in b.points() {
            let q = p[..2].to_vec();
            if !shadow.contains(&q) { shadow.push(q); }
        }
        // Every shadow point is in the projection.
        for q in &shadow {
            prop_assert!(projected.contains(q), "missing shadow point {q:?}");
        }
        // Every projected point within the box bounds is a shadow point
        // (FM must not over-approximate on this unimodular class).
        let bb = BasicSet::boxed(space(2), &bounds[..2]);
        for q in bb.points() {
            if projected.contains(&q) {
                prop_assert!(shadow.contains(&q), "FM over-approximated at {q:?}");
            }
        }
    }

    /// Emptiness decided by FM agrees with brute-force point search.
    #[test]
    fn emptiness_matches_bruteforce(
        bounds in small_box(3),
        c1 in small_constraint(3),
        c2 in small_constraint(3),
    ) {
        let b = BasicSet::boxed(space(3), &bounds).constrain(c1).constrain(c2);
        let brute_empty = b.points().next().is_none();
        prop_assert_eq!(b.is_empty(), brute_empty);
    }

    /// Intersection is commutative and sound w.r.t. membership.
    #[test]
    fn intersection_commutes(b1 in small_box(2), b2 in small_box(2)) {
        let a = BasicSet::boxed(space(2), &b1);
        let b = BasicSet::boxed(space(2), &b2);
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        for p in BasicSet::boxed(space(2), &[(-4, 4), (-4, 4)]).points() {
            prop_assert_eq!(ab.contains(&p), a.contains(&p) && b.contains(&p));
            prop_assert_eq!(ab.contains(&p), ba.contains(&p));
        }
    }

    /// Set disjointness agrees with brute force.
    #[test]
    fn disjointness_matches_bruteforce(b1 in small_box(2), b2 in small_box(2)) {
        let a = Set::from_basic(BasicSet::boxed(space(2), &b1));
        let b = Set::from_basic(BasicSet::boxed(space(2), &b2));
        let brute = !b1.iter().zip(&b2).any(|_| false) && {
            let mut overlap = false;
            for p in a.parts[0].points() {
                if b.contains(&p) { overlap = true; break; }
            }
            !overlap
        };
        prop_assert_eq!(a.disjoint(&b), brute);
    }

    /// Affine map application: image membership agrees with evaluation.
    #[test]
    fn map_apply_matches_eval(
        bounds in small_box(2),
        coeffs in proptest::collection::vec(-2i64..3, 2),
        k in -5i64..6,
    ) {
        let e = LinExpr::new(&coeffs, k);
        let m = Map::from_affine(space(2), Space::named("o", 1), std::slice::from_ref(&e));
        let dom = Set::from_basic(BasicSet::boxed(space(2), &bounds));
        let img = m.apply(&dom);
        for p in dom.parts[0].points() {
            let v = e.eval(&p);
            prop_assert!(img.contains(&[v]), "image missing f({p:?}) = {v}");
        }
    }

    /// Composition of affine functions equals pointwise composition.
    #[test]
    fn compose_matches_eval(
        a0 in -2i64..3, a1 in -2i64..3, ka in -3i64..4,
        b0 in -2i64..3, kb in -3i64..4,
        x in -4i64..5, y in -4i64..5,
    ) {
        let f = Map::from_affine(space(2), Space::named("m", 1), &[LinExpr::new(&[a0, a1], ka)]);
        let g = Map::from_affine(Space::named("m", 1), Space::named("o", 1), &[LinExpr::new(&[b0], kb)]);
        let gf = f.compose(&g);
        let fv = a0 * x + a1 * y + ka;
        let gv = b0 * fv + kb;
        prop_assert!(gf.contains(&[x, y], &[gv]));
        prop_assert!(!gf.contains(&[x, y], &[gv + 1]));
    }

    /// Row-major layout systems (large strides through unit-coefficient
    /// equalities, as produced by layout materialization) project exactly:
    /// eliminating the tensor indices from `a = s2*i + s1*j + k` plus box
    /// bounds yields exactly the reachable address range.
    #[test]
    fn layout_strides_stay_exact(p in 1i64..5) {
        use polyhedra::{BasicMap, Space};
        let n = p + 1; // dims 0..=p
        let tsp = Space::set("t", &["i", "j", "k"]);
        let asp = Space::set("a", &["addr"]);
        // addr = n^2*i + n*j + k
        let layout = BasicMap::from_affine(
            tsp.clone(),
            asp,
            &[LinExpr::new(&[n * n, n, 1], 0)],
        );
        let dom = BasicSet::boxed(tsp, &[(0, p), (0, p), (0, p)]);
        let img = layout.apply(&dom);
        // The image must be exactly [0, n^3 - 1]: row-major over a full
        // box is surjective onto the flat range.
        for addr in 0..(n * n * n) {
            prop_assert!(img.contains(&[addr]), "missing addr {addr}");
        }
        prop_assert!(!img.contains(&[-1]));
        prop_assert!(!img.contains(&[n * n * n]));
    }

    /// GCD normalization preserves integer semantics: a constraint with
    /// all coefficients scaled by a common factor holds at exactly the
    /// same integer points as its normalized form (integer tightening of
    /// the constant included).
    #[test]
    fn normalized_constraint_equivalent_to_unnormalized(
        coeffs in proptest::collection::vec(-3i64..4, 3),
        k in -9i64..10,
        g in 1i64..5,
        is_eq in proptest::bool::ANY,
    ) {
        use polyhedra::constraint::Normalized;
        let scaled: Vec<i64> = coeffs.iter().map(|c| c * g).collect();
        let e = LinExpr::new(&scaled, k);
        let c = if is_eq { Constraint::eq(e) } else { Constraint::ge0(e) };
        let probe = BasicSet::boxed(space(3), &[(-4, 4), (-4, 4), (-4, 4)]);
        match c.normalize() {
            Normalized::Keep(n) => {
                for p in probe.points() {
                    prop_assert_eq!(
                        c.holds(&p), n.holds(&p),
                        "normalize changed semantics at {:?}: {} vs {}", p, c, n
                    );
                }
            }
            Normalized::Trivial => {
                for p in probe.points() {
                    prop_assert!(c.holds(&p), "trivial constraint fails at {:?}", p);
                }
            }
            Normalized::Infeasible => {
                for p in probe.points() {
                    prop_assert!(!c.holds(&p), "infeasible constraint holds at {:?}", p);
                }
            }
        }
    }

    /// The cached shared-sweep `dim_range` agrees with the uncached seed
    /// implementation (full per-dimension FM re-projection) on random
    /// bounded sets.
    #[test]
    fn cached_dim_range_matches_uncached(bounds in small_box(3), c in small_constraint(3)) {
        use polyhedra::points::{dim_range, dim_range_uncached};
        let b = BasicSet::boxed(space(3), &bounds).constrain(c);
        for d in 0..3 {
            let cached = dim_range(&b, d);
            let seed = dim_range_uncached(&b, d);
            // Both must agree on emptiness; on non-empty sets the ranges
            // must be identical.
            let empty = |r: Option<(i64, i64)>| matches!(r, Some((lo, hi)) if lo > hi);
            if empty(cached) || empty(seed) {
                prop_assert!(
                    empty(cached) && empty(seed),
                    "dim {}: cached {:?} vs uncached {:?}", d, cached, seed
                );
            } else {
                prop_assert_eq!(cached, seed, "dim {}", d);
            }
        }
    }

    /// lex_lt over random tuples is a strict total order.
    #[test]
    fn lex_total_order(
        a in proptest::collection::vec(-3i64..4, 3),
        b in proptest::collection::vec(-3i64..4, 3),
    ) {
        let m = polyhedra::lex_lt_map(3);
        let lt = m.contains(&a, &b);
        let gt = m.contains(&b, &a);
        if a == b {
            prop_assert!(!lt && !gt);
        } else {
            prop_assert!(lt ^ gt);
            prop_assert_eq!(lt, a < b, "lex order must match Vec's Ord");
        }
    }
}
