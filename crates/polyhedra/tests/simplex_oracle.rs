//! Differential validation of the layered emptiness oracle.
//!
//! `System::is_empty` (simplex-first, memoized) must agree with
//! `System::is_empty_via_fm` (the legacy quick-exits + Fourier–Motzkin
//! path) on *every* system — that equivalence is the correctness
//! contract of the oracle swap. The generators deliberately cover the
//! cases where the two engines take different routes:
//!
//! * feasible and infeasible random systems,
//! * equality-only systems (decided entirely by Gauss–Jordan),
//! * unbounded systems (interval propagation can't help; phase-I
//!   simplex or FM pairing must decide),
//! * rational-vertex systems (even coefficients against odd constants,
//!   e.g. `2x = 1`), where the rational relaxation is feasible but the
//!   integer question is not settled by it — the simplex verdict must
//!   defer to FM, never override it.
//!
//! The CI `polyhedra-oracle-smoke` job reruns this file with
//! `POLYHEDRA_ORACLE_CASES` raised well above the in-tree default.

use polyhedra::simplex::{feasibility, Verdict};
use polyhedra::{Constraint, LinExpr, System};
use proptest::prelude::*;

/// Case count per property: default 96, raised via the
/// `POLYHEDRA_ORACLE_CASES` environment variable in CI.
fn oracle_cases() -> u32 {
    std::env::var("POLYHEDRA_ORACLE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96)
}

/// Build a system over `n` vars from encoded rows (coeffs, constant,
/// is_eq), truncated to `rows` entries.
fn build(n_vars: usize, rows: &[(Vec<i64>, i64, bool)], rows_used: usize) -> System {
    let mut s = System::universe(n_vars);
    s.extend(rows.iter().take(rows_used).map(|(c, k, eq)| {
        let e = LinExpr::new(c, *k);
        if *eq {
            Constraint::eq(e)
        } else {
            Constraint::ge0(e)
        }
    }));
    s
}

/// Strategy: up to `max_rows` random rows over `n` vars. Coefficients
/// up to ±3 and constants up to ±8 produce a healthy mix of feasible,
/// infeasible, unbounded and rational-vertex systems.
fn arb_rows(n: usize, max_rows: usize) -> impl Strategy<Value = Vec<(Vec<i64>, i64, bool)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(-3i64..4, n),
            -8i64..9,
            proptest::bool::ANY,
        ),
        max_rows,
    )
}

/// The two oracles on one system: full agreement, and the raw simplex
/// verdict must be individually sound against FM.
fn assert_oracles_agree(s: &System) {
    let fm = s.is_empty_via_fm();
    assert_eq!(
        s.is_empty(),
        fm,
        "oracle mismatch on {} rows over {} vars: {:?}",
        s.constraints().len(),
        s.n_vars(),
        s.constraints()
    );
    match feasibility(s) {
        Verdict::Empty => assert!(fm, "simplex Empty but FM feasible: {:?}", s.constraints()),
        Verdict::Witness(pt) => {
            assert!(
                s.holds(&pt),
                "witness {pt:?} fails rows {:?}",
                s.constraints()
            );
            assert!(
                !fm,
                "integer witness {pt:?} but FM empty: {:?}",
                s.constraints()
            );
        }
        // Rational feasibility without an integral vertex (or overflow)
        // decides nothing about the integer question — no obligation.
        Verdict::Fractional | Verdict::Overflow => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(oracle_cases()))]

    /// Mixed random systems: the headline differential property.
    #[test]
    fn simplex_matches_fm(
        rows in arb_rows(3, 6),
        rows_used in 0usize..7,
    ) {
        let s = build(3, &rows, rows_used.min(rows.len()));
        assert_oracles_agree(&s);
    }

    /// Equality-only systems: everything rides on Gauss–Jordan and the
    /// `0 = c` contradiction check.
    #[test]
    fn simplex_matches_fm_equality_only(
        rows in arb_rows(3, 5),
        rows_used in 0usize..6,
    ) {
        let eq_rows: Vec<(Vec<i64>, i64, bool)> = rows
            .into_iter()
            .map(|(c, k, _)| (c, k, true))
            .collect();
        let s = build(3, &eq_rows, rows_used.min(eq_rows.len()));
        assert_oracles_agree(&s);
    }

    /// Unbounded strips: drop box bounds entirely so interval
    /// propagation never settles the verdict — phase-I simplex (or FM
    /// pairing) has to.
    #[test]
    fn simplex_matches_fm_unbounded(
        c1 in proptest::collection::vec(-3i64..4, 4),
        c2 in proptest::collection::vec(-3i64..4, 4),
        k1 in -8i64..9,
        k2 in -8i64..9,
    ) {
        let mut s = System::universe(4);
        s.extend([
            Constraint::ge0(LinExpr::new(&c1, k1)),
            Constraint::ge0(LinExpr::new(&c2, k2)),
        ]);
        assert_oracles_agree(&s);
    }

    /// Rational-vertex family: `d*x = k` lines with even/odd mixes pin
    /// the rational solution to fractional coordinates; integer
    /// tightening proves emptiness where the relaxation is feasible.
    /// The layered oracle must reproduce FM's verdict, not the
    /// relaxation's.
    #[test]
    fn simplex_matches_fm_rational_vertex(
        d in 2i64..5,
        k in -6i64..7,
        lo in -4i64..1,
        hi in 0i64..5,
    ) {
        let mut s = System::universe(2);
        s.extend([
            // d*x - k = 0: integral solutions iff d | k.
            Constraint::eq(LinExpr::new(&[d, 0], -k)),
            // x bounded, y = x (ties the second var in).
            Constraint::ge0(LinExpr::new(&[1, 0], -lo)),
            Constraint::ge0(LinExpr::new(&[-1, 0], hi)),
            Constraint::eq(LinExpr::new(&[1, -1], 0)),
        ]);
        assert_oracles_agree(&s);
    }

    /// Memoized and cold paths agree: the first call may compute, every
    /// repeat must serve the identical verdict (the memo is process-wide,
    /// so the second call is a hit whenever the first stored).
    #[test]
    fn memoized_verdict_matches_cold(
        rows in arb_rows(3, 5),
        rows_used in 0usize..6,
    ) {
        let s = build(3, &rows, rows_used.min(rows.len()));
        let cold = s.is_empty();
        prop_assert_eq!(s.is_empty(), cold);
        prop_assert_eq!(s.clone().is_empty(), cold);
        prop_assert_eq!(s.is_empty_via_fm(), cold);
    }
}

/// The documented divergence between the rational relaxation and the
/// integer question: `{2j = i, i = 1}` is rationally feasible at
/// `(1, 1/2)` but integer-empty. The layered oracle must answer like FM.
#[test]
fn integer_only_empty_system_stays_empty() {
    let mut s = System::universe(2);
    s.extend([
        Constraint::eq(LinExpr::new(&[-1, 2], 0)),
        Constraint::eq(LinExpr::new(&[1, 0], -1)),
    ]);
    assert!(s.is_empty_via_fm(), "FM must prove integer emptiness");
    assert_eq!(s.is_empty(), s.is_empty_via_fm());
    // And the raw probe must not claim an integer witness.
    match feasibility(&s) {
        Verdict::Witness(pt) => panic!("bogus witness {pt:?}"),
        Verdict::Empty => panic!("rationally feasible system declared Empty"),
        Verdict::Fractional | Verdict::Overflow => {}
    }
}
