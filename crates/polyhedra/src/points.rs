//! Integer point enumeration for bounded sets.
//!
//! Used by tests and brute-force validators. Enumeration computes the
//! bounding box of the set by per-dimension FM projection, iterates the
//! box lexicographically, and filters by membership. This is exponential
//! in general and perfectly fine for the small validation sets used here.

use crate::constraint::ConstraintKind;
use crate::set::BasicSet;

/// Iterator over the integer points of a bounded [`BasicSet`].
pub struct PointIter<'a> {
    set: &'a BasicSet,
    ranges: Vec<(i64, i64)>,
    cursor: Option<Vec<i64>>,
}

impl<'a> PointIter<'a> {
    /// Create an iterator. Panics if the set is unbounded in some
    /// dimension (point enumeration is only meaningful for bounded sets).
    pub fn new(set: &'a BasicSet) -> Self {
        let n = set.dim();
        if set.system.known_infeasible() {
            return PointIter {
                set,
                ranges: Vec::new(),
                cursor: None,
            };
        }
        let mut ranges = Vec::with_capacity(n);
        for d in 0..n {
            match dim_range(set, d) {
                Some(r) if r.0 <= r.1 => ranges.push(r),
                _ => {
                    return PointIter {
                        set,
                        ranges: Vec::new(),
                        cursor: None,
                    }
                }
            }
        }
        let start: Vec<i64> = ranges.iter().map(|r| r.0).collect();
        PointIter {
            set,
            ranges,
            cursor: if n == 0 {
                Some(Vec::new())
            } else {
                Some(start)
            },
        }
    }
}

/// Compute the `[lo, hi]` range of dimension `d` by projecting out all
/// other dimensions. Returns `None` if unbounded on either side.
pub fn dim_range(set: &BasicSet, d: usize) -> Option<(i64, i64)> {
    let n = set.dim();
    // Eliminate trailing dims after d, then the leading ones.
    let sys = set
        .system
        .eliminate_range(d + 1, n - d - 1)
        .eliminate_range(0, d);
    if sys.known_infeasible() {
        return Some((1, 0)); // canonical empty range
    }
    let mut lo: Option<i64> = None;
    let mut hi: Option<i64> = None;
    for c in sys.constraints() {
        let a = c.expr.coeffs[0];
        let k = c.expr.constant;
        match c.kind {
            ConstraintKind::Eq => {
                // a*x + k = 0; normalized a > 0 and a | k.
                let v = -k / a;
                lo = Some(lo.map_or(v, |l| l.max(v)));
                hi = Some(hi.map_or(v, |h| h.min(v)));
            }
            ConstraintKind::GeZero => {
                if a > 0 {
                    // x >= ceil(-k / a); normalization makes a == 1.
                    let v = div_ceil(-k, a);
                    lo = Some(lo.map_or(v, |l| l.max(v)));
                } else if a < 0 {
                    let v = div_floor(k, -a);
                    hi = Some(hi.map_or(v, |h| h.min(v)));
                }
            }
        }
    }
    match (lo, hi) {
        (Some(l), Some(h)) => Some((l, h)),
        _ => None,
    }
}

fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b) + if a.rem_euclid(b) != 0 { 1 } else { 0 }
}

fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

impl Iterator for PointIter<'_> {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        loop {
            let cur = self.cursor.take()?;
            // Advance cursor (odometer).
            if cur.is_empty() {
                // 0-dimensional: single point, emitted once.
                self.cursor = None;
                return Some(cur);
            }
            let mut nxt = cur.clone();
            let mut d = nxt.len();
            loop {
                if d == 0 {
                    self.cursor = None;
                    break;
                }
                d -= 1;
                nxt[d] += 1;
                if nxt[d] <= self.ranges[d].1 {
                    self.cursor = Some(nxt);
                    break;
                }
                nxt[d] = self.ranges[d].0;
            }
            if self.set.contains(&cur) {
                return Some(cur);
            }
            self.cursor.as_ref()?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Space;

    #[test]
    fn enumerates_box() {
        let b = BasicSet::boxed(Space::set("t", &["i", "j"]), &[(0, 1), (0, 2)]);
        let pts: Vec<Vec<i64>> = b.points().collect();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], vec![0, 0]);
        assert_eq!(pts[5], vec![1, 2]);
    }

    #[test]
    fn zero_dimensional_scalar() {
        let b = BasicSet::universe(Space::set("s", &[]));
        let pts: Vec<Vec<i64>> = b.points().collect();
        assert_eq!(pts, vec![Vec::<i64>::new()]);
    }

    #[test]
    fn empty_set_yields_nothing() {
        let b = BasicSet::boxed(Space::set("t", &["i"]), &[(5, 2)]);
        assert_eq!(b.points().count(), 0);
    }

    #[test]
    fn triangle_count() {
        // { (i,j) : 0 <= i <= 3, 0 <= j <= i } -> 1+2+3+4 = 10 points
        use crate::constraint::Constraint;
        use crate::linexpr::LinExpr;
        let b = BasicSet::boxed(Space::set("t", &["i", "j"]), &[(0, 3), (0, 3)])
            .constrain(Constraint::ge0(LinExpr::new(&[1, -1], 0)));
        assert_eq!(b.points().count(), 10);
    }

    #[test]
    fn dim_range_of_triangle() {
        use crate::constraint::Constraint;
        use crate::linexpr::LinExpr;
        let b = BasicSet::boxed(Space::set("t", &["i", "j"]), &[(0, 3), (0, 3)])
            .constrain(Constraint::ge0(LinExpr::new(&[1, -1], 0)));
        assert_eq!(dim_range(&b, 0), Some((0, 3)));
        assert_eq!(dim_range(&b, 1), Some((0, 3)));
    }

    #[test]
    fn div_helpers() {
        assert_eq!(div_ceil(5, 2), 3);
        assert_eq!(div_ceil(-5, 2), -2);
        assert_eq!(div_floor(5, 2), 2);
        assert_eq!(div_floor(-5, 2), -3);
    }
}
