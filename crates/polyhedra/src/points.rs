//! Integer point enumeration for bounded sets.
//!
//! Used by tests and brute-force validators. Enumeration walks the set's
//! (cached) bounding box in lexicographic order, but instead of testing
//! full membership of every lattice point in the box, each dimension's
//! range is re-tightened from the suffix-projected constraint systems as
//! the prefix advances — whole empty subtrees of the box are skipped.
//! A final membership check per emitted point keeps the enumeration
//! exact (the projections never lose integer points, so nothing is
//! missed). This is exponential in general and perfectly fine for the
//! small validation sets used here.

use crate::constraint::ConstraintKind;
use crate::linexpr::clamp_i64;
use crate::set::BasicSet;
use crate::system::System;

/// Iterator over the integer points of a bounded [`BasicSet`].
pub struct PointIter<'a> {
    set: &'a BasicSet,
    n: usize,
    /// `levels[d]`: the system with dimensions after `d` projected out
    /// (ranges over dims `0..=d`). Used to tighten dimension `d`'s range
    /// for the current prefix. Borrowed from the set's memoized
    /// projection sweep — constructing an iterator computes the chain at
    /// most once per set.
    levels: &'a [System],
    /// Static bounding box (start point for every dynamic range).
    bbox: Vec<(i64, i64)>,
    /// Dynamic `[lo, hi]` per dimension for the current prefix.
    ranges: Vec<(i64, i64)>,
    cur: Vec<i64>,
    started: bool,
    done: bool,
}

impl<'a> PointIter<'a> {
    /// Create an iterator. Unbounded or empty sets yield no points
    /// (enumeration is only meaningful for bounded sets).
    pub fn new(set: &'a BasicSet) -> Self {
        let n = set.dim();
        let empty = |set| PointIter {
            set,
            n,
            levels: &[],
            bbox: Vec::new(),
            ranges: Vec::new(),
            cur: Vec::new(),
            started: false,
            done: true,
        };
        if set.system.known_infeasible() {
            return empty(set);
        }
        if n == 0 {
            // 0-dimensional: the single empty point.
            return PointIter {
                set,
                n,
                levels: &[],
                bbox: Vec::new(),
                ranges: Vec::new(),
                cur: Vec::new(),
                started: false,
                done: false,
            };
        }
        // One memoized sweep provides both the bounding box (deciding
        // boundedness and emptiness) and the suffix projection chain used
        // for incremental range tightening.
        let proj = set.projection();
        let mut bbox = Vec::with_capacity(n);
        for r in &proj.bbox {
            match r {
                Some((lo, hi)) if lo <= hi => bbox.push((*lo, *hi)),
                _ => return empty(set),
            }
        }
        PointIter {
            set,
            n,
            levels: &proj.levels,
            bbox,
            ranges: vec![(0, 0); n],
            cur: vec![0; n],
            started: false,
            done: false,
        }
    }

    /// Range of dimension `d` for the current prefix `cur[0..d]`,
    /// starting from the static box and tightened by every row of
    /// `levels[d]` that mentions `x_d`. A lo > hi result means the
    /// subtree is empty.
    fn range_at(&self, d: usize) -> (i64, i64) {
        let (mut lo, mut hi) = self.bbox[d];
        for c in self.levels[d].constraints() {
            let a = c.expr.coeffs[d];
            if a == 0 {
                continue;
            }
            // a*x_d + e(prefix) (>=|=) 0. i64×i64 products fit i128; the
            // accumulation is checked so overflow panics loudly instead
            // of silently pruning a live subtree.
            let mut e = c.expr.constant as i128;
            for v in 0..d {
                e = e
                    .checked_add(c.expr.coeffs[v] as i128 * self.cur[v] as i128)
                    .expect("prefix evaluation overflow");
            }
            let a = a as i128;
            match c.kind {
                ConstraintKind::Eq => {
                    if e.rem_euclid(a) != 0 {
                        return (1, 0); // no integer solution on this prefix
                    }
                    let v = clamp_i64(-e / a);
                    lo = lo.max(v);
                    hi = hi.min(v);
                }
                ConstraintKind::GeZero => {
                    if a > 0 {
                        // x_d >= ceil(-e / a)
                        lo = lo.max(clamp_i64(-(e.div_euclid(a))));
                    } else {
                        // x_d <= floor(e / -a)
                        hi = hi.min(clamp_i64(e.div_euclid(-a)));
                    }
                }
            }
            if lo > hi {
                return (1, 0);
            }
        }
        (lo, hi)
    }

    /// Advance the deepest dimension strictly before `d` that still has
    /// headroom; returns the dimension advanced.
    fn bump(&mut self, d: usize) -> Option<usize> {
        let mut b = d;
        while b > 0 {
            b -= 1;
            if self.cur[b] < self.ranges[b].1 {
                self.cur[b] += 1;
                return Some(b);
            }
        }
        None
    }

    /// Fill dimensions `d..n` with the lows of their dynamic ranges,
    /// advancing earlier dimensions past empty subtrees. Returns `false`
    /// when the whole space is exhausted.
    fn fill(&mut self, mut d: usize) -> bool {
        while d < self.n {
            let (lo, hi) = self.range_at(d);
            if lo <= hi {
                self.ranges[d] = (lo, hi);
                self.cur[d] = lo;
                d += 1;
            } else {
                match self.bump(d) {
                    Some(b) => d = b + 1,
                    None => return false,
                }
            }
        }
        true
    }
}

/// Compute the `[lo, hi]` range of dimension `d` via the set's cached
/// bounding box (one shared elimination sweep for all dimensions,
/// memoized on the set). Returns `None` if unbounded on either side and
/// the canonical empty range `(1, 0)` when the set is empty.
pub fn dim_range(set: &BasicSet, d: usize) -> Option<(i64, i64)> {
    set.bounding_box()[d]
}

/// The seed implementation of [`dim_range`]: a full Fourier–Motzkin
/// re-projection of all other dimensions, per dimension, with no sharing
/// or caching. Kept as the oracle for property tests of the cached path.
pub fn dim_range_uncached(set: &BasicSet, d: usize) -> Option<(i64, i64)> {
    let n = set.dim();
    // Eliminate trailing dims after d, then the leading ones.
    let sys = set
        .system
        .eliminate_range(d + 1, n - d - 1)
        .eliminate_range(0, d);
    if sys.known_infeasible() {
        return Some((1, 0)); // canonical empty range
    }
    let mut lo: Option<i64> = None;
    let mut hi: Option<i64> = None;
    for c in sys.constraints() {
        let a = c.expr.coeffs[0];
        let k = c.expr.constant;
        match c.kind {
            ConstraintKind::Eq => {
                // a*x + k = 0; normalized a > 0 and a | k.
                let v = -k / a;
                lo = Some(lo.map_or(v, |l| l.max(v)));
                hi = Some(hi.map_or(v, |h| h.min(v)));
            }
            ConstraintKind::GeZero => {
                if a > 0 {
                    // x >= ceil(-k / a); normalization makes a == 1.
                    let v = div_ceil(-k, a);
                    lo = Some(lo.map_or(v, |l| l.max(v)));
                } else if a < 0 {
                    let v = div_floor(k, -a);
                    hi = Some(hi.map_or(v, |h| h.min(v)));
                }
            }
        }
    }
    match (lo, hi) {
        (Some(l), Some(h)) => Some((l, h)),
        _ => None,
    }
}

fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b) + if a.rem_euclid(b) != 0 { 1 } else { 0 }
}

fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

impl Iterator for PointIter<'_> {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        if self.done {
            return None;
        }
        if self.n == 0 {
            // 0-dimensional: single point, emitted once.
            self.done = true;
            return Some(Vec::new());
        }
        loop {
            let alive = if !self.started {
                self.started = true;
                self.fill(0)
            } else {
                match self.bump(self.n) {
                    Some(b) => self.fill(b + 1),
                    None => false,
                }
            };
            if !alive {
                self.done = true;
                return None;
            }
            if self.set.contains(&self.cur) {
                return Some(self.cur.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Space;

    #[test]
    fn enumerates_box() {
        let b = BasicSet::boxed(Space::set("t", &["i", "j"]), &[(0, 1), (0, 2)]);
        let pts: Vec<Vec<i64>> = b.points().collect();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], vec![0, 0]);
        assert_eq!(pts[5], vec![1, 2]);
    }

    #[test]
    fn zero_dimensional_scalar() {
        let b = BasicSet::universe(Space::set("s", &[]));
        let pts: Vec<Vec<i64>> = b.points().collect();
        assert_eq!(pts, vec![Vec::<i64>::new()]);
    }

    #[test]
    fn empty_set_yields_nothing() {
        let b = BasicSet::boxed(Space::set("t", &["i"]), &[(5, 2)]);
        assert_eq!(b.points().count(), 0);
    }

    #[test]
    fn triangle_count() {
        // { (i,j) : 0 <= i <= 3, 0 <= j <= i } -> 1+2+3+4 = 10 points
        use crate::constraint::Constraint;
        use crate::linexpr::LinExpr;
        let b = BasicSet::boxed(Space::set("t", &["i", "j"]), &[(0, 3), (0, 3)])
            .constrain(Constraint::ge0(LinExpr::new(&[1, -1], 0)));
        assert_eq!(b.points().count(), 10);
    }

    #[test]
    fn dim_range_of_triangle() {
        use crate::constraint::Constraint;
        use crate::linexpr::LinExpr;
        let b = BasicSet::boxed(Space::set("t", &["i", "j"]), &[(0, 3), (0, 3)])
            .constrain(Constraint::ge0(LinExpr::new(&[1, -1], 0)));
        assert_eq!(dim_range(&b, 0), Some((0, 3)));
        assert_eq!(dim_range(&b, 1), Some((0, 3)));
        assert_eq!(dim_range_uncached(&b, 0), Some((0, 3)));
        assert_eq!(dim_range_uncached(&b, 1), Some((0, 3)));
    }

    #[test]
    fn unbounded_dim_yields_no_points() {
        let b = BasicSet::universe(Space::set("t", &["i"]));
        assert_eq!(dim_range(&b, 0), None);
        assert_eq!(b.points().count(), 0);
    }

    #[test]
    fn pruned_walk_matches_filtered_walk_on_diagonal() {
        // { (i,j,k) : i = j = k } inside a box: 5 points on the diagonal;
        // the pruned walk must emit them in the same lexicographic order.
        let b = BasicSet::boxed(Space::set("t", &["i", "j", "k"]), &[(0, 4); 3])
            .constrain(crate::constraint::Constraint::eq(
                crate::linexpr::LinExpr::new(&[1, -1, 0], 0),
            ))
            .constrain(crate::constraint::Constraint::eq(
                crate::linexpr::LinExpr::new(&[0, 1, -1], 0),
            ));
        let pts: Vec<Vec<i64>> = b.points().collect();
        assert_eq!(pts.len(), 5);
        for (v, p) in pts.iter().enumerate() {
            assert_eq!(p, &vec![v as i64; 3]);
        }
    }

    #[test]
    fn div_helpers() {
        assert_eq!(div_ceil(5, 2), 3);
        assert_eq!(div_ceil(-5, 2), -2);
        assert_eq!(div_floor(5, 2), 2);
        assert_eq!(div_floor(-5, 2), -3);
    }
}
