//! Integer sets over named spaces.
//!
//! A [`BasicSet`] is one integer polyhedron (conjunction of affine
//! constraints); a [`Set`] is a finite union of basic sets over the same
//! space. Unions arise from lexicographic-order expansion (see
//! [`crate::lex`]).

use crate::constraint::Constraint;
use crate::linexpr::LinExpr;
use crate::points::PointIter;
use crate::space::Space;
use crate::system::System;
use std::fmt;
use std::sync::OnceLock;

/// A single integer polyhedron over a named space.
///
/// Carries a lazily computed, memoized bounding box (see
/// [`BasicSet::bounding_box`]); the cache is ignored by equality and
/// shared by clones, and never observable through the public API other
/// than as saved recomputation.
#[derive(Debug)]
pub struct BasicSet {
    pub space: Space,
    /// Crate-private so external code cannot mutate the system out from
    /// under the memoized projection cache; read through
    /// [`BasicSet::system`]. In-crate code must not mutate it after
    /// `projection()` has run.
    pub(crate) system: System,
    /// Cached projection sweep (suffix chain + bounding box); computed by
    /// one shared elimination sweep on first use.
    bbox: OnceLock<ProjectionCache>,
    /// Cached interval-propagation box: a sound over-approximation of
    /// the exact bounding box, much cheaper to compute (no elimination).
    /// Used by [`Set::disjoint`] to discard part pairs.
    qbox: OnceLock<Vec<Option<(i64, i64)>>>,
}

/// The memoized result of one suffix-elimination sweep over a system.
#[derive(Debug, Clone)]
pub(crate) struct ProjectionCache {
    /// `levels[d]`: the system with every dimension after `d` projected
    /// out (ranges over dims `0..=d`).
    pub(crate) levels: Vec<System>,
    /// Per-dimension `[lo, hi]` ranges; `None` when unbounded on either
    /// side, all `(1, 0)` when the set is empty.
    pub(crate) bbox: Vec<Option<(i64, i64)>>,
}

impl Clone for BasicSet {
    fn clone(&self) -> Self {
        let bbox = OnceLock::new();
        if let Some(b) = self.bbox.get() {
            let _ = bbox.set(b.clone());
        }
        let qbox = OnceLock::new();
        if let Some(q) = self.qbox.get() {
            let _ = qbox.set(q.clone());
        }
        BasicSet {
            space: self.space.clone(),
            system: self.system.clone(),
            bbox,
            qbox,
        }
    }
}

impl PartialEq for BasicSet {
    fn eq(&self, other: &Self) -> bool {
        self.space == other.space && self.system == other.system
    }
}

impl Eq for BasicSet {}

impl BasicSet {
    fn make(space: Space, system: System) -> Self {
        BasicSet {
            space,
            system,
            bbox: OnceLock::new(),
            qbox: OnceLock::new(),
        }
    }

    /// The full space (no constraints).
    pub fn universe(space: Space) -> Self {
        let system = System::universe(space.dim());
        BasicSet::make(space, system)
    }

    /// The empty set over `space`.
    pub fn empty(space: Space) -> Self {
        let system = System::infeasible(space.dim());
        BasicSet::make(space, system)
    }

    /// A rectangular domain: `bounds[d] = (lo, hi)` gives `lo <= x_d <= hi`
    /// (inclusive on both ends).
    pub fn boxed(space: Space, bounds: &[(i64, i64)]) -> Self {
        assert_eq!(space.dim(), bounds.len(), "bounds arity mismatch");
        let n = space.dim();
        let mut system = System::universe(n);
        for (d, &(lo, hi)) in bounds.iter().enumerate() {
            let x = LinExpr::var(n, d);
            system.add(Constraint::ge(&x, &LinExpr::constant(n, lo)));
            system.add(Constraint::le(&x, &LinExpr::constant(n, hi)));
        }
        BasicSet::make(space, system)
    }

    /// Build from raw equality rows `(coeffs, constant)` meaning
    /// `coeffs·x + constant = 0`.
    pub fn from_eqs(space: Space, eqs: &[(&[i64], i64)]) -> Self {
        let n = space.dim();
        let mut system = System::universe(n);
        for (coeffs, k) in eqs {
            assert_eq!(coeffs.len(), n);
            system.add(Constraint::eq(LinExpr::new(coeffs, *k)));
        }
        BasicSet::make(space, system)
    }

    /// Build from an arbitrary constraint system.
    pub fn from_system(space: Space, system: System) -> Self {
        assert_eq!(space.dim(), system.n_vars(), "system arity mismatch");
        BasicSet::make(space, system)
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.space.dim()
    }

    /// The constraint system (read-only: mutating it would invalidate
    /// the memoized projection cache).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Intersection of two basic sets (same space).
    pub fn intersect(&self, other: &BasicSet) -> BasicSet {
        assert!(
            self.space.compatible(&other.space),
            "intersect: incompatible spaces {} vs {}",
            self.space,
            other.space
        );
        BasicSet::make(self.space.clone(), self.system.intersect(&other.system))
    }

    /// Add a constraint.
    pub fn constrain(&self, c: Constraint) -> BasicSet {
        let mut system = self.system.clone();
        system.add(c);
        // Deliberately a fresh cell: the cached box of `self` does not
        // apply to the tightened system.
        BasicSet::make(self.space.clone(), system)
    }

    /// Whether the set contains no integer points.
    pub fn is_empty(&self) -> bool {
        self.system.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, point: &[i64]) -> bool {
        self.system.holds(point)
    }

    /// Project out the trailing `count` dimensions (FM elimination). The
    /// resulting space keeps the same tuple name.
    pub fn project_out_trailing(&self, count: usize) -> BasicSet {
        let n = self.dim();
        assert!(count <= n);
        let system = self.system.eliminate_range(n - count, count);
        let space = Space {
            tuple: self.space.tuple.clone(),
            dims: self.space.dims[..n - count].to_vec(),
        };
        BasicSet::make(space, system)
    }

    /// Project out the leading `count` dimensions.
    pub fn project_out_leading(&self, count: usize) -> BasicSet {
        let n = self.dim();
        assert!(count <= n);
        let system = self.system.eliminate_range(0, count);
        let space = Space {
            tuple: self.space.tuple.clone(),
            dims: self.space.dims[count..].to_vec(),
        };
        BasicSet::make(space, system)
    }

    /// Iterate all integer points (small sets only; used in tests and for
    /// brute-force validation).
    pub fn points(&self) -> PointIter<'_> {
        PointIter::new(self)
    }

    /// The per-dimension `[lo, hi]` bounding box of the set (`None` for a
    /// dimension unbounded on either side; the canonical empty range
    /// `(1, 0)` everywhere when the set is empty). Computed on first use
    /// by **one shared elimination sweep** — a single suffix chain of
    /// single-variable projections instead of a full Fourier–Motzkin
    /// re-projection per dimension — and memoized for reuse by
    /// [`BasicSet::points`], bound extraction and the lex machinery.
    ///
    /// The cache snapshots the system at first call; code that mutates
    /// `self.system` in place must not call this before mutating.
    pub fn bounding_box(&self) -> &[Option<(i64, i64)>] {
        &self.projection().bbox
    }

    /// The full memoized projection sweep (suffix chain + bounding box),
    /// shared by point enumeration and loop-bound extraction.
    pub(crate) fn projection(&self) -> &ProjectionCache {
        self.bbox.get_or_init(|| compute_projection(&self.system))
    }

    /// A sound over-approximate bounding box from interval propagation —
    /// no elimination, so far cheaper than [`BasicSet::bounding_box`],
    /// at the price of possibly looser (or absent) bounds on dimensions
    /// coupled through multi-variable constraints. Memoized; used to
    /// discard part pairs in [`Set::disjoint`].
    pub(crate) fn quick_box(&self) -> &[Option<(i64, i64)>] {
        self.qbox
            .get_or_init(|| match self.system.propagate_bounds() {
                None => vec![Some((1, 0)); self.dim()],
                Some((lo, hi)) => lo
                    .into_iter()
                    .zip(hi)
                    .map(|(l, h)| match (l, h) {
                        (Some(l), Some(h)) => Some((l, h)),
                        _ => None,
                    })
                    .collect(),
            })
    }

    /// Rename the space (dimensionality must match).
    pub fn with_space(&self, space: Space) -> BasicSet {
        assert_eq!(space.dim(), self.dim());
        let out = BasicSet::make(space, self.system.clone());
        if let Some(b) = self.bbox.get() {
            let _ = out.bbox.set(b.clone());
        }
        out
    }
}

/// One shared suffix sweep over a system: `levels[d]` (the system with
/// all dimensions after `d` projected out) is built incrementally from
/// `levels[d+1]` by eliminating one variable, and the range of dimension
/// `d` then needs only the *leading* `d` eliminations of the
/// already-shrunk `levels[d]`.
fn compute_projection(sys: &System) -> ProjectionCache {
    let n = sys.n_vars();
    // Walk the suffix chain from the last dimension down; `cur` holds
    // levels[d] (dims 0..=d) at the top of each iteration.
    let mut levels = Vec::with_capacity(n);
    let mut cur = sys.clone();
    for d in (0..n).rev() {
        levels.push(cur.clone());
        if d > 0 {
            cur = cur.eliminate(d); // cheap arity shrink when infeasible
        }
    }
    levels.reverse(); // levels[d] over dims 0..=d
    let mut empty = sys.known_infeasible();
    let mut bbox: Vec<Option<(i64, i64)>> = Vec::with_capacity(n);
    for (d, lvl) in levels.iter().enumerate() {
        if empty || lvl.known_infeasible() {
            empty = true;
            bbox.push(Some((1, 0)));
            continue;
        }
        let one = lvl.eliminate_range(0, d);
        let r = if one.known_infeasible() {
            Some((1, 0))
        } else {
            single_var_range(&one)
        };
        if matches!(r, Some((lo, hi)) if lo > hi) {
            empty = true;
        }
        bbox.push(r);
    }
    // If any dimension came out empty the set is empty: canonicalize.
    if empty {
        bbox = vec![Some((1, 0)); n];
    }
    ProjectionCache { levels, bbox }
}

/// Whether two bounding boxes certainly share no point: some dimension
/// has both ranges known and non-overlapping. (`None` ranges are
/// unbounded and never separate; the canonical empty box `(1, 0)` is
/// disjoint from everything.)
fn boxes_disjoint(a: &[Option<(i64, i64)>], b: &[Option<(i64, i64)>]) -> bool {
    a.iter().zip(b).any(|(ra, rb)| match (ra, rb) {
        (Some((alo, ahi)), Some((blo, bhi))) => alo.max(blo) > ahi.min(bhi),
        _ => false,
    })
}

/// Extract `[lo, hi]` of the single remaining variable of a projected
/// one-dimensional system; `None` when unbounded on either side.
fn single_var_range(sys: &System) -> Option<(i64, i64)> {
    use crate::constraint::ConstraintKind;
    let mut lo: Option<i64> = None;
    let mut hi: Option<i64> = None;
    for c in sys.constraints() {
        let a = c.expr.coeffs[0];
        let k = c.expr.constant;
        match c.kind {
            ConstraintKind::Eq => {
                // a*x + k = 0; normalized a > 0 and a | k.
                let v = -k / a;
                lo = Some(lo.map_or(v, |l| l.max(v)));
                hi = Some(hi.map_or(v, |h| h.min(v)));
            }
            ConstraintKind::GeZero => {
                if a > 0 {
                    // x >= ceil(-k / a); normalization makes a == 1.
                    let v = -(k.div_euclid(a));
                    lo = Some(lo.map_or(v, |l| l.max(v)));
                } else if a < 0 {
                    let v = k.div_euclid(-a);
                    hi = Some(hi.map_or(v, |h| h.min(v)));
                }
            }
        }
    }
    match (lo, hi) {
        (Some(l), Some(h)) => Some((l, h)),
        _ => None,
    }
}

impl fmt::Display for BasicSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cs: Vec<String> = self
            .system
            .constraints()
            .iter()
            .map(|c| c.display(&self.space.dims))
            .collect();
        if self.system.known_infeasible() {
            write!(f, "{{ {} : false }}", self.space)
        } else if cs.is_empty() {
            write!(f, "{{ {} }}", self.space)
        } else {
            write!(f, "{{ {} : {} }}", self.space, cs.join(" and "))
        }
    }
}

/// A finite union of basic sets over a common space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Set {
    pub space: Space,
    pub parts: Vec<BasicSet>,
}

impl Set {
    /// The empty set.
    pub fn empty(space: Space) -> Self {
        Set {
            space,
            parts: Vec::new(),
        }
    }

    /// The universe set.
    pub fn universe(space: Space) -> Self {
        let u = BasicSet::universe(space.clone());
        Set {
            space,
            parts: vec![u],
        }
    }

    /// A set from one basic set.
    pub fn from_basic(bs: BasicSet) -> Self {
        Set {
            space: bs.space.clone(),
            parts: vec![bs],
        }
    }

    /// Union (concatenation of parts, dropping known-empty ones).
    pub fn union(&self, other: &Set) -> Set {
        assert!(self.space.compatible(&other.space));
        let mut parts = self.parts.clone();
        parts.extend(other.parts.iter().cloned());
        Set {
            space: self.space.clone(),
            parts,
        }
        .coalesce()
    }

    /// Add one basic set.
    pub fn union_basic(&self, bs: BasicSet) -> Set {
        let mut out = self.clone();
        if !bs.system.known_infeasible() {
            out.parts.push(bs);
        }
        out
    }

    /// Pairwise intersection of the unions.
    pub fn intersect(&self, other: &Set) -> Set {
        assert!(self.space.compatible(&other.space));
        let mut parts = Vec::new();
        for a in &self.parts {
            for b in &other.parts {
                let c = a.intersect(b);
                if !c.system.known_infeasible() && !c.system.quick_infeasible() {
                    parts.push(c);
                }
            }
        }
        Set {
            space: self.space.clone(),
            parts,
        }
        .coalesce()
    }

    /// Whether the union is empty (every part empty).
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.is_empty())
    }

    /// Whether two sets share no integer point.
    ///
    /// Equivalent to `self.intersect(other).is_empty()` but never builds
    /// the intersection union: part pairs whose memoized propagation
    /// boxes miss each other are skipped outright (the boxes are shared
    /// across every `disjoint` call on the same set — the compatibility
    /// graph asks O(arrays) questions of each live set), and the first
    /// non-empty pairwise intersection short-circuits the answer.
    pub fn disjoint(&self, other: &Set) -> bool {
        for a in &self.parts {
            for b in &other.parts {
                if boxes_disjoint(a.quick_box(), b.quick_box()) {
                    continue;
                }
                let sys = a.system.intersect(&b.system);
                if !sys.is_empty() {
                    return false;
                }
            }
        }
        true
    }

    /// Membership test.
    pub fn contains(&self, point: &[i64]) -> bool {
        self.parts.iter().any(|p| p.contains(point))
    }

    /// Drop parts whose systems are already known infeasible (cheap) and
    /// deduplicate identical parts.
    pub fn coalesce(mut self) -> Set {
        self.parts.retain(|p| !p.system.known_infeasible());
        let mut kept: Vec<BasicSet> = Vec::new();
        for p in self.parts.drain(..) {
            if !kept.contains(&p) {
                kept.push(p);
            }
        }
        self.parts = kept;
        self
    }

    /// Drop parts that are fully empty (runs the emptiness oracle per
    /// part — more expensive than [`Set::coalesce`] but produces a
    /// minimal union).
    ///
    /// Unions built by join loops (e.g. `between_set`) routinely carry
    /// structurally identical disjuncts, so each distinct system is
    /// decided at most once per call here — repeats reuse the local
    /// verdict without even paying the global memo's key encoding.
    pub fn prune_empty(mut self) -> Set {
        let mut decided: Vec<(System, bool)> = Vec::new();
        self.parts.retain(|p| {
            let empty = match decided.iter().find(|(s, _)| *s == p.system) {
                Some(&(_, e)) => e,
                None => {
                    let e = p.is_empty();
                    decided.push((p.system.clone(), e));
                    e
                }
            };
            !empty
        });
        self
    }

    /// Project out trailing dimensions of every part.
    pub fn project_out_trailing(&self, count: usize) -> Set {
        let parts: Vec<BasicSet> = self
            .parts
            .iter()
            .map(|p| p.project_out_trailing(count))
            .collect();
        let space = Space {
            tuple: self.space.tuple.clone(),
            dims: self.space.dims[..self.space.dim() - count].to_vec(),
        };
        Set { space, parts }.coalesce()
    }

    /// Enumerate the integer points of all parts (deduplicated).
    pub fn points_vec(&self) -> Vec<Vec<i64>> {
        let mut out: Vec<Vec<i64>> = Vec::new();
        for p in &self.parts {
            for pt in p.points() {
                if !out.contains(&pt) {
                    out.push(pt);
                }
            }
        }
        out
    }
}

impl fmt::Display for Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parts.is_empty() {
            return write!(f, "{{ {} : false }}", self.space);
        }
        let parts: Vec<String> = self.parts.iter().map(|p| p.to_string()).collect();
        write!(f, "{}", parts.join(" ∪ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp2() -> Space {
        Space::set("t", &["i", "j"])
    }

    #[test]
    fn boxed_counts_points() {
        let b = BasicSet::boxed(sp2(), &[(0, 2), (0, 3)]);
        assert_eq!(b.points().count(), 12);
    }

    #[test]
    fn empty_box_when_bounds_cross() {
        let b = BasicSet::boxed(sp2(), &[(3, 2), (0, 3)]);
        assert!(b.is_empty());
    }

    #[test]
    fn intersect_box() {
        let a = BasicSet::boxed(sp2(), &[(0, 5), (0, 5)]);
        let b = BasicSet::boxed(sp2(), &[(3, 8), (3, 8)]);
        let c = a.intersect(&b);
        assert_eq!(c.points().count(), 9); // 3..=5 × 3..=5
    }

    #[test]
    fn project_out_trailing_box() {
        let b = BasicSet::boxed(sp2(), &[(0, 4), (2, 3)]);
        let p = b.project_out_trailing(1);
        assert_eq!(p.dim(), 1);
        assert_eq!(p.points().count(), 5);
    }

    #[test]
    fn project_out_leading_box() {
        let b = BasicSet::boxed(sp2(), &[(0, 4), (2, 3)]);
        let p = b.project_out_leading(1);
        assert_eq!(p.dim(), 1);
        assert_eq!(p.points().count(), 2);
    }

    #[test]
    fn union_and_disjoint() {
        let a = Set::from_basic(BasicSet::boxed(sp2(), &[(0, 1), (0, 1)]));
        let b = Set::from_basic(BasicSet::boxed(sp2(), &[(5, 6), (5, 6)]));
        assert!(a.disjoint(&b));
        let u = a.union(&b);
        assert_eq!(u.points_vec().len(), 8);
        assert!(!u.disjoint(&a));
    }

    #[test]
    fn set_intersect_unions() {
        let a = Set::from_basic(BasicSet::boxed(sp2(), &[(0, 3), (0, 3)]))
            .union_basic(BasicSet::boxed(sp2(), &[(10, 12), (10, 12)]));
        let b = Set::from_basic(BasicSet::boxed(sp2(), &[(2, 11), (2, 11)]));
        let c = a.intersect(&b);
        // (2..=3 × 2..=3) plus (10..=11 × 10..=11)
        assert_eq!(c.points_vec().len(), 8);
    }

    #[test]
    fn diagonal_constraint() {
        let d = BasicSet::from_eqs(sp2(), &[(&[1, -1], 0)]);
        let b = BasicSet::boxed(sp2(), &[(0, 10), (0, 10)]);
        assert_eq!(b.intersect(&d).points().count(), 11);
    }

    #[test]
    fn display_formats() {
        let b = BasicSet::boxed(Space::set("t", &["i"]), &[(0, 10)]);
        let s = b.to_string();
        assert!(s.contains("t[i]"), "{s}");
        assert!(s.contains("i >= 0") || s.contains("i - 0 >= 0"), "{s}");
    }

    #[test]
    fn prune_empty_removes_hidden_empties() {
        // Part is rationally constrained but integer-empty after FM.
        let mut sys = System::universe(1);
        sys.add(Constraint::ge0(LinExpr::new(&[1], -5)));
        sys.add(Constraint::ge0(LinExpr::new(&[-1], 4)));
        let hidden = BasicSet::from_system(Space::set("t", &["i"]), sys);
        let live = BasicSet::boxed(Space::set("t", &["i"]), &[(0, 1)]);
        let s = Set::from_basic(hidden).union_basic(live).prune_empty();
        assert_eq!(s.parts.len(), 1);
    }
}
