//! Affine relations between named spaces.
//!
//! A [`BasicMap`] from space `A` (arity `m`) to space `B` (arity `n`) is a
//! conjunction of affine constraints over the concatenated variable vector
//! `(a_0..a_{m-1}, b_0..b_{n-1})`. A [`Map`] is a finite union of basic
//! maps. The algebra (compose, product, apply, reverse, domain/range)
//! is everything the CFDlang flow needs for operand maps, schedules,
//! dependence analysis and liveness.

use crate::constraint::Constraint;
use crate::linexpr::LinExpr;
use crate::set::{BasicSet, Set};
use crate::space::Space;
use crate::system::System;
use std::fmt;

/// A single affine relation between two named spaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicMap {
    pub in_space: Space,
    pub out_space: Space,
    /// Constraints over `in_dims ++ out_dims`.
    pub system: System,
}

impl BasicMap {
    /// The universal relation.
    pub fn universe(in_space: Space, out_space: Space) -> Self {
        let system = System::universe(in_space.dim() + out_space.dim());
        BasicMap {
            in_space,
            out_space,
            system,
        }
    }

    /// The empty relation.
    pub fn empty(in_space: Space, out_space: Space) -> Self {
        let system = System::infeasible(in_space.dim() + out_space.dim());
        BasicMap {
            in_space,
            out_space,
            system,
        }
    }

    /// The graph of an affine function: `out_d = exprs[d](in)` where each
    /// expression ranges over the input dimensions only.
    pub fn from_affine(in_space: Space, out_space: Space, exprs: &[LinExpr]) -> Self {
        let m = in_space.dim();
        let n = out_space.dim();
        assert_eq!(exprs.len(), n, "one expression per output dim");
        let mut system = System::universe(m + n);
        for (d, e) in exprs.iter().enumerate() {
            assert_eq!(e.n_vars(), m, "expression over input dims");
            // out_d - e(in) = 0 over (in ++ out).
            let mut row = e.insert_vars(m, n).scale(-1);
            row.coeffs[m + d] += 1;
            system.add(Constraint::eq(row));
        }
        BasicMap {
            in_space,
            out_space,
            system,
        }
    }

    /// The identity map over a space.
    pub fn identity(space: Space) -> Self {
        let n = space.dim();
        let exprs: Vec<LinExpr> = (0..n).map(|d| LinExpr::var(n, d)).collect();
        BasicMap::from_affine(space.clone(), space, &exprs)
    }

    pub fn n_in(&self) -> usize {
        self.in_space.dim()
    }

    pub fn n_out(&self) -> usize {
        self.out_space.dim()
    }

    /// Whether `(input, output)` is in the relation.
    pub fn contains(&self, input: &[i64], output: &[i64]) -> bool {
        let mut pt = Vec::with_capacity(input.len() + output.len());
        pt.extend_from_slice(input);
        pt.extend_from_slice(output);
        self.system.holds(&pt)
    }

    /// Swap input and output.
    pub fn reverse(&self) -> BasicMap {
        let m = self.n_in();
        let n = self.n_out();
        let mut system = System::universe(m + n);
        for c in self.system.constraints() {
            // Permute (in ++ out) -> (out ++ in).
            let mut coeffs = vec![0i64; m + n];
            coeffs[n..n + m].copy_from_slice(&c.expr.coeffs[..m]);
            coeffs[..n].copy_from_slice(&c.expr.coeffs[m..m + n]);
            system.add(Constraint {
                kind: c.kind,
                expr: LinExpr::new(&coeffs, c.expr.constant),
            });
        }
        if self.system.known_infeasible() {
            system = System::infeasible(m + n);
        }
        BasicMap {
            in_space: self.out_space.clone(),
            out_space: self.in_space.clone(),
            system,
        }
    }

    /// The domain (inputs with at least one output).
    pub fn domain(&self) -> BasicSet {
        let n = self.n_out();
        let sys = self.system.eliminate_range(self.n_in(), n);
        BasicSet::from_system(self.in_space.clone(), sys)
    }

    /// The range (outputs reachable from some input).
    pub fn range(&self) -> BasicSet {
        let m = self.n_in();
        let sys = self.system.eliminate_range(0, m);
        BasicSet::from_system(self.out_space.clone(), sys)
    }

    /// Restrict the domain to a basic set.
    pub fn intersect_domain(&self, dom: &BasicSet) -> BasicMap {
        assert!(dom.space.compatible(&self.in_space));
        let lifted = dom.system.insert_vars(dom.dim(), self.n_out());
        BasicMap {
            in_space: self.in_space.clone(),
            out_space: self.out_space.clone(),
            system: self.system.intersect(&lifted),
        }
    }

    /// Restrict the range to a basic set.
    pub fn intersect_range(&self, rng: &BasicSet) -> BasicMap {
        assert!(rng.space.compatible(&self.out_space));
        let lifted = rng.system.insert_vars(0, self.n_in());
        BasicMap {
            in_space: self.in_space.clone(),
            out_space: self.out_space.clone(),
            system: self.system.intersect(&lifted),
        }
    }

    /// Relational composition `other ∘ self`: `self: A→B`, `other: B→C`,
    /// result `A→C` (`{(a,c) : ∃b. self(a,b) ∧ other(b,c)}`).
    pub fn compose(&self, other: &BasicMap) -> BasicMap {
        assert!(
            self.out_space.compatible(&other.in_space),
            "compose: {} vs {}",
            self.out_space,
            other.in_space
        );
        let a = self.n_in();
        let b = self.n_out();
        let c = other.n_out();
        // Variables (a, b, c).
        let s1 = self.system.insert_vars(a + b, c);
        let s2 = other.system.insert_vars(0, a);
        let joined = s1.intersect(&s2);
        let sys = joined.eliminate_range(a, b);
        BasicMap {
            in_space: self.in_space.clone(),
            out_space: other.out_space.clone(),
            system: sys,
        }
    }

    /// Cartesian product: `self: A→B`, `other: C→D`, result
    /// `(A×C) → (B×D)` with concatenated tuples.
    pub fn product(&self, other: &BasicMap) -> BasicMap {
        let a = self.n_in();
        let b = self.n_out();
        let c = other.n_in();
        let d = other.n_out();
        // Target variable order: (a, c, b, d).
        let s1 = self
            .system
            .insert_vars(a, c) // (a, c, b)
            .insert_vars(a + c + b, d); // (a, c, b, d)
        let s2 = other
            .system
            .insert_vars(0, a) // (a, c, d)
            .insert_vars(a + c, b); // (a, c, b, d)
        let in_space = concat_spaces(&self.in_space, &other.in_space);
        let out_space = concat_spaces(&self.out_space, &other.out_space);
        BasicMap {
            in_space,
            out_space,
            system: s1.intersect(&s2),
        }
    }

    /// Apply the relation to a basic set: image of `dom`.
    pub fn apply(&self, dom: &BasicSet) -> BasicSet {
        self.intersect_domain(dom).range()
    }

    /// View the relation as a set over the concatenated space.
    pub fn wrap(&self) -> BasicSet {
        let space = concat_spaces(&self.in_space, &self.out_space);
        BasicSet::from_system(space, self.system.clone())
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.system.is_empty()
    }

    /// Intersect two relations over the same spaces.
    pub fn intersect(&self, other: &BasicMap) -> BasicMap {
        assert!(self.in_space.compatible(&other.in_space));
        assert!(self.out_space.compatible(&other.out_space));
        BasicMap {
            in_space: self.in_space.clone(),
            out_space: self.out_space.clone(),
            system: self.system.intersect(&other.system),
        }
    }
}

/// Concatenate two spaces into an anonymous product space.
pub fn concat_spaces(a: &Space, b: &Space) -> Space {
    let tuple = if a.tuple.is_empty() && b.tuple.is_empty() {
        String::new()
    } else {
        format!("{}*{}", a.tuple, b.tuple)
    };
    let mut dims = a.dims.clone();
    dims.extend(b.dims.iter().cloned());
    Space { tuple, dims }
}

impl fmt::Display for BasicMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self
            .in_space
            .dims
            .iter()
            .chain(self.out_space.dims.iter())
            .cloned()
            .collect();
        let cs: Vec<String> = self
            .system
            .constraints()
            .iter()
            .map(|c| c.display(&names))
            .collect();
        write!(
            f,
            "{{ {} -> {}{} }}",
            self.in_space,
            self.out_space,
            if cs.is_empty() {
                String::new()
            } else {
                format!(" : {}", cs.join(" and "))
            }
        )
    }
}

/// A finite union of basic maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Map {
    pub in_space: Space,
    pub out_space: Space,
    pub parts: Vec<BasicMap>,
}

impl Map {
    /// The empty relation.
    pub fn empty(in_space: Space, out_space: Space) -> Self {
        Map {
            in_space,
            out_space,
            parts: Vec::new(),
        }
    }

    /// A map from one basic map.
    pub fn from_basic(bm: BasicMap) -> Self {
        Map {
            in_space: bm.in_space.clone(),
            out_space: bm.out_space.clone(),
            parts: vec![bm],
        }
    }

    /// The graph of an affine function.
    pub fn from_affine(in_space: Space, out_space: Space, exprs: &[LinExpr]) -> Self {
        Map::from_basic(BasicMap::from_affine(in_space, out_space, exprs))
    }

    /// Union.
    pub fn union(&self, other: &Map) -> Map {
        assert!(self.in_space.compatible(&other.in_space));
        assert!(self.out_space.compatible(&other.out_space));
        let mut parts = self.parts.clone();
        parts.extend(other.parts.iter().cloned());
        Map {
            in_space: self.in_space.clone(),
            out_space: self.out_space.clone(),
            parts,
        }
    }

    /// Add one basic map.
    pub fn union_basic(&self, bm: BasicMap) -> Map {
        let mut out = self.clone();
        out.parts.push(bm);
        out
    }

    /// Reverse every part.
    pub fn reverse(&self) -> Map {
        Map {
            in_space: self.out_space.clone(),
            out_space: self.in_space.clone(),
            parts: self.parts.iter().map(|p| p.reverse()).collect(),
        }
    }

    /// Pairwise composition `other ∘ self`.
    pub fn compose(&self, other: &Map) -> Map {
        let mut parts = Vec::new();
        for a in &self.parts {
            for b in &other.parts {
                let c = a.compose(b);
                if !c.system.known_infeasible() {
                    parts.push(c);
                }
            }
        }
        Map {
            in_space: self.in_space.clone(),
            out_space: other.out_space.clone(),
            parts,
        }
    }

    /// Pairwise cartesian product.
    pub fn product(&self, other: &Map) -> Map {
        let mut parts = Vec::new();
        for a in &self.parts {
            for b in &other.parts {
                parts.push(a.product(b));
            }
        }
        let in_space = concat_spaces(&self.in_space, &other.in_space);
        let out_space = concat_spaces(&self.out_space, &other.out_space);
        Map {
            in_space,
            out_space,
            parts,
        }
    }

    /// Image of a set.
    pub fn apply(&self, dom: &Set) -> Set {
        let mut parts = Vec::new();
        for m in &self.parts {
            for d in &dom.parts {
                let r = m.apply(d);
                if !r.system.known_infeasible() {
                    parts.push(r);
                }
            }
        }
        Set {
            space: self.out_space.clone(),
            parts,
        }
        .coalesce()
    }

    /// Domain of the union.
    pub fn domain(&self) -> Set {
        Set {
            space: self.in_space.clone(),
            parts: self.parts.iter().map(|p| p.domain()).collect(),
        }
        .coalesce()
    }

    /// Range of the union.
    pub fn range(&self) -> Set {
        Set {
            space: self.out_space.clone(),
            parts: self.parts.iter().map(|p| p.range()).collect(),
        }
        .coalesce()
    }

    /// Restrict domains.
    pub fn intersect_domain(&self, dom: &Set) -> Map {
        let mut parts = Vec::new();
        for m in &self.parts {
            for d in &dom.parts {
                let r = m.intersect_domain(d);
                if !r.system.known_infeasible() {
                    parts.push(r);
                }
            }
        }
        Map {
            in_space: self.in_space.clone(),
            out_space: self.out_space.clone(),
            parts,
        }
    }

    /// Restrict ranges.
    pub fn intersect_range(&self, rng: &Set) -> Map {
        let mut parts = Vec::new();
        for m in &self.parts {
            for r in &rng.parts {
                let x = m.intersect_range(r);
                if !x.system.known_infeasible() {
                    parts.push(x);
                }
            }
        }
        Map {
            in_space: self.in_space.clone(),
            out_space: self.out_space.clone(),
            parts,
        }
    }

    /// Intersect relations.
    pub fn intersect(&self, other: &Map) -> Map {
        let mut parts = Vec::new();
        for a in &self.parts {
            for b in &other.parts {
                let c = a.intersect(b);
                if !c.system.known_infeasible() {
                    parts.push(c);
                }
            }
        }
        Map {
            in_space: self.in_space.clone(),
            out_space: self.out_space.clone(),
            parts,
        }
    }

    /// View as a set over the concatenated space.
    pub fn wrap(&self) -> Set {
        let space = concat_spaces(&self.in_space, &self.out_space);
        Set {
            space,
            parts: self.parts.iter().map(|p| p.wrap()).collect(),
        }
    }

    /// Whether the union is empty.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.is_empty())
    }

    /// Whether `(input, output)` is in the relation.
    pub fn contains(&self, input: &[i64], output: &[i64]) -> bool {
        self.parts.iter().any(|p| p.contains(input, output))
    }
}

impl fmt::Display for Map {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parts.is_empty() {
            return write!(f, "{{ {} -> {} : false }}", self.in_space, self.out_space);
        }
        let parts: Vec<String> = self.parts.iter().map(|p| p.to_string()).collect();
        write!(f, "{}", parts.join(" ∪ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spa() -> Space {
        Space::set("a", &["i", "j"])
    }
    fn spb() -> Space {
        Space::set("b", &["x"])
    }

    #[test]
    fn affine_graph_contains() {
        // b[x] = a[i, j] with x = i + 2j + 1
        let m = BasicMap::from_affine(spa(), spb(), &[LinExpr::new(&[1, 2], 1)]);
        assert!(m.contains(&[3, 4], &[12]));
        assert!(!m.contains(&[3, 4], &[11]));
    }

    #[test]
    fn identity_map() {
        let id = BasicMap::identity(spa());
        assert!(id.contains(&[1, 2], &[1, 2]));
        assert!(!id.contains(&[1, 2], &[2, 1]));
    }

    #[test]
    fn reverse_swaps() {
        let m = BasicMap::from_affine(spa(), spb(), &[LinExpr::new(&[1, 2], 1)]);
        let r = m.reverse();
        assert!(r.contains(&[12], &[3, 4]));
    }

    #[test]
    fn domain_range_of_restricted_map() {
        let m = BasicMap::from_affine(spa(), spb(), &[LinExpr::new(&[1, 1], 0)])
            .intersect_domain(&BasicSet::boxed(spa(), &[(0, 2), (0, 2)]));
        let dom = m.domain();
        assert_eq!(dom.points().count(), 9);
        let rng = m.range();
        // i + j ranges over 0..=4
        assert_eq!(rng.points().count(), 5);
    }

    #[test]
    fn compose_functions() {
        // f(i,j) = i + j ; g(x) = 2x -> g∘f (i,j) = 2i + 2j
        let f = BasicMap::from_affine(spa(), spb(), &[LinExpr::new(&[1, 1], 0)]);
        let g = BasicMap::from_affine(
            Space::set("b", &["x"]),
            Space::set("c", &["y"]),
            &[LinExpr::new(&[2], 0)],
        );
        let gf = f.compose(&g);
        assert!(gf.contains(&[1, 2], &[6]));
        assert!(!gf.contains(&[1, 2], &[5]));
    }

    #[test]
    fn product_concatenates() {
        let f = BasicMap::from_affine(spb(), spb(), &[LinExpr::new(&[1], 1)]); // x+1
        let g = BasicMap::from_affine(spb(), spb(), &[LinExpr::new(&[1], -1)]); // x-1
        let p = f.product(&g);
        assert_eq!(p.n_in(), 2);
        assert_eq!(p.n_out(), 2);
        assert!(p.contains(&[5, 5], &[6, 4]));
        assert!(!p.contains(&[5, 5], &[4, 6]));
    }

    #[test]
    fn apply_set() {
        let m = Map::from_affine(spb(), spb(), &[LinExpr::new(&[1], 10)]);
        let s = Set::from_basic(BasicSet::boxed(spb(), &[(0, 4)]));
        let img = m.apply(&s);
        assert!(img.contains(&[10]));
        assert!(img.contains(&[14]));
        assert!(!img.contains(&[9]));
        assert!(!img.contains(&[15]));
    }

    #[test]
    fn union_map_apply() {
        let m = Map::from_affine(spb(), spb(), &[LinExpr::new(&[1], 1)]).union(&Map::from_affine(
            spb(),
            spb(),
            &[LinExpr::new(&[1], -1)],
        ));
        let s = Set::from_basic(BasicSet::boxed(spb(), &[(0, 0)]));
        let img = m.apply(&s);
        assert!(img.contains(&[1]));
        assert!(img.contains(&[-1]));
        assert!(!img.contains(&[0]));
    }

    #[test]
    fn wrap_as_set() {
        let m = BasicMap::from_affine(spb(), spb(), &[LinExpr::new(&[1], 1)])
            .intersect_domain(&BasicSet::boxed(spb(), &[(0, 3)]));
        let w = m.wrap();
        assert_eq!(w.dim(), 2);
        assert_eq!(w.points().count(), 4);
        assert!(w.contains(&[2, 3]));
    }

    #[test]
    fn empty_map_detection() {
        let m = BasicMap::from_affine(spb(), spb(), &[LinExpr::new(&[1], 0)])
            .intersect_domain(&BasicSet::boxed(spb(), &[(5, 2)]));
        assert!(m.is_empty());
    }

    #[test]
    fn intersect_maps() {
        // y = x + 1 intersect y = 2x  ->  only x=1,y=2
        let a = BasicMap::from_affine(spb(), spb(), &[LinExpr::new(&[1], 1)]);
        let b = BasicMap::from_affine(spb(), spb(), &[LinExpr::new(&[2], 0)]);
        let c = a.intersect(&b);
        assert!(c.contains(&[1], &[2]));
        assert!(!c.contains(&[2], &[3]));
        assert!(!c.is_empty());
    }
}
