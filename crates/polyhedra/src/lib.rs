//! `polyhedra` — a compact integer-set library for the polyhedral model.
//!
//! This crate is the stand-in for libISL [Verdoolaege, ICMS'10] used by the
//! CFDlang-to-FPGA flow. It provides exactly the polyhedral machinery the
//! compiler needs:
//!
//! * [`LinExpr`] — affine (linear + constant) integer expressions,
//! * [`Constraint`] / [`System`] — conjunctions of affine equalities and
//!   inequalities with Fourier–Motzkin (FM) variable elimination,
//! * [`BasicSet`] / [`Set`] — (unions of) integer polyhedra over named
//!   tuple spaces,
//! * [`BasicMap`] / [`Map`] — (unions of) affine relations between spaces
//!   with the usual algebra (compose, reverse, apply, domain/range),
//! * [`lex`] — lexicographic-order relations over schedule spaces, used for
//!   dependence legality and liveness (`ge_le` expansion),
//! * [`bounds`] — per-dimension affine loop-bound extraction for code
//!   generation,
//! * [`simplex`] — an exact rational phase-I simplex feasibility probe
//!   (the fast path behind emptiness tests),
//! * [`intern`] — process-wide hash-consed memoization of emptiness
//!   verdicts and projections, the oracle mode toggle, and the oracle
//!   counters surfaced in compile/DSE/bench reports.
//!
//! # Scope and exactness
//!
//! All sets arising from CFDlang kernels are affine images of rectangular
//! iteration domains; coefficients are small and the constraint matrices
//! are (near-)totally unimodular. On this class, FM projection with GCD
//! tightening is exact over the integers, so emptiness and disjointness —
//! the only decision procedures the flow relies on — are decided exactly.
//! The library performs integer tightening (floor-division of inequality
//! constants by the coefficient GCD) on every normalization, which is what
//! makes the rational FM projection integer-exact for this constraint
//! class.
//!
//! Emptiness no longer *runs* full FM by default: [`System::is_empty`]
//! layers interval propagation, corner probing, a memo table, and the
//! polynomial simplex probe in front of it, using FM only when the
//! rational verdict cannot settle the integer question. The combination
//! is verdict-identical to pure FM on every query (debug-asserted and
//! proptested); `POLYHEDRA_ORACLE=fm` forces the legacy path.
//!
//! # Example
//!
//! ```
//! use polyhedra::{Space, BasicSet, Set};
//!
//! // { t[i,j] : 0 <= i < 11 and 0 <= j < 11 }
//! let sp = Space::set("t", &["i", "j"]);
//! let t = BasicSet::boxed(sp.clone(), &[(0, 10), (0, 10)]);
//! assert!(!t.is_empty());
//! assert_eq!(t.points().count(), 121);
//!
//! // Intersect with { t[i,j] : i = j } and count the diagonal.
//! let diag = BasicSet::from_eqs(sp, &[(&[1, -1], 0)]);
//! let d = t.intersect(&diag);
//! assert_eq!(d.points().count(), 11);
//! ```

pub mod bounds;
pub mod constraint;
pub mod intern;
pub mod lex;
pub mod linexpr;
pub mod map;
pub mod points;
pub mod set;
pub mod simplex;
pub mod space;
pub mod system;

pub use bounds::{extract_bounds, ClosedInterval, DimBounds};
pub use constraint::{Constraint, ConstraintKind};
pub use intern::{oracle_signature, set_oracle_mode, OracleCounters, OracleMode};
pub use lex::{between_set, between_set_pruned, lex_le_map, lex_lt_map};
pub use linexpr::LinExpr;
pub use map::{BasicMap, Map};
pub use points::PointIter;
pub use set::{BasicSet, Set};
pub use space::Space;
pub use system::System;
