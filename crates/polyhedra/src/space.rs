//! Named tuple spaces.
//!
//! A [`Space`] identifies a tuple of integer dimensions, e.g. the index
//! space of tensor `t` of rank 3 is the space `t[i, j, k]`. Spaces carry a
//! tuple name (used to distinguish statements/arrays) and per-dimension
//! names (used only for pretty printing — identity is positional).

use std::fmt;

/// A named tuple space with `dims.len()` integer dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Space {
    /// Tuple name, e.g. a statement or array identifier. May be empty for
    /// anonymous (schedule) spaces.
    pub tuple: String,
    /// Per-dimension names, e.g. `["i", "j", "k"]`.
    pub dims: Vec<String>,
}

impl Space {
    /// Create a set space with the given tuple name and dimension names.
    pub fn set(tuple: &str, dims: &[&str]) -> Self {
        Space {
            tuple: tuple.to_string(),
            dims: dims.iter().map(|d| d.to_string()).collect(),
        }
    }

    /// Create an anonymous space of dimension `n` with synthesized names
    /// `d0, d1, ...`. Used for schedule spaces.
    pub fn anon(n: usize) -> Self {
        Space {
            tuple: String::new(),
            dims: (0..n).map(|i| format!("d{i}")).collect(),
        }
    }

    /// Create a space named `tuple` with `n` synthesized dimension names.
    pub fn named(tuple: &str, n: usize) -> Self {
        Space {
            tuple: tuple.to_string(),
            dims: (0..n).map(|i| format!("{tuple}{i}")).collect(),
        }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Whether two spaces are compatible for set operations: same
    /// dimensionality and same tuple name (anonymous tuples match
    /// anything).
    pub fn compatible(&self, other: &Space) -> bool {
        self.dim() == other.dim()
            && (self.tuple.is_empty() || other.tuple.is_empty() || self.tuple == other.tuple)
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.tuple, self.dims.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_space_has_name_and_dims() {
        let s = Space::set("t", &["i", "j", "k"]);
        assert_eq!(s.tuple, "t");
        assert_eq!(s.dim(), 3);
        assert_eq!(s.to_string(), "t[i, j, k]");
    }

    #[test]
    fn anon_space_dims() {
        let s = Space::anon(4);
        assert_eq!(s.dim(), 4);
        assert!(s.tuple.is_empty());
    }

    #[test]
    fn compatibility_requires_same_rank() {
        let a = Space::set("t", &["i"]);
        let b = Space::set("t", &["i", "j"]);
        assert!(!a.compatible(&b));
    }

    #[test]
    fn anonymous_matches_named() {
        let a = Space::anon(2);
        let b = Space::set("t", &["i", "j"]);
        assert!(a.compatible(&b));
        assert!(b.compatible(&a));
    }

    #[test]
    fn different_tuples_incompatible() {
        let a = Space::set("t", &["i"]);
        let b = Space::set("r", &["i"]);
        assert!(!a.compatible(&b));
    }

    #[test]
    fn named_synthesizes_dims() {
        let s = Space::named("s", 3);
        assert_eq!(s.dims, vec!["s0", "s1", "s2"]);
    }
}
