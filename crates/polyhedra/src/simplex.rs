//! Exact rational feasibility oracle: phase-I simplex over `i128`
//! rationals.
//!
//! [`feasibility`] decides whether a [`System`] has *rational* solutions
//! — polynomially in practice (every pivot is exact Gauss–Jordan /
//! simplex arithmetic, and Bland's rule guarantees termination) instead
//! of the exponential constraint cascade of full Fourier–Motzkin
//! elimination. The verdict is refined so [`System::is_empty`] can map it
//! onto the *integer* question FM answers without ever diverging:
//!
//! * [`Verdict::Empty`] — no rational solution, hence no integer one.
//!   FM (whose tightening only ever shrinks the rational hull) is
//!   guaranteed to agree.
//! * [`Verdict::Witness`] — the recovered basic solution is integral and
//!   has been re-verified against every row; the system certainly
//!   contains an integer point, and FM (which never cuts integer points)
//!   is guaranteed to agree.
//! * [`Verdict::Fractional`] — rational solutions exist but the
//!   recovered vertex is not integral; rational feasibility does *not*
//!   decide integer emptiness (the flow's normalization can prove
//!   integer emptiness of rationally feasible systems, e.g.
//!   `{2j = i, i = 1}`), so the caller must fall back to FM.
//! * [`Verdict::Overflow`] — the exact `i128` arithmetic overflowed;
//!   verdict unavailable, fall back to FM.
//!
//! The caller-visible contract is therefore: **whatever combination of
//! this oracle and FM [`System::is_empty`] uses, the verdict is
//! identical to pure FM on every query.** The `Fractional` case is rare
//! on the near-unimodular systems the CFDlang flow produces — their
//! phase-I basic solutions are integral almost always — so the
//! exponential path survives only as a fallback.
//!
//! # Algorithm
//!
//! 1. **Gauss–Jordan on the equalities.** Each equality row is solved
//!    for one variable and substituted through every other row (exact
//!    rational arithmetic). An equality reduced to `0 = c` with `c ≠ 0`
//!    proves rational emptiness outright. The flow's systems are
//!    equality-heavy (index maps), so this step usually shrinks the
//!    problem to a handful of inequality rows.
//! 2. **Phase-I simplex on the residual inequalities.** Remaining free
//!    variables are split `x = x⁺ − x⁻`, each inequality gets a surplus
//!    variable, rows are sign-normalized to a nonnegative right-hand
//!    side, and one artificial variable per row forms the starting
//!    basis. Minimizing the artificial sum with **Bland's rule**
//!    (smallest eligible entering column, smallest basis index on
//!    ties) terminates without cycling; the optimum is `0` iff the
//!    inequalities are rationally satisfiable.
//! 3. **Witness recovery.** Basic-variable values are read off the
//!    final tableau and back-substituted through the Gauss–Jordan
//!    pivots. An integral, row-verified point upgrades the verdict to
//!    [`Verdict::Witness`].

use crate::constraint::ConstraintKind;
use crate::system::System;

/// Verdict of the rational feasibility probe. See the module docs for
/// the exact guarantees each case carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No rational (hence no integer) solution.
    Empty,
    /// The system contains this integer point (verified against every
    /// row before being returned).
    Witness(Vec<i64>),
    /// Rational solutions exist but the recovered vertex is fractional:
    /// integer emptiness is undecided.
    Fractional,
    /// Exact `i128` arithmetic overflowed (or the defensive pivot cap
    /// was hit); verdict unavailable.
    Overflow,
}

/// Decide rational feasibility of `sys`. Exact: no floating point, no
/// heuristics — every returned [`Verdict::Empty`] / [`Verdict::Witness`]
/// is a proof (witnesses are re-checked against the original rows).
pub fn feasibility(sys: &System) -> Verdict {
    if sys.known_infeasible() {
        return Verdict::Empty;
    }
    match probe(sys) {
        Some(v) => v,
        None => Verdict::Overflow,
    }
}

// ---------------------------------------------------------------------------
// Exact rational arithmetic
// ---------------------------------------------------------------------------

/// A reduced rational with positive denominator. All operations are
/// overflow-checked (`None` aborts the probe into [`Verdict::Overflow`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    const ZERO: Rat = Rat { num: 0, den: 1 };

    fn int(v: i64) -> Rat {
        Rat {
            num: v as i128,
            den: 1,
        }
    }

    /// Build `num/den` in lowest terms with `den > 0`.
    fn make(num: i128, den: i128) -> Option<Rat> {
        debug_assert!(den != 0, "zero denominator");
        let (num, den) = if den < 0 {
            (num.checked_neg()?, den.checked_neg()?)
        } else {
            (num, den)
        };
        if num == 0 {
            return Some(Rat::ZERO);
        }
        let g = gcd_u128(num.unsigned_abs(), den.unsigned_abs()) as i128;
        Some(Rat {
            num: num / g,
            den: den / g,
        })
    }

    fn is_zero(self) -> bool {
        self.num == 0
    }

    fn is_neg(self) -> bool {
        self.num < 0
    }

    fn is_pos(self) -> bool {
        self.num > 0
    }

    fn is_integer(self) -> bool {
        self.den == 1
    }

    fn neg(self) -> Option<Rat> {
        Some(Rat {
            num: self.num.checked_neg()?,
            den: self.den,
        })
    }

    fn add(self, o: Rat) -> Option<Rat> {
        let num = self
            .num
            .checked_mul(o.den)?
            .checked_add(o.num.checked_mul(self.den)?)?;
        Rat::make(num, self.den.checked_mul(o.den)?)
    }

    fn sub(self, o: Rat) -> Option<Rat> {
        self.add(o.neg()?)
    }

    fn mul(self, o: Rat) -> Option<Rat> {
        Rat::make(self.num.checked_mul(o.num)?, self.den.checked_mul(o.den)?)
    }

    fn div(self, o: Rat) -> Option<Rat> {
        debug_assert!(!o.is_zero(), "division by zero");
        Rat::make(self.num.checked_mul(o.den)?, self.den.checked_mul(o.num)?)
    }

    /// `self < o`, overflow-checked.
    fn lt(self, o: Rat) -> Option<bool> {
        Some(self.sub(o)?.is_neg())
    }
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

// ---------------------------------------------------------------------------
// The probe
// ---------------------------------------------------------------------------

/// One working row: `coeffs · x + constant` (`= 0` when `eq`, `>= 0`
/// otherwise), over the original variable indices.
#[derive(Debug, Clone)]
struct Row {
    coeffs: Vec<Rat>,
    constant: Rat,
    eq: bool,
}

/// Defensive cap on simplex pivots. Bland's rule terminates without it;
/// the cap only turns a latent cycling bug into a (sound) FM fallback
/// instead of a hang.
const MAX_PIVOTS: usize = 100_000;

/// `None` = arithmetic overflow (mapped to [`Verdict::Overflow`]).
// Explicit row/column indices mirror standard tableau-simplex notation;
// iterator rewrites obscure the pivot algebra.
#[allow(clippy::needless_range_loop)]
fn probe(sys: &System) -> Option<Verdict> {
    let n = sys.n_vars();
    let mut rows: Vec<Row> = sys
        .constraints()
        .iter()
        .map(|c| Row {
            coeffs: c.expr.coeffs.iter().map(|&v| Rat::int(v)).collect(),
            constant: Rat::int(c.expr.constant),
            eq: c.kind == ConstraintKind::Eq,
        })
        .collect();

    // --- Step 1: Gauss–Jordan elimination of the equality rows.
    //
    // Each pivot (var, expr) records `x_var = expr` where `expr` only
    // mentions never-pivoted variables (full reduction: new pivots are
    // substituted into the stored ones too).
    let mut pivots: Vec<(usize, Row)> = Vec::new();
    while let Some(ri) = rows.iter().position(|r| r.eq) {
        let row = rows.remove(ri);
        let Some(v) = row.coeffs.iter().position(|c| !c.is_zero()) else {
            if row.constant.is_zero() {
                continue; // 0 = 0
            }
            return Some(Verdict::Empty); // 0 = c, c != 0
        };
        // a*x_v + rest + k = 0  =>  x_v = (-rest - k) / a.
        let a = row.coeffs[v];
        let mut expr = Row {
            coeffs: vec![Rat::ZERO; n],
            constant: row.constant.div(a)?.neg()?,
            eq: false,
        };
        for (u, &c) in row.coeffs.iter().enumerate() {
            if u != v && !c.is_zero() {
                expr.coeffs[u] = c.div(a)?.neg()?;
            }
        }
        substitute(&mut rows, v, &expr)?;
        for (_, p) in pivots.iter_mut() {
            substitute_row(p, v, &expr)?;
        }
        pivots.push((v, expr));
    }

    // --- Constant inequality rows decide themselves.
    let mut ineqs: Vec<Row> = Vec::new();
    for r in rows {
        if r.coeffs.iter().all(|c| c.is_zero()) {
            if r.constant.is_neg() {
                return Some(Verdict::Empty);
            }
        } else {
            ineqs.push(r);
        }
    }

    // Variables the inequality subsystem actually mentions.
    let used: Vec<usize> = (0..n)
        .filter(|&v| ineqs.iter().any(|r| !r.coeffs[v].is_zero()))
        .collect();

    if ineqs.is_empty() {
        // Any assignment works; pick 0 for every free variable.
        return finish_witness(sys, n, &pivots, &[], &[]);
    }

    // --- Step 2: phase-I simplex.
    //
    // Columns: x⁺ per used var, x⁻ per used var, one surplus per row,
    // one artificial per row; `rhs` kept separately. Row i encodes
    //     Σ a_u (x⁺_u − x⁻_u) − s_i = −c_i,   s_i ≥ 0,
    // sign-normalized so rhs ≥ 0, with artificial basis.
    let k = used.len();
    let m = ineqs.len();
    let slack0 = 2 * k;
    let art0 = 2 * k + m;
    let ncols = 2 * k + 2 * m;
    let mut tab: Vec<Vec<Rat>> = Vec::with_capacity(m);
    let mut rhs: Vec<Rat> = Vec::with_capacity(m);
    for (i, r) in ineqs.iter().enumerate() {
        let mut t = vec![Rat::ZERO; ncols];
        let mut b = r.constant.neg()?;
        let flip = b.is_neg();
        for (uu, &v) in used.iter().enumerate() {
            let mut c = r.coeffs[v];
            if flip {
                c = c.neg()?;
            }
            t[uu] = c;
            t[k + uu] = c.neg()?;
        }
        t[slack0 + i] = if flip { Rat::int(1) } else { Rat::int(-1) };
        if flip {
            b = b.neg()?;
        }
        t[art0 + i] = Rat::int(1);
        tab.push(t);
        rhs.push(b);
    }
    let mut basis: Vec<usize> = (0..m).map(|i| art0 + i).collect();

    for _pivot in 0..MAX_PIVOTS {
        // Reduced cost of non-artificial column j under the phase-I
        // objective (minimize Σ artificials): improving iff the column
        // sum over artificial-basic rows is positive. Bland: smallest j.
        let mut enter: Option<usize> = None;
        'cols: for j in 0..art0 {
            let mut d = Rat::ZERO;
            for i in 0..m {
                if basis[i] >= art0 {
                    d = d.add(tab[i][j])?;
                }
            }
            if d.is_pos() {
                enter = Some(j);
                break 'cols;
            }
        }
        let Some(j) = enter else {
            // Optimum. Feasible iff every artificial sits at zero.
            let z_pos = (0..m).any(|i| basis[i] >= art0 && rhs[i].is_pos());
            if z_pos {
                return Some(Verdict::Empty);
            }
            // Read off x = x⁺ − x⁻ per used variable.
            let col_val = |col: usize| -> Rat {
                basis
                    .iter()
                    .position(|&b| b == col)
                    .map_or(Rat::ZERO, |i| rhs[i])
            };
            let mut free_vals: Vec<(usize, Rat)> = Vec::with_capacity(k);
            for (uu, &v) in used.iter().enumerate() {
                free_vals.push((v, col_val(uu).sub(col_val(k + uu))?));
            }
            return finish_witness(sys, n, &pivots, &used, &free_vals);
        };
        // Ratio test over rows with a positive pivot column entry;
        // Bland tie-break: smallest basis index. (A positive entry must
        // exist: the phase-I objective is bounded below by zero.)
        let mut leave: Option<usize> = None;
        for i in 0..m {
            if !tab[i][j].is_pos() {
                continue;
            }
            let better = match leave {
                None => true,
                Some(li) => {
                    let ri = rhs[i].div(tab[i][j])?;
                    let rl = rhs[li].div(tab[li][j])?;
                    ri.lt(rl)? || (ri == rl && basis[i] < basis[li])
                }
            };
            if better {
                leave = Some(i);
            }
        }
        let li = leave?; // unreachable in theory; treated as overflow
                         // Pivot: normalize row li, eliminate column j elsewhere.
        let p = tab[li][j];
        for c in tab[li].iter_mut() {
            *c = c.div(p)?;
        }
        rhs[li] = rhs[li].div(p)?;
        for i in 0..m {
            if i == li || tab[i][j].is_zero() {
                continue;
            }
            let f = tab[i][j];
            for col in 0..ncols {
                let d = f.mul(tab[li][col])?;
                tab[i][col] = tab[i][col].sub(d)?;
            }
            rhs[i] = rhs[i].sub(f.mul(rhs[li])?)?;
        }
        basis[li] = j;
    }
    None // pivot cap hit
}

/// Substitute `x_v := expr` into every row.
fn substitute(rows: &mut [Row], v: usize, expr: &Row) -> Option<()> {
    for r in rows.iter_mut() {
        substitute_row(r, v, expr)?;
    }
    Some(())
}

fn substitute_row(r: &mut Row, v: usize, expr: &Row) -> Option<()> {
    let a = r.coeffs[v];
    if a.is_zero() {
        return Some(());
    }
    r.coeffs[v] = Rat::ZERO;
    for (u, &c) in expr.coeffs.iter().enumerate() {
        if !c.is_zero() {
            r.coeffs[u] = r.coeffs[u].add(a.mul(c)?)?;
        }
    }
    r.constant = r.constant.add(a.mul(expr.constant)?)?;
    Some(())
}

/// Assemble the full solution vector (free vars from `free_vals`, every
/// other non-pivot var 0, pivot vars by back-substitution) and classify
/// it: integral and row-verified → [`Verdict::Witness`], otherwise
/// [`Verdict::Fractional`].
fn finish_witness(
    sys: &System,
    n: usize,
    pivots: &[(usize, Row)],
    _used: &[usize],
    free_vals: &[(usize, Rat)],
) -> Option<Verdict> {
    let mut xs = vec![Rat::ZERO; n];
    for &(v, val) in free_vals {
        xs[v] = val;
    }
    // Pivot expressions mention only never-pivoted variables, so one
    // evaluation pass suffices (no ordering concerns).
    for (v, expr) in pivots {
        let mut acc = expr.constant;
        for (u, &c) in expr.coeffs.iter().enumerate() {
            if !c.is_zero() {
                acc = acc.add(c.mul(xs[u])?)?;
            }
        }
        xs[*v] = acc;
    }
    if xs.iter().any(|x| !x.is_integer()) {
        return Some(Verdict::Fractional);
    }
    let pt: Vec<i64> = xs
        .iter()
        .map(|x| i64::try_from(x.num).ok())
        .collect::<Option<_>>()?;
    // Defensive re-verification: the non-empty direction of the oracle
    // never rests on the tableau being bug-free.
    if sys.holds(&pt) {
        Some(Verdict::Witness(pt))
    } else {
        debug_assert!(false, "simplex witness failed row verification");
        Some(Verdict::Fractional)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::linexpr::LinExpr;

    fn ge(coeffs: &[i64], k: i64) -> Constraint {
        Constraint::ge0(LinExpr::new(coeffs, k))
    }
    fn eq(coeffs: &[i64], k: i64) -> Constraint {
        Constraint::eq(LinExpr::new(coeffs, k))
    }

    #[test]
    fn universe_feasible_at_origin() {
        match feasibility(&System::universe(3)) {
            Verdict::Witness(pt) => assert_eq!(pt, vec![0, 0, 0]),
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn box_feasible() {
        let mut s = System::universe(2);
        s.extend([
            ge(&[1, 0], -3),
            ge(&[-1, 0], 10),
            ge(&[0, 1], 0),
            ge(&[0, -1], 10),
        ]);
        match feasibility(&s) {
            Verdict::Witness(pt) => assert!(s.holds(&pt)),
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_bounds_empty() {
        let mut s = System::universe(1);
        s.extend([ge(&[1], -5), ge(&[-1], 3)]); // x >= 5, x <= 3
        assert_eq!(feasibility(&s), Verdict::Empty);
    }

    #[test]
    fn equality_chain_substitutes() {
        // i = j + 2, j = 3  =>  i = 5; 0 <= i <= 10 feasible.
        let mut s = System::universe(2);
        s.extend([
            eq(&[1, -1], -2),
            eq(&[0, 1], -3),
            ge(&[1, 0], 0),
            ge(&[-1, 0], 10),
        ]);
        match feasibility(&s) {
            Verdict::Witness(pt) => assert_eq!(pt, vec![5, 3]),
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_equalities_empty() {
        let mut s = System::universe(2);
        s.extend([eq(&[1, 1], 0), eq(&[1, 1], -4)]);
        assert_eq!(feasibility(&s), Verdict::Empty);
    }

    #[test]
    fn unbounded_strip_feasible() {
        // j >= i, no upper bounds anywhere.
        let mut s = System::universe(2);
        s.extend([ge(&[-1, 1], 0)]);
        match feasibility(&s) {
            Verdict::Witness(pt) => assert!(s.holds(&pt)),
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn rationally_feasible_integer_question_deferred() {
        // {2j - i >= 0, i - 2j + 1 >= 0, i = 1}: rational j = 1/2 band.
        // Whatever the verdict, it must not claim Empty (rationally
        // feasible) and a Witness must be a genuine integer point.
        let mut s = System::universe(2);
        s.extend([ge(&[-1, 2], 0), ge(&[1, -2], 1), eq(&[1, 0], -1)]);
        match feasibility(&s) {
            Verdict::Empty => panic!("rationally feasible system declared empty"),
            Verdict::Witness(pt) => assert!(s.holds(&pt)),
            Verdict::Fractional | Verdict::Overflow => {}
        }
    }

    #[test]
    fn phase_one_detects_empty_without_bounds_help() {
        // x + y >= 3, -x - y >= -1 (x + y <= 1): empty, but every single
        // variable is unbounded so interval propagation cannot see it.
        let mut s = System::universe(2);
        s.extend([ge(&[1, 1], -3), ge(&[-1, -1], 1)]);
        assert_eq!(feasibility(&s), Verdict::Empty);
    }

    #[test]
    fn known_infeasible_short_circuits() {
        assert_eq!(feasibility(&System::infeasible(2)), Verdict::Empty);
    }

    #[test]
    fn zero_var_systems() {
        assert!(matches!(
            feasibility(&System::universe(0)),
            Verdict::Witness(pt) if pt.is_empty()
        ));
    }
}
