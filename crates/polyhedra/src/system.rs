//! Constraint systems with Fourier–Motzkin elimination.
//!
//! A [`System`] is a conjunction of affine constraints over `n_vars`
//! anonymous variables. It is the computational workhorse behind sets and
//! maps: intersection is concatenation, projection is FM elimination, and
//! emptiness is full elimination down to constant rows.

use crate::constraint::{Constraint, ConstraintKind, Normalized};
use crate::linexpr::{combine, LinExpr};
use std::collections::HashSet;

/// A conjunction of affine constraints over `n_vars` variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct System {
    n_vars: usize,
    constraints: Vec<Constraint>,
    /// Set when normalization discovered an infeasible row. An infeasible
    /// system represents the empty set regardless of other rows.
    infeasible: bool,
}

impl System {
    /// The unconstrained (universe) system over `n` variables.
    pub fn universe(n: usize) -> Self {
        System {
            n_vars: n,
            constraints: Vec::new(),
            infeasible: false,
        }
    }

    /// An explicitly infeasible (empty) system.
    pub fn infeasible(n: usize) -> Self {
        System {
            n_vars: n,
            constraints: Vec::new(),
            infeasible: true,
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The constraint rows (normalized).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Whether normalization has already shown this system infeasible.
    /// (`false` does **not** imply non-emptiness — use [`System::is_empty`].)
    pub fn known_infeasible(&self) -> bool {
        self.infeasible
    }

    /// Add a constraint (normalizing it first).
    pub fn add(&mut self, c: Constraint) {
        assert_eq!(c.n_vars(), self.n_vars, "constraint arity mismatch");
        if self.infeasible {
            return;
        }
        match c.normalize() {
            Normalized::Trivial => {}
            Normalized::Infeasible => {
                self.infeasible = true;
                self.constraints.clear();
            }
            Normalized::Keep(k) => {
                if !self.constraints.contains(&k) {
                    self.constraints.push(k);
                }
            }
        }
    }

    /// Add all constraints from an iterator.
    pub fn extend<I: IntoIterator<Item = Constraint>>(&mut self, it: I) {
        for c in it {
            self.add(c);
        }
    }

    /// Conjunction of two systems over the same variables.
    pub fn intersect(&self, other: &System) -> System {
        assert_eq!(self.n_vars, other.n_vars, "system arity mismatch");
        let mut out = self.clone();
        if out.infeasible {
            return out;
        }
        out.extend(other.constraints.iter().cloned());
        if other.infeasible {
            out.infeasible = true;
            out.constraints.clear();
        }
        out
    }

    /// Whether an integer point satisfies every constraint.
    pub fn holds(&self, point: &[i64]) -> bool {
        !self.infeasible && self.constraints.iter().all(|c| c.holds(point))
    }

    /// Insert `count` fresh variables at position `at` in every row.
    pub fn insert_vars(&self, at: usize, count: usize) -> System {
        System {
            n_vars: self.n_vars + count,
            constraints: self
                .constraints
                .iter()
                .map(|c| Constraint {
                    kind: c.kind,
                    expr: c.expr.insert_vars(at, count),
                })
                .collect(),
            infeasible: self.infeasible,
        }
    }

    /// Eliminate variable `var` by exact substitution (if a unit-coefficient
    /// equality mentions it) or Fourier–Motzkin pairing. The variable is
    /// *removed* from the system; the result has `n_vars - 1` variables.
    pub fn eliminate(&self, var: usize) -> System {
        assert!(var < self.n_vars);
        if self.infeasible {
            return System::infeasible(self.n_vars - 1);
        }

        // Preferred: exact substitution via an equality with coefficient ±1.
        if let Some(pos) = self
            .constraints
            .iter()
            .position(|c| c.kind == ConstraintKind::Eq && c.expr.coeffs[var].abs() == 1)
        {
            let eqc = &self.constraints[pos];
            // c*x + e = 0 with c = ±1  =>  x = -e/c = -c*e (since c^2 = 1).
            let c = eqc.expr.coeffs[var];
            let mut rhs = eqc.expr.clone();
            rhs.coeffs[var] = 0;
            let repl = rhs.scale(-c); // x = -c * e
            let mut out = System::universe(self.n_vars - 1);
            for (i, row) in self.constraints.iter().enumerate() {
                if i == pos {
                    continue;
                }
                let substituted = row.expr.substitute(var, &repl);
                out.add(Constraint {
                    kind: row.kind,
                    expr: substituted.remove_var(var),
                });
            }
            return out;
        }

        // General case: split equalities into two inequalities, then pair.
        let mut lowers: Vec<LinExpr> = Vec::new(); // a*x + e >= 0, a > 0
        let mut uppers: Vec<LinExpr> = Vec::new(); // -b*x + f >= 0, b > 0
        let mut rest: Vec<Constraint> = Vec::new();
        for c in &self.constraints {
            let k = c.expr.coeffs[var];
            if k == 0 {
                rest.push(c.clone());
                continue;
            }
            match c.kind {
                ConstraintKind::GeZero => {
                    if k > 0 {
                        lowers.push(c.expr.clone());
                    } else {
                        uppers.push(c.expr.clone());
                    }
                }
                ConstraintKind::Eq => {
                    // Orient so the variable has a positive coefficient in
                    // the lower-bound copy and negative in the upper copy.
                    let pos = if k > 0 {
                        c.expr.clone()
                    } else {
                        c.expr.scale(-1)
                    };
                    lowers.push(pos.clone());
                    uppers.push(pos.scale(-1));
                }
            }
        }

        let mut out = System::universe(self.n_vars - 1);
        for c in rest {
            out.add(Constraint {
                kind: c.kind,
                expr: c.expr.remove_var(var),
            });
            if out.infeasible {
                return out;
            }
        }
        for lo in &lowers {
            let a = lo.coeffs[var];
            debug_assert!(a > 0);
            for up in &uppers {
                let b = -up.coeffs[var];
                debug_assert!(b > 0);
                // b*lo + a*up eliminates x.
                let comb = combine(lo, b, up, a);
                debug_assert_eq!(comb.coeffs[var], 0);
                out.add(Constraint::ge0(comb.remove_var(var)));
                if out.infeasible {
                    return out;
                }
            }
        }
        out.prune_redundant();
        out
    }

    /// Eliminate a contiguous range of variables `[from, from+count)`.
    ///
    /// The elimination order is chosen greedily: variables that appear in
    /// an equality with a ±1 coefficient go first (exact substitution),
    /// then variables with the smallest Fourier–Motzkin pairing fan-out.
    /// For the layout systems produced by the flow (row-major index maps
    /// like `a = 121i + 11j + k`) this ordering keeps the projection
    /// integer-exact: `k`, `j`, `i` are substituted through the unit
    /// coefficients instead of being paired through the large strides.
    pub fn eliminate_range(&self, from: usize, count: usize) -> System {
        let mut sys = self.clone();
        // Remaining variable indices (they shift as eliminations proceed).
        let mut remaining: Vec<usize> = (from..from + count).collect();
        while let Some(pos) = pick_elimination_target(&sys, &remaining) {
            let var = remaining.swap_remove(pos);
            sys = sys.eliminate(var);
            if sys.infeasible {
                return System::infeasible(self.n_vars - count);
            }
            for r in &mut remaining {
                if *r > var {
                    *r -= 1;
                }
            }
        }
        sys
    }

    /// Whether the system has no integer solutions.
    ///
    /// Decided by exhaustive FM elimination with integer tightening. On
    /// the (near-unimodular) systems produced by the CFDlang flow this is
    /// exact; in general FM may fail to detect emptiness of pathological
    /// integer-only-empty systems (never produced here).
    pub fn is_empty(&self) -> bool {
        if self.infeasible {
            return true;
        }
        let mut sys = self.clone();
        for _ in 0..self.n_vars {
            sys = sys.eliminate(0);
            if sys.infeasible {
                return true;
            }
        }
        sys.infeasible
    }

    /// Cheap incomplete emptiness test: derive per-variable bounds from
    /// rows with exactly one nonzero coefficient and report `true` if any
    /// variable's interval is empty. Never returns `true` for a feasible
    /// system; used to prune intersection unions before full FM.
    pub fn quick_infeasible(&self) -> bool {
        if self.infeasible {
            return true;
        }
        let n = self.n_vars;
        let mut lo = vec![i64::MIN; n];
        let mut hi = vec![i64::MAX; n];
        for c in &self.constraints {
            let mut nz = None;
            let mut many = false;
            for (v, &k) in c.expr.coeffs.iter().enumerate() {
                if k != 0 {
                    if nz.is_some() {
                        many = true;
                        break;
                    }
                    nz = Some((v, k));
                }
            }
            if many {
                continue;
            }
            let Some((v, k)) = nz else { continue };
            // Normalized rows have |k| == 1 for inequalities and a
            // canonical positive leading coefficient for equalities that
            // divides the constant.
            match c.kind {
                ConstraintKind::Eq => {
                    if c.expr.constant % k == 0 {
                        let val = -c.expr.constant / k;
                        lo[v] = lo[v].max(val);
                        hi[v] = hi[v].min(val);
                    }
                }
                ConstraintKind::GeZero => {
                    if k == 1 {
                        lo[v] = lo[v].max(-c.expr.constant);
                    } else if k == -1 {
                        hi[v] = hi[v].min(c.expr.constant);
                    }
                }
            }
            if lo[v] > hi[v] {
                return true;
            }
        }
        false
    }

    /// Drop duplicate rows and inequalities dominated by a parallel row
    /// with a tighter constant.
    pub fn prune_redundant(&mut self) {
        if self.infeasible {
            return;
        }
        // Deduplicate exact rows.
        let mut seen: HashSet<(bool, Vec<i64>, i64)> = HashSet::new();
        let mut kept: Vec<Constraint> = Vec::new();
        for c in &self.constraints {
            let key = (
                c.kind == ConstraintKind::Eq,
                c.expr.coeffs.clone(),
                c.expr.constant,
            );
            if seen.insert(key) {
                kept.push(c.clone());
            }
        }
        // For parallel inequalities a·x + c1 >= 0 and a·x + c2 >= 0 keep the
        // tighter (smaller constant).
        let mut best: Vec<Constraint> = Vec::new();
        'outer: for c in &kept {
            if c.kind == ConstraintKind::Eq {
                best.push(c.clone());
                continue;
            }
            for b in &mut best {
                if b.kind == ConstraintKind::GeZero && b.expr.coeffs == c.expr.coeffs {
                    if c.expr.constant < b.expr.constant {
                        b.expr.constant = c.expr.constant;
                    }
                    continue 'outer;
                }
            }
            best.push(c.clone());
        }
        self.constraints = best;
    }
}

/// Choose which of `remaining` to eliminate next (index *into*
/// `remaining`); `None` when the list is empty.
fn pick_elimination_target(sys: &System, remaining: &[usize]) -> Option<usize> {
    if remaining.is_empty() {
        return None;
    }
    // Prefer a variable with a unit-coefficient equality (exact).
    for (i, &v) in remaining.iter().enumerate() {
        let has_unit_eq = sys
            .constraints
            .iter()
            .any(|c| c.kind == ConstraintKind::Eq && c.expr.coeffs[v].abs() == 1);
        if has_unit_eq {
            return Some(i);
        }
    }
    // Otherwise the smallest lower×upper pairing fan-out.
    let fan = |v: usize| -> usize {
        let mut lo = 0usize;
        let mut hi = 0usize;
        for c in &sys.constraints {
            let k = c.expr.coeffs[v];
            if k == 0 {
                continue;
            }
            match c.kind {
                ConstraintKind::Eq => {
                    lo += 1;
                    hi += 1;
                }
                ConstraintKind::GeZero => {
                    if k > 0 {
                        lo += 1;
                    } else {
                        hi += 1;
                    }
                }
            }
        }
        lo * hi
    };
    remaining
        .iter()
        .enumerate()
        .min_by_key(|(_, &v)| fan(v))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box2(ilo: i64, ihi: i64, jlo: i64, jhi: i64) -> System {
        let mut s = System::universe(2);
        s.add(Constraint::ge0(LinExpr::new(&[1, 0], -ilo)));
        s.add(Constraint::ge0(LinExpr::new(&[-1, 0], ihi)));
        s.add(Constraint::ge0(LinExpr::new(&[0, 1], -jlo)));
        s.add(Constraint::ge0(LinExpr::new(&[0, -1], jhi)));
        s
    }

    #[test]
    fn universe_not_empty() {
        assert!(!System::universe(3).is_empty());
    }

    #[test]
    fn box_feasible() {
        assert!(!box2(0, 10, 0, 10).is_empty());
    }

    #[test]
    fn contradictory_bounds_empty() {
        // i >= 5 and i <= 3
        let mut s = System::universe(1);
        s.add(Constraint::ge0(LinExpr::new(&[1], -5)));
        s.add(Constraint::ge0(LinExpr::new(&[-1], 3)));
        assert!(s.is_empty());
    }

    #[test]
    fn eliminate_projects_box() {
        // project j out of 0<=i<=10, 0<=j<=10 -> 0<=i<=10
        let s = box2(0, 10, 0, 10);
        let p = s.eliminate(1);
        assert_eq!(p.n_vars(), 1);
        assert!(p.holds(&[0]));
        assert!(p.holds(&[10]));
        assert!(!p.holds(&[11]));
        assert!(!p.holds(&[-1]));
    }

    #[test]
    fn eliminate_with_equality_substitution() {
        // { (i,j) : i = j + 2, 0 <= j <= 5 }, eliminate j -> 2 <= i <= 7
        let mut s = System::universe(2);
        s.add(Constraint::eq(LinExpr::new(&[1, -1], -2)));
        s.add(Constraint::ge0(LinExpr::new(&[0, 1], 0)));
        s.add(Constraint::ge0(LinExpr::new(&[0, -1], 5)));
        let p = s.eliminate(1);
        assert!(p.holds(&[2]));
        assert!(p.holds(&[7]));
        assert!(!p.holds(&[1]));
        assert!(!p.holds(&[8]));
    }

    #[test]
    fn fm_pairing_without_equalities() {
        // { (i,j) : j >= i, j <= 10, i >= 0 }, eliminate j -> 0 <= i <= 10
        let mut s = System::universe(2);
        s.add(Constraint::ge0(LinExpr::new(&[-1, 1], 0)));
        s.add(Constraint::ge0(LinExpr::new(&[0, -1], 10)));
        s.add(Constraint::ge0(LinExpr::new(&[1, 0], 0)));
        let p = s.eliminate(1);
        assert!(p.holds(&[10]));
        assert!(!p.holds(&[11]));
    }

    #[test]
    fn integer_tightening_in_projection() {
        // { (i,j) : 2j = i, 1 <= i <= 1 } rationally j = 1/2 exists, but
        // normalize flags 2j = 1 infeasible over the integers.
        let mut s = System::universe(2);
        s.add(Constraint::eq(LinExpr::new(&[-1, 2], 0)));
        s.add(Constraint::eq(LinExpr::new(&[1, 0], -1)));
        assert!(s.is_empty());
    }

    #[test]
    fn eliminate_range_many() {
        let mut s = System::universe(4);
        for v in 0..4 {
            let mut lo = vec![0i64; 4];
            lo[v] = 1;
            s.add(Constraint::ge0(LinExpr::new(&lo, 0)));
            let mut hi = vec![0i64; 4];
            hi[v] = -1;
            s.add(Constraint::ge0(LinExpr::new(&hi, 3)));
        }
        let p = s.eliminate_range(1, 2);
        assert_eq!(p.n_vars(), 2);
        assert!(p.holds(&[3, 3]));
        assert!(!p.holds(&[4, 0]));
    }

    #[test]
    fn intersect_concatenates() {
        let a = box2(0, 10, 0, 10);
        let b = box2(5, 20, 5, 20);
        let c = a.intersect(&b);
        assert!(c.holds(&[5, 7]));
        assert!(!c.holds(&[4, 7]));
        assert!(!c.holds(&[11, 7]));
    }

    #[test]
    fn infeasible_propagates() {
        let mut s = System::universe(1);
        s.add(Constraint::ge0(LinExpr::constant(1, -1)));
        assert!(s.known_infeasible());
        assert!(s.is_empty());
        let t = s.intersect(&System::universe(1));
        assert!(t.is_empty());
    }

    #[test]
    fn prune_keeps_tightest_parallel() {
        let mut s = System::universe(1);
        s.add(Constraint::ge0(LinExpr::new(&[-1], 10))); // x <= 10
        s.add(Constraint::ge0(LinExpr::new(&[-1], 5))); // x <= 5
        s.prune_redundant();
        assert_eq!(s.constraints().len(), 1);
        assert!(s.holds(&[5]));
        assert!(!s.holds(&[6]));
    }

    #[test]
    fn quick_infeasible_detects_clashing_constants() {
        let mut s = System::universe(2);
        s.add(Constraint::eq(LinExpr::new(&[1, 0], -2))); // x = 2
        s.add(Constraint::eq(LinExpr::new(&[1, 0], -5))); // x = 5
        assert!(s.quick_infeasible());
    }

    #[test]
    fn quick_infeasible_never_false_positive_on_boxes() {
        let s = box2(0, 10, 0, 10);
        assert!(!s.quick_infeasible());
        let mut t = box2(0, 10, 0, 10);
        t.add(Constraint::ge0(LinExpr::new(&[1, -1], 0))); // multi-var row ignored
        assert!(!t.quick_infeasible());
    }

    #[test]
    fn insert_vars_shifts() {
        let mut s = System::universe(2);
        s.add(Constraint::ge0(LinExpr::new(&[1, -1], 0))); // i >= j
        let w = s.insert_vars(1, 1); // (i, z, j)
        assert!(w.holds(&[3, 100, 2]));
        assert!(!w.holds(&[2, 100, 3]));
    }
}
