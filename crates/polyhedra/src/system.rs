//! Constraint systems with Fourier–Motzkin elimination.
//!
//! A [`System`] is a conjunction of affine constraints over `n_vars`
//! anonymous variables. It is the computational workhorse behind sets and
//! maps: intersection is concatenation, projection is FM elimination, and
//! emptiness is decided by the layered oracle in [`System::is_empty`]
//! (interval propagation → corner probe → memoized rational simplex with
//! FM as the authoritative fallback).

use crate::constraint::{Constraint, ConstraintKind, NormalizeAction};
use crate::intern;
use crate::linexpr::{clamp_i64, combine_skipping, LinExpr};
use crate::simplex;

/// A conjunction of affine constraints over `n_vars` variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct System {
    n_vars: usize,
    constraints: Vec<Constraint>,
    /// Set when normalization discovered an infeasible row. An infeasible
    /// system represents the empty set regardless of other rows.
    infeasible: bool,
}

/// Per-variable `[lo, hi]` interval bounds (`None` = unbounded on that
/// side), as derived by [`System::propagate_bounds`].
pub(crate) type VarBounds = (Vec<Option<i64>>, Vec<Option<i64>>);

impl System {
    /// The unconstrained (universe) system over `n` variables.
    pub fn universe(n: usize) -> Self {
        System {
            n_vars: n,
            constraints: Vec::new(),
            infeasible: false,
        }
    }

    /// An explicitly infeasible (empty) system.
    pub fn infeasible(n: usize) -> Self {
        System {
            n_vars: n,
            constraints: Vec::new(),
            infeasible: true,
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The constraint rows (normalized).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Whether normalization has already shown this system infeasible.
    /// (`false` does **not** imply non-emptiness — use [`System::is_empty`].)
    pub fn known_infeasible(&self) -> bool {
        self.infeasible
    }

    /// Add a constraint (normalizing it first). Normalization happens in
    /// place on the passed-in row — constraints are GCD-canonical from
    /// the moment they enter a system, so later comparisons and
    /// eliminations never re-normalize.
    pub fn add(&mut self, mut c: Constraint) {
        assert_eq!(c.n_vars(), self.n_vars, "constraint arity mismatch");
        if self.infeasible {
            return;
        }
        match c.normalize_in_place() {
            NormalizeAction::Trivial => {}
            NormalizeAction::Infeasible => {
                self.infeasible = true;
                self.constraints.clear();
            }
            NormalizeAction::Keep => {
                if !self.constraints.contains(&c) {
                    self.constraints.push(c);
                }
            }
        }
    }

    /// Rebuild a system from rows that are already GCD-canonical and
    /// deduplicated — the shape produced by [`System::constraints`] on any
    /// live system. Skips the per-row normalization that [`System::add`]
    /// performs, which matters on hot deserialization paths (the compile
    /// cache revives thousands of rows per entry). Debug builds verify the
    /// canonical-form claim against a full re-add.
    pub fn from_canonical_rows(n: usize, rows: Vec<Constraint>) -> Self {
        for c in &rows {
            assert_eq!(c.n_vars(), n, "constraint arity mismatch");
        }
        let sys = System {
            n_vars: n,
            constraints: rows,
            infeasible: false,
        };
        debug_assert_eq!(
            {
                let mut slow = System::universe(n);
                slow.extend(sys.constraints.iter().cloned());
                slow
            },
            sys,
            "from_canonical_rows requires normalized, deduplicated rows"
        );
        sys
    }

    /// Add all constraints from an iterator.
    pub fn extend<I: IntoIterator<Item = Constraint>>(&mut self, it: I) {
        for c in it {
            self.add(c);
        }
    }

    /// Conjunction of two systems over the same variables.
    pub fn intersect(&self, other: &System) -> System {
        assert_eq!(self.n_vars, other.n_vars, "system arity mismatch");
        let mut out = self.clone();
        if out.infeasible {
            return out;
        }
        out.extend(other.constraints.iter().cloned());
        if other.infeasible {
            out.infeasible = true;
            out.constraints.clear();
        }
        out
    }

    /// Whether an integer point satisfies every constraint.
    pub fn holds(&self, point: &[i64]) -> bool {
        !self.infeasible && self.constraints.iter().all(|c| c.holds(point))
    }

    /// Insert `count` fresh variables at position `at` in every row.
    pub fn insert_vars(&self, at: usize, count: usize) -> System {
        System {
            n_vars: self.n_vars + count,
            constraints: self
                .constraints
                .iter()
                .map(|c| Constraint {
                    kind: c.kind,
                    expr: c.expr.insert_vars(at, count),
                })
                .collect(),
            infeasible: self.infeasible,
        }
    }

    /// Eliminate variable `var` by exact substitution (if a unit-coefficient
    /// equality mentions it) or Fourier–Motzkin pairing. The variable is
    /// *removed* from the system; the result has `n_vars - 1` variables.
    pub fn eliminate(&self, var: usize) -> System {
        assert!(var < self.n_vars);
        if self.infeasible {
            return System::infeasible(self.n_vars - 1);
        }

        // Preferred: exact substitution via an equality with coefficient ±1.
        if let Some(pos) = self
            .constraints
            .iter()
            .position(|c| c.kind == ConstraintKind::Eq && c.expr.coeffs[var].abs() == 1)
        {
            let eqc = &self.constraints[pos];
            // c*x + e = 0 with c = ±1  =>  x = -e/c = -c*e (since c^2 = 1).
            let c = eqc.expr.coeffs[var];
            let mut repl = eqc.expr.clone();
            repl.coeffs[var] = 0;
            repl.scale_assign(-c); // x = -c * e
            let mut out = System::universe(self.n_vars - 1);
            for (i, row) in self.constraints.iter().enumerate() {
                if i == pos {
                    continue;
                }
                out.add(Constraint {
                    kind: row.kind,
                    expr: row.expr.substitute_skipping(var, &repl),
                });
            }
            return out;
        }

        // General case: split equalities into two inequalities, then
        // pair. Rows are referenced by index with an orientation sign, so
        // setup clones nothing; every output row is built in exactly one
        // allocation by `combine_skipping`.
        let mut lowers: Vec<(usize, i64)> = Vec::new(); // sign*expr has coeff > 0 on var
        let mut uppers: Vec<(usize, i64)> = Vec::new(); // sign*expr has coeff < 0 on var
        let mut out = System::universe(self.n_vars - 1);
        for (i, c) in self.constraints.iter().enumerate() {
            let k = c.expr.coeffs[var];
            if k == 0 {
                out.add(Constraint {
                    kind: c.kind,
                    expr: c.expr.remove_var(var),
                });
                if out.infeasible {
                    return out;
                }
                continue;
            }
            match c.kind {
                ConstraintKind::GeZero => {
                    if k > 0 {
                        lowers.push((i, 1));
                    } else {
                        uppers.push((i, 1));
                    }
                }
                ConstraintKind::Eq => {
                    // Orient so the variable has a positive coefficient in
                    // the lower-bound copy and negative in the upper copy.
                    let s = if k > 0 { 1 } else { -1 };
                    lowers.push((i, s));
                    uppers.push((i, -s));
                }
            }
        }
        for &(li, ls) in &lowers {
            let lo = &self.constraints[li].expr;
            let a = ls * lo.coeffs[var];
            debug_assert!(a > 0);
            for &(ui, us) in &uppers {
                let up = &self.constraints[ui].expr;
                let b = -(us * up.coeffs[var]);
                debug_assert!(b > 0);
                // b*(ls*lo) + a*(us*up) eliminates x.
                let comb = combine_skipping(lo, b * ls, up, a * us, var);
                out.add(Constraint::ge0(comb));
                if out.infeasible {
                    return out;
                }
            }
        }
        out.prune_redundant();
        out
    }

    /// Eliminate a contiguous range of variables `[from, from+count)`.
    ///
    /// The elimination order is chosen greedily: variables that appear in
    /// an equality with a ±1 coefficient go first (exact substitution),
    /// then variables with the smallest Fourier–Motzkin pairing fan-out.
    /// For the layout systems produced by the flow (row-major index maps
    /// like `a = 121i + 11j + k`) this ordering keeps the projection
    /// integer-exact: `k`, `j`, `i` are substituted through the unit
    /// coefficients instead of being paired through the large strides.
    pub fn eliminate_range(&self, from: usize, count: usize) -> System {
        self.clone().eliminate_range_owned(from, count)
    }

    /// [`System::eliminate_range`] consuming the system — hot callers
    /// that build the input on the spot skip one full row-set clone.
    ///
    /// Results are memoized process-wide under an exact-row-order key
    /// (see [`crate::intern`]): identical queries are deterministic, so
    /// serving the stored projection is bit-identical to recomputing it.
    /// `POLYHEDRA_ORACLE=fm` bypasses the memo entirely (legacy path).
    pub(crate) fn eliminate_range_owned(self, from: usize, count: usize) -> System {
        if count == 0 {
            return self;
        }
        if self.infeasible {
            return System::infeasible(self.n_vars - count);
        }
        if intern::oracle_mode() == intern::OracleMode::Fm {
            return self.eliminate_range_core(from, count);
        }
        let key = intern::projection_key(&self, from, count);
        if let Some(memoized) = intern::lookup_projection(&key) {
            return memoized;
        }
        let out = self.eliminate_range_core(from, count);
        intern::store_projection(key, out.clone());
        out
    }

    /// The actual elimination work behind [`System::eliminate_range_owned`]
    /// (phase 1: batched unit-coefficient substitutions; phase 2: greedy
    /// Fourier–Motzkin pairing), with no memoization.
    fn eliminate_range_core(self, from: usize, count: usize) -> System {
        if count == 0 {
            return self;
        }
        if self.infeasible {
            return System::infeasible(self.n_vars - count);
        }
        // Phase 1: batched exact substitutions, in place at full width.
        // Every variable of the range that is (or becomes, as earlier
        // substitutions rewrite rows) the subject of a unit-coefficient
        // equality is substituted directly into the working rows —
        // without rebuilding a fresh system per variable, which is where
        // the old per-variable loop spent most of its time. Eliminated
        // columns stay as all-zero placeholders until one final
        // compaction. `None` marks a consumed/trivial row.
        let n_vars = self.n_vars;
        let mut rows: Vec<Option<Constraint>> = self.constraints.into_iter().map(Some).collect();
        let mut remaining: Vec<usize> = (from..from + count).collect();
        let mut dead: Vec<usize> = Vec::with_capacity(count);
        'subst: loop {
            let mut pick: Option<(usize, usize)> = None;
            'scan: for (ri, &v) in remaining.iter().enumerate() {
                for (i, r) in rows.iter().enumerate() {
                    if let Some(c) = r {
                        if c.kind == ConstraintKind::Eq && c.expr.coeffs[v].abs() == 1 {
                            pick = Some((ri, i));
                            break 'scan;
                        }
                    }
                }
            }
            let Some((ri, pos)) = pick else { break 'subst };
            let v = remaining.swap_remove(ri);
            dead.push(v);
            let eqc = rows[pos].take().expect("picked row is alive");
            // c*x + e = 0 with c = ±1  =>  x = -c * e (since c^2 = 1).
            let cv = eqc.expr.coeffs[v];
            let mut repl = eqc.expr;
            repl.coeffs[v] = 0;
            repl.scale_assign(-cv);
            for slot in rows.iter_mut() {
                let Some(c) = slot else { continue };
                let a = c.expr.coeffs[v];
                if a == 0 {
                    continue;
                }
                c.expr.coeffs[v] = 0;
                c.expr.add_scaled_assign(&repl, a);
                match c.normalize_in_place() {
                    NormalizeAction::Trivial => *slot = None,
                    NormalizeAction::Infeasible => return System::infeasible(self.n_vars - count),
                    NormalizeAction::Keep => {}
                }
            }
        }
        // Compact the substituted columns away. Rows are individually
        // normalized already (on entry or by the substitution loop), and
        // dropping all-zero columns preserves normal form, so they go in
        // raw; `prune_redundant` dedups exact duplicates and dominated
        // parallel rows in one sorted pass.
        dead.sort_unstable();
        let mut sys = System {
            n_vars: n_vars - dead.len(),
            constraints: rows
                .into_iter()
                .flatten()
                .map(|r| Constraint {
                    kind: r.kind,
                    expr: r.expr.remove_vars(&dead),
                })
                .collect(),
            infeasible: false,
        };
        sys.prune_redundant();
        // Phase 2: whatever is left has no unit-coefficient equality —
        // Fourier–Motzkin pairing per variable, exactly as before.
        // (Pairing only produces inequalities, so no new substitution
        // opportunities arise.) Indices shift down past the compacted
        // columns and as eliminations proceed.
        for r in &mut remaining {
            *r -= dead.iter().filter(|&&d| d < *r).count();
        }
        while let Some(pos) = pick_elimination_target(&sys, &remaining) {
            let var = remaining.swap_remove(pos);
            sys = sys.eliminate(var);
            if sys.infeasible {
                return System::infeasible(self.n_vars - count);
            }
            for r in &mut remaining {
                if *r > var {
                    *r -= 1;
                }
            }
        }
        sys
    }

    /// Whether the system has no integer solutions.
    ///
    /// Decided by a layered oracle, cheapest first, every layer agreeing
    /// with exhaustive FM elimination on this flow's constraint class:
    ///
    /// 1. interval propagation (sound emptiness witness),
    /// 2. box-corner probing (sound non-emptiness witness),
    /// 3. a process-wide memo keyed on the sorted canonical rows,
    /// 4. rational phase-I simplex ([`crate::simplex`]): a rational
    ///    emptiness proof or an *integral* witness settles the integer
    ///    question; a fractional vertex or arithmetic overflow falls back
    ///    to
    /// 5. full FM elimination with integer tightening — the authoritative
    ///    answer, and the only oracle when `POLYHEDRA_ORACLE=fm` (or
    ///    [`intern::set_oracle_mode`]) forces the legacy path.
    ///
    /// Debug builds assert simplex ≡ FM on every freshly computed
    /// verdict. On the (near-unimodular) systems produced by the CFDlang
    /// flow FM is exact; in general it may fail to detect emptiness of
    /// pathological integer-only-empty systems (never produced here).
    pub fn is_empty(&self) -> bool {
        if self.infeasible {
            return true;
        }
        // Sound early exit: interval propagation never flags a feasible
        // system, and skipping the full elimination is a large win on the
        // dependence/liveness systems that are empty for simple reasons.
        let Some((lo, hi)) = self.propagate_bounds() else {
            intern::count_quick_hit();
            return true;
        };
        // Sound early exit in the other direction: probe the corners of
        // the propagated box as candidate integer points. Any point that
        // satisfies every row proves non-emptiness without elimination —
        // and on the box-like schedule/liveness systems of this flow the
        // low corner almost always is such a witness.
        if self.n_vars > 0
            && (self.holds_corner(&lo, &hi, true) || self.holds_corner(&lo, &hi, false))
        {
            intern::count_corner_hit();
            return false;
        }
        if intern::oracle_mode() == intern::OracleMode::Fm {
            return self.clone().eliminate_range_core(0, self.n_vars).infeasible;
        }
        let key = intern::verdict_key(self);
        if let Some(verdict) = intern::lookup_verdict(&key) {
            return verdict;
        }
        let verdict = self.decide_empty_uncached();
        intern::store_verdict(key, verdict);
        verdict
    }

    /// The legacy emptiness oracle: quick exits plus exhaustive FM, with
    /// no simplex probe and no memoization. Reference implementation for
    /// the differential tests (`is_empty` must agree on every system).
    pub fn is_empty_via_fm(&self) -> bool {
        if self.infeasible {
            return true;
        }
        let Some((lo, hi)) = self.propagate_bounds() else {
            return true;
        };
        if self.n_vars > 0
            && (self.holds_corner(&lo, &hi, true) || self.holds_corner(&lo, &hi, false))
        {
            return false;
        }
        self.clone().eliminate_range_core(0, self.n_vars).infeasible
    }

    /// Decide emptiness with the simplex probe, falling back to FM when
    /// the rational answer does not settle the integer question. Debug
    /// builds differentially verify each simplex verdict against FM.
    fn decide_empty_uncached(&self) -> bool {
        intern::count_simplex_call();
        match simplex::feasibility(self) {
            simplex::Verdict::Empty => {
                // Rationally empty ⇒ integer-empty; FM (whose tightening
                // only shrinks the rational hull) must agree.
                intern::count_simplex_empty();
                debug_assert!(
                    self.clone().eliminate_range_core(0, self.n_vars).infeasible,
                    "simplex says empty but FM disagrees"
                );
                true
            }
            simplex::Verdict::Witness(pt) => {
                // A verified integer point ⇒ non-empty; FM never cuts
                // integer points, so it must agree.
                debug_assert!(self.holds(&pt));
                debug_assert!(
                    !self.clone().eliminate_range_core(0, self.n_vars).infeasible,
                    "simplex found an integer witness but FM says empty"
                );
                false
            }
            simplex::Verdict::Fractional | simplex::Verdict::Overflow => {
                // Rational feasibility does not decide integer emptiness
                // (integer tightening can prove rationally feasible
                // systems empty) — defer to the authoritative oracle.
                intern::count_fm_fallback();
                self.clone().eliminate_range_core(0, self.n_vars).infeasible
            }
        }
    }

    /// Whether the corner of the box `[lo, hi]` (low corner when
    /// `prefer_lo`, high otherwise; unbounded coordinates fall back to
    /// the opposite bound or 0) satisfies every row. Evaluation is done
    /// in i128 so a clamped probe can never overflow.
    fn holds_corner(&self, lo: &[Option<i64>], hi: &[Option<i64>], prefer_lo: bool) -> bool {
        // Probes beyond this magnitude only arise from clamped
        // "effectively unbounded" propagation results; a real witness
        // among them is out of reach anyway.
        const LIM: i64 = 1 << 40;
        let pt: Vec<i64> = (0..self.n_vars)
            .map(|v| {
                let c = if prefer_lo {
                    lo[v].or(hi[v])
                } else {
                    hi[v].or(lo[v])
                };
                c.unwrap_or(0).clamp(-LIM, LIM)
            })
            .collect();
        self.constraints.iter().all(|c| {
            let mut acc = c.expr.constant as i128;
            for (co, x) in c.expr.coeffs.iter().zip(&pt) {
                acc += (*co as i128) * (*x as i128);
            }
            match c.kind {
                ConstraintKind::Eq => acc == 0,
                ConstraintKind::GeZero => acc >= 0,
            }
        })
    }

    /// Cheap incomplete emptiness test via bounded interval propagation:
    /// every row tightens per-variable `[lo, hi]` bounds using the
    /// current bounds of the other variables (i128 interval arithmetic,
    /// ceil/floor rounding toward the integer hull), for a few rounds.
    /// Never returns `true` for a feasible system; used to prune
    /// intersection unions and lex joins before full FM elimination.
    pub fn quick_infeasible(&self) -> bool {
        if self.infeasible {
            return true;
        }
        if self.n_vars == 0 {
            return false;
        }
        self.propagate_bounds().is_none()
    }

    /// Conjunction of two systems whose rows are all already normalized
    /// (every row of a `System` is), skipping the re-normalization and
    /// duplicate scan of [`System::intersect`]. Duplicate rows across the
    /// two systems are kept — harmless for feasibility tests and
    /// elimination, which is what the hot callers do with the result.
    pub(crate) fn concat_rows(&self, other: &System) -> System {
        assert_eq!(self.n_vars, other.n_vars, "system arity mismatch");
        if self.infeasible || other.infeasible {
            return System::infeasible(self.n_vars);
        }
        let mut constraints = Vec::with_capacity(self.constraints.len() + other.constraints.len());
        constraints.extend_from_slice(&self.constraints);
        constraints.extend_from_slice(&other.constraints);
        System {
            n_vars: self.n_vars,
            constraints,
            infeasible: false,
        }
    }

    /// Propagate this system's rows against externally seeded bounds
    /// (typically derived from another system this one is about to be
    /// intersected with — bounds valid for that system stay valid for
    /// the conjunction). Returns `true` when some interval becomes
    /// empty, i.e. the conjunction is certainly infeasible.
    pub(crate) fn propagate_seeded(
        &self,
        lo: &mut [Option<i64>],
        hi: &mut [Option<i64>],
        rounds: usize,
    ) -> bool {
        if self.infeasible {
            return true;
        }
        for _ in 0..rounds {
            let mut changed = false;
            for c in &self.constraints {
                for sign in [1i64, -1] {
                    if sign < 0 && c.kind != ConstraintKind::Eq {
                        continue;
                    }
                    if propagate_row(&c.expr, sign, lo, hi, &mut changed) {
                        return true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        false
    }

    /// Run the bounded interval propagation of [`System::quick_infeasible`]
    /// and return the per-variable `[lo, hi]` bounds it derived, or `None`
    /// when some interval became empty (the system is certainly
    /// infeasible).
    pub(crate) fn propagate_bounds(&self) -> Option<VarBounds> {
        let n = self.n_vars;
        let mut lo: Vec<Option<i64>> = vec![None; n];
        let mut hi: Vec<Option<i64>> = vec![None; n];
        for _round in 0..4 {
            let mut changed = false;
            for c in &self.constraints {
                // Propagate `expr >= 0`; for equalities also `-expr >= 0`.
                for sign in [1i64, -1] {
                    if sign < 0 && c.kind != ConstraintKind::Eq {
                        continue;
                    }
                    if propagate_row(&c.expr, sign, &mut lo, &mut hi, &mut changed) {
                        return None;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Some((lo, hi))
    }

    /// Drop duplicate rows and inequalities dominated by a parallel row
    /// with a tighter constant. Works on sorted row indices, so no row is
    /// cloned or hashed; first-occurrence order is preserved.
    pub fn prune_redundant(&mut self) {
        if self.infeasible {
            return;
        }
        let rows = &self.constraints;
        if rows.len() < 2 {
            return;
        }
        // Sort indices so parallel rows (same kind + coefficients) are
        // adjacent.
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by(|&a, &b| {
            let (ca, cb) = (&rows[a], &rows[b]);
            (ca.kind == ConstraintKind::Eq)
                .cmp(&(cb.kind == ConstraintKind::Eq))
                .then_with(|| ca.expr.coeffs.cmp(&cb.expr.coeffs))
                .then_with(|| ca.expr.constant.cmp(&cb.expr.constant))
        });
        // For each group of parallel rows: equalities dedupe on exact
        // match; inequalities keep one row at the earliest original
        // position with the tightest (smallest) constant.
        let mut keep_at: Vec<Option<i64>> = vec![None; rows.len()]; // idx -> constant to keep
        let mut g = 0;
        while g < order.len() {
            let start = g;
            let c0 = &rows[order[start]];
            let mut end = start + 1;
            while end < order.len() {
                let c = &rows[order[end]];
                if c.kind == c0.kind && c.expr.coeffs == c0.expr.coeffs {
                    end += 1;
                } else {
                    break;
                }
            }
            if c0.kind == ConstraintKind::Eq {
                // Exact duplicates are adjacent (sorted by constant too).
                let mut i = start;
                while i < end {
                    let k = rows[order[i]].expr.constant;
                    let mut first = order[i];
                    let mut j = i;
                    while j < end && rows[order[j]].expr.constant == k {
                        first = first.min(order[j]);
                        j += 1;
                    }
                    keep_at[first] = Some(k);
                    i = j;
                }
            } else {
                let mut first = order[start];
                let mut tightest = rows[order[start]].expr.constant;
                for &idx in &order[start + 1..end] {
                    first = first.min(idx);
                    tightest = tightest.min(rows[idx].expr.constant);
                }
                keep_at[first] = Some(tightest);
            }
            g = end;
        }
        let mut out = Vec::with_capacity(rows.len());
        for (i, c) in self.constraints.drain(..).enumerate() {
            if let Some(k) = keep_at[i] {
                let mut c = c;
                c.expr.constant = k;
                out.push(c);
            }
        }
        self.constraints = out;
    }
}

/// One propagation step for the row `sign * expr >= 0` (`sign` is ±1;
/// −1 is only used for equalities): for every variable with a nonzero
/// coefficient, derive the bound implied by the current intervals of the
/// other variables. Returns `true` when some interval becomes empty.
fn propagate_row(
    expr: &LinExpr,
    sign: i64,
    lo: &mut [Option<i64>],
    hi: &mut [Option<i64>],
    changed: &mut bool,
) -> bool {
    // Row: sum_v cv*x_v + k >= 0 with cv = sign*coeffs[v]. For a target
    // v this gives cv*x_v >= -k - S with S = sum_{u≠v} cu*x_u, so a valid
    // bound substitutes the box maximum of S. The per-u maxima are summed
    // once; each target subtracts its own term.
    let mut unbounded = 0usize;
    let mut unbounded_at = usize::MAX;
    let mut smax: i128 = 0;
    for (u, &c) in expr.coeffs.iter().enumerate() {
        let cu = sign * c;
        if cu == 0 {
            continue;
        }
        let term = if cu > 0 { hi[u] } else { lo[u] };
        match term {
            // i64×i64 products always fit i128; the running sum is
            // checked so an (astronomically unlikely) overflow panics
            // loudly instead of silently misclassifying a feasible
            // system — matching the crate's checked-arithmetic
            // convention.
            Some(b) => {
                smax = smax
                    .checked_add(cu as i128 * b as i128)
                    .expect("interval propagation overflow");
            }
            None => {
                unbounded += 1;
                unbounded_at = u;
                if unbounded > 1 {
                    return false;
                }
            }
        }
    }
    let k = (sign as i128) * (expr.constant as i128);
    for (v, &c) in expr.coeffs.iter().enumerate() {
        let cv = sign * c;
        if cv == 0 {
            continue;
        }
        let s_excl = if unbounded == 0 {
            let own = if cv > 0 { hi[v] } else { lo[v] };
            match own {
                Some(b) => smax
                    .checked_sub(cv as i128 * b as i128)
                    .expect("interval propagation overflow"),
                None => smax,
            }
        } else if unbounded_at == v {
            smax
        } else {
            // Some *other* variable is unbounded: no bound for v.
            continue;
        };
        // cv * x_v >= rhs
        let rhs = k
            .checked_add(s_excl)
            .and_then(i128::checked_neg)
            .expect("interval propagation overflow");
        if cv > 0 {
            // x_v >= ceil(rhs / cv)
            let b = clamp_i64(-((-rhs).div_euclid(cv as i128)));
            if lo[v].is_none_or(|cur| b > cur) {
                lo[v] = Some(b);
                *changed = true;
                if hi[v].is_some_and(|h| b > h) {
                    return true;
                }
            }
        } else {
            // x_v <= floor(rhs / cv) = floor(-rhs / -cv)
            let b = clamp_i64((-rhs).div_euclid(-(cv as i128)));
            if hi[v].is_none_or(|cur| b < cur) {
                hi[v] = Some(b);
                *changed = true;
                if lo[v].is_some_and(|l| b < l) {
                    return true;
                }
            }
        }
    }
    false
}

/// Choose which of `remaining` to eliminate next (index *into*
/// `remaining`); `None` when the list is empty.
fn pick_elimination_target(sys: &System, remaining: &[usize]) -> Option<usize> {
    if remaining.is_empty() {
        return None;
    }
    // Prefer a variable with a unit-coefficient equality (exact).
    for (i, &v) in remaining.iter().enumerate() {
        let has_unit_eq = sys
            .constraints
            .iter()
            .any(|c| c.kind == ConstraintKind::Eq && c.expr.coeffs[v].abs() == 1);
        if has_unit_eq {
            return Some(i);
        }
    }
    // Otherwise the smallest lower×upper pairing fan-out.
    let fan = |v: usize| -> usize {
        let mut lo = 0usize;
        let mut hi = 0usize;
        for c in &sys.constraints {
            let k = c.expr.coeffs[v];
            if k == 0 {
                continue;
            }
            match c.kind {
                ConstraintKind::Eq => {
                    lo += 1;
                    hi += 1;
                }
                ConstraintKind::GeZero => {
                    if k > 0 {
                        lo += 1;
                    } else {
                        hi += 1;
                    }
                }
            }
        }
        lo * hi
    };
    remaining
        .iter()
        .enumerate()
        .min_by_key(|(_, &v)| fan(v))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box2(ilo: i64, ihi: i64, jlo: i64, jhi: i64) -> System {
        let mut s = System::universe(2);
        s.add(Constraint::ge0(LinExpr::new(&[1, 0], -ilo)));
        s.add(Constraint::ge0(LinExpr::new(&[-1, 0], ihi)));
        s.add(Constraint::ge0(LinExpr::new(&[0, 1], -jlo)));
        s.add(Constraint::ge0(LinExpr::new(&[0, -1], jhi)));
        s
    }

    #[test]
    fn universe_not_empty() {
        assert!(!System::universe(3).is_empty());
    }

    #[test]
    fn box_feasible() {
        assert!(!box2(0, 10, 0, 10).is_empty());
    }

    #[test]
    fn contradictory_bounds_empty() {
        // i >= 5 and i <= 3
        let mut s = System::universe(1);
        s.add(Constraint::ge0(LinExpr::new(&[1], -5)));
        s.add(Constraint::ge0(LinExpr::new(&[-1], 3)));
        assert!(s.is_empty());
    }

    #[test]
    fn eliminate_projects_box() {
        // project j out of 0<=i<=10, 0<=j<=10 -> 0<=i<=10
        let s = box2(0, 10, 0, 10);
        let p = s.eliminate(1);
        assert_eq!(p.n_vars(), 1);
        assert!(p.holds(&[0]));
        assert!(p.holds(&[10]));
        assert!(!p.holds(&[11]));
        assert!(!p.holds(&[-1]));
    }

    #[test]
    fn eliminate_with_equality_substitution() {
        // { (i,j) : i = j + 2, 0 <= j <= 5 }, eliminate j -> 2 <= i <= 7
        let mut s = System::universe(2);
        s.add(Constraint::eq(LinExpr::new(&[1, -1], -2)));
        s.add(Constraint::ge0(LinExpr::new(&[0, 1], 0)));
        s.add(Constraint::ge0(LinExpr::new(&[0, -1], 5)));
        let p = s.eliminate(1);
        assert!(p.holds(&[2]));
        assert!(p.holds(&[7]));
        assert!(!p.holds(&[1]));
        assert!(!p.holds(&[8]));
    }

    #[test]
    fn fm_pairing_without_equalities() {
        // { (i,j) : j >= i, j <= 10, i >= 0 }, eliminate j -> 0 <= i <= 10
        let mut s = System::universe(2);
        s.add(Constraint::ge0(LinExpr::new(&[-1, 1], 0)));
        s.add(Constraint::ge0(LinExpr::new(&[0, -1], 10)));
        s.add(Constraint::ge0(LinExpr::new(&[1, 0], 0)));
        let p = s.eliminate(1);
        assert!(p.holds(&[10]));
        assert!(!p.holds(&[11]));
    }

    #[test]
    fn integer_tightening_in_projection() {
        // { (i,j) : 2j = i, 1 <= i <= 1 } rationally j = 1/2 exists, but
        // normalize flags 2j = 1 infeasible over the integers.
        let mut s = System::universe(2);
        s.add(Constraint::eq(LinExpr::new(&[-1, 2], 0)));
        s.add(Constraint::eq(LinExpr::new(&[1, 0], -1)));
        assert!(s.is_empty());
    }

    #[test]
    fn eliminate_range_many() {
        let mut s = System::universe(4);
        for v in 0..4 {
            let mut lo = vec![0i64; 4];
            lo[v] = 1;
            s.add(Constraint::ge0(LinExpr::new(&lo, 0)));
            let mut hi = vec![0i64; 4];
            hi[v] = -1;
            s.add(Constraint::ge0(LinExpr::new(&hi, 3)));
        }
        let p = s.eliminate_range(1, 2);
        assert_eq!(p.n_vars(), 2);
        assert!(p.holds(&[3, 3]));
        assert!(!p.holds(&[4, 0]));
    }

    #[test]
    fn intersect_concatenates() {
        let a = box2(0, 10, 0, 10);
        let b = box2(5, 20, 5, 20);
        let c = a.intersect(&b);
        assert!(c.holds(&[5, 7]));
        assert!(!c.holds(&[4, 7]));
        assert!(!c.holds(&[11, 7]));
    }

    #[test]
    fn infeasible_propagates() {
        let mut s = System::universe(1);
        s.add(Constraint::ge0(LinExpr::constant(1, -1)));
        assert!(s.known_infeasible());
        assert!(s.is_empty());
        let t = s.intersect(&System::universe(1));
        assert!(t.is_empty());
    }

    #[test]
    fn prune_keeps_tightest_parallel() {
        let mut s = System::universe(1);
        s.add(Constraint::ge0(LinExpr::new(&[-1], 10))); // x <= 10
        s.add(Constraint::ge0(LinExpr::new(&[-1], 5))); // x <= 5
        s.prune_redundant();
        assert_eq!(s.constraints().len(), 1);
        assert!(s.holds(&[5]));
        assert!(!s.holds(&[6]));
    }

    #[test]
    fn quick_infeasible_detects_clashing_constants() {
        let mut s = System::universe(2);
        s.add(Constraint::eq(LinExpr::new(&[1, 0], -2))); // x = 2
        s.add(Constraint::eq(LinExpr::new(&[1, 0], -5))); // x = 5
        assert!(s.quick_infeasible());
    }

    #[test]
    fn quick_infeasible_never_false_positive_on_boxes() {
        let s = box2(0, 10, 0, 10);
        assert!(!s.quick_infeasible());
        let mut t = box2(0, 10, 0, 10);
        t.add(Constraint::ge0(LinExpr::new(&[1, -1], 0))); // multi-var row ignored
        assert!(!t.quick_infeasible());
    }

    #[test]
    fn insert_vars_shifts() {
        let mut s = System::universe(2);
        s.add(Constraint::ge0(LinExpr::new(&[1, -1], 0))); // i >= j
        let w = s.insert_vars(1, 1); // (i, z, j)
        assert!(w.holds(&[3, 100, 2]));
        assert!(!w.holds(&[2, 100, 3]));
    }
}
