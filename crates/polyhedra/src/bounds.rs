//! Loop-bound extraction for code generation.
//!
//! Given a basic set and a fixed dimension order, [`extract_bounds`]
//! computes, for every dimension `d`, affine lower and upper bounds in
//! terms of the outer dimensions `0..d`. The code generator emits
//! `for (xd = max(lowers); xd <= min(uppers); xd++)` from this.

use crate::constraint::ConstraintKind;
use crate::linexpr::LinExpr;
use crate::set::BasicSet;

/// A non-empty closed integer interval `[lo, hi]` — the 1-D constant
/// special case of a [`BasicSet`], cheap enough for interval reasoning
/// outside the polyhedral machinery (liveness over schedule stages,
/// kernel-sequence live ranges, bounding-box pre-checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedInterval {
    pub lo: i64,
    pub hi: i64,
}

impl ClosedInterval {
    /// The interval `[lo, hi]` (requires `lo <= hi`).
    pub fn new(lo: i64, hi: i64) -> ClosedInterval {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        ClosedInterval { lo, hi }
    }

    /// Number of integer points.
    pub fn points(&self) -> u64 {
        (self.hi - self.lo) as u64 + 1
    }

    /// Whether `v` lies inside.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether the two intervals share no integer point.
    pub fn disjoint(&self, other: &ClosedInterval) -> bool {
        self.hi < other.lo || other.hi < self.lo
    }

    /// Whether the two intervals share at least one integer point.
    pub fn overlaps(&self, other: &ClosedInterval) -> bool {
        !self.disjoint(other)
    }

    /// Smallest interval covering both.
    pub fn hull(&self, other: &ClosedInterval) -> ClosedInterval {
        ClosedInterval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// Affine bounds of one dimension in terms of the outer dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimBounds {
    /// Lower bounds (the loop starts at their maximum). Expressions range
    /// over the outer dimensions `0..d`.
    pub lowers: Vec<LinExpr>,
    /// Upper bounds, inclusive (the loop runs to their minimum).
    pub uppers: Vec<LinExpr>,
}

impl DimBounds {
    /// Whether the bounds are plain constants.
    pub fn is_constant(&self) -> bool {
        self.lowers.iter().all(LinExpr::is_constant) && self.uppers.iter().all(LinExpr::is_constant)
    }

    /// If both sides are single constants, return `(lo, hi)`.
    pub fn as_constant_range(&self) -> Option<(i64, i64)> {
        if self.lowers.len() == 1 && self.uppers.len() == 1 {
            let lo = &self.lowers[0];
            let hi = &self.uppers[0];
            if lo.is_constant() && hi.is_constant() {
                return Some((lo.constant, hi.constant));
            }
        }
        None
    }
}

/// Extract per-dimension bounds for all dimensions of `set`, in the set's
/// dimension order. Returns `None` if some dimension is unbounded on
/// either side (no loop can be emitted).
pub fn extract_bounds(set: &BasicSet) -> Option<Vec<DimBounds>> {
    let n = set.dim();
    // The set's memoized projection sweep provides `levels[d]` — the
    // system with every dimension after `d` projected out. The seed
    // recomputed the full trailing elimination per dimension; the cached
    // chain builds each level from the previous one with a single
    // variable elimination, shared with `PointIter`.
    let levels = &set.projection().levels;
    let mut out = Vec::with_capacity(n);
    for (d, sys) in levels.iter().enumerate() {
        // Constraints on x_d reference only x_0..x_d.
        if sys.known_infeasible() {
            // Empty set: emit a degenerate 1..0 loop.
            out.push(DimBounds {
                lowers: vec![LinExpr::constant(d, 1)],
                uppers: vec![LinExpr::constant(d, 0)],
            });
            continue;
        }
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        for c in sys.constraints() {
            let a = c.expr.coeffs[d];
            if a == 0 {
                continue;
            }
            // Constraint: a*x_d + e(outer) (>=|=) 0.
            let outer = LinExpr {
                coeffs: c.expr.coeffs[..d].to_vec(),
                constant: c.expr.constant,
            };
            match c.kind {
                ConstraintKind::Eq => {
                    // x_d = -e / a. Normalization gives |a| = 1 for the
                    // unimodular systems we handle; reject otherwise.
                    if a.abs() != 1 {
                        return None;
                    }
                    let b = outer.scale(-a.signum());
                    lowers.push(b.clone());
                    uppers.push(b);
                }
                ConstraintKind::GeZero => {
                    if a.abs() != 1 {
                        // Rational bound on an integer loop would need
                        // floor/ceil emission; normalization avoids this
                        // for the flow's unimodular systems.
                        return None;
                    }
                    if a > 0 {
                        // x_d >= -e
                        lowers.push(outer.scale(-1));
                    } else {
                        // x_d <= e
                        uppers.push(outer);
                    }
                }
            }
        }
        if lowers.is_empty() || uppers.is_empty() {
            return None;
        }
        out.push(DimBounds { lowers, uppers });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::space::Space;

    #[test]
    fn box_bounds_constant() {
        let b = BasicSet::boxed(Space::set("t", &["i", "j"]), &[(0, 10), (2, 7)]);
        let bounds = extract_bounds(&b).unwrap();
        assert_eq!(bounds[0].as_constant_range(), Some((0, 10)));
        assert_eq!(bounds[1].as_constant_range(), Some((2, 7)));
    }

    #[test]
    fn triangular_bounds_reference_outer() {
        // { (i,j) : 0<=i<=5, 0<=j<=i }
        let b = BasicSet::boxed(Space::set("t", &["i", "j"]), &[(0, 5), (0, 5)])
            .constrain(Constraint::ge0(LinExpr::new(&[1, -1], 0)));
        let bounds = extract_bounds(&b).unwrap();
        assert_eq!(bounds[0].as_constant_range(), Some((0, 5)));
        // j's upper bounds include i (coeff [1], const 0).
        assert!(bounds[1]
            .uppers
            .iter()
            .any(|u| u.coeffs == vec![1] && u.constant == 0));
    }

    #[test]
    fn unbounded_dimension_rejected() {
        let b = BasicSet::universe(Space::set("t", &["i"]));
        assert!(extract_bounds(&b).is_none());
    }

    #[test]
    fn equality_pins_dimension() {
        // { (i,j) : 0<=i<=4, j = i+1 }
        let b = BasicSet::boxed(Space::set("t", &["i", "j"]), &[(0, 4), (-100, 100)])
            .constrain(Constraint::eq(LinExpr::new(&[1, -1], 1)));
        let bounds = extract_bounds(&b).unwrap();
        // j has an equality-derived bound i+1 on both sides.
        let has = |v: &Vec<LinExpr>| v.iter().any(|e| e.coeffs == vec![1] && e.constant == 1);
        assert!(has(&bounds[1].lowers));
        assert!(has(&bounds[1].uppers));
    }

    #[test]
    fn bounds_enumeration_agrees_with_points() {
        let b = BasicSet::boxed(Space::set("t", &["i", "j"]), &[(0, 3), (0, 3)])
            .constrain(Constraint::ge0(LinExpr::new(&[1, -1], 0)));
        let bounds = extract_bounds(&b).unwrap();
        // Walk the loops the way generated code would.
        let mut count = 0;
        let (ilo, ihi) = bounds[0].as_constant_range().unwrap();
        for i in ilo..=ihi {
            let lo = bounds[1].lowers.iter().map(|e| e.eval(&[i])).max().unwrap();
            let hi = bounds[1].uppers.iter().map(|e| e.eval(&[i])).min().unwrap();
            count += (hi - lo + 1).max(0);
        }
        assert_eq!(count as usize, b.points().count());
    }
}

#[cfg(test)]
mod interval_tests {
    use super::ClosedInterval;

    #[test]
    fn interval_relations() {
        let a = ClosedInterval::new(0, 2);
        let b = ClosedInterval::new(3, 3);
        let c = ClosedInterval::new(2, 5);
        assert!(a.disjoint(&b));
        assert!(!a.disjoint(&c));
        assert!(a.overlaps(&c));
        assert!(a.contains(0) && a.contains(2) && !a.contains(3));
        assert_eq!(a.points(), 3);
        assert_eq!(b.points(), 1);
        assert_eq!(a.hull(&b), ClosedInterval::new(0, 3));
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn empty_interval_rejected() {
        let _ = ClosedInterval::new(4, 3);
    }
}
