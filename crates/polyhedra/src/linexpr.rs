//! Affine integer expressions.
//!
//! A [`LinExpr`] is `c0*x0 + c1*x1 + ... + c_{n-1}*x_{n-1} + k` over an
//! (implicit) variable vector of length `n`. Coefficients are `i64`;
//! intermediate arithmetic during Fourier–Motzkin combination is done in
//! `i128` and checked back into `i64`, which is far beyond anything the
//! CFDlang flow produces.

use std::fmt;

/// An affine expression: linear coefficients plus a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LinExpr {
    /// Coefficient per variable.
    pub coeffs: Vec<i64>,
    /// Constant term.
    pub constant: i64,
}

impl LinExpr {
    /// The zero expression over `n` variables.
    pub fn zero(n: usize) -> Self {
        LinExpr {
            coeffs: vec![0; n],
            constant: 0,
        }
    }

    /// A constant expression over `n` variables.
    pub fn constant(n: usize, k: i64) -> Self {
        LinExpr {
            coeffs: vec![0; n],
            constant: k,
        }
    }

    /// The expression `x_i` over `n` variables.
    pub fn var(n: usize, i: usize) -> Self {
        let mut coeffs = vec![0; n];
        coeffs[i] = 1;
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Build from a slice of coefficients and a constant.
    pub fn new(coeffs: &[i64], constant: i64) -> Self {
        LinExpr {
            coeffs: coeffs.to_vec(),
            constant,
        }
    }

    /// Number of variables this expression ranges over.
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether all coefficients are zero (constant expression).
    #[inline]
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Coefficient of variable `i`.
    #[inline]
    pub fn coeff(&self, i: usize) -> i64 {
        self.coeffs[i]
    }

    /// `self + other`.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        assert_eq!(self.n_vars(), other.n_vars(), "LinExpr arity mismatch");
        LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a.checked_add(*b).expect("LinExpr overflow"))
                .collect(),
            constant: self
                .constant
                .checked_add(other.constant)
                .expect("LinExpr overflow"),
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-1))
    }

    /// `k * self`.
    pub fn scale(&self, k: i64) -> LinExpr {
        let mut out = self.clone();
        out.scale_assign(k);
        out
    }

    /// `self *= k` in place (no allocation).
    pub fn scale_assign(&mut self, k: i64) {
        for c in &mut self.coeffs {
            *c = c.checked_mul(k).expect("LinExpr overflow");
        }
        self.constant = self.constant.checked_mul(k).expect("LinExpr overflow");
    }

    /// `self += k * other` in place (no allocation), with i128
    /// intermediates checked back into i64.
    pub fn add_scaled_assign(&mut self, other: &LinExpr, k: i64) {
        assert_eq!(self.n_vars(), other.n_vars(), "LinExpr arity mismatch");
        for (a, &b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            let v = (*a as i128) + (b as i128) * (k as i128);
            *a = i64::try_from(v).expect("LinExpr overflow");
        }
        let v = (self.constant as i128) + (other.constant as i128) * (k as i128);
        self.constant = i64::try_from(v).expect("LinExpr overflow");
    }

    /// Evaluate at an integer point.
    #[inline]
    pub fn eval(&self, point: &[i64]) -> i64 {
        assert_eq!(point.len(), self.n_vars(), "point arity mismatch");
        let mut acc: i128 = self.constant as i128;
        for (c, x) in self.coeffs.iter().zip(point) {
            acc += (*c as i128) * (*x as i128);
        }
        i64::try_from(acc).expect("LinExpr eval overflow")
    }

    /// Extend the variable vector: insert `count` fresh (zero-coefficient)
    /// variables at position `at`.
    pub fn insert_vars(&self, at: usize, count: usize) -> LinExpr {
        let mut coeffs = Vec::with_capacity(self.coeffs.len() + count);
        coeffs.extend_from_slice(&self.coeffs[..at]);
        coeffs.extend(std::iter::repeat_n(0, count));
        coeffs.extend_from_slice(&self.coeffs[at..]);
        LinExpr {
            coeffs,
            constant: self.constant,
        }
    }

    /// Remove variable `i` (its coefficient must be zero).
    pub fn remove_var(&self, i: usize) -> LinExpr {
        assert_eq!(self.coeffs[i], 0, "removing live variable");
        let mut coeffs = self.coeffs.clone();
        coeffs.remove(i);
        LinExpr {
            coeffs,
            constant: self.constant,
        }
    }

    /// Remove a set of variables at once (sorted ascending indices; every
    /// removed coefficient must be zero). One allocation regardless of
    /// how many variables go.
    pub fn remove_vars(&self, sorted_dead: &[usize]) -> LinExpr {
        let mut coeffs = Vec::with_capacity(self.coeffs.len() - sorted_dead.len());
        let mut d = 0;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if d < sorted_dead.len() && sorted_dead[d] == i {
                debug_assert_eq!(c, 0, "removing live variable");
                d += 1;
            } else {
                coeffs.push(c);
            }
        }
        LinExpr {
            coeffs,
            constant: self.constant,
        }
    }

    /// Substitute variable `i` by the affine expression `repl` (which must
    /// range over the same variable vector and have zero coefficient on
    /// `i`). Afterwards `self` has zero coefficient on `i`.
    pub fn substitute(&self, i: usize, repl: &LinExpr) -> LinExpr {
        assert_eq!(repl.coeffs[i], 0, "self-referential substitution");
        let c = self.coeffs[i];
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs[i] = 0;
        out.add_scaled_assign(repl, c);
        out
    }

    /// Substitute variable `i` by `repl` and remove it from the variable
    /// vector in one pass — the zero-intermediate equivalent of
    /// `substitute(i, repl).remove_var(i)` (one output allocation, no
    /// temporaries).
    pub fn substitute_skipping(&self, i: usize, repl: &LinExpr) -> LinExpr {
        debug_assert_eq!(repl.coeffs[i], 0, "self-referential substitution");
        let c = self.coeffs[i];
        let n = self.n_vars();
        let mut coeffs = Vec::with_capacity(n - 1);
        for v in 0..n {
            if v == i {
                continue;
            }
            let w = (self.coeffs[v] as i128) + (repl.coeffs[v] as i128) * (c as i128);
            coeffs.push(i64::try_from(w).expect("LinExpr overflow"));
        }
        let k = (self.constant as i128) + (repl.constant as i128) * (c as i128);
        LinExpr {
            coeffs,
            constant: i64::try_from(k).expect("LinExpr overflow"),
        }
    }

    /// Greatest common divisor of the variable coefficients (0 if all are
    /// zero).
    pub fn coeff_gcd(&self) -> i64 {
        self.coeffs.iter().fold(0i64, |g, &c| gcd(g, c.abs()))
    }

    /// Render with the given dimension names.
    pub fn display(&self, names: &[String]) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let name = names.get(i).cloned().unwrap_or_else(|| format!("x{i}"));
            match c {
                1 => parts.push(name),
                -1 => parts.push(format!("-{name}")),
                _ => parts.push(format!("{c}{name}")),
            }
        }
        if self.constant != 0 || parts.is_empty() {
            parts.push(self.constant.to_string());
        }
        let mut s = String::new();
        for (i, p) in parts.iter().enumerate() {
            if i == 0 {
                s.push_str(p);
            } else if let Some(stripped) = p.strip_prefix('-') {
                s.push_str(" - ");
                s.push_str(stripped);
            } else {
                s.push_str(" + ");
                s.push_str(p);
            }
        }
        s
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display(&[]))
    }
}

/// Saturating i128 → i64 conversion. Used when storing derived interval
/// bounds: saturation only ever *weakens* a bound over i64-valued points,
/// so soundness of the pruning checks is preserved.
pub(crate) fn clamp_i64(v: i128) -> i64 {
    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// Greatest common divisor (non-negative).
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Combine two expressions with i128 intermediates:
/// `p * a + q * b`, checked back into i64.
pub fn combine(a: &LinExpr, p: i64, b: &LinExpr, q: i64) -> LinExpr {
    assert_eq!(a.n_vars(), b.n_vars(), "LinExpr arity mismatch");
    let coeffs = a
        .coeffs
        .iter()
        .zip(&b.coeffs)
        .map(|(&ca, &cb)| {
            let v = (ca as i128) * (p as i128) + (cb as i128) * (q as i128);
            i64::try_from(v).expect("FM combination overflow")
        })
        .collect();
    let constant =
        i64::try_from((a.constant as i128) * (p as i128) + (b.constant as i128) * (q as i128))
            .expect("FM combination overflow");
    LinExpr { coeffs, constant }
}

/// `dst = p * a + q * b` written into an existing expression, reusing its
/// coefficient buffer (no allocation once `dst` has the right arity).
pub fn combine_into(dst: &mut LinExpr, a: &LinExpr, p: i64, b: &LinExpr, q: i64) {
    assert_eq!(a.n_vars(), b.n_vars(), "LinExpr arity mismatch");
    dst.coeffs.clear();
    dst.coeffs
        .extend(a.coeffs.iter().zip(&b.coeffs).map(|(&ca, &cb)| {
            let v = (ca as i128) * (p as i128) + (cb as i128) * (q as i128);
            i64::try_from(v).expect("FM combination overflow")
        }));
    dst.constant =
        i64::try_from((a.constant as i128) * (p as i128) + (b.constant as i128) * (q as i128))
            .expect("FM combination overflow");
}

/// `p * a + q * b` with variable `skip` removed from the result — the
/// single-allocation form of `combine(a, p, b, q).remove_var(skip)` used
/// by Fourier–Motzkin pairing (where the combination is chosen to cancel
/// `skip` exactly).
pub fn combine_skipping(a: &LinExpr, p: i64, b: &LinExpr, q: i64, skip: usize) -> LinExpr {
    assert_eq!(a.n_vars(), b.n_vars(), "LinExpr arity mismatch");
    debug_assert_eq!(
        (a.coeffs[skip] as i128) * (p as i128) + (b.coeffs[skip] as i128) * (q as i128),
        0,
        "combination must cancel the skipped variable"
    );
    let n = a.n_vars();
    let mut coeffs = Vec::with_capacity(n - 1);
    for v in 0..n {
        if v == skip {
            continue;
        }
        let w = (a.coeffs[v] as i128) * (p as i128) + (b.coeffs[v] as i128) * (q as i128);
        coeffs.push(i64::try_from(w).expect("FM combination overflow"));
    }
    let constant =
        i64::try_from((a.constant as i128) * (p as i128) + (b.constant as i128) * (q as i128))
            .expect("FM combination overflow");
    LinExpr { coeffs, constant }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_affine() {
        // 2i - j + 3 at (5, 4) = 9
        let e = LinExpr::new(&[2, -1], 3);
        assert_eq!(e.eval(&[5, 4]), 9);
    }

    #[test]
    fn add_sub_scale() {
        let a = LinExpr::new(&[1, 2], 3);
        let b = LinExpr::new(&[4, -1], 0);
        assert_eq!(a.add(&b), LinExpr::new(&[5, 1], 3));
        assert_eq!(a.sub(&b), LinExpr::new(&[-3, 3], 3));
        assert_eq!(a.scale(-2), LinExpr::new(&[-2, -4], -6));
    }

    #[test]
    fn substitute_eliminates_var() {
        // e = 3x + y + 1, substitute x := 2y - 5 -> 7y - 14
        let e = LinExpr::new(&[3, 1], 1);
        let repl = LinExpr::new(&[0, 2], -5);
        let r = e.substitute(0, &repl);
        assert_eq!(r, LinExpr::new(&[0, 7], -14));
    }

    #[test]
    fn insert_and_remove_vars() {
        let e = LinExpr::new(&[1, 2], 7);
        let w = e.insert_vars(1, 2);
        assert_eq!(w, LinExpr::new(&[1, 0, 0, 2], 7));
        let r = w.remove_var(1);
        assert_eq!(r, LinExpr::new(&[1, 0, 2], 7));
    }

    #[test]
    fn gcd_properties() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 0), 0);
    }

    #[test]
    fn combine_uses_wide_arithmetic() {
        let a = LinExpr::new(&[i64::MAX / 4, 1], 0);
        let b = LinExpr::new(&[-(i64::MAX / 4), 1], 0);
        // 1*a + 1*b cancels the large coefficients.
        let c = combine(&a, 1, &b, 1);
        assert_eq!(c, LinExpr::new(&[0, 2], 0));
    }

    #[test]
    fn in_place_ops_match_allocating_ones() {
        let a = LinExpr::new(&[1, 2], 3);
        let b = LinExpr::new(&[4, -1], 7);
        let mut x = a.clone();
        x.add_scaled_assign(&b, -3);
        assert_eq!(x, a.add(&b.scale(-3)));
        let mut y = a.clone();
        y.scale_assign(-2);
        assert_eq!(y, a.scale(-2));
    }

    #[test]
    fn combine_into_reuses_buffer() {
        let a = LinExpr::new(&[1, 2, 3], 4);
        let b = LinExpr::new(&[-1, 0, 5], 1);
        let mut dst = LinExpr::zero(3);
        combine_into(&mut dst, &a, 2, &b, 3);
        assert_eq!(dst, combine(&a, 2, &b, 3));
    }

    #[test]
    fn combine_skipping_drops_cancelled_var() {
        // 3x + y >= ... paired with -3x + z: 1*a + 1*b cancels x.
        let a = LinExpr::new(&[3, 1, 0], 2);
        let b = LinExpr::new(&[-3, 0, 1], 5);
        let r = combine_skipping(&a, 1, &b, 1, 0);
        assert_eq!(r, combine(&a, 1, &b, 1).remove_var(0));
    }

    #[test]
    fn substitute_skipping_matches_two_step() {
        let e = LinExpr::new(&[3, 1, -2], 1);
        let repl = LinExpr::new(&[0, 2, 1], -5);
        assert_eq!(
            e.substitute_skipping(0, &repl),
            e.substitute(0, &repl).remove_var(0)
        );
    }

    #[test]
    fn display_readable() {
        let e = LinExpr::new(&[1, -1, 2], -3);
        let names = vec!["i".to_string(), "j".to_string(), "k".to_string()];
        assert_eq!(e.display(&names), "i - j + 2k - 3");
    }

    #[test]
    fn display_zero() {
        let e = LinExpr::zero(2);
        assert_eq!(e.display(&[]), "0");
    }
}
