//! Hash-consed memoization of polyhedral queries, plus the oracle mode
//! toggle and the global oracle counters.
//!
//! Systems reaching this table are already row-normalized ([`System`]
//! GCD-reduces every row, canonicalizes equality signs, and dedups on
//! insertion), so a content key over the rows is a sound identity for
//! the *polyhedron as queried*. Two canonical forms are used, with
//! deliberately different strictness:
//!
//! * **Verdict keys** ([`lookup_verdict`]/[`store_verdict`]) sort the
//!   encoded rows. Emptiness is row-order-invariant, so sorting lets
//!   permutations of the same system share one memo entry.
//! * **Projection keys** ([`lookup_projection`]/[`store_projection`])
//!   keep the exact row order and append the `(from, count)` window.
//!   `eliminate_range` resolves ties by row position, so only *exactly*
//!   identical queries may share a result — anything looser could
//!   break the bit-identity guarantee the pipeline differential tests
//!   enforce.
//! * **Between keys** ([`lookup_between`]/[`store_between`]) memoize a
//!   whole per-part [`crate::between_set`] expansion — the ordered list
//!   of surviving projected systems from the `(dim+1)²` lex-sandwich
//!   loop. Exact row order again (the expansion runs projections), so a
//!   hit replays the precise system list a cold run would produce.
//! * **Compound keys** ([`KeyBuilder`], [`lookup_legal`]/[`store_legal`])
//!   frame an ordered sequence of systems plus scalar parameters — used
//!   for verdicts that depend on several polyhedra at once, e.g. schedule
//!   legality (every RAW edge's relation and statement schedule maps).
//!
//! Keys encode the full system (`n_vars`, then per row: kind tag,
//! constant, coefficients) and the full key is stored in the map, so
//! hash collisions cannot corrupt results. Both maps live behind
//! `OnceLock<RwLock<HashMap>>` and are shared process-wide: the
//! thousands of structurally identical pair queries a multi-kernel
//! program generates across `dependence_analysis`, `between_set`,
//! `Liveness::analyze`, and `reschedule` are answered once.
//!
//! # Counters and mode
//!
//! Every oracle decision bumps a global atomic counter;
//! [`OracleCounters::snapshot`]/[`OracleCounters::since`] let callers
//! (pipeline stages, DSE, benches) report per-phase deltas. The oracle
//! mode (simplex-backed vs. forced Fourier–Motzkin) is a process-global
//! initialized from the `POLYHEDRA_ORACLE` environment variable
//! (`fm` forces the legacy path) and stamped into
//! [`oracle_signature`], which the compile cache mixes into its content
//! hash so products from different oracle configurations never alias.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{OnceLock, RwLock};

use crate::constraint::ConstraintKind;
use crate::system::System;

// ---------------------------------------------------------------------------
// Canonical keys
// ---------------------------------------------------------------------------

/// Content key for a queried system: a flat `i64` encoding of
/// `n_vars` and every row. Stored in full, so equality — not just the
/// hash — guards every memo hit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Key(Box<[i64]>);

fn encode_row(c: &crate::constraint::Constraint, out: &mut Vec<i64>) {
    out.push(match c.kind {
        ConstraintKind::Eq => 0,
        ConstraintKind::GeZero => 1,
    });
    out.push(c.expr.constant);
    out.extend_from_slice(&c.expr.coeffs);
}

/// Sorted-row canonical key: identifies the polyhedron up to row
/// permutation. Use only for row-order-invariant queries (emptiness).
pub fn verdict_key(sys: &System) -> Key {
    let n = sys.n_vars();
    let mut rows: Vec<Vec<i64>> = sys
        .constraints()
        .iter()
        .map(|c| {
            let mut r = Vec::with_capacity(n + 2);
            encode_row(c, &mut r);
            r
        })
        .collect();
    rows.sort_unstable();
    let mut flat = Vec::with_capacity(1 + rows.len() * (n + 2));
    flat.push(n as i64);
    for r in &rows {
        flat.extend_from_slice(r);
    }
    Key(flat.into_boxed_slice())
}

/// Exact-order key for a projection query: rows in their stored order
/// plus the eliminated window. Row order is semantically significant to
/// `eliminate_range`'s tie-breaking, so no sorting here.
pub fn projection_key(sys: &System, from: usize, count: usize) -> Key {
    let n = sys.n_vars();
    let mut flat = Vec::with_capacity(3 + sys.constraints().len() * (n + 2));
    flat.push(n as i64);
    flat.push(from as i64);
    flat.push(count as i64);
    for c in sys.constraints() {
        encode_row(c, &mut flat);
    }
    Key(flat.into_boxed_slice())
}

/// Incremental builder for compound keys spanning several systems —
/// used by queries (schedule legality) whose verdict is a deterministic
/// function of an ordered sequence of systems plus scalar parameters.
/// Every system is framed by its variable and row counts, so adjacent
/// encodings cannot alias across frame boundaries.
pub struct KeyBuilder {
    flat: Vec<i64>,
}

impl KeyBuilder {
    /// Start a key with a query-kind tag (each compound query family
    /// picks a distinct tag so keys never collide across families).
    pub fn new(tag: i64) -> KeyBuilder {
        KeyBuilder { flat: vec![tag] }
    }

    /// Append a scalar parameter.
    pub fn scalar(&mut self, v: i64) {
        self.flat.push(v);
    }

    /// Append a full system (var count, row count, rows in stored order).
    pub fn system(&mut self, sys: &System) {
        self.flat.push(sys.n_vars() as i64);
        self.flat.push(sys.constraints().len() as i64);
        for c in sys.constraints() {
            encode_row(c, &mut self.flat);
        }
    }

    /// Finish into an immutable [`Key`].
    pub fn finish(self) -> Key {
        Key(self.flat.into_boxed_slice())
    }
}

/// Exact-order key for a per-part `between_set` expansion: the lifted
/// sandwich dimension plus the part's rows in stored order. The
/// expansion is a deterministic function of exactly these inputs.
pub fn between_key(sys: &System, n: usize) -> Key {
    let nv = sys.n_vars();
    let mut flat = Vec::with_capacity(2 + sys.constraints().len() * (nv + 2));
    flat.push(n as i64);
    flat.push(nv as i64);
    for c in sys.constraints() {
        encode_row(c, &mut flat);
    }
    Key(flat.into_boxed_slice())
}

// ---------------------------------------------------------------------------
// Memo tables
// ---------------------------------------------------------------------------

fn verdict_map() -> &'static RwLock<HashMap<Key, bool>> {
    static MAP: OnceLock<RwLock<HashMap<Key, bool>>> = OnceLock::new();
    MAP.get_or_init(|| RwLock::new(HashMap::new()))
}

fn projection_map() -> &'static RwLock<HashMap<Key, System>> {
    static MAP: OnceLock<RwLock<HashMap<Key, System>>> = OnceLock::new();
    MAP.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Memoized emptiness verdict for this canonical key, if any. Bumps the
/// memo hit/miss counters.
pub fn lookup_verdict(key: &Key) -> Option<bool> {
    let hit = verdict_map().read().unwrap().get(key).copied();
    match hit {
        Some(_) => COUNTERS.memo_hits.fetch_add(1, Ordering::Relaxed),
        None => COUNTERS.memo_misses.fetch_add(1, Ordering::Relaxed),
    };
    hit
}

pub fn store_verdict(key: Key, empty: bool) {
    verdict_map().write().unwrap().insert(key, empty);
}

/// Memoized projection result for this exact query, if any. Bumps the
/// projection hit/miss counters.
pub fn lookup_projection(key: &Key) -> Option<System> {
    let hit = projection_map().read().unwrap().get(key).cloned();
    match hit {
        Some(_) => COUNTERS.proj_hits.fetch_add(1, Ordering::Relaxed),
        None => COUNTERS.proj_misses.fetch_add(1, Ordering::Relaxed),
    };
    hit
}

pub fn store_projection(key: Key, result: System) {
    projection_map().write().unwrap().insert(key, result);
}

fn between_map() -> &'static RwLock<HashMap<Key, Vec<System>>> {
    static MAP: OnceLock<RwLock<HashMap<Key, Vec<System>>>> = OnceLock::new();
    MAP.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Memoized `between_set` expansion for this part key, if any. Bumps
/// the between hit/miss counters.
pub fn lookup_between(key: &Key) -> Option<Vec<System>> {
    let hit = between_map().read().unwrap().get(key).cloned();
    match hit {
        Some(_) => COUNTERS.between_hits.fetch_add(1, Ordering::Relaxed),
        None => COUNTERS.between_misses.fetch_add(1, Ordering::Relaxed),
    };
    hit
}

pub fn store_between(key: Key, result: Vec<System>) {
    between_map().write().unwrap().insert(key, result);
}

fn between_set_map() -> &'static RwLock<HashMap<Key, crate::set::Set>> {
    static MAP: OnceLock<RwLock<HashMap<Key, crate::set::Set>>> = OnceLock::new();
    MAP.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Memoized whole-map `between_set` + prune result, if any (see
/// [`crate::lex::between_set_pruned`]). Shares the between hit/miss
/// counters with [`lookup_between`] — both memoize between-set
/// expansion work, at different granularities.
pub fn lookup_between_set(key: &Key) -> Option<crate::set::Set> {
    let hit = between_set_map().read().unwrap().get(key).cloned();
    match hit {
        Some(_) => COUNTERS.between_hits.fetch_add(1, Ordering::Relaxed),
        None => COUNTERS.between_misses.fetch_add(1, Ordering::Relaxed),
    };
    hit
}

pub fn store_between_set(key: Key, result: crate::set::Set) {
    between_set_map().write().unwrap().insert(key, result);
}

fn legal_map() -> &'static RwLock<HashMap<Key, bool>> {
    static MAP: OnceLock<RwLock<HashMap<Key, bool>>> = OnceLock::new();
    MAP.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Memoized compound boolean verdict (schedule legality and other
/// [`KeyBuilder`]-keyed queries). Shares the verdict-memo hit/miss
/// counters with [`lookup_verdict`] — both memoize yes/no answers to
/// exactly-reproducible polyhedral questions.
pub fn lookup_legal(key: &Key) -> Option<bool> {
    let hit = legal_map().read().unwrap().get(key).copied();
    match hit {
        Some(_) => COUNTERS.memo_hits.fetch_add(1, Ordering::Relaxed),
        None => COUNTERS.memo_misses.fetch_add(1, Ordering::Relaxed),
    };
    hit
}

pub fn store_legal(key: Key, verdict: bool) {
    legal_map().write().unwrap().insert(key, verdict);
}

/// Drop every memoized entry (verdicts, projections, between-set
/// expansions, legality verdicts). Test hook — cold-path measurements
/// need it; production never does.
pub fn clear_memo() {
    verdict_map().write().unwrap().clear();
    projection_map().write().unwrap().clear();
    between_map().write().unwrap().clear();
    between_set_map().write().unwrap().clear();
    legal_map().write().unwrap().clear();
}

/// Number of interned entries `(verdicts, projections, between
/// [per-part + whole-map], legal)`.
pub fn memo_len() -> (usize, usize, usize, usize) {
    (
        verdict_map().read().unwrap().len(),
        projection_map().read().unwrap().len(),
        between_map().read().unwrap().len() + between_set_map().read().unwrap().len(),
        legal_map().read().unwrap().len(),
    )
}

// ---------------------------------------------------------------------------
// Oracle mode
// ---------------------------------------------------------------------------

/// Which feasibility oracle `System::is_empty` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleMode {
    /// Simplex-first with FM fallback, memoized (the default).
    Simplex,
    /// Legacy pure Fourier–Motzkin path, unmemoized. For differential
    /// testing and `POLYHEDRA_ORACLE=fm` escape hatches.
    Fm,
}

static MODE: AtomicU8 = AtomicU8::new(0); // 0 = uninit, 1 = simplex, 2 = fm

/// Current oracle mode; first call initializes from `POLYHEDRA_ORACLE`
/// (`fm` → [`OracleMode::Fm`], anything else → [`OracleMode::Simplex`]).
pub fn oracle_mode() -> OracleMode {
    match MODE.load(Ordering::Relaxed) {
        1 => OracleMode::Simplex,
        2 => OracleMode::Fm,
        _ => {
            let mode = match std::env::var("POLYHEDRA_ORACLE") {
                Ok(v) if v.eq_ignore_ascii_case("fm") => OracleMode::Fm,
                _ => OracleMode::Simplex,
            };
            set_oracle_mode(mode);
            mode
        }
    }
}

/// Force the oracle mode (overriding the environment). Test/CI hook;
/// process-global, so differential tests that flip it must serialize.
pub fn set_oracle_mode(mode: OracleMode) {
    let v = match mode {
        OracleMode::Simplex => 1,
        OracleMode::Fm => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// Stable identifier of the active oracle configuration, mixed into the
/// compile-cache content hash: cached products from one oracle are
/// never served under another (verdict-order-sensitive tie-breaks could
/// otherwise alias).
pub fn oracle_signature() -> &'static str {
    match oracle_mode() {
        OracleMode::Simplex => "oracle=simplex-v1",
        OracleMode::Fm => "oracle=fm",
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

struct Counters {
    quick_hits: AtomicU64,
    corner_hits: AtomicU64,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    simplex_calls: AtomicU64,
    simplex_empty: AtomicU64,
    fm_fallbacks: AtomicU64,
    proj_hits: AtomicU64,
    proj_misses: AtomicU64,
    between_hits: AtomicU64,
    between_misses: AtomicU64,
}

static COUNTERS: Counters = Counters {
    quick_hits: AtomicU64::new(0),
    corner_hits: AtomicU64::new(0),
    memo_hits: AtomicU64::new(0),
    memo_misses: AtomicU64::new(0),
    simplex_calls: AtomicU64::new(0),
    simplex_empty: AtomicU64::new(0),
    fm_fallbacks: AtomicU64::new(0),
    proj_hits: AtomicU64::new(0),
    proj_misses: AtomicU64::new(0),
    between_hits: AtomicU64::new(0),
    between_misses: AtomicU64::new(0),
};

pub(crate) fn count_quick_hit() {
    COUNTERS.quick_hits.fetch_add(1, Ordering::Relaxed);
}
pub(crate) fn count_corner_hit() {
    COUNTERS.corner_hits.fetch_add(1, Ordering::Relaxed);
}
pub(crate) fn count_simplex_call() {
    COUNTERS.simplex_calls.fetch_add(1, Ordering::Relaxed);
}
pub(crate) fn count_simplex_empty() {
    COUNTERS.simplex_empty.fetch_add(1, Ordering::Relaxed);
}
pub(crate) fn count_fm_fallback() {
    COUNTERS.fm_fallbacks.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time totals of the process-wide oracle counters.
///
/// `quick_hits` — emptiness settled by interval propagation;
/// `corner_hits` — settled by an integer corner witness; `memo_hits` /
/// `memo_misses` — verdict-memo outcomes; `simplex_calls` /
/// `simplex_empty` — rational probes run and how many proved emptiness;
/// `fm_fallbacks` — probes that returned fractional/overflow and were
/// re-decided by Fourier–Motzkin; `proj_hits` / `proj_misses` —
/// projection-memo outcomes; `between_hits` / `between_misses` —
/// per-part `between_set` expansion-memo outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleCounters {
    pub quick_hits: u64,
    pub corner_hits: u64,
    pub memo_hits: u64,
    pub memo_misses: u64,
    pub simplex_calls: u64,
    pub simplex_empty: u64,
    pub fm_fallbacks: u64,
    pub proj_hits: u64,
    pub proj_misses: u64,
    pub between_hits: u64,
    pub between_misses: u64,
}

impl OracleCounters {
    /// Current process totals.
    pub fn snapshot() -> OracleCounters {
        OracleCounters {
            quick_hits: COUNTERS.quick_hits.load(Ordering::Relaxed),
            corner_hits: COUNTERS.corner_hits.load(Ordering::Relaxed),
            memo_hits: COUNTERS.memo_hits.load(Ordering::Relaxed),
            memo_misses: COUNTERS.memo_misses.load(Ordering::Relaxed),
            simplex_calls: COUNTERS.simplex_calls.load(Ordering::Relaxed),
            simplex_empty: COUNTERS.simplex_empty.load(Ordering::Relaxed),
            fm_fallbacks: COUNTERS.fm_fallbacks.load(Ordering::Relaxed),
            proj_hits: COUNTERS.proj_hits.load(Ordering::Relaxed),
            proj_misses: COUNTERS.proj_misses.load(Ordering::Relaxed),
            between_hits: COUNTERS.between_hits.load(Ordering::Relaxed),
            between_misses: COUNTERS.between_misses.load(Ordering::Relaxed),
        }
    }

    /// Delta since `base` (saturating, so interleaved phases never go
    /// negative).
    pub fn since(&self, base: OracleCounters) -> OracleCounters {
        OracleCounters {
            quick_hits: self.quick_hits.saturating_sub(base.quick_hits),
            corner_hits: self.corner_hits.saturating_sub(base.corner_hits),
            memo_hits: self.memo_hits.saturating_sub(base.memo_hits),
            memo_misses: self.memo_misses.saturating_sub(base.memo_misses),
            simplex_calls: self.simplex_calls.saturating_sub(base.simplex_calls),
            simplex_empty: self.simplex_empty.saturating_sub(base.simplex_empty),
            fm_fallbacks: self.fm_fallbacks.saturating_sub(base.fm_fallbacks),
            proj_hits: self.proj_hits.saturating_sub(base.proj_hits),
            proj_misses: self.proj_misses.saturating_sub(base.proj_misses),
            between_hits: self.between_hits.saturating_sub(base.between_hits),
            between_misses: self.between_misses.saturating_sub(base.between_misses),
        }
    }

    /// The canonical JSON rendering of the counter schema, used
    /// verbatim by `cfdc --json`, the DSE/portfolio reports and
    /// `bench_json` so every surface agrees on field names.
    pub fn json(&self) -> String {
        format!(
            "{{\"quick_hits\": {}, \"corner_hits\": {}, \"memo_hits\": {}, \
             \"memo_misses\": {}, \"simplex_calls\": {}, \"simplex_empty\": {}, \
             \"fm_fallbacks\": {}, \"proj_hits\": {}, \"proj_misses\": {}, \
             \"between_hits\": {}, \"between_misses\": {}}}",
            self.quick_hits,
            self.corner_hits,
            self.memo_hits,
            self.memo_misses,
            self.simplex_calls,
            self.simplex_empty,
            self.fm_fallbacks,
            self.proj_hits,
            self.proj_misses,
            self.between_hits,
            self.between_misses,
        )
    }

    /// Sum of all fields — cheap "did any oracle work happen" probe.
    pub fn total(&self) -> u64 {
        self.quick_hits
            + self.corner_hits
            + self.memo_hits
            + self.memo_misses
            + self.simplex_calls
            + self.simplex_empty
            + self.fm_fallbacks
            + self.proj_hits
            + self.proj_misses
            + self.between_hits
            + self.between_misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::linexpr::LinExpr;

    fn sys(rows: &[(&[i64], i64, bool)]) -> System {
        let n = rows.first().map_or(0, |r| r.0.len());
        let mut s = System::universe(n);
        s.extend(rows.iter().map(|&(c, k, eq)| {
            let e = LinExpr::new(c, k);
            if eq {
                Constraint::eq(e)
            } else {
                Constraint::ge0(e)
            }
        }));
        s
    }

    #[test]
    fn verdict_key_is_row_order_invariant() {
        let a = sys(&[(&[1, 0], -1, false), (&[0, 1], -2, false)]);
        let b = sys(&[(&[0, 1], -2, false), (&[1, 0], -1, false)]);
        assert_eq!(verdict_key(&a), verdict_key(&b));
    }

    #[test]
    fn verdict_key_separates_kinds_and_vars() {
        let a = sys(&[(&[1, 0], -1, false)]);
        let b = sys(&[(&[1, 0], -1, true)]);
        assert_ne!(verdict_key(&a), verdict_key(&b));
        assert_ne!(
            verdict_key(&System::universe(2)),
            verdict_key(&System::universe(3))
        );
    }

    #[test]
    fn projection_key_is_row_order_sensitive() {
        let a = sys(&[(&[1, 1], 0, true), (&[1, -1], 0, true)]);
        let b = sys(&[(&[1, -1], 0, true), (&[1, 1], 0, true)]);
        assert_ne!(projection_key(&a, 0, 1), projection_key(&b, 0, 1));
        assert_ne!(projection_key(&a, 0, 1), projection_key(&a, 0, 2));
    }

    #[test]
    fn counters_snapshot_and_since() {
        let base = OracleCounters::snapshot();
        count_quick_hit();
        count_simplex_call();
        let d = OracleCounters::snapshot().since(base);
        assert!(d.quick_hits >= 1);
        assert!(d.simplex_calls >= 1);
        assert_eq!(OracleCounters::default().total(), 0);
    }

    #[test]
    fn signature_tracks_mode() {
        // Don't permanently flip the global: restore afterwards.
        let before = oracle_mode();
        set_oracle_mode(OracleMode::Fm);
        assert_eq!(oracle_signature(), "oracle=fm");
        set_oracle_mode(OracleMode::Simplex);
        assert_eq!(oracle_signature(), "oracle=simplex-v1");
        set_oracle_mode(before);
    }
}
