//! Lexicographic-order relations over schedule spaces.
//!
//! Schedule-space tuples are ordered lexicographically (Section IV-C of
//! the paper). Dependence legality and liveness both need this order as a
//! relation: `a <lex b` over `n` dimensions expands into a union of `n`
//! basic maps (`a_0 = b_0, ..., a_{j-1} = b_{j-1}, a_j < b_j`).
//!
//! The paper's second-order helper `ge_le` — which turns a mapping from
//! one schedule tuple to another into the set of all tuples between them —
//! is implemented by [`between_set`].

use crate::constraint::Constraint;
use crate::intern;
use crate::linexpr::LinExpr;
use crate::map::{BasicMap, Map};
use crate::set::{BasicSet, Set};
use crate::space::Space;
use crate::system::System;

/// `{ a -> b : a <lex b }` over `n`-dimensional anonymous tuples.
pub fn lex_lt_map(n: usize) -> Map {
    let in_space = Space::anon(n);
    let out_space = Space::anon(n);
    let mut map = Map::empty(in_space.clone(), out_space.clone());
    for j in 0..n {
        let mut sys = System::universe(2 * n);
        for d in 0..j {
            // a_d = b_d
            let mut coeffs = vec![0i64; 2 * n];
            coeffs[d] = 1;
            coeffs[n + d] = -1;
            sys.add(Constraint::eq(LinExpr::new(&coeffs, 0)));
        }
        // a_j < b_j  <=>  b_j - a_j - 1 >= 0
        let mut coeffs = vec![0i64; 2 * n];
        coeffs[j] = -1;
        coeffs[n + j] = 1;
        sys.add(Constraint::ge0(LinExpr::new(&coeffs, -1)));
        map = map.union_basic(BasicMap {
            in_space: in_space.clone(),
            out_space: out_space.clone(),
            system: sys,
        });
    }
    map
}

/// `{ a -> b : a <=lex b }` over `n`-dimensional anonymous tuples.
pub fn lex_le_map(n: usize) -> Map {
    let n_space = Space::anon(n);
    let mut map = lex_lt_map(n);
    // Plus full equality.
    let mut sys = System::universe(2 * n);
    for d in 0..n {
        let mut coeffs = vec![0i64; 2 * n];
        coeffs[d] = 1;
        coeffs[n + d] = -1;
        sys.add(Constraint::eq(LinExpr::new(&coeffs, 0)));
    }
    map = map.union_basic(BasicMap {
        in_space: n_space.clone(),
        out_space: n_space,
        system: sys,
    });
    map
}

/// The paper's `ge_le ∘ I`: given an interval relation `iv : [w] -> [r]`
/// over `n`-dimensional schedule tuples, return
/// `{ x : ∃ (w, r) ∈ iv : w <=lex x <=lex r }` —
/// the set of schedule points at which a value written at `w` and read at
/// `r` is live.
pub fn between_set(iv: &Map, n: usize) -> Set {
    assert_eq!(iv.in_space.dim(), n);
    assert_eq!(iv.out_space.dim(), n);
    let space = Space::anon(n);
    let mut out = Set::empty(space.clone());
    let fm_mode = intern::oracle_mode() == intern::OracleMode::Fm;

    for part in &iv.parts {
        // The whole per-part expansion — the `(dim+1)²` sandwich loop
        // below — is a deterministic function of (part rows, n), so it
        // is memoized process-wide as the ordered list of surviving
        // systems. A hit replays exactly what a cold run would emit;
        // `POLYHEDRA_ORACLE=fm` bypasses the memo (legacy path).
        let lives = if fm_mode {
            expand_part(&part.system, n)
        } else {
            let key = intern::between_key(&part.system, n);
            match intern::lookup_between(&key) {
                Some(hit) => hit,
                None => {
                    let computed = expand_part(&part.system, n);
                    intern::store_between(key, computed.clone());
                    computed
                }
            }
        };
        // Push directly: `lives` holds only non-infeasible systems (the
        // expansion filtered them), and `union_basic`'s clone-per-call
        // would make this loop quadratic in the accumulated union.
        for live in lives {
            out.parts.push(BasicSet::from_system(space.clone(), live));
        }
    }
    out.coalesce()
}

/// Tag distinguishing whole-map between-set keys from other compound-key
/// families (see [`intern::KeyBuilder::new`]).
const BETWEEN_SET_KEY_TAG: i64 = 2;

/// [`between_set`] followed by [`crate::Set::prune_empty`], memoized as
/// a unit over the whole interval map. Liveness analysis always prunes
/// the between result, and both steps are deterministic functions of the
/// map's parts (in order) and `n`, so a warm analysis replays the final
/// pruned set with a single clone instead of re-expanding, re-coalescing
/// and re-probing every part. `POLYHEDRA_ORACLE=fm` bypasses the memo.
pub fn between_set_pruned(iv: &Map, n: usize) -> Set {
    if intern::oracle_mode() == intern::OracleMode::Fm {
        return between_set(iv, n).prune_empty();
    }
    let mut kb = intern::KeyBuilder::new(BETWEEN_SET_KEY_TAG);
    kb.scalar(n as i64);
    kb.scalar(iv.parts.len() as i64);
    for p in &iv.parts {
        kb.system(&p.system);
    }
    let key = kb.finish();
    if let Some(hit) = intern::lookup_between_set(&key) {
        return hit;
    }
    let result = between_set(iv, n).prune_empty();
    intern::store_between_set(key, result.clone());
    result
}

/// One part's `between_set` expansion: the surviving `x`-systems of the
/// `(dim+1)²` lex-sandwich combinations, in combination order.
fn expand_part(part_sys: &System, n: usize) -> Vec<System> {
    let sandwiches = sandwich_systems(n);
    // Variables: (w, r) in the part; extend to (w, r, x).
    let base = part_sys.insert_vars(2 * n, n);
    // Bounds of the part alone, derived once and reused as the
    // propagation seed for all (dim+1)² sandwich combinations below.
    let Some((base_lo, base_hi)) = base.propagate_bounds() else {
        return Vec::new();
    };
    // Reused propagation buffers (seeded per sandwich below).
    let mut lo: Vec<Option<i64>> = Vec::new();
    let mut hi: Vec<Option<i64>> = Vec::new();
    let mut lives = Vec::new();
    for sandwich in sandwiches.iter() {
        // Seeded interval propagation prunes most incompatible split
        // combinations (sound: never flags a feasible join) by
        // propagating only the sandwich rows against the memoized
        // base bounds — cheap enough to discard the bulk of the
        // combinations before the joined system is even allocated.
        lo.clear();
        lo.extend_from_slice(&base_lo);
        hi.clear();
        hi.extend_from_slice(&base_hi);
        if sandwich.propagate_seeded(&mut lo, &mut hi, 3) {
            continue;
        }
        // Eliminate w and r (first 2n vars), keep x. The elimination
        // flags whatever infeasible joins slipped past propagation.
        let live = base.concat_rows(sandwich).eliminate_range_owned(0, 2 * n);
        if !live.known_infeasible() {
            lives.push(live);
        }
    }
    lives
}

/// The `(dim+1)²` lifted lex "sandwich" systems `w <=lex x ∧ x <=lex r`
/// over variables `(w, r, x)` — one per pair of lex splits. They depend
/// only on the dimension, and [`between_set`] runs once per array per
/// kernel, so they are memoized process-wide.
fn sandwich_systems(n: usize) -> std::sync::Arc<Vec<System>> {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<Vec<System>>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&n) {
        return hit.clone();
    }
    let le = lex_le_map(n);
    // Over variables (w, r, x):
    //   wx[j1]: w <=lex x at split j1 — le is over (in, out) = (w, x);
    //           insert r in the middle.
    let wx: Vec<System> = le
        .parts
        .iter()
        .map(|p| p.system.insert_vars(n, n))
        .collect();
    //   xr[j2]: x <=lex r at split j2 — remap le's (in, out) = (x, r) to
    //           positions (2n..3n) for x and (n..2n) for r.
    let xr: Vec<System> = le
        .parts
        .iter()
        .map(|p| {
            let mut sys = System::universe(3 * n);
            for c in p.system.constraints() {
                let mut coeffs = vec![0i64; 3 * n];
                for d in 0..n {
                    coeffs[2 * n + d] = c.expr.coeffs[d]; // x
                    coeffs[n + d] = c.expr.coeffs[n + d]; // r
                }
                sys.add(Constraint {
                    kind: c.kind,
                    expr: LinExpr::new(&coeffs, c.expr.constant),
                });
            }
            sys
        })
        .collect();
    // Both lex conjuncts combined, shared across every interval part.
    let built = Arc::new(
        wx.iter()
            .flat_map(|a| xr.iter().map(move |b| a.intersect(b)))
            .collect::<Vec<System>>(),
    );
    cache
        .lock()
        .unwrap()
        .entry(n)
        .or_insert_with(|| built.clone())
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;

    #[test]
    fn lex_lt_orders_tuples() {
        let m = lex_lt_map(3);
        assert!(m.contains(&[0, 5, 9], &[1, 0, 0]));
        assert!(m.contains(&[1, 2, 3], &[1, 2, 4]));
        assert!(!m.contains(&[1, 2, 3], &[1, 2, 3]));
        assert!(!m.contains(&[2, 0, 0], &[1, 9, 9]));
    }

    #[test]
    fn lex_le_includes_equality() {
        let m = lex_le_map(2);
        assert!(m.contains(&[3, 3], &[3, 3]));
        assert!(m.contains(&[3, 3], &[3, 4]));
        assert!(!m.contains(&[3, 4], &[3, 3]));
    }

    #[test]
    fn lex_lt_is_total_on_distinct() {
        let m = lex_lt_map(2);
        for a in 0..3i64 {
            for b in 0..3i64 {
                for c in 0..3i64 {
                    for d in 0..3i64 {
                        let lt = m.contains(&[a, b], &[c, d]);
                        let gt = m.contains(&[c, d], &[a, b]);
                        if (a, b) == (c, d) {
                            assert!(!lt && !gt);
                        } else {
                            assert!(lt ^ gt, "exactly one of <, > must hold");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn between_single_interval() {
        // Interval [1,0] -> [3,0] over 2-dim tuples; live points with
        // first coord in 1..=3 and intermediate points unconstrained in
        // second coordinate except at the endpoints.
        let sp = Space::anon(2);
        let iv = Map::from_affine(
            Space::anon(0),
            sp.clone(),
            &[LinExpr::constant(0, 1), LinExpr::constant(0, 0)],
        );
        let to = Map::from_affine(
            Space::anon(0),
            sp,
            &[LinExpr::constant(0, 3), LinExpr::constant(0, 0)],
        );
        // Build iv as [w]->[r] with constant w=(1,0), r=(3,0):
        // compose reverse(from) with to: {(1,0)} x {(3,0)}
        let pair = iv.reverse().compose(&to);
        let live = between_set(&pair, 2);
        assert!(live.contains(&[1, 0]));
        assert!(live.contains(&[2, -100]));
        assert!(live.contains(&[2, 100]));
        assert!(live.contains(&[3, 0]));
        assert!(!live.contains(&[3, 1]));
        assert!(!live.contains(&[0, 99]));
        assert!(!live.contains(&[1, -1]));
        assert!(!live.contains(&[4, 0]));
    }

    #[test]
    fn between_disjoint_intervals_disjoint_sets() {
        let sp = Space::anon(1);
        let mk = |w: i64, r: i64| {
            let from = Map::from_affine(Space::anon(0), sp.clone(), &[LinExpr::constant(0, w)]);
            let to = Map::from_affine(Space::anon(0), sp.clone(), &[LinExpr::constant(0, r)]);
            from.reverse().compose(&to)
        };
        let a = between_set(&mk(0, 2), 1);
        let b = between_set(&mk(3, 5), 1);
        assert!(a.disjoint(&b));
        let c = between_set(&mk(2, 4), 1);
        assert!(!a.disjoint(&c));
    }
}
