//! Affine constraints.
//!
//! A [`Constraint`] is either `expr = 0` or `expr >= 0` for an affine
//! [`LinExpr`]. Normalization divides by the coefficient GCD and, for
//! inequalities, floor-divides the constant — the integer tightening that
//! makes Fourier–Motzkin projection exact on the unimodular systems the
//! CFDlang flow produces.

use crate::linexpr::{gcd, LinExpr};
use std::fmt;

/// Equality or inequality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// `expr = 0`
    Eq,
    /// `expr >= 0`
    GeZero,
}

/// An affine constraint over an implicit variable vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    pub kind: ConstraintKind,
    pub expr: LinExpr,
}

/// Outcome of [`Constraint::normalize_in_place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalizeAction {
    /// The constraint was canonicalized in place and should be kept.
    Keep,
    /// Trivially satisfied; drop it.
    Trivial,
    /// Unsatisfiable over the integers.
    Infeasible,
}

/// Result of normalizing a constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Normalized {
    /// Constraint simplified to this canonical form.
    Keep(Constraint),
    /// Constraint is trivially satisfied (e.g. `3 >= 0`).
    Trivial,
    /// Constraint is unsatisfiable (e.g. `-1 >= 0` or `2x = 1` with no
    /// integer solution).
    Infeasible,
}

impl Constraint {
    /// `expr = 0`.
    pub fn eq(expr: LinExpr) -> Self {
        Constraint {
            kind: ConstraintKind::Eq,
            expr,
        }
    }

    /// `expr >= 0`.
    pub fn ge0(expr: LinExpr) -> Self {
        Constraint {
            kind: ConstraintKind::GeZero,
            expr,
        }
    }

    /// `lhs >= rhs` as `lhs - rhs >= 0`.
    pub fn ge(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Constraint::ge0(lhs.sub(rhs))
    }

    /// `lhs <= rhs` as `rhs - lhs >= 0`.
    pub fn le(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Constraint::ge0(rhs.sub(lhs))
    }

    /// `lhs = rhs` as `lhs - rhs = 0`.
    pub fn eq_exprs(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Constraint::eq(lhs.sub(rhs))
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.expr.n_vars()
    }

    /// Whether the constraint holds at an integer point.
    pub fn holds(&self, point: &[i64]) -> bool {
        let v = self.expr.eval(point);
        match self.kind {
            ConstraintKind::Eq => v == 0,
            ConstraintKind::GeZero => v >= 0,
        }
    }

    /// Normalize: divide by the GCD of the variable coefficients with
    /// integer tightening; classify trivial/infeasible constants.
    pub fn normalize(&self) -> Normalized {
        let mut c = self.clone();
        match c.normalize_in_place() {
            NormalizeAction::Keep => Normalized::Keep(c),
            NormalizeAction::Trivial => Normalized::Trivial,
            NormalizeAction::Infeasible => Normalized::Infeasible,
        }
    }

    /// Normalize this constraint in place — the zero-allocation form of
    /// [`Constraint::normalize`]. On `Keep` the constraint is canonical;
    /// on `Trivial`/`Infeasible` its contents are unspecified and the
    /// caller should discard it.
    pub fn normalize_in_place(&mut self) -> NormalizeAction {
        let g = self.expr.coeff_gcd();
        if g == 0 {
            // Constant constraint.
            return match self.kind {
                ConstraintKind::Eq if self.expr.constant == 0 => NormalizeAction::Trivial,
                ConstraintKind::Eq => NormalizeAction::Infeasible,
                ConstraintKind::GeZero if self.expr.constant >= 0 => NormalizeAction::Trivial,
                ConstraintKind::GeZero => NormalizeAction::Infeasible,
            };
        }
        let expr = &mut self.expr;
        match self.kind {
            ConstraintKind::Eq => {
                // Integer solvability: g must divide the constant.
                if expr.constant % g != 0 {
                    return NormalizeAction::Infeasible;
                }
                if g > 1 {
                    for c in &mut expr.coeffs {
                        *c /= g;
                    }
                    expr.constant /= g;
                }
                // Canonical sign: first nonzero coefficient positive.
                if let Some(&first) = expr.coeffs.iter().find(|&&c| c != 0) {
                    if first < 0 {
                        expr.scale_assign(-1);
                    }
                }
                NormalizeAction::Keep
            }
            ConstraintKind::GeZero => {
                if g > 1 {
                    for c in &mut expr.coeffs {
                        *c /= g;
                    }
                    // Integer tightening: floor division of the constant.
                    expr.constant = expr.constant.div_euclid(g);
                }
                NormalizeAction::Keep
            }
        }
    }

    /// Render with dimension names.
    pub fn display(&self, names: &[String]) -> String {
        let op = match self.kind {
            ConstraintKind::Eq => "=",
            ConstraintKind::GeZero => ">=",
        };
        format!("{} {} 0", self.expr.display(names), op)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display(&[]))
    }
}

/// GCD of the full row including constant — exposed for equality
/// divisibility checks.
pub fn row_gcd(e: &LinExpr) -> i64 {
    gcd(e.coeff_gcd(), e.constant.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_at_point() {
        // i - j >= 0 at (3, 2) and not at (2, 3)
        let c = Constraint::ge0(LinExpr::new(&[1, -1], 0));
        assert!(c.holds(&[3, 2]));
        assert!(!c.holds(&[2, 3]));
    }

    #[test]
    fn normalize_tightens_inequality() {
        // 2x - 1 >= 0 over integers means x >= 1, i.e. x - 1 >= 0.
        let c = Constraint::ge0(LinExpr::new(&[2], -1));
        match c.normalize() {
            Normalized::Keep(k) => assert_eq!(k.expr, LinExpr::new(&[1], -1)),
            other => panic!("expected Keep, got {other:?}"),
        }
    }

    #[test]
    fn normalize_detects_infeasible_equality() {
        // 2x = 1 has no integer solution.
        let c = Constraint::eq(LinExpr::new(&[2], -1));
        assert_eq!(c.normalize(), Normalized::Infeasible);
    }

    #[test]
    fn normalize_constant_rows() {
        assert_eq!(
            Constraint::ge0(LinExpr::constant(2, 3)).normalize(),
            Normalized::Trivial
        );
        assert_eq!(
            Constraint::ge0(LinExpr::constant(2, -3)).normalize(),
            Normalized::Infeasible
        );
        assert_eq!(
            Constraint::eq(LinExpr::constant(2, 0)).normalize(),
            Normalized::Trivial
        );
        assert_eq!(
            Constraint::eq(LinExpr::constant(2, 4)).normalize(),
            Normalized::Infeasible
        );
    }

    #[test]
    fn normalize_canonicalizes_equality_sign() {
        let c = Constraint::eq(LinExpr::new(&[-2, 2], 0));
        match c.normalize() {
            Normalized::Keep(k) => assert_eq!(k.expr, LinExpr::new(&[1, -1], 0)),
            other => panic!("expected Keep, got {other:?}"),
        }
    }

    #[test]
    fn builders() {
        let x = LinExpr::var(2, 0);
        let y = LinExpr::var(2, 1);
        let c = Constraint::le(&x, &y); // x <= y  ->  y - x >= 0
        assert!(c.holds(&[1, 2]));
        assert!(!c.holds(&[2, 1]));
        let e = Constraint::eq_exprs(&x, &y);
        assert!(e.holds(&[5, 5]));
    }
}
