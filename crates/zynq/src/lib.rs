//! `zynq` — full-system simulation of the deployed accelerator.
//!
//! The paper evaluates on a physical Zynq UltraScale+ MPSoC (ZCU106): a
//! quad Cortex-A53 host at 1.2 GHz driving `k` accelerators at 200 MHz
//! through AXI DMA and an AXI-lite control peripheral, with hardware
//! timers measuring kernel execution with and without data transfers.
//! This crate replaces the board with a simulator plus calibrated cost
//! models, all derived from the selected [`sysgen::Platform`] — the
//! same simulation runs any catalog board, from a Pynq-Z2 to an Alveo
//! U250:
//!
//! * [`arm`] — the host software cost model (cycles per memory access /
//!   FLOP / loop iteration, per-platform coefficients), applied to the
//!   reference implementation (interpreter operation counts) and to the
//!   HLS-oriented generated C (flat-index loop nests with explicit
//!   address arithmetic) — the *SW Ref.* and *SW HLS code* bars of
//!   Figure 10,
//! * [`dma`] — the host↔PLM transfer model (setup latency + bandwidth,
//!   from the platform's [`sysgen::DmaSpec`]),
//! * [`des`] — a small discrete-event engine,
//! * [`sim`] — the system simulation executing the generated host
//!   program: per main-loop round, transfer inputs for `m` elements,
//!   broadcast start `m/k` times, collect done interrupts, transfer
//!   outputs (Figure 7's architecture, including `k < m` batching),
//! * [`stream`] — the multi-request batch-stream schedule: a queue of
//!   independent invocations coalesced into hardware rounds and
//!   time-multiplexed over one system with double-buffered DMA (the
//!   `crates/runtime` service layer drives it),
//! * [`online`] — the online serving event loop layered on the same
//!   round arithmetic: admission, batch formation, DMA and completion
//!   interleave on one virtual clock, with SLO-aware adaptive batching,
//!   priority tiers, and backpressure shedding; bit-identical to
//!   [`stream`] under the neutral policy,
//! * [`fault`] — deterministic fault injection for that stream: a
//!   seeded [`FaultPlan`] perturbs the schedule with DMA stalls,
//!   transient round errors, payload corruption and hard board
//!   failures, fully replayable per seed,
//! * [`verify`] — functional validation: sampled elements are executed
//!   through the generated kernel and compared against the `teil`
//!   reference interpreter.
//!
//! Absolute times are model outputs; the reproduction targets are the
//! *ratios* of Figures 9 and 10, which this simulator matches (see
//! `EXPERIMENTS.md`).

pub mod arm;
pub mod des;
pub mod dma;
pub mod fault;
pub mod online;
pub mod sim;
pub mod stream;
pub mod verify;

pub use arm::ArmCostModel;
pub use dma::DmaModel;
pub use fault::{FaultPlan, Outage, RecoverySpec};
pub use online::{simulate_online_stream, OnlineOutcome, OnlineSpec};
pub use sim::{
    program_round, simulate_hw, simulate_program, HwResult, ProgramHwResult, ProgramRound,
    SimConfig,
};
pub use stream::{
    simulate_batch_stream, simulate_faulty_stream, FaultStreamOutcome, StreamOutcome, StreamStatus,
};
pub use verify::{
    random_program_inputs, run_program_chain, run_program_reference, verify_elements,
    verify_program, VerifyResult,
};
