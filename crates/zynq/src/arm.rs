//! Host-CPU software cost model.
//!
//! The model applies per-operation retired-cycle coefficients to the
//! interpreter's (or loop evaluator's) dynamic operation counts. Each
//! [`sysgen::Platform`] carries its own coefficients
//! ([`sysgen::HostCpuModel`]); [`ArmCostModel::from_platform`] lifts
//! them into this crate's cost functions. The calibration anchor is
//! the paper's Cortex-A53: a dual-issue in-order core whose scalar
//! double-precision code — L1-resident loads feeding FP multiply–add
//! chains — retires a handful of cycles per loop iteration. The ZCU106
//! coefficients land the reference Inverse Helmholtz element (~177
//! kFLOP) at the paper's implied ~2 ms/element on the 1.2 GHz A53
//! (Figure 10: SW Ref. = 0.69 × HW k=1 total), with the flat-index
//! HLS-oriented code paying the paper's ~10% penalty (SW HLS code =
//! 0.90).

use serde::{Deserialize, Serialize};
use sysgen::Platform;
use teil::interp::ExecStats;

/// Average retired-cycle costs per dynamic operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArmCostModel {
    pub cycles_per_load: f64,
    pub cycles_per_store: f64,
    pub cycles_per_flop: f64,
    /// Loop bookkeeping per innermost iteration (increment, compare,
    /// branch, induction updates).
    pub cycles_per_iter: f64,
    /// Integer multiply in address computation (flat-index code only;
    /// partially hidden by dual issue).
    pub cycles_per_addr_mul: f64,
    pub cycles_per_addr_add: f64,
    /// Core clock in Hz.
    pub hz: f64,
}

impl ArmCostModel {
    /// The host cost model of a platform (the catalog carries the
    /// per-CPU cycle coefficients).
    pub fn from_platform(platform: &Platform) -> ArmCostModel {
        let h = &platform.host;
        ArmCostModel {
            cycles_per_load: h.cycles_per_load,
            cycles_per_store: h.cycles_per_store,
            cycles_per_flop: h.cycles_per_flop,
            cycles_per_iter: h.cycles_per_iter,
            cycles_per_addr_mul: h.cycles_per_addr_mul,
            cycles_per_addr_add: h.cycles_per_addr_add,
            hz: h.hz,
        }
    }

    /// The calibrated Cortex-A53 model at the ZCU106's 1.2 GHz — the
    /// paper's host, derived from the catalog entry.
    pub fn a53_1200mhz() -> ArmCostModel {
        ArmCostModel::from_platform(&Platform::zcu106())
    }

    /// Seconds for the reference implementation, from interpreter
    /// operation counts (nested-array code: address arithmetic strength-
    /// reduced away, hence no explicit address cost).
    pub fn time_reference(&self, stats: &ExecStats) -> f64 {
        let cycles = stats.loads as f64 * self.cycles_per_load
            + stats.stores as f64 * self.cycles_per_store
            + stats.flops() as f64 * self.cycles_per_flop
            + stats.iters as f64 * self.cycles_per_iter;
        cycles / self.hz
    }

    /// Seconds for the HLS-oriented generated C (flat single-dimensional
    /// indexing with explicit multiplies), from the loop-program
    /// evaluator's counts.
    pub fn time_hls_code(&self, counts: &cgen::ExecCounts) -> f64 {
        let cycles = counts.loads as f64 * self.cycles_per_load
            + counts.stores as f64 * self.cycles_per_store
            + counts.fp_ops as f64 * self.cycles_per_flop
            + counts.iters as f64 * self.cycles_per_iter
            + counts.addr_muls as f64 * self.cycles_per_addr_mul
            + counts.addr_adds as f64 * self.cycles_per_addr_add;
        cycles / self.hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_time_scales_linearly() {
        let m = ArmCostModel::a53_1200mhz();
        let s1 = ExecStats {
            fp_add: 100,
            fp_mul: 100,
            loads: 200,
            stores: 10,
            iters: 100,
            ..Default::default()
        };
        let mut s2 = s1;
        s2.fp_add *= 2;
        s2.fp_mul *= 2;
        s2.loads *= 2;
        s2.stores *= 2;
        s2.iters *= 2;
        let t1 = m.time_reference(&s1);
        let t2 = m.time_reference(&s2);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hls_code_pays_address_arithmetic() {
        let m = ArmCostModel::a53_1200mhz();
        let base = cgen::ExecCounts {
            fp_ops: 1000,
            loads: 2000,
            stores: 100,
            iters: 1000,
            addr_muls: 0,
            addr_adds: 0,
        };
        let mut flat = base;
        flat.addr_muls = 4000;
        flat.addr_adds = 4000;
        assert!(m.time_hls_code(&flat) > m.time_hls_code(&base));
    }

    #[test]
    fn helmholtz_element_lands_near_two_ms() {
        // The calibration anchor: ~177 kFLOP factored element ≈ 2 ms.
        let m = ArmCostModel::a53_1200mhz();
        let typed =
            cfdlang::check(&cfdlang::parse(&cfdlang::examples::inverse_helmholtz(11)).unwrap())
                .unwrap();
        let module = teil::transform::factorize(&teil::lower::lower(&typed).unwrap());
        let zero = |shape: &[usize]| teil::Tensor::zeros(shape);
        let ex = teil::Interpreter::new(&module)
            .run(&teil::interp::inputs_from(vec![
                ("S", zero(&[11, 11])),
                ("D", zero(&[11, 11, 11])),
                ("u", zero(&[11, 11, 11])),
            ]))
            .unwrap();
        let t = m.time_reference(&ex.stats);
        assert!(
            (1.2e-3..3.2e-3).contains(&t),
            "per-element reference time {t:.2e}s outside calibration band"
        );
    }
}
