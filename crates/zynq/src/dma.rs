//! Host↔PL DMA transfer model.

use serde::{Deserialize, Serialize};
use sysgen::Platform;

/// Linear transfer-time model: `setup + bytes / bandwidth` per burst.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaModel {
    pub bytes_per_sec: f64,
    pub setup_s: f64,
}

impl DmaModel {
    /// From a platform's DMA fabric description.
    pub fn from_platform(platform: &Platform) -> DmaModel {
        DmaModel {
            bytes_per_sec: platform.dma.bytes_per_sec,
            setup_s: platform.dma.setup_s,
        }
    }

    /// Seconds to move `bytes` in one burst.
    pub fn transfer_s(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.setup_s + bytes as f64 / self.bytes_per_sec
    }

    /// Seconds to move `bytes` split into `bursts` independent bursts
    /// (one per PLM instance; the paper transfers `m` instances of each
    /// array to power-of-two aligned addresses).
    pub fn transfer_bursts_s(&self, bytes: usize, bursts: usize) -> f64 {
        if bytes == 0 || bursts == 0 {
            return 0.0;
        }
        self.setup_s * bursts as f64 + bytes as f64 / self.bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DmaModel {
        DmaModel {
            bytes_per_sec: 0.7e9,
            setup_s: 4e-6,
        }
    }

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(model().transfer_s(0), 0.0);
        assert_eq!(model().transfer_bursts_s(0, 4), 0.0);
    }

    #[test]
    fn transfer_time_is_affine() {
        let m = model();
        let t1 = m.transfer_s(700_000);
        assert!((t1 - (4e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn more_bursts_cost_more_setup() {
        let m = model();
        let one = m.transfer_bursts_s(1 << 20, 1);
        let many = m.transfer_bursts_s(1 << 20, 16);
        assert!(many > one);
        assert!((many - one - 15.0 * 4e-6).abs() < 1e-12);
    }

    #[test]
    fn helmholtz_element_transfer_fraction() {
        // ~33 KB per element at 0.7 GB/s ≈ 47 µs — the ~1.7% of the
        // ~2.9 ms kernel that Figure 9's total-vs-accelerator gap implies.
        let m = model();
        let t = m.transfer_s((121 + 2 * 1331 + 1331) * 8);
        assert!((40e-6..60e-6).contains(&t), "{t:.2e}");
    }
}
