//! Functional verification of the hardware path.
//!
//! The simulated accelerator executes the same generated loop program
//! that HLS would synthesize ([`cgen::run_kernel`]); this module runs a
//! sample of CFD elements through it with randomized inputs and compares
//! every output word against the `teil` reference interpreter. Elements
//! are distributed across scoped worker threads — each element is
//! independent, exactly like the accelerator replicas.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Mutex;
use teil::ir::{Module, TensorKind};
use teil::{Interpreter, Tensor};

/// Result of verifying `elements` random elements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerifyResult {
    pub elements: usize,
    /// Maximum relative difference across all outputs and elements.
    pub max_rel_diff: f64,
    /// Whether every output matched bit-for-bit (same evaluation order).
    pub bitexact: bool,
}

/// Verify `n` elements of the kernel against the interpreter.
pub fn verify_elements(
    module: &Module,
    kernel: &cgen::CKernel,
    n: usize,
    seed: u64,
) -> Result<VerifyResult, String> {
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(n.max(1));
    let results = Mutex::new(Vec::<Result<(f64, bool), String>>::new());
    // Join every worker explicitly so a panic surfaces as an `Err` to the
    // caller instead of aborting the process out of the scope.
    let panicked = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let results = &results;
                scope.spawn(move || {
                    let mut local: Vec<Result<(f64, bool), String>> = Vec::new();
                    let mut e = t;
                    while e < n {
                        local.push(verify_one(module, kernel, seed.wrapping_add(e as u64)));
                        e += threads;
                    }
                    results.lock().unwrap().extend(local);
                })
            })
            .collect();
        // Join ALL handles before reporting: a short-circuit would leave
        // panicked threads for the scope to auto-join and re-panic on.
        let mut panicked = false;
        for h in handles {
            panicked |= h.join().is_err();
        }
        panicked
    });
    if panicked {
        return Err("verification worker panicked".into());
    }
    let mut max_rel = 0.0f64;
    let mut bitexact = true;
    let collected = results.into_inner().expect("no worker panicked");
    if collected.len() != n {
        return Err("element count mismatch".into());
    }
    for r in collected {
        let (d, exact) = r?;
        max_rel = max_rel.max(d);
        bitexact &= exact;
    }
    Ok(VerifyResult {
        elements: n,
        max_rel_diff: max_rel,
        bitexact,
    })
}

/// Execute a chained multi-kernel program through the generated loop
/// programs. `external` supplies the host-side inputs by name (names
/// are program-global: equally named external inputs of different
/// kernels receive the same tensor). Returns every kernel's outputs as
/// `"kernel.tensor"` → values; a later kernel's input named like an
/// earlier kernel's output receives that output (the PLM handoff).
pub fn run_program_chain(
    names: &[String],
    modules: &[&Module],
    kernels: &[&cgen::CKernel],
    external: &HashMap<String, Tensor>,
) -> Result<HashMap<String, Vec<f64>>, String> {
    assert_eq!(modules.len(), kernels.len());
    // Latest produced value per tensor name (the handoff buffers).
    let mut produced: HashMap<String, Vec<f64>> = HashMap::new();
    let mut out: HashMap<String, Vec<f64>> = HashMap::new();
    for ((name, module), kernel) in names.iter().zip(modules).zip(kernels) {
        let mut mem: HashMap<String, Vec<f64>> = HashMap::new();
        for p in &kernel.params {
            mem.insert(p.name.clone(), vec![0.0; p.words]);
        }
        for id in module.of_kind(TensorKind::Input) {
            let n = module.name(id);
            let data = if let Some(v) = produced.get(n) {
                v.clone()
            } else {
                external
                    .get(n)
                    .map(|t| t.data.clone())
                    .ok_or_else(|| format!("missing external input '{n}' for kernel '{name}'"))?
            };
            mem.insert(n.to_string(), data);
        }
        cgen::run_kernel(kernel, &mut mem)?;
        for id in module.of_kind(TensorKind::Output) {
            let n = module.name(id);
            let v = mem
                .get(n)
                .ok_or_else(|| format!("output '{n}' missing in kernel '{name}'"))?
                .clone();
            out.insert(format!("{name}.{n}"), v.clone());
            produced.insert(n.to_string(), v);
        }
    }
    Ok(out)
}

/// Run the reference interpreter over the chained program. Same handoff
/// semantics as [`run_program_chain`].
pub fn run_program_reference(
    names: &[String],
    modules: &[&Module],
    external: &HashMap<String, Tensor>,
) -> Result<HashMap<String, Tensor>, String> {
    let mut produced: HashMap<String, Tensor> = HashMap::new();
    let mut out: HashMap<String, Tensor> = HashMap::new();
    for (name, module) in names.iter().zip(modules) {
        let mut inputs: HashMap<String, Tensor> = HashMap::new();
        for id in module.of_kind(TensorKind::Input) {
            let n = module.name(id);
            let t = if let Some(v) = produced.get(n) {
                v.clone()
            } else {
                external
                    .get(n)
                    .cloned()
                    .ok_or_else(|| format!("missing external input '{n}' for kernel '{name}'"))?
            };
            inputs.insert(n.to_string(), t);
        }
        let ex = Interpreter::new(module).run(&inputs)?;
        for id in module.of_kind(TensorKind::Output) {
            let n = module.name(id);
            let t = ex.values[id.0].clone();
            out.insert(format!("{name}.{n}"), t.clone());
            produced.insert(n.to_string(), t);
        }
    }
    Ok(out)
}

/// Random external inputs for a chained program: one tensor per
/// distinct external input name (program-global), drawn in chain order.
pub fn random_program_inputs(modules: &[&Module], seed: u64) -> HashMap<String, Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut external: HashMap<String, Tensor> = HashMap::new();
    let mut produced: Vec<String> = Vec::new();
    for module in modules {
        for id in module.of_kind(TensorKind::Input) {
            let n = module.name(id);
            if produced.iter().any(|p| p == n) || external.contains_key(n) {
                continue;
            }
            let shape = module.shape(id).to_vec();
            external.insert(
                n.to_string(),
                Tensor::from_fn(&shape, |_| rng.gen_range(-1.0..1.0)),
            );
        }
        for id in module.of_kind(TensorKind::Output) {
            produced.push(module.name(id).to_string());
        }
    }
    external
}

/// Verify `n` elements of a chained program: the generated kernels,
/// executed with PLM handoffs, must match the chained reference
/// interpreter on every kernel's outputs.
pub fn verify_program(
    names: &[String],
    modules: &[&Module],
    kernels: &[&cgen::CKernel],
    n: usize,
    seed: u64,
) -> Result<VerifyResult, String> {
    let mut max_rel = 0.0f64;
    let mut bitexact = true;
    for e in 0..n {
        let external = random_program_inputs(modules, seed.wrapping_add(e as u64));
        let expect = run_program_reference(names, modules, &external)?;
        let got = run_program_chain(names, modules, kernels, &external)?;
        if expect.len() != got.len() {
            return Err("program output-set mismatch".into());
        }
        for (key, t) in &expect {
            let g = got
                .get(key)
                .ok_or_else(|| format!("output '{key}' missing from hardware path"))?;
            if g.len() != t.data.len() {
                return Err(format!("output '{key}' size mismatch"));
            }
            for (a, b) in t.data.iter().zip(g) {
                if a.to_bits() != b.to_bits() {
                    bitexact = false;
                }
                let scale = a.abs().max(b.abs()).max(1.0);
                max_rel = max_rel.max((a - b).abs() / scale);
            }
        }
    }
    Ok(VerifyResult {
        elements: n,
        max_rel_diff: max_rel,
        bitexact,
    })
}

fn verify_one(module: &Module, kernel: &cgen::CKernel, seed: u64) -> Result<(f64, bool), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Random inputs for this element.
    let mut inputs: HashMap<String, Tensor> = HashMap::new();
    for id in module.of_kind(TensorKind::Input) {
        let shape = module.shape(id).to_vec();
        let t = Tensor::from_fn(&shape, |_| rng.gen_range(-1.0..1.0));
        inputs.insert(module.name(id).to_string(), t);
    }
    // Reference result.
    let ex = Interpreter::new(module).run(&inputs)?;
    // Hardware-path result through the generated loop program.
    let mut mem: HashMap<String, Vec<f64>> = HashMap::new();
    for p in &kernel.params {
        mem.insert(p.name.clone(), vec![0.0; p.words]);
    }
    for (name, t) in &inputs {
        mem.insert(name.clone(), t.data.clone());
    }
    cgen::run_kernel(kernel, &mut mem)?;
    let mut max_rel = 0.0f64;
    let mut bitexact = true;
    for id in module.of_kind(TensorKind::Output) {
        let name = module.name(id);
        let expect = &ex.values[id.0];
        let got = mem
            .get(name)
            .ok_or_else(|| format!("output '{name}' missing"))?;
        if got.len() != expect.data.len() {
            return Err(format!("output '{name}' size mismatch"));
        }
        for (a, b) in expect.data.iter().zip(got) {
            if a.to_bits() != b.to_bits() {
                bitexact = false;
            }
            let scale = a.abs().max(b.abs()).max(1.0);
            max_rel = max_rel.max((a - b).abs() / scale);
        }
    }
    Ok((max_rel, bitexact))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgen::{build_kernel, CodegenOptions};
    use pschedule::{KernelModel, Schedule};
    use teil::layout::LayoutPlan;
    use teil::lower::lower;
    use teil::transform::factorize;

    fn setup(n: usize, factored: bool) -> (Module, cgen::CKernel) {
        let typed =
            cfdlang::check(&cfdlang::parse(&cfdlang::examples::inverse_helmholtz(n)).unwrap())
                .unwrap();
        let mut m = lower(&typed).unwrap();
        if factored {
            m = factorize(&m);
        }
        let layout = LayoutPlan::row_major(&m);
        let km = KernelModel::build(&m, &layout);
        let s = Schedule::reference(&km);
        let k = build_kernel(&m, &km, &s, &CodegenOptions::default());
        (m, k)
    }

    #[test]
    fn hardware_path_is_bitexact_for_reference_schedule() {
        let (m, k) = setup(5, true);
        let r = verify_elements(&m, &k, 8, 42).unwrap();
        assert_eq!(r.elements, 8);
        assert!(r.bitexact, "max rel diff {}", r.max_rel_diff);
        assert_eq!(r.max_rel_diff, 0.0);
    }

    #[test]
    fn unfactored_kernel_verifies_too() {
        let (m, k) = setup(4, false);
        let r = verify_elements(&m, &k, 4, 7).unwrap();
        assert!(r.bitexact);
    }

    #[test]
    fn different_seeds_change_inputs_not_correctness() {
        let (m, k) = setup(4, true);
        for seed in [1u64, 99, 12345] {
            let r = verify_elements(&m, &k, 2, seed).unwrap();
            assert!(r.bitexact, "seed {seed}");
        }
    }

    fn setup_program(n: usize) -> (Vec<String>, Vec<Module>, Vec<cgen::CKernel>) {
        let set = cfdlang::check_set(
            &cfdlang::parse_set(&cfdlang::examples::simulation_step(n)).unwrap(),
        )
        .unwrap();
        let mut names = Vec::new();
        let mut modules = Vec::new();
        let mut kernels = Vec::new();
        for tk in &set.kernels {
            let m = factorize(&lower(&tk.typed).unwrap());
            let layout = LayoutPlan::row_major(&m);
            let km = KernelModel::build(&m, &layout);
            let s = Schedule::reference(&km);
            kernels.push(build_kernel(&m, &km, &s, &CodegenOptions::default()));
            names.push(tk.name.clone());
            modules.push(m);
        }
        (names, modules, kernels)
    }

    #[test]
    fn chained_program_is_bitexact() {
        let (names, modules, kernels) = setup_program(4);
        let mrefs: Vec<&Module> = modules.iter().collect();
        let krefs: Vec<&cgen::CKernel> = kernels.iter().collect();
        let r = verify_program(&names, &mrefs, &krefs, 3, 11).unwrap();
        assert!(r.bitexact, "max rel diff {}", r.max_rel_diff);
        assert_eq!(r.max_rel_diff, 0.0);
    }

    #[test]
    fn handoff_feeds_downstream_kernel() {
        // The chained result must differ from running the last kernel
        // on raw external data — i.e. the handoff really flows.
        let (names, modules, _) = setup_program(4);
        let mrefs: Vec<&Module> = modules.iter().collect();
        let external = random_program_inputs(&mrefs, 5);
        let chained = run_program_reference(&names, &mrefs, &external).unwrap();
        // Run 'project' alone on a fresh random v (not the handoff).
        let mut solo_inputs: HashMap<String, Tensor> = HashMap::new();
        let project = &modules[2];
        for id in project.of_kind(TensorKind::Input) {
            let n = project.name(id);
            let t = external.get(n).cloned().unwrap_or_else(|| {
                Tensor::from_fn(project.shape(id), |i| i.iter().sum::<usize>() as f64)
            });
            solo_inputs.insert(n.to_string(), t);
        }
        let solo = Interpreter::new(project).run(&solo_inputs).unwrap();
        let w_id = project.of_kind(TensorKind::Output)[0];
        let solo_w = &solo.values[w_id.0];
        let chained_w = &chained["project.w"];
        assert!(solo_w.max_rel_diff(chained_w) > 1e-12);
    }

    #[test]
    fn program_chain_matches_manual_per_kernel_chain() {
        // Feeding each separately generated kernel by hand must agree
        // with run_program_chain — the handoff is pure data flow.
        let (names, modules, kernels) = setup_program(4);
        let mrefs: Vec<&Module> = modules.iter().collect();
        let krefs: Vec<&cgen::CKernel> = kernels.iter().collect();
        let external = random_program_inputs(&mrefs, 99);
        let auto = run_program_chain(&names, &mrefs, &krefs, &external).unwrap();

        let mut produced: HashMap<String, Vec<f64>> = HashMap::new();
        for ((name, module), kernel) in names.iter().zip(&modules).zip(&kernels) {
            let mut mem: HashMap<String, Vec<f64>> = HashMap::new();
            for p in &kernel.params {
                mem.insert(p.name.clone(), vec![0.0; p.words]);
            }
            for id in module.of_kind(TensorKind::Input) {
                let n = module.name(id);
                let data = produced
                    .get(n)
                    .cloned()
                    .unwrap_or_else(|| external[n].data.clone());
                mem.insert(n.to_string(), data);
            }
            cgen::run_kernel(kernel, &mut mem).unwrap();
            for id in module.of_kind(TensorKind::Output) {
                let n = module.name(id);
                let v = mem[n].clone();
                assert_eq!(
                    auto[&format!("{name}.{n}")],
                    v,
                    "kernel '{name}' output '{n}' diverged"
                );
                produced.insert(n.to_string(), v);
            }
        }
    }

    #[test]
    fn corrupted_kernel_is_detected() {
        let (m, mut k) = setup(4, true);
        // Flip an operation: the verifier must notice.
        fn corrupt(stmts: &mut [cgen::CStmt]) -> bool {
            for s in stmts.iter_mut() {
                let hit = match s {
                    cgen::CStmt::For { body, .. } => corrupt(body),
                    cgen::CStmt::AccumScalar {
                        expr: cgen::CExpr::Bin { op, .. },
                        ..
                    } => {
                        *op = cfdlang::BinOp::Add;
                        true
                    }
                    _ => false,
                };
                if hit {
                    return true;
                }
            }
            false
        }
        assert!(corrupt(&mut k.body));
        let r = verify_elements(&m, &k, 2, 3).unwrap();
        assert!(!r.bitexact);
        assert!(r.max_rel_diff > 1e-6);
    }
}
