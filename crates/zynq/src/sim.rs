//! Full-system simulation: the generated host program driving the
//! replicated accelerator architecture of Figure 7.
//!
//! Per main-loop round the host (simulated ARM core) DMAs the inputs for
//! `m` elements into the PLM instances, writes the start command to the
//! AXI-lite peripheral `m/k` times (each broadcast launches the `k`
//! accelerators on their current PLM, then the batch counter advances),
//! waits for the done interrupt, and DMAs the outputs back. Two
//! "hardware timers" accumulate, exactly as in the paper's measurements:
//! execution-only time and total time including transfers.

use crate::des::{secs, to_secs};
use crate::dma::DmaModel;
use serde::{Deserialize, Serialize};
use sysgen::{MultiSystemDesign, SystemDesign};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of spectral elements in the CFD simulation (the paper runs
    /// 50,000).
    pub elements: usize,
    /// Host-side cost of starting one accelerator through the AXI-lite
    /// peripheral (register writes, cache maintenance), per kernel.
    pub axi_start_s_per_kernel: f64,
    /// Interrupt delivery + handler latency per round.
    pub irq_s: f64,
    /// Overlap DMA transfers with execution (the paper's "better data
    /// transfer strategies" future work): with `m ≥ 2k` the accelerators
    /// execute one PLM slice while the DMA drains/fills another. The
    /// paper's measured implementation is strictly serial (`false`).
    pub overlap_transfers: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            elements: 50_000,
            axi_start_s_per_kernel: 2.5e-6,
            irq_s: 5.0e-6,
            overlap_transfers: false,
        }
    }
}

/// Simulated hardware measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwResult {
    pub elements: usize,
    pub rounds: usize,
    pub k: usize,
    pub m: usize,
    /// Accumulated kernel-execution timer (start to interrupt).
    pub exec_s: f64,
    /// Accumulated DMA transfer time.
    pub transfer_s: f64,
    /// End-to-end wall time of the simulation loop.
    pub total_s: f64,
}

impl HwResult {
    /// Average execution time per element.
    pub fn exec_per_element_s(&self) -> f64 {
        self.exec_s / self.elements as f64
    }

    /// Average total time per element.
    pub fn total_per_element_s(&self) -> f64 {
        self.total_s / self.elements as f64
    }
}

/// Run the full-system simulation.
///
/// The serial schedule carries no state from one main-loop round to the
/// next — every round advances the clock by the same tick delta — and
/// within a round every accelerator of a batch finishes at the same
/// tick (one broadcast start, identical latency), so the event queue of
/// the general DES degenerates to closed-form tick arithmetic: one
/// round is `t_in + batch · (start + kernel + irq) + t_out`, and the
/// remaining `rounds - 1` fast-forward by multiplication in integer
/// tick space. The result is exact (tick-identical to the event-queue
/// formulation); per-sweep cost drops from `O(rounds · k)` heap events
/// to `O(1)`.
pub fn simulate_hw(design: &SystemDesign, cfg: &SimConfig) -> HwResult {
    if cfg.overlap_transfers && design.config.batch() >= 2 {
        return simulate_overlapped(design, cfg);
    }
    let k = design.config.k;
    let m = design.config.m;
    let batch = design.config.batch() as u64;
    let host = &design.host;
    let dma = DmaModel::from_platform(&design.platform);
    let kernel_s = design.kernel.latency_seconds();
    let rounds = host.rounds(cfg.elements);

    let mut exec_ticks: u64 = 0;
    let mut transfer_ticks: u64 = 0;
    let mut round_ticks: u64 = 0;
    if rounds > 0 {
        // Input DMA: one burst per PLM instance.
        let t_in = secs(dma.transfer_bursts_s(host.bytes_in_per_element * m, m));
        // Each batch: the host starts each accelerator through the
        // AXI-lite peripheral (the broadcast is serialized on the AXI
        // bus), all k finish together, the peripheral raises the
        // interrupt when the last accelerator signals done.
        let per_batch =
            secs(cfg.axi_start_s_per_kernel) * k as u64 + secs(kernel_s) + secs(cfg.irq_s);
        let t_out = secs(dma.transfer_bursts_s(host.bytes_out_per_element * m, m));
        exec_ticks = per_batch * batch;
        transfer_ticks = t_in + t_out;
        round_ticks = t_in + exec_ticks + t_out;
    }

    // --- Fast-forward the identical rounds. ---
    let n = rounds as u64;
    HwResult {
        elements: cfg.elements,
        rounds,
        k,
        m,
        exec_s: to_secs(exec_ticks * n),
        transfer_s: to_secs(transfer_ticks * n),
        total_s: to_secs(round_ticks * n),
    }
}

/// Simulated measurements of a chained multi-kernel program run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramHwResult {
    pub elements: usize,
    pub rounds: usize,
    /// Accelerators per stage.
    pub ks: Vec<usize>,
    /// Shared PLM sets.
    pub m: usize,
    /// Accumulated execution timer per stage (start to interrupt).
    pub stage_exec_s: Vec<f64>,
    /// Total kernel-execution time across the chain.
    pub exec_s: f64,
    /// Accumulated DMA transfer time (external inputs/outputs only —
    /// handoffs stay in the PLM fabric).
    pub transfer_s: f64,
    /// End-to-end wall time.
    pub total_s: f64,
}

impl ProgramHwResult {
    /// Average total time per element.
    pub fn total_per_element_s(&self) -> f64 {
        self.total_s / self.elements as f64
    }
}

/// The closed-form tick costs of **one** main-loop round of a chained
/// multi-kernel system: input DMA, per-stage serial batches, output
/// DMA. [`simulate_program`] and the batch-stream runtime
/// ([`crate::stream`]) both derive their schedules from this one
/// function, so a runtime round is tick-identical to a `simulate_program`
/// round by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramRound {
    /// External-input DMA ticks (`m` elements, one burst per PLM set).
    pub t_in: u64,
    /// Kernel-execution ticks per stage (`m/k_i` serial batches each).
    pub stage_exec: Vec<u64>,
    /// External-output DMA ticks.
    pub t_out: u64,
}

impl ProgramRound {
    /// Total execution ticks of the chained stages.
    pub fn exec(&self) -> u64 {
        self.stage_exec.iter().sum()
    }

    /// Total ticks of one serial round (`t_in + exec + t_out`).
    pub fn total(&self) -> u64 {
        self.t_in + self.exec() + self.t_out
    }
}

/// Compute the per-round tick costs of `design` under `cfg`'s host
/// constants (`cfg.elements` is irrelevant here — a round always moves
/// `m` elements).
pub fn program_round(design: &MultiSystemDesign, cfg: &SimConfig) -> ProgramRound {
    let m = design.config.m;
    let host = &design.host;
    let dma = DmaModel::from_platform(&design.platform);
    let stage_exec: Vec<u64> = design
        .stages
        .iter()
        .enumerate()
        .map(|(si, stage)| {
            let k = design.config.ks[si];
            let batch = design.config.batch(si) as u64;
            let per_batch = secs(cfg.axi_start_s_per_kernel) * k as u64
                + secs(stage.kernel.latency_seconds())
                + secs(cfg.irq_s);
            per_batch * batch
        })
        .collect();
    ProgramRound {
        t_in: secs(dma.transfer_bursts_s(host.bytes_in_per_element * m, m)),
        stage_exec,
        t_out: secs(dma.transfer_bursts_s(host.bytes_out_per_element * m, m)),
    }
}

/// Run the simulation of a chained multi-kernel system.
///
/// One main-loop round DMAs the *external* inputs for `m` elements in,
/// executes every stage in chain order (`m / k_i` serial batches of
/// stage `i`'s `k_i` accelerators; kernel-to-kernel handoffs are free —
/// the merged PLM co-locates the buffers), and DMAs the external
/// outputs back. As in [`simulate_hw`], the serial schedule carries no
/// state between rounds and no state between an accelerator batch's
/// identical done events, so one representative round is computed in
/// closed tick arithmetic and the rest fast-forward by multiplication
/// in integer tick space — the single-kernel fast-forward path,
/// preserved per kernel.
///
/// With `overlap_transfers` set and a spare PLM set for every stage
/// (`m >= 2·k_i`), rounds pipeline at **round granularity**: the DMA
/// fills round `r+1`'s input sets and drains round `r-1`'s outputs
/// while round `r` executes ([`simulate_program_overlapped`]). This is
/// coarser than the single-kernel simulator's slice-level overlap, so
/// the tick-identity with [`simulate_hw`] holds for the serial
/// schedule only.
pub fn simulate_program(design: &MultiSystemDesign, cfg: &SimConfig) -> ProgramHwResult {
    if cfg.overlap_transfers && design.config.ks.iter().all(|&k| design.config.m >= 2 * k) {
        return simulate_program_overlapped(design, cfg);
    }
    let m = design.config.m;
    let host = &design.host;
    let rounds = host.rounds(cfg.elements);

    let (stage_exec_ticks, transfer_ticks, round_ticks) = if rounds > 0 {
        let round = program_round(design, cfg);
        let transfer = round.t_in + round.t_out;
        let total = round.total();
        (round.stage_exec, transfer, total)
    } else {
        (vec![0; design.stages.len()], 0, 0)
    };

    let n = rounds as u64;
    let stage_exec_s: Vec<f64> = stage_exec_ticks.iter().map(|&t| to_secs(t * n)).collect();
    ProgramHwResult {
        elements: cfg.elements,
        rounds,
        ks: design.config.ks.clone(),
        m,
        exec_s: stage_exec_s.iter().sum(),
        stage_exec_s,
        transfer_s: to_secs(transfer_ticks * n),
        total_s: to_secs(round_ticks * n),
    }
}

/// Round-granularity double buffering for chained programs: the DMA
/// engine and the accelerator chain are two serially reused resources;
/// round `r`'s chain executes once its inputs landed and the chain is
/// free, while the single DMA engine fills/drains neighbouring rounds'
/// PLM sets. Requires a spare set for every stage (`m >= 2·k_i`).
fn simulate_program_overlapped(design: &MultiSystemDesign, cfg: &SimConfig) -> ProgramHwResult {
    let m = design.config.m;
    let host = &design.host;
    let dma = DmaModel::from_platform(&design.platform);
    let rounds = host.rounds(cfg.elements);

    let t_in = secs(dma.transfer_bursts_s(host.bytes_in_per_element * m, m));
    let t_out = secs(dma.transfer_bursts_s(host.bytes_out_per_element * m, m));
    // Chain execution of one round, stage by stage.
    let stage_exec: Vec<u64> = design
        .stages
        .iter()
        .enumerate()
        .map(|(si, s)| {
            let k = design.config.ks[si];
            design.config.batch(si) as u64
                * (secs(cfg.axi_start_s_per_kernel) * k as u64
                    + secs(s.kernel.latency_seconds())
                    + secs(cfg.irq_s))
        })
        .collect();
    let exec: u64 = stage_exec.iter().sum();

    let mut dma_free: u64 = 0;
    let mut chain_free: u64 = 0;
    let mut exec_total: u64 = 0;
    let mut transfer_total: u64 = 0;
    let mut end: u64 = 0;
    let mut pending_out: Option<u64> = None;
    for _r in 0..rounds {
        let in_done = dma_free + t_in;
        dma_free = in_done;
        transfer_total += t_in;
        let exec_start = in_done.max(chain_free);
        let exec_done = exec_start + exec;
        chain_free = exec_done;
        exec_total += exec;
        // Drain the previous round's outputs while this one executes.
        if let Some(ready) = pending_out.take() {
            let out_start = ready.max(dma_free);
            dma_free = out_start + t_out;
            transfer_total += t_out;
            end = end.max(dma_free);
        }
        pending_out = Some(exec_done);
        end = end.max(exec_done);
    }
    if let Some(ready) = pending_out {
        let out_done = ready.max(dma_free) + t_out;
        transfer_total += t_out;
        end = end.max(out_done);
    }

    let n = rounds as u64;
    ProgramHwResult {
        elements: cfg.elements,
        rounds,
        ks: design.config.ks.clone(),
        m,
        stage_exec_s: stage_exec.iter().map(|&t| to_secs(t * n)).collect(),
        exec_s: to_secs(exec_total),
        transfer_s: to_secs(transfer_total),
        total_s: to_secs(end),
    }
}

/// Double-buffered timing: PLM *slices* of `k` elements flow through a
/// three-stage pipeline (DMA in → execute → DMA out). The DMA engine and
/// the accelerators are each serially reused resources; a slice executes
/// once its input landed and the accelerators are free, and its output
/// drains once the (single) DMA engine is free again. With transfers at
/// ~2% of the kernel time this hides them almost completely — the upside
/// the paper anticipated for the `k < m` architecture.
fn simulate_overlapped(design: &SystemDesign, cfg: &SimConfig) -> HwResult {
    let k = design.config.k;
    let m = design.config.m;
    let host = &design.host;
    let dma = DmaModel::from_platform(&design.platform);
    let kernel_s = design.kernel.latency_seconds();
    let rounds = host.rounds(cfg.elements);
    let slices = rounds * design.config.batch();

    let t_in = secs(dma.transfer_bursts_s(host.bytes_in_per_element * k, k));
    let t_out = secs(dma.transfer_bursts_s(host.bytes_out_per_element * k, k));
    let exec = secs(cfg.axi_start_s_per_kernel) * k as u64 + secs(kernel_s) + secs(cfg.irq_s);

    let mut dma_free: u64 = 0;
    let mut accel_free: u64 = 0;
    let mut exec_total: u64 = 0;
    let mut transfer_total: u64 = 0;
    let mut end: u64 = 0;
    // Output of slice s must wait for its execution; input of slice s+1
    // may proceed during execution of slice s (separate PLM set).
    let mut pending_out: Option<u64> = None;
    for _s in 0..slices {
        // Input transfer for this slice.
        let in_start = dma_free;
        let in_done = in_start + t_in;
        dma_free = in_done;
        transfer_total += t_in;
        // Execution.
        let exec_start = in_done.max(accel_free);
        let exec_done = exec_start + exec;
        accel_free = exec_done;
        exec_total += exec;
        // Drain the previous slice's output while this one executes.
        if let Some(ready) = pending_out.take() {
            let out_start = ready.max(dma_free);
            dma_free = out_start + t_out;
            transfer_total += t_out;
            end = end.max(dma_free);
        }
        pending_out = Some(exec_done);
        end = end.max(exec_done);
    }
    if let Some(ready) = pending_out {
        let out_start = ready.max(dma_free);
        let out_done = out_start + t_out;
        transfer_total += t_out;
        end = end.max(out_done);
    }

    HwResult {
        elements: cfg.elements,
        rounds,
        k,
        m,
        exec_s: to_secs(exec_total),
        transfer_s: to_secs(transfer_total),
        total_s: to_secs(end),
    }
}

/// Software execution time (pure cost-model application; the functional
/// result comes from the interpreter / loop evaluator separately).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwResult {
    pub per_element_s: f64,
    pub total_s: f64,
}

/// Time the reference implementation on the ARM model.
pub fn sw_reference(
    module: &teil::Module,
    model: &crate::ArmCostModel,
    elements: usize,
) -> Result<SwResult, String> {
    let zeros: Vec<(&str, teil::Tensor)> = module
        .of_kind(teil::TensorKind::Input)
        .iter()
        .map(|&id| (module.name(id), teil::Tensor::zeros(module.shape(id))))
        .collect();
    let inputs = teil::interp::inputs_from(zeros);
    let ex = teil::Interpreter::new(module).run(&inputs)?;
    let per = model.time_reference(&ex.stats);
    Ok(SwResult {
        per_element_s: per,
        total_s: per * elements as f64,
    })
}

/// Time the HLS-oriented generated C on the ARM model.
pub fn sw_hls_code(
    kernel: &cgen::CKernel,
    model: &crate::ArmCostModel,
    elements: usize,
) -> Result<SwResult, String> {
    let mut mem = std::collections::HashMap::new();
    for p in &kernel.params {
        mem.insert(p.name.clone(), vec![0.0f64; p.words]);
    }
    let counts = cgen::run_kernel(kernel, &mut mem)?;
    let per = model.time_hls_code(&counts);
    Ok(SwResult {
        per_element_s: per,
        total_s: per * elements as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysgen::{HostProgram, Platform, SystemConfig, SystemDesign};

    /// A paper-shaped kernel report at the catalog platform's default
    /// synthesis clock (no hardcoded 200 MHz literals in the tests).
    fn paper_report(name: &str, latency_cycles: u64) -> hls::HlsReport {
        hls::HlsReport {
            kernel: name.into(),
            clock_mhz: Platform::zcu106().default_clock_mhz,
            latency_cycles,
            luts: 2_314,
            ffs: 2_999,
            dsps: 15,
            brams: 0,
            loops: vec![],
        }
    }

    fn design(k: usize, m: usize) -> SystemDesign {
        let platform = Platform::zcu106();
        // ≈ the p=11 factored kernel.
        let kernel = paper_report("kernel_body", 571_000);
        let memory = mnemosyne::MemorySubsystem {
            units: vec![],
            brams: 16,
            luts: 450,
            ffs: 250,
        };
        let cfgm = SystemConfig { k, m };
        let host = HostProgram {
            config: cfgm,
            bytes_in_per_element: (121 + 2 * 1331) * 8,
            bytes_out_per_element: 1331 * 8,
        };
        SystemDesign::build(&platform, &kernel, &memory, cfgm, host).unwrap()
    }

    fn sim(k: usize, m: usize, elements: usize) -> HwResult {
        simulate_hw(
            &design(k, m),
            &SimConfig {
                elements,
                ..Default::default()
            },
        )
    }

    #[test]
    fn accelerator_speedup_is_nearly_ideal() {
        // Figure 9, orange series: 1.00 / 2.00 / 3.97 / 7.91 / 15.76.
        let base = sim(1, 1, 800).exec_s;
        for (k, paper) in [(2usize, 2.00f64), (4, 3.97), (8, 7.91), (16, 15.76)] {
            let s = base / sim(k, k, 800).exec_s;
            assert!(
                (s - paper).abs() / paper < 0.02,
                "k={k}: model {s:.2} vs paper {paper}"
            );
        }
    }

    #[test]
    fn total_speedup_matches_figure9() {
        // Figure 9, blue series: 1.00 / 1.96 / 3.78 / 7.09 / 12.58.
        let base = sim(1, 1, 800).total_s;
        for (k, paper) in [(2usize, 1.96f64), (4, 3.78), (8, 7.09), (16, 12.58)] {
            let s = base / sim(k, k, 800).total_s;
            assert!(
                (s - paper).abs() / paper < 0.04,
                "k={k}: model {s:.2} vs paper {paper}"
            );
        }
    }

    #[test]
    fn transfers_make_total_exceed_exec() {
        let r = sim(4, 4, 400);
        assert!(r.total_s > r.exec_s);
        assert!(r.transfer_s > 0.0);
        assert!((r.exec_s + r.transfer_s - r.total_s).abs() / r.total_s < 1e-9);
    }

    #[test]
    fn batching_does_not_help() {
        // The paper: "These experiments did not show much improvements"
        // for k < m — transfers dominate per element either way.
        let eq = sim(2, 2, 512);
        let batched = sim(2, 8, 512);
        let rel = (batched.total_s - eq.total_s).abs() / eq.total_s;
        assert!(rel < 0.02, "batching changed total by {:.1}%", rel * 100.0);
    }

    #[test]
    fn overlap_hides_transfers() {
        // The extension the paper's future work proposes: with m = 2k
        // the DMA fills one PLM set while the other executes.
        let serial = simulate_hw(
            &design(2, 4),
            &SimConfig {
                elements: 512,
                ..Default::default()
            },
        );
        let overlapped = simulate_hw(
            &design(2, 4),
            &SimConfig {
                elements: 512,
                overlap_transfers: true,
                ..Default::default()
            },
        );
        assert!(overlapped.total_s < serial.total_s);
        // Transfers almost fully hidden: total within 1% of exec-bound.
        assert!(
            overlapped.total_s < overlapped.exec_s * 1.01,
            "total {} vs exec {}",
            overlapped.total_s,
            overlapped.exec_s
        );
    }

    #[test]
    fn overlap_needs_double_buffering() {
        // With m = k there is no second PLM set: the flag degrades to the
        // serial schedule.
        let serial = simulate_hw(
            &design(4, 4),
            &SimConfig {
                elements: 256,
                ..Default::default()
            },
        );
        let flagged = simulate_hw(
            &design(4, 4),
            &SimConfig {
                elements: 256,
                overlap_transfers: true,
                ..Default::default()
            },
        );
        assert_eq!(serial, flagged);
    }

    #[test]
    fn overlap_preserves_work_accounting() {
        let r = simulate_hw(
            &design(2, 8),
            &SimConfig {
                elements: 512,
                overlap_transfers: true,
                ..Default::default()
            },
        );
        // Same amount of executed kernel time as the serial schedule.
        let s = simulate_hw(
            &design(2, 8),
            &SimConfig {
                elements: 512,
                ..Default::default()
            },
        );
        assert!((r.exec_s - s.exec_s).abs() < 1e-9);
        assert!((r.transfer_s - s.transfer_s).abs() / s.transfer_s < 0.01);
    }

    fn program_design(ks: Vec<usize>, m: usize, latencies: &[u64]) -> sysgen::MultiSystemDesign {
        let platform = Platform::zcu106();
        let stages: Vec<(String, hls::HlsReport)> = latencies
            .iter()
            .enumerate()
            .map(|(i, &l)| (format!("stage{i}"), paper_report(&format!("stage{i}"), l)))
            .collect();
        let memory = mnemosyne::MemorySubsystem {
            units: vec![],
            brams: 16,
            luts: 450,
            ffs: 250,
        };
        let cfg = sysgen::ProgramSystemConfig { ks, m };
        let host = sysgen::ProgramHostProgram {
            config: cfg.clone(),
            stage_names: stages.iter().map(|(n, _)| n.clone()).collect(),
            bytes_in_per_element: (121 + 2 * 1331) * 8,
            bytes_out_per_element: 1331 * 8,
            handoff_bytes_per_element: 1331 * 8,
        };
        sysgen::MultiSystemDesign::build(&platform, &stages, &memory, cfg, host).unwrap()
    }

    #[test]
    fn single_stage_program_matches_simulate_hw() {
        // The degenerate one-kernel program must be tick-identical to
        // the single-kernel simulator (same bytes, same latency).
        let single = sim(4, 4, 800);
        let prog = simulate_program(
            &program_design(vec![4], 4, &[571_000]),
            &SimConfig {
                elements: 800,
                ..Default::default()
            },
        );
        assert_eq!(prog.rounds, single.rounds);
        assert_eq!(prog.exec_s, single.exec_s);
        assert_eq!(prog.transfer_s, single.transfer_s);
        assert_eq!(prog.total_s, single.total_s);
        assert_eq!(prog.stage_exec_s.len(), 1);
    }

    #[test]
    fn chained_stages_accumulate_exec_in_order() {
        let r = simulate_program(
            &program_design(vec![2, 4], 4, &[100_000, 400_000]),
            &SimConfig {
                elements: 400,
                ..Default::default()
            },
        );
        assert_eq!(r.stage_exec_s.len(), 2);
        // Stage 0 runs 2 batches of 100k cycles; stage 1 one batch of
        // 400k — stage 1 still dominates.
        assert!(r.stage_exec_s[1] > r.stage_exec_s[0]);
        assert!((r.exec_s - (r.stage_exec_s[0] + r.stage_exec_s[1])).abs() < 1e-12);
        assert!(r.total_s > r.exec_s);
        // Handoffs never hit the DMA: transfers equal the single-kernel
        // external traffic.
        let single = sim(4, 4, 400);
        assert!((r.transfer_s - single.transfer_s).abs() < 1e-12);
    }

    #[test]
    fn program_overlap_hides_transfers_with_spare_sets() {
        let design = program_design(vec![2, 2], 4, &[200_000, 200_000]);
        let serial = simulate_program(
            &design,
            &SimConfig {
                elements: 512,
                ..Default::default()
            },
        );
        let overlapped = simulate_program(
            &design,
            &SimConfig {
                elements: 512,
                overlap_transfers: true,
                ..Default::default()
            },
        );
        assert!(overlapped.total_s < serial.total_s);
        // Same work, transfers nearly hidden behind the chain.
        assert!((overlapped.exec_s - serial.exec_s).abs() < 1e-12);
        assert!(overlapped.total_s < overlapped.exec_s * 1.05);
        // Without a spare PLM set per stage the flag degrades to the
        // serial schedule.
        let tight = program_design(vec![4, 4], 4, &[200_000, 200_000]);
        let flagged = simulate_program(
            &tight,
            &SimConfig {
                elements: 256,
                overlap_transfers: true,
                ..Default::default()
            },
        );
        let plain = simulate_program(
            &tight,
            &SimConfig {
                elements: 256,
                ..Default::default()
            },
        );
        assert_eq!(flagged, plain);
    }

    #[test]
    fn per_stage_replication_changes_batches_not_totals_of_others() {
        let wide = simulate_program(
            &program_design(vec![4, 4], 4, &[200_000, 200_000]),
            &SimConfig {
                elements: 512,
                ..Default::default()
            },
        );
        let narrow = simulate_program(
            &program_design(vec![4, 1], 4, &[200_000, 200_000]),
            &SimConfig {
                elements: 512,
                ..Default::default()
            },
        );
        // Stage 1 at k=1 serializes 4 batches: ≈ 4× its exec time.
        assert_eq!(wide.stage_exec_s[0], narrow.stage_exec_s[0]);
        let ratio = narrow.stage_exec_s[1] / wide.stage_exec_s[1];
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn round_count_matches_host_program() {
        let r = sim(8, 8, 50_000);
        assert_eq!(r.rounds, 6_250);
        let r = sim(16, 16, 50_000);
        assert_eq!(r.rounds, 3_125);
    }

    #[test]
    fn hw_vs_arm_matches_figure10() {
        // Figure 10: SW Ref 1.00, HW k=1 0.69, HW k=8 4.86, HW k=16 8.62.
        let typed =
            cfdlang::check(&cfdlang::parse(&cfdlang::examples::inverse_helmholtz(11)).unwrap())
                .unwrap();
        let module = teil::transform::factorize(&teil::lower::lower(&typed).unwrap());
        let model = crate::ArmCostModel::a53_1200mhz();
        let arm = sw_reference(&module, &model, 800).unwrap();
        for (k, paper, tol) in [(1usize, 0.69f64, 0.06), (8, 4.86, 0.06), (16, 8.62, 0.08)] {
            let hw = sim(k, k, 800);
            let s = arm.total_s / hw.total_s;
            assert!(
                (s - paper).abs() / paper < tol,
                "k={k}: model {s:.2} vs paper {paper}"
            );
        }
    }
}
