//! Multi-request batch-stream simulation: one compiled accelerator
//! system serving a queue of independent simulation requests.
//!
//! [`crate::sim::simulate_program`] answers "how long does *one* job of
//! `Ne` elements take"; a production service instead sees a stream of
//! independent invocations of the same compiled system, each with its
//! own input tensors. This module time-multiplexes the hardware across
//! that stream: requests are coalesced into hardware rounds (up to
//! `capacity` requests share the `m` PLM sets of one round), rounds
//! execute back to back, and with `overlap` set the single DMA engine
//! double-buffers — the input transfer of round `i+1` and the output
//! drain of round `i-1` run while round `i` computes.
//!
//! Round costs come from [`crate::sim::program_round`], the same
//! closed-form tick arithmetic `simulate_program` uses, so:
//!
//! * with `capacity = 1` and `overlap = false` (batching disabled) the
//!   stream is **tick-identical** to running `simulate_program` once per
//!   request back to back, and
//! * as in the serial simulator, nothing inside a round needs an event
//!   queue — each round is closed tick arithmetic, and once every
//!   remaining request has arrived the tail of the schedule collapses
//!   into a single multiplication (**closed-tick fast-forward**; see
//!   [`StreamOutcome::fast_forwarded_rounds`]).

use crate::des::Time;
use crate::sim::{program_round, SimConfig};
use sysgen::MultiSystemDesign;

/// Timing outcome of serving a request stream on one system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Tick at which each request's round started loading (its admission
    /// to the hardware), in arrival order.
    pub admitted_ticks: Vec<Time>,
    /// Tick at which each request's outputs finished draining, in
    /// arrival order.
    pub completion_ticks: Vec<Time>,
    /// Requests coalesced into each hardware round, dispatch order.
    pub round_fills: Vec<usize>,
    /// Accumulated kernel-execution ticks across all rounds.
    pub exec_ticks: u64,
    /// Accumulated DMA ticks across all rounds.
    pub transfer_ticks: u64,
    /// Ticks during which the DMA engine and the accelerator chain were
    /// busy simultaneously (transfers hidden behind compute; 0 for the
    /// serial schedule).
    pub overlapped_ticks: u64,
    /// End of the last output drain.
    pub makespan_ticks: Time,
    /// Rounds resolved by the closed-tick fast-forward instead of the
    /// per-round loop.
    pub fast_forwarded_rounds: usize,
    /// Whether the double-buffered scheduler ran (requested overlap AND
    /// every stage had a spare PLM set) — `overlapped_ticks` can still
    /// be 0 if rounds were too sparse to ever coincide.
    pub double_buffered: bool,
}

impl StreamOutcome {
    /// Number of hardware rounds dispatched.
    pub fn rounds(&self) -> usize {
        self.round_fills.len()
    }

    /// Fraction of DMA time hidden behind compute (0 when there were no
    /// transfers).
    pub fn overlap_fraction(&self) -> f64 {
        if self.transfer_ticks == 0 {
            0.0
        } else {
            self.overlapped_ticks as f64 / self.transfer_ticks as f64
        }
    }
}

/// Serve `arrivals` (sorted request-arrival ticks) on `design`.
///
/// `capacity` is the batch policy's fill limit per hardware round,
/// clamped to `[1, m]`; admission is greedy — a round takes every
/// request that has arrived by its load time, up to `capacity`, and
/// never idles while at least one request is queued. A round always
/// moves all `m` PLM sets through the DMA and runs every stage's full
/// `m/k_i` batch schedule (the host program is compiled for `m`; unused
/// slots carry don't-care data), so round cost is independent of fill.
///
/// `overlap` requests double-buffered DMA; like
/// [`crate::sim::simulate_program`] it degrades to the serial schedule
/// unless every stage keeps a spare PLM set (`m >= 2·k_i`).
pub fn simulate_batch_stream(
    design: &MultiSystemDesign,
    cfg: &SimConfig,
    arrivals: &[Time],
    capacity: usize,
    overlap: bool,
) -> StreamOutcome {
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be sorted"
    );
    let capacity = capacity.clamp(1, design.config.m);
    let round = program_round(design, cfg);
    let overlap = overlap && design.config.ks.iter().all(|&k| design.config.m >= 2 * k);
    if overlap {
        stream_overlapped(arrivals, capacity, &round)
    } else {
        stream_serial(arrivals, capacity, &round)
    }
}

/// The serial schedule: rounds execute strictly one after another
/// (`in → exec → out`), the hardware idling only when the queue is
/// empty. Once the last request has arrived, the remaining rounds are
/// identical and fast-forward by multiplication.
fn stream_serial(
    arrivals: &[Time],
    capacity: usize,
    round: &crate::sim::ProgramRound,
) -> StreamOutcome {
    let n = arrivals.len();
    let rt = round.total();
    let exec = round.exec();
    let dma = round.t_in + round.t_out;
    let mut admitted = vec![0u64; n];
    let mut completion = vec![0u64; n];
    let mut fills = Vec::new();
    let mut exec_ticks = 0u64;
    let mut transfer_ticks = 0u64;
    let mut fast_forwarded = 0usize;
    let mut now: Time = 0;
    let mut i = 0usize;
    while i < n {
        if arrivals[i] > now {
            now = arrivals[i];
        }
        if arrivals[n - 1] <= now {
            // Closed-tick fast-forward: the whole backlog is queued, so
            // the remaining rounds are identical — place them
            // arithmetically instead of looping.
            let remaining = n - i;
            let rounds = remaining.div_ceil(capacity);
            for b in 0..rounds {
                let lo = i + b * capacity;
                let hi = (lo + capacity).min(n);
                fills.push(hi - lo);
                for r in lo..hi {
                    admitted[r] = now + b as u64 * rt;
                    completion[r] = now + (b as u64 + 1) * rt;
                }
            }
            exec_ticks += rounds as u64 * exec;
            transfer_ticks += rounds as u64 * dma;
            now += rounds as u64 * rt;
            fast_forwarded += rounds;
            break;
        }
        // Greedy admission: everything arrived by the round start, up to
        // capacity (at least one — `arrivals[i] <= now` here).
        let hi = (i + capacity).min(n);
        let fill = arrivals[i..hi].iter().filter(|&&a| a <= now).count();
        for r in i..i + fill {
            admitted[r] = now;
            completion[r] = now + rt;
        }
        fills.push(fill);
        exec_ticks += exec;
        transfer_ticks += dma;
        now += rt;
        i += fill;
    }
    StreamOutcome {
        admitted_ticks: admitted,
        completion_ticks: completion,
        round_fills: fills,
        exec_ticks,
        transfer_ticks,
        overlapped_ticks: 0,
        makespan_ticks: now,
        fast_forwarded_rounds: fast_forwarded,
        double_buffered: false,
    }
}

/// Double-buffered schedule: the DMA engine and the accelerator chain
/// are two serially reused resources. Round `r+1`'s inputs load and
/// round `r-1`'s outputs drain while round `r` computes; a request
/// completes when its round's outputs have drained.
fn stream_overlapped(
    arrivals: &[Time],
    capacity: usize,
    round: &crate::sim::ProgramRound,
) -> StreamOutcome {
    let n = arrivals.len();
    let exec = round.exec();
    let mut admitted = vec![0u64; n];
    let mut completion = vec![0u64; n];
    let mut fills = Vec::new();
    let mut exec_ticks = 0u64;
    let mut transfer_ticks = 0u64;
    // Busy intervals of the two resources, for the overlap accounting.
    let mut dma_iv: Vec<(Time, Time)> = Vec::new();
    let mut chain_iv: Vec<(Time, Time)> = Vec::new();
    let mut dma_free: Time = 0;
    let mut chain_free: Time = 0;
    let mut makespan: Time = 0;
    // (exec_done, first request, one past last request) of the round
    // whose outputs still wait to drain.
    let mut pending_out: Option<(Time, usize, usize)> = None;
    let mut i = 0usize;
    while i < n {
        // Sparse queue: if the pending round's outputs can fully drain
        // before the next request's input could even start loading,
        // drain them now — the DMA must not idle on a finished round
        // just because the queue is empty. (When both are ready the
        // input keeps priority, as below: filling keeps the chain busy.)
        if let Some((ready, plo, phi)) = pending_out {
            let out_start = ready.max(dma_free);
            if out_start + round.t_out <= arrivals[i] {
                let out_done = out_start + round.t_out;
                dma_free = out_done;
                transfer_ticks += round.t_out;
                dma_iv.push((out_start, out_done));
                for c in &mut completion[plo..phi] {
                    *c = out_done;
                }
                makespan = makespan.max(out_done);
                pending_out = None;
            }
        }
        let load_at = dma_free.max(arrivals[i]);
        let hi = (i + capacity).min(n);
        let fill = arrivals[i..hi].iter().filter(|&&a| a <= load_at).count();
        let in_done = load_at + round.t_in;
        dma_free = in_done;
        transfer_ticks += round.t_in;
        dma_iv.push((load_at, in_done));
        for a in &mut admitted[i..i + fill] {
            *a = load_at;
        }
        let exec_start = in_done.max(chain_free);
        let exec_done = exec_start + exec;
        chain_free = exec_done;
        exec_ticks += exec;
        chain_iv.push((exec_start, exec_done));
        makespan = makespan.max(exec_done);
        // Drain the previous round's outputs while this one executes.
        if let Some((ready, lo, hi)) = pending_out.take() {
            let out_start = ready.max(dma_free);
            let out_done = out_start + round.t_out;
            dma_free = out_done;
            transfer_ticks += round.t_out;
            dma_iv.push((out_start, out_done));
            for c in &mut completion[lo..hi] {
                *c = out_done;
            }
            makespan = makespan.max(out_done);
        }
        pending_out = Some((exec_done, i, i + fill));
        fills.push(fill);
        i += fill;
    }
    if let Some((ready, lo, hi)) = pending_out {
        let out_start = ready.max(dma_free);
        let out_done = out_start + round.t_out;
        transfer_ticks += round.t_out;
        dma_iv.push((out_start, out_done));
        for c in &mut completion[lo..hi] {
            *c = out_done;
        }
        makespan = makespan.max(out_done);
    }
    StreamOutcome {
        admitted_ticks: admitted,
        completion_ticks: completion,
        round_fills: fills,
        exec_ticks,
        transfer_ticks,
        overlapped_ticks: intervals_intersection(&dma_iv, &chain_iv),
        makespan_ticks: makespan,
        fast_forwarded_rounds: 0,
        double_buffered: true,
    }
}

/// Total intersection of two interval lists, each sorted by start and
/// internally non-overlapping (each models one serially reused
/// resource).
fn intervals_intersection(a: &[(Time, Time)], b: &[(Time, Time)]) -> u64 {
    let mut total = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::secs;
    use crate::sim::simulate_program;
    use sysgen::Platform;

    fn design(ks: Vec<usize>, m: usize, latencies: &[u64]) -> MultiSystemDesign {
        let platform = Platform::zcu106();
        let stages: Vec<(String, hls::HlsReport)> = latencies
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                (
                    format!("stage{i}"),
                    hls::HlsReport {
                        kernel: format!("stage{i}"),
                        clock_mhz: platform.default_clock_mhz,
                        latency_cycles: l,
                        luts: 2_314,
                        ffs: 2_999,
                        dsps: 15,
                        brams: 0,
                        loops: vec![],
                    },
                )
            })
            .collect();
        let memory = mnemosyne::MemorySubsystem {
            units: vec![],
            brams: 16,
            luts: 450,
            ffs: 250,
        };
        let cfg = sysgen::ProgramSystemConfig { ks, m };
        let host = sysgen::ProgramHostProgram {
            config: cfg.clone(),
            stage_names: stages.iter().map(|(n, _)| n.clone()).collect(),
            bytes_in_per_element: (121 + 2 * 1331) * 8,
            bytes_out_per_element: 1331 * 8,
            handoff_bytes_per_element: 0,
        };
        MultiSystemDesign::build(&platform, &stages, &memory, cfg, host).unwrap()
    }

    #[test]
    fn disabled_batching_is_tick_identical_to_sequential_runs() {
        let d = design(vec![2, 2], 4, &[100_000, 300_000]);
        let cfg = SimConfig::default();
        let n = 9;
        let out = simulate_batch_stream(&d, &cfg, &vec![0; n], 1, false);
        let single = simulate_program(&d, &SimConfig { elements: 1, ..cfg });
        let rt = secs(single.total_s);
        assert_eq!(out.makespan_ticks, n as u64 * rt);
        assert_eq!(out.exec_ticks, n as u64 * secs(single.exec_s));
        assert_eq!(out.transfer_ticks, n as u64 * secs(single.transfer_s));
        for (i, &c) in out.completion_ticks.iter().enumerate() {
            assert_eq!(c, (i as u64 + 1) * rt);
        }
        assert_eq!(out.rounds(), n);
        assert_eq!(out.fast_forwarded_rounds, n, "closed queue fast-forwards");
    }

    #[test]
    fn batching_coalesces_and_multiplies_throughput() {
        let d = design(vec![2], 8, &[200_000]);
        let cfg = SimConfig::default();
        let n = 64;
        let seq = simulate_batch_stream(&d, &cfg, &vec![0; n], 1, false);
        let batched = simulate_batch_stream(&d, &cfg, &vec![0; n], 8, false);
        assert_eq!(batched.rounds(), 8);
        assert_eq!(seq.rounds(), 64);
        // Same round cost, 8 requests per round: exactly 8x the rate.
        assert_eq!(batched.makespan_ticks * 8, seq.makespan_ticks);
    }

    #[test]
    fn staggered_arrivals_wait_for_work() {
        let d = design(vec![2], 4, &[200_000]);
        let cfg = SimConfig::default();
        let rt = program_round(&d, &cfg).total();
        // Second request arrives long after the first round finished.
        let late = 3 * rt;
        let out = simulate_batch_stream(&d, &cfg, &[0, late], 4, false);
        assert_eq!(out.round_fills, vec![1, 1]);
        assert_eq!(out.completion_ticks[0], rt);
        assert_eq!(out.admitted_ticks[1], late);
        assert_eq!(out.completion_ticks[1], late + rt);
    }

    #[test]
    fn overlap_hides_transfers_and_accounts_them() {
        let d = design(vec![2, 2], 4, &[200_000, 200_000]);
        let cfg = SimConfig::default();
        let n = 32;
        let serial = simulate_batch_stream(&d, &cfg, &vec![0; n], 4, false);
        let olap = simulate_batch_stream(&d, &cfg, &vec![0; n], 4, true);
        assert!(olap.makespan_ticks < serial.makespan_ticks);
        assert_eq!(olap.exec_ticks, serial.exec_ticks);
        assert_eq!(olap.transfer_ticks, serial.transfer_ticks);
        assert!(olap.overlapped_ticks > 0);
        assert!(olap.overlapped_ticks <= olap.transfer_ticks);
        let f = olap.overlap_fraction();
        assert!((0.0..=1.0).contains(&f));
        // Transfers are ~2% of the chain: nearly all of them hide.
        assert!(f > 0.5, "overlap fraction {f}");
    }

    #[test]
    fn sparse_arrivals_drain_outputs_without_waiting_for_the_next_request() {
        // Regression: the double-buffered scheduler must not hold a
        // finished round's output drain hostage to the *next* round's
        // input load — with an empty queue the DMA drains immediately,
        // so request 0's completion never depends on request 1's
        // arrival.
        let d = design(vec![2, 2], 4, &[200_000, 200_000]);
        let cfg = SimConfig::default();
        let rt = program_round(&d, &cfg).total();
        let late = 50 * rt;
        let olap = simulate_batch_stream(&d, &cfg, &[0, late], 4, true);
        let serial = simulate_batch_stream(&d, &cfg, &[0, late], 4, false);
        assert!(
            olap.completion_ticks[0] < late,
            "request 0 completed at {} — only after request 1 arrived at {late}",
            olap.completion_ticks[0]
        );
        // An isolated round gains nothing from double buffering: its
        // latency equals the serial round.
        assert_eq!(olap.completion_ticks[0], serial.completion_ticks[0]);
        assert_eq!(olap.completion_ticks[1], serial.completion_ticks[1]);
    }

    #[test]
    fn overlap_degrades_without_spare_plm_sets() {
        let d = design(vec![4], 4, &[200_000]);
        let cfg = SimConfig::default();
        let a = simulate_batch_stream(&d, &cfg, &[0; 8], 4, true);
        let b = simulate_batch_stream(&d, &cfg, &[0; 8], 4, false);
        assert_eq!(a, b);
    }

    #[test]
    fn capacity_clamps_to_plm_sets() {
        let d = design(vec![2], 4, &[200_000]);
        let cfg = SimConfig::default();
        let a = simulate_batch_stream(&d, &cfg, &[0; 8], 64, false);
        let b = simulate_batch_stream(&d, &cfg, &[0; 8], 4, false);
        assert_eq!(a, b);
    }

    #[test]
    fn intersection_is_symmetric_and_exact() {
        let a = [(0u64, 10u64), (20, 30)];
        let b = [(5u64, 25u64)];
        assert_eq!(intervals_intersection(&a, &b), 10);
        assert_eq!(intervals_intersection(&b, &a), 10);
        assert_eq!(intervals_intersection(&a, &[]), 0);
    }
}
