//! Multi-request batch-stream simulation: one compiled accelerator
//! system serving a queue of independent simulation requests.
//!
//! [`crate::sim::simulate_program`] answers "how long does *one* job of
//! `Ne` elements take"; a production service instead sees a stream of
//! independent invocations of the same compiled system, each with its
//! own input tensors. This module time-multiplexes the hardware across
//! that stream: requests are coalesced into hardware rounds (up to
//! `capacity` requests share the `m` PLM sets of one round), rounds
//! execute back to back, and with `overlap` set the single DMA engine
//! double-buffers — the input transfer of round `i+1` and the output
//! drain of round `i-1` run while round `i` computes.
//!
//! Round costs come from [`crate::sim::program_round`], the same
//! closed-form tick arithmetic `simulate_program` uses, so:
//!
//! * with `capacity = 1` and `overlap = false` (batching disabled) the
//!   stream is **tick-identical** to running `simulate_program` once per
//!   request back to back, and
//! * as in the serial simulator, nothing inside a round needs an event
//!   queue — each round is closed tick arithmetic, and once every
//!   remaining request has arrived the tail of the schedule collapses
//!   into a single multiplication (**closed-tick fast-forward**; see
//!   [`StreamOutcome::fast_forwarded_rounds`]).

use crate::des::Time;
use crate::fault::{FaultPlan, RecoverySpec};
use crate::sim::{program_round, ProgramRound, SimConfig};
use sysgen::MultiSystemDesign;

/// Timing outcome of serving a request stream on one system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Tick at which each request's round started loading (its admission
    /// to the hardware), in arrival order.
    pub admitted_ticks: Vec<Time>,
    /// Tick at which each request's outputs finished draining, in
    /// arrival order.
    pub completion_ticks: Vec<Time>,
    /// Requests coalesced into each hardware round, dispatch order.
    pub round_fills: Vec<usize>,
    /// Accumulated kernel-execution ticks across all rounds.
    pub exec_ticks: u64,
    /// Accumulated DMA ticks across all rounds.
    pub transfer_ticks: u64,
    /// Ticks during which the DMA engine and the accelerator chain were
    /// busy simultaneously (transfers hidden behind compute; 0 for the
    /// serial schedule).
    pub overlapped_ticks: u64,
    /// End of the last output drain.
    pub makespan_ticks: Time,
    /// Rounds resolved by the closed-tick fast-forward instead of the
    /// per-round loop.
    pub fast_forwarded_rounds: usize,
    /// Whether the double-buffered scheduler ran (requested overlap AND
    /// every stage had a spare PLM set) — `overlapped_ticks` can still
    /// be 0 if rounds were too sparse to ever coincide.
    pub double_buffered: bool,
}

impl StreamOutcome {
    /// Number of hardware rounds dispatched.
    pub fn rounds(&self) -> usize {
        self.round_fills.len()
    }

    /// Fraction of DMA time hidden behind compute (0 when there were no
    /// transfers).
    pub fn overlap_fraction(&self) -> f64 {
        if self.transfer_ticks == 0 {
            0.0
        } else {
            self.overlapped_ticks as f64 / self.transfer_ticks as f64
        }
    }
}

/// Serve `arrivals` (sorted request-arrival ticks) on `design`.
///
/// `capacity` is the batch policy's fill limit per hardware round,
/// clamped to `[1, m]`; admission is greedy — a round takes every
/// request that has arrived by its load time, up to `capacity`, and
/// never idles while at least one request is queued. A round always
/// moves all `m` PLM sets through the DMA and runs every stage's full
/// `m/k_i` batch schedule (the host program is compiled for `m`; unused
/// slots carry don't-care data), so round cost is independent of fill.
///
/// `overlap` requests double-buffered DMA; like
/// [`crate::sim::simulate_program`] it degrades to the serial schedule
/// unless every stage keeps a spare PLM set (`m >= 2·k_i`).
pub fn simulate_batch_stream(
    design: &MultiSystemDesign,
    cfg: &SimConfig,
    arrivals: &[Time],
    capacity: usize,
    overlap: bool,
) -> StreamOutcome {
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be sorted"
    );
    let capacity = capacity.clamp(1, design.config.m);
    let round = program_round(design, cfg);
    let overlap = overlap && design.config.ks.iter().all(|&k| design.config.m >= 2 * k);
    if overlap {
        stream_overlapped(arrivals, capacity, &round)
    } else {
        stream_serial(arrivals, capacity, &round)
    }
}

/// The serial schedule: rounds execute strictly one after another
/// (`in → exec → out`), the hardware idling only when the queue is
/// empty. Once the last request has arrived, the remaining rounds are
/// identical and fast-forward by multiplication.
fn stream_serial(
    arrivals: &[Time],
    capacity: usize,
    round: &crate::sim::ProgramRound,
) -> StreamOutcome {
    let n = arrivals.len();
    let rt = round.total();
    let exec = round.exec();
    let dma = round.t_in + round.t_out;
    let mut admitted = vec![0u64; n];
    let mut completion = vec![0u64; n];
    let mut fills = Vec::new();
    let mut exec_ticks = 0u64;
    let mut transfer_ticks = 0u64;
    let mut fast_forwarded = 0usize;
    let mut now: Time = 0;
    let mut i = 0usize;
    while i < n {
        if arrivals[i] > now {
            now = arrivals[i];
        }
        if arrivals[n - 1] <= now {
            // Closed-tick fast-forward: the whole backlog is queued, so
            // the remaining rounds are identical — place them
            // arithmetically instead of looping.
            let remaining = n - i;
            let rounds = remaining.div_ceil(capacity);
            for b in 0..rounds {
                let lo = i + b * capacity;
                let hi = (lo + capacity).min(n);
                fills.push(hi - lo);
                for r in lo..hi {
                    admitted[r] = now + b as u64 * rt;
                    completion[r] = now + (b as u64 + 1) * rt;
                }
            }
            exec_ticks += rounds as u64 * exec;
            transfer_ticks += rounds as u64 * dma;
            now += rounds as u64 * rt;
            fast_forwarded += rounds;
            break;
        }
        // Greedy admission: everything arrived by the round start, up to
        // capacity (at least one — `arrivals[i] <= now` here).
        let hi = (i + capacity).min(n);
        let fill = arrivals[i..hi].iter().filter(|&&a| a <= now).count();
        for r in i..i + fill {
            admitted[r] = now;
            completion[r] = now + rt;
        }
        fills.push(fill);
        exec_ticks += exec;
        transfer_ticks += dma;
        now += rt;
        i += fill;
    }
    StreamOutcome {
        admitted_ticks: admitted,
        completion_ticks: completion,
        round_fills: fills,
        exec_ticks,
        transfer_ticks,
        overlapped_ticks: 0,
        makespan_ticks: now,
        fast_forwarded_rounds: fast_forwarded,
        double_buffered: false,
    }
}

/// Double-buffered schedule: the DMA engine and the accelerator chain
/// are two serially reused resources. Round `r+1`'s inputs load and
/// round `r-1`'s outputs drain while round `r` computes; a request
/// completes when its round's outputs have drained.
fn stream_overlapped(
    arrivals: &[Time],
    capacity: usize,
    round: &crate::sim::ProgramRound,
) -> StreamOutcome {
    let n = arrivals.len();
    let exec = round.exec();
    let mut admitted = vec![0u64; n];
    let mut completion = vec![0u64; n];
    let mut fills = Vec::new();
    let mut exec_ticks = 0u64;
    let mut transfer_ticks = 0u64;
    // Busy intervals of the two resources, for the overlap accounting.
    let mut dma_iv: Vec<(Time, Time)> = Vec::new();
    let mut chain_iv: Vec<(Time, Time)> = Vec::new();
    let mut dma_free: Time = 0;
    let mut chain_free: Time = 0;
    let mut makespan: Time = 0;
    // (exec_done, first request, one past last request) of the round
    // whose outputs still wait to drain.
    let mut pending_out: Option<(Time, usize, usize)> = None;
    let mut i = 0usize;
    while i < n {
        // Sparse queue: if the pending round's outputs can fully drain
        // before the next request's input could even start loading,
        // drain them now — the DMA must not idle on a finished round
        // just because the queue is empty. (When both are ready the
        // input keeps priority, as below: filling keeps the chain busy.)
        if let Some((ready, plo, phi)) = pending_out {
            let out_start = ready.max(dma_free);
            if out_start + round.t_out <= arrivals[i] {
                let out_done = out_start + round.t_out;
                dma_free = out_done;
                transfer_ticks += round.t_out;
                dma_iv.push((out_start, out_done));
                for c in &mut completion[plo..phi] {
                    *c = out_done;
                }
                makespan = makespan.max(out_done);
                pending_out = None;
            }
        }
        let load_at = dma_free.max(arrivals[i]);
        let hi = (i + capacity).min(n);
        let fill = arrivals[i..hi].iter().filter(|&&a| a <= load_at).count();
        let in_done = load_at + round.t_in;
        dma_free = in_done;
        transfer_ticks += round.t_in;
        dma_iv.push((load_at, in_done));
        for a in &mut admitted[i..i + fill] {
            *a = load_at;
        }
        let exec_start = in_done.max(chain_free);
        let exec_done = exec_start + exec;
        chain_free = exec_done;
        exec_ticks += exec;
        chain_iv.push((exec_start, exec_done));
        makespan = makespan.max(exec_done);
        // Drain the previous round's outputs while this one executes.
        if let Some((ready, lo, hi)) = pending_out.take() {
            let out_start = ready.max(dma_free);
            let out_done = out_start + round.t_out;
            dma_free = out_done;
            transfer_ticks += round.t_out;
            dma_iv.push((out_start, out_done));
            for c in &mut completion[lo..hi] {
                *c = out_done;
            }
            makespan = makespan.max(out_done);
        }
        pending_out = Some((exec_done, i, i + fill));
        fills.push(fill);
        i += fill;
    }
    if let Some((ready, lo, hi)) = pending_out {
        let out_start = ready.max(dma_free);
        let out_done = out_start + round.t_out;
        transfer_ticks += round.t_out;
        dma_iv.push((out_start, out_done));
        for c in &mut completion[lo..hi] {
            *c = out_done;
        }
        makespan = makespan.max(out_done);
    }
    StreamOutcome {
        admitted_ticks: admitted,
        completion_ticks: completion,
        round_fills: fills,
        exec_ticks,
        transfer_ticks,
        overlapped_ticks: intervals_intersection(&dma_iv, &chain_iv),
        makespan_ticks: makespan,
        fast_forwarded_rounds: 0,
        double_buffered: true,
    }
}

/// Terminal status of one request under the fault-aware scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamStatus {
    /// Outputs drained and passed their checksum (inside the deadline,
    /// when one was set).
    Completed,
    /// The per-request deadline expired before the request could
    /// complete.
    TimedOut,
    /// Dropped through no fault of its own: the board died and never
    /// recovered.
    Shed,
    /// Every allowed attempt failed (transient errors or corruption).
    Failed,
}

/// [`StreamOutcome`] plus per-request reliability data from the
/// fault-aware scheduler. For requests that never completed,
/// `completion_ticks` holds the tick the scheduler gave up
/// (== `resolved_ticks`).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStreamOutcome {
    pub stream: StreamOutcome,
    /// Terminal status per request, arrival order.
    pub statuses: Vec<StreamStatus>,
    /// Hardware rounds each request participated in.
    pub attempts: Vec<u32>,
    /// Tick at which each request resolved (completion, or the moment
    /// the scheduler gave up on it), arrival order.
    pub resolved_ticks: Vec<Time>,
    /// Rounds whose input DMA stalled.
    pub dma_stalls: usize,
    /// Rounds aborted by a transient DMA/compute error.
    pub transient_faults: usize,
    /// Per-request checksum failures detected at drain.
    pub corrupt_payloads: usize,
    /// Requests requeued because the board failed mid-round.
    pub outage_requeues: usize,
}

impl FaultStreamOutcome {
    /// Wrap a fault-free [`StreamOutcome`]: every request completed on
    /// its first attempt.
    fn clean(stream: StreamOutcome) -> FaultStreamOutcome {
        let n = stream.completion_ticks.len();
        FaultStreamOutcome {
            statuses: vec![StreamStatus::Completed; n],
            attempts: vec![1; n],
            resolved_ticks: stream.completion_ticks.clone(),
            stream,
            dma_stalls: 0,
            transient_faults: 0,
            corrupt_payloads: 0,
            outage_requeues: 0,
        }
    }
}

/// Serve `arrivals` under a [`FaultPlan`] and [`RecoverySpec`].
///
/// With an unarmed plan and no deadline this runs *the same code* as
/// [`simulate_batch_stream`] — fast-forward included — so the fault-free
/// configuration is tick- and bit-identical to the plain stream by
/// construction. An armed plan (or a deadline) switches to the
/// fault-aware round loop, which walks every round individually: the
/// closed-tick fast-forward is bypassed, because a fault inside a
/// collapsed backlog would otherwise be skipped silently.
///
/// Board-outage semantics are defined on the serial round loop (a
/// failure tears down DMA and chain at one tick), so an armed outage
/// degrades double buffering to the serial schedule; the other fault
/// classes keep the overlapped scheduler.
pub fn simulate_faulty_stream(
    design: &MultiSystemDesign,
    cfg: &SimConfig,
    arrivals: &[Time],
    capacity: usize,
    overlap: bool,
    plan: &FaultPlan,
    rec: &RecoverySpec,
) -> FaultStreamOutcome {
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be sorted"
    );
    let capacity = capacity.clamp(1, design.config.m);
    let round = program_round(design, cfg);
    let overlap = overlap && design.config.ks.iter().all(|&k| design.config.m >= 2 * k);
    if !plan.armed() && rec.deadline_ticks.is_none() {
        let stream = if overlap {
            stream_overlapped(arrivals, capacity, &round)
        } else {
            stream_serial(arrivals, capacity, &round)
        };
        return FaultStreamOutcome::clean(stream);
    }
    if overlap && plan.outage.is_none() {
        stream_faulty_overlapped(arrivals, capacity, &round, plan, rec)
    } else {
        stream_faulty_serial(arrivals, capacity, &round, plan, rec)
    }
}

/// A request still waiting (or retrying) in the fault-aware scheduler.
#[derive(Debug, Clone)]
pub(crate) struct Pend {
    /// Arrival-order position (the request's identity in fault draws).
    pub(crate) pos: usize,
    pub(crate) arrival: Time,
    /// Earliest tick the request may join a round (arrival, then
    /// retry-backoff or outage-recovery times).
    pub(crate) eligible: Time,
    pub(crate) attempts: u32,
    pub(crate) failures: u32,
}

/// Per-request resolution arrays + aggregate counters shared by both
/// fault-aware loops.
pub(crate) struct FaultAcc {
    pub(crate) admitted: Vec<Time>,
    pub(crate) completion: Vec<Time>,
    pub(crate) resolved: Vec<Time>,
    pub(crate) statuses: Vec<StreamStatus>,
    pub(crate) attempts: Vec<u32>,
    pub(crate) fills: Vec<usize>,
    pub(crate) exec_ticks: u64,
    pub(crate) transfer_ticks: u64,
    pub(crate) makespan: Time,
    pub(crate) dma_stalls: usize,
    pub(crate) transient_faults: usize,
    pub(crate) corrupt_payloads: usize,
    pub(crate) outage_requeues: usize,
}

impl FaultAcc {
    pub(crate) fn new(n: usize) -> FaultAcc {
        FaultAcc {
            admitted: vec![0; n],
            completion: vec![0; n],
            resolved: vec![0; n],
            statuses: vec![StreamStatus::Completed; n],
            attempts: vec![0; n],
            fills: Vec::new(),
            exec_ticks: 0,
            transfer_ticks: 0,
            makespan: 0,
            dma_stalls: 0,
            transient_faults: 0,
            corrupt_payloads: 0,
            outage_requeues: 0,
        }
    }

    /// Record a request's terminal state.
    pub(crate) fn resolve(&mut self, p: &Pend, status: StreamStatus, at: Time) {
        self.statuses[p.pos] = status;
        self.attempts[p.pos] = p.attempts;
        self.resolved[p.pos] = at;
        self.completion[p.pos] = at;
        self.makespan = self.makespan.max(at);
    }

    pub(crate) fn finish(self, overlapped_ticks: u64, double_buffered: bool) -> FaultStreamOutcome {
        FaultStreamOutcome {
            stream: StreamOutcome {
                admitted_ticks: self.admitted,
                completion_ticks: self.completion,
                round_fills: self.fills,
                exec_ticks: self.exec_ticks,
                transfer_ticks: self.transfer_ticks,
                overlapped_ticks,
                makespan_ticks: self.makespan,
                fast_forwarded_rounds: 0,
                double_buffered,
            },
            statuses: self.statuses,
            attempts: self.attempts,
            resolved_ticks: self.resolved,
            dma_stalls: self.dma_stalls,
            transient_faults: self.transient_faults,
            corrupt_payloads: self.corrupt_payloads,
            outage_requeues: self.outage_requeues,
        }
    }
}

/// Time out every eligible request whose latency budget cannot cover
/// even a fault-free round starting at `start`. Returns true if any
/// request was shed (the caller re-derives its round start).
pub(crate) fn shed_expired(
    pending: &mut Vec<Pend>,
    acc: &mut FaultAcc,
    rec: &RecoverySpec,
    start: Time,
    clean_latency: u64,
) -> bool {
    let Some(d) = rec.deadline_ticks else {
        return false;
    };
    let mut timed_out = false;
    // retain() can't reach `acc`, so collect then remove.
    let expired: Vec<usize> = pending
        .iter()
        .enumerate()
        .filter(|(_, p)| p.eligible <= start && p.arrival.saturating_add(d) < start + clean_latency)
        .map(|(j, _)| j)
        .collect();
    for &j in expired.iter().rev() {
        let p = pending.remove(j);
        acc.resolve(&p, StreamStatus::TimedOut, start);
        timed_out = true;
    }
    timed_out
}

/// The serial fault-aware loop: rounds strictly one after another, every
/// round walked individually (no fast-forward), faults drawn from the
/// plan, failed work requeued under the recovery spec.
fn stream_faulty_serial(
    arrivals: &[Time],
    capacity: usize,
    round: &ProgramRound,
    plan: &FaultPlan,
    rec: &RecoverySpec,
) -> FaultStreamOutcome {
    let n = arrivals.len();
    let exec = round.exec();
    let rt = round.total();
    let mut acc = FaultAcc::new(n);
    let mut pending: Vec<Pend> = arrivals
        .iter()
        .enumerate()
        .map(|(pos, &a)| Pend {
            pos,
            arrival: a,
            eligible: a,
            attempts: 0,
            failures: 0,
        })
        .collect();
    let mut now: Time = 0;
    let mut round_idx: u64 = 0;
    while !pending.is_empty() {
        let t_min = pending.iter().map(|p| p.eligible).min().unwrap();
        let mut start = now.max(t_min);
        // Admission pauses while the board is down; without recovery the
        // rest of the queue sheds at the failure tick.
        if let Some(o) = plan.outage {
            if start >= o.fail_at {
                match o.recover_at {
                    Some(r) if start < r => start = r,
                    Some(_) => {}
                    None => {
                        let at = now.max(o.fail_at);
                        for p in std::mem::take(&mut pending) {
                            acc.resolve(&p, StreamStatus::Shed, at);
                        }
                        break;
                    }
                }
            }
        }
        if shed_expired(&mut pending, &mut acc, rec, start, rt) {
            continue;
        }
        // Admit up to `capacity` eligible requests, stable arrival
        // order (requeued work keeps its original priority).
        let fill: Vec<usize> = pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.eligible <= start)
            .map(|(j, _)| j)
            .take(capacity)
            .collect();
        round_idx += 1;
        let stalled = plan.dma_stalls(round_idx);
        let t_in = if stalled {
            acc.dma_stalls += 1;
            2 * round.t_in
        } else {
            round.t_in
        };
        let in_done = start + t_in;
        let exec_done = in_done + exec;
        let out_done = exec_done + round.t_out;
        // Hard failure mid-round: in-flight work is lost at the failure
        // tick. The aborted round bills nothing (its timers died with
        // the board) and does not consume an attempt — the requeue waits
        // for recovery.
        if let Some(o) = plan.outage {
            if o.fail_at > start && o.fail_at <= out_done {
                acc.outage_requeues += fill.len();
                for &j in &fill {
                    pending[j].eligible = o.recover_at.unwrap_or(Time::MAX);
                }
                now = o.fail_at;
                acc.makespan = acc.makespan.max(now);
                continue;
            }
        }
        for &j in &fill {
            let p = &mut pending[j];
            p.attempts += 1;
            acc.admitted[p.pos] = start;
        }
        acc.fills.push(fill.len());
        if plan.round_fails(round_idx) {
            // Transient error: the round aborts at the error interrupt
            // (end of execution); outputs never drain, payloads lost.
            acc.transient_faults += 1;
            acc.exec_ticks += exec;
            acc.transfer_ticks += t_in;
            now = exec_done;
            acc.makespan = acc.makespan.max(now);
            for &j in fill.iter().rev() {
                pending[j].failures += 1;
                if pending[j].failures > rec.max_retries {
                    let p = pending.remove(j);
                    acc.resolve(&p, StreamStatus::Failed, exec_done);
                } else {
                    let f = pending[j].failures;
                    pending[j].eligible = exec_done + rec.backoff_after(f);
                }
            }
            continue;
        }
        // Round completes: outputs drain and checksums verify. A
        // corrupted payload retries alone; everyone else resolves.
        acc.exec_ticks += exec;
        acc.transfer_ticks += t_in + round.t_out;
        now = out_done;
        acc.makespan = acc.makespan.max(now);
        for &j in fill.iter().rev() {
            let p = &mut pending[j];
            if plan.corrupts(p.pos as u64, p.attempts) {
                acc.corrupt_payloads += 1;
                p.failures += 1;
                if p.failures > rec.max_retries {
                    let p = pending.remove(j);
                    acc.resolve(&p, StreamStatus::Failed, out_done);
                } else {
                    let f = p.failures;
                    pending[j].eligible = out_done + rec.backoff_after(f);
                }
            } else {
                let status = match rec.deadline_ticks {
                    Some(d) if out_done > p.arrival.saturating_add(d) => StreamStatus::TimedOut,
                    _ => StreamStatus::Completed,
                };
                let p = pending.remove(j);
                acc.resolve(&p, status, out_done);
            }
        }
    }
    acc.finish(0, false)
}

/// Drain one finished round's outputs in the overlapped fault loop:
/// checksum each payload, resolve the clean ones, requeue (or fail) the
/// corrupted ones.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drain_faulty(
    ready: Time,
    ents: Vec<Pend>,
    round: &ProgramRound,
    plan: &FaultPlan,
    rec: &RecoverySpec,
    acc: &mut FaultAcc,
    pending: &mut Vec<Pend>,
    dma_free: &mut Time,
    dma_iv: &mut Vec<(Time, Time)>,
) {
    let out_start = ready.max(*dma_free);
    let out_done = out_start + round.t_out;
    *dma_free = out_done;
    acc.transfer_ticks += round.t_out;
    dma_iv.push((out_start, out_done));
    acc.makespan = acc.makespan.max(out_done);
    let mut requeued = false;
    for mut p in ents {
        if plan.corrupts(p.pos as u64, p.attempts) {
            acc.corrupt_payloads += 1;
            p.failures += 1;
            if p.failures > rec.max_retries {
                acc.resolve(&p, StreamStatus::Failed, out_done);
            } else {
                p.eligible = out_done + rec.backoff_after(p.failures);
                pending.push(p);
                requeued = true;
            }
        } else {
            let status = match rec.deadline_ticks {
                Some(d) if out_done > p.arrival.saturating_add(d) => StreamStatus::TimedOut,
                _ => StreamStatus::Completed,
            };
            acc.resolve(&p, status, out_done);
        }
    }
    if requeued {
        // Requeued work keeps its original admission priority.
        pending.sort_by_key(|p| p.pos);
    }
}

/// The double-buffered fault-aware loop (no outage — see
/// [`simulate_faulty_stream`]): DMA and chain as two serially reused
/// resources, with transient errors suppressing a round's drain and
/// corrupted payloads retrying after theirs.
fn stream_faulty_overlapped(
    arrivals: &[Time],
    capacity: usize,
    round: &ProgramRound,
    plan: &FaultPlan,
    rec: &RecoverySpec,
) -> FaultStreamOutcome {
    let n = arrivals.len();
    let exec = round.exec();
    let rt = round.total();
    let mut acc = FaultAcc::new(n);
    let mut pending: Vec<Pend> = arrivals
        .iter()
        .enumerate()
        .map(|(pos, &a)| Pend {
            pos,
            arrival: a,
            eligible: a,
            attempts: 0,
            failures: 0,
        })
        .collect();
    let mut dma_iv: Vec<(Time, Time)> = Vec::new();
    let mut chain_iv: Vec<(Time, Time)> = Vec::new();
    let mut dma_free: Time = 0;
    let mut chain_free: Time = 0;
    // The round whose outputs still wait to drain: (exec_done, its
    // requests).
    let mut pending_out: Option<(Time, Vec<Pend>)> = None;
    let mut round_idx: u64 = 0;
    while !pending.is_empty() || pending_out.is_some() {
        if pending.is_empty() {
            let (ready, ents) = pending_out.take().unwrap();
            drain_faulty(
                ready,
                ents,
                round,
                plan,
                rec,
                &mut acc,
                &mut pending,
                &mut dma_free,
                &mut dma_iv,
            );
            continue;
        }
        let t_min = pending.iter().map(|p| p.eligible).min().unwrap();
        // Sparse queue: drain a finished round if it fits before the
        // next load could even start (the drain may requeue corrupted
        // requests, so re-derive afterwards).
        if let Some((ready, _)) = &pending_out {
            let out_start = (*ready).max(dma_free);
            if out_start + round.t_out <= t_min {
                let (ready, ents) = pending_out.take().unwrap();
                drain_faulty(
                    ready,
                    ents,
                    round,
                    plan,
                    rec,
                    &mut acc,
                    &mut pending,
                    &mut dma_free,
                    &mut dma_iv,
                );
                continue;
            }
        }
        let load_at = dma_free.max(t_min);
        if shed_expired(&mut pending, &mut acc, rec, load_at, rt) {
            continue;
        }
        // Admit and pull the round's requests out of the queue.
        let fill: Vec<usize> = pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.eligible <= load_at)
            .map(|(j, _)| j)
            .take(capacity)
            .collect();
        let mut ents: Vec<Pend> = Vec::with_capacity(fill.len());
        for &j in fill.iter().rev() {
            ents.push(pending.remove(j));
        }
        ents.reverse();
        round_idx += 1;
        let stalled = plan.dma_stalls(round_idx);
        let t_in = if stalled {
            acc.dma_stalls += 1;
            2 * round.t_in
        } else {
            round.t_in
        };
        let in_done = load_at + t_in;
        dma_free = in_done;
        acc.transfer_ticks += t_in;
        dma_iv.push((load_at, in_done));
        for p in &mut ents {
            p.attempts += 1;
            acc.admitted[p.pos] = load_at;
        }
        acc.fills.push(ents.len());
        let exec_start = in_done.max(chain_free);
        let exec_done = exec_start + exec;
        chain_free = exec_done;
        acc.exec_ticks += exec;
        chain_iv.push((exec_start, exec_done));
        acc.makespan = acc.makespan.max(exec_done);
        // Drain the previous round's outputs while this one executes.
        if let Some((ready, prev)) = pending_out.take() {
            drain_faulty(
                ready,
                prev,
                round,
                plan,
                rec,
                &mut acc,
                &mut pending,
                &mut dma_free,
                &mut dma_iv,
            );
        }
        if plan.round_fails(round_idx) {
            // Transient error at the end of execution: no drain, the
            // round's payloads are lost.
            acc.transient_faults += 1;
            let mut requeued = false;
            for mut p in ents {
                p.failures += 1;
                if p.failures > rec.max_retries {
                    acc.resolve(&p, StreamStatus::Failed, exec_done);
                } else {
                    p.eligible = exec_done + rec.backoff_after(p.failures);
                    pending.push(p);
                    requeued = true;
                }
            }
            if requeued {
                pending.sort_by_key(|p| p.pos);
            }
        } else {
            pending_out = Some((exec_done, ents));
        }
    }
    let overlapped = intervals_intersection(&dma_iv, &chain_iv);
    acc.finish(overlapped, true)
}

/// Total intersection of two interval lists, each sorted by start and
/// internally non-overlapping (each models one serially reused
/// resource).
pub(crate) fn intervals_intersection(a: &[(Time, Time)], b: &[(Time, Time)]) -> u64 {
    let mut total = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::secs;
    use crate::sim::simulate_program;
    use sysgen::Platform;

    fn design(ks: Vec<usize>, m: usize, latencies: &[u64]) -> MultiSystemDesign {
        let platform = Platform::zcu106();
        let stages: Vec<(String, hls::HlsReport)> = latencies
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                (
                    format!("stage{i}"),
                    hls::HlsReport {
                        kernel: format!("stage{i}"),
                        clock_mhz: platform.default_clock_mhz,
                        latency_cycles: l,
                        luts: 2_314,
                        ffs: 2_999,
                        dsps: 15,
                        brams: 0,
                        loops: vec![],
                    },
                )
            })
            .collect();
        let memory = mnemosyne::MemorySubsystem {
            units: vec![],
            brams: 16,
            luts: 450,
            ffs: 250,
        };
        let cfg = sysgen::ProgramSystemConfig { ks, m };
        let host = sysgen::ProgramHostProgram {
            config: cfg.clone(),
            stage_names: stages.iter().map(|(n, _)| n.clone()).collect(),
            bytes_in_per_element: (121 + 2 * 1331) * 8,
            bytes_out_per_element: 1331 * 8,
            handoff_bytes_per_element: 0,
        };
        MultiSystemDesign::build(&platform, &stages, &memory, cfg, host).unwrap()
    }

    #[test]
    fn disabled_batching_is_tick_identical_to_sequential_runs() {
        let d = design(vec![2, 2], 4, &[100_000, 300_000]);
        let cfg = SimConfig::default();
        let n = 9;
        let out = simulate_batch_stream(&d, &cfg, &vec![0; n], 1, false);
        let single = simulate_program(&d, &SimConfig { elements: 1, ..cfg });
        let rt = secs(single.total_s);
        assert_eq!(out.makespan_ticks, n as u64 * rt);
        assert_eq!(out.exec_ticks, n as u64 * secs(single.exec_s));
        assert_eq!(out.transfer_ticks, n as u64 * secs(single.transfer_s));
        for (i, &c) in out.completion_ticks.iter().enumerate() {
            assert_eq!(c, (i as u64 + 1) * rt);
        }
        assert_eq!(out.rounds(), n);
        assert_eq!(out.fast_forwarded_rounds, n, "closed queue fast-forwards");
    }

    #[test]
    fn batching_coalesces_and_multiplies_throughput() {
        let d = design(vec![2], 8, &[200_000]);
        let cfg = SimConfig::default();
        let n = 64;
        let seq = simulate_batch_stream(&d, &cfg, &vec![0; n], 1, false);
        let batched = simulate_batch_stream(&d, &cfg, &vec![0; n], 8, false);
        assert_eq!(batched.rounds(), 8);
        assert_eq!(seq.rounds(), 64);
        // Same round cost, 8 requests per round: exactly 8x the rate.
        assert_eq!(batched.makespan_ticks * 8, seq.makespan_ticks);
    }

    #[test]
    fn staggered_arrivals_wait_for_work() {
        let d = design(vec![2], 4, &[200_000]);
        let cfg = SimConfig::default();
        let rt = program_round(&d, &cfg).total();
        // Second request arrives long after the first round finished.
        let late = 3 * rt;
        let out = simulate_batch_stream(&d, &cfg, &[0, late], 4, false);
        assert_eq!(out.round_fills, vec![1, 1]);
        assert_eq!(out.completion_ticks[0], rt);
        assert_eq!(out.admitted_ticks[1], late);
        assert_eq!(out.completion_ticks[1], late + rt);
    }

    #[test]
    fn overlap_hides_transfers_and_accounts_them() {
        let d = design(vec![2, 2], 4, &[200_000, 200_000]);
        let cfg = SimConfig::default();
        let n = 32;
        let serial = simulate_batch_stream(&d, &cfg, &vec![0; n], 4, false);
        let olap = simulate_batch_stream(&d, &cfg, &vec![0; n], 4, true);
        assert!(olap.makespan_ticks < serial.makespan_ticks);
        assert_eq!(olap.exec_ticks, serial.exec_ticks);
        assert_eq!(olap.transfer_ticks, serial.transfer_ticks);
        assert!(olap.overlapped_ticks > 0);
        assert!(olap.overlapped_ticks <= olap.transfer_ticks);
        let f = olap.overlap_fraction();
        assert!((0.0..=1.0).contains(&f));
        // Transfers are ~2% of the chain: nearly all of them hide.
        assert!(f > 0.5, "overlap fraction {f}");
    }

    #[test]
    fn sparse_arrivals_drain_outputs_without_waiting_for_the_next_request() {
        // Regression: the double-buffered scheduler must not hold a
        // finished round's output drain hostage to the *next* round's
        // input load — with an empty queue the DMA drains immediately,
        // so request 0's completion never depends on request 1's
        // arrival.
        let d = design(vec![2, 2], 4, &[200_000, 200_000]);
        let cfg = SimConfig::default();
        let rt = program_round(&d, &cfg).total();
        let late = 50 * rt;
        let olap = simulate_batch_stream(&d, &cfg, &[0, late], 4, true);
        let serial = simulate_batch_stream(&d, &cfg, &[0, late], 4, false);
        assert!(
            olap.completion_ticks[0] < late,
            "request 0 completed at {} — only after request 1 arrived at {late}",
            olap.completion_ticks[0]
        );
        // An isolated round gains nothing from double buffering: its
        // latency equals the serial round.
        assert_eq!(olap.completion_ticks[0], serial.completion_ticks[0]);
        assert_eq!(olap.completion_ticks[1], serial.completion_ticks[1]);
    }

    #[test]
    fn overlap_degrades_without_spare_plm_sets() {
        let d = design(vec![4], 4, &[200_000]);
        let cfg = SimConfig::default();
        let a = simulate_batch_stream(&d, &cfg, &[0; 8], 4, true);
        let b = simulate_batch_stream(&d, &cfg, &[0; 8], 4, false);
        assert_eq!(a, b);
    }

    #[test]
    fn capacity_clamps_to_plm_sets() {
        let d = design(vec![2], 4, &[200_000]);
        let cfg = SimConfig::default();
        let a = simulate_batch_stream(&d, &cfg, &[0; 8], 64, false);
        let b = simulate_batch_stream(&d, &cfg, &[0; 8], 4, false);
        assert_eq!(a, b);
    }

    #[test]
    fn unarmed_plan_with_default_recovery_is_the_clean_scheduler() {
        // The fault-free configuration runs the very same scheduler
        // code: the whole StreamOutcome (fast-forward counter included)
        // must be equal, under both schedules.
        let d = design(vec![2, 2], 4, &[200_000, 200_000]);
        let cfg = SimConfig::default();
        for overlap in [false, true] {
            let clean = simulate_batch_stream(&d, &cfg, &[0; 16], 4, overlap);
            let f = simulate_faulty_stream(
                &d,
                &cfg,
                &[0; 16],
                4,
                overlap,
                &FaultPlan::none(),
                &RecoverySpec::default(),
            );
            assert_eq!(f.stream, clean);
            assert!(f.statuses.iter().all(|&s| s == StreamStatus::Completed));
            assert!(f.attempts.iter().all(|&a| a == 1));
            assert_eq!(f.resolved_ticks, clean.completion_ticks);
        }
    }

    #[test]
    fn armed_plan_bypasses_fast_forward_and_fires_mid_backlog() {
        // A closed backlog normally collapses via the closed-tick
        // fast-forward; a fault in the middle of that backlog must still
        // fire, so an armed plan walks every round.
        let d = design(vec![2], 4, &[200_000]);
        let cfg = SimConfig::default();
        let n = 16;
        let clean = simulate_batch_stream(&d, &cfg, &vec![0; n], 4, false);
        assert!(clean.fast_forwarded_rounds > 0, "backlog must fast-forward");
        // Find a seed whose first fault lands mid-backlog (not round 1).
        let plan = (0..1000)
            .map(|seed| FaultPlan::transient(seed, 0.3))
            .find(|p| !p.round_fails(1) && (2..=4).any(|r| p.round_fails(r)))
            .expect("no seed fired mid-backlog");
        let out = simulate_faulty_stream(
            &d,
            &cfg,
            &vec![0; n],
            4,
            false,
            &plan,
            &RecoverySpec::default(),
        );
        assert_eq!(
            out.stream.fast_forwarded_rounds, 0,
            "armed plan fast-forwarded"
        );
        assert!(out.transient_faults > 0, "mid-backlog fault never fired");
        assert!(
            out.stream.rounds() > 4,
            "failed rounds must be re-dispatched"
        );
        assert!(out.attempts.iter().any(|&a| a > 1));
        assert!(out.statuses.iter().all(|&s| s == StreamStatus::Completed));
        assert!(out.stream.makespan_ticks > clean.makespan_ticks);
    }

    #[test]
    fn deadline_only_fault_loop_matches_clean_ticks() {
        // A huge deadline arms the fault-aware loop without any faults:
        // its schedule must be tick-identical to the clean scheduler
        // (the fast-forward counter is the one allowed difference).
        let d = design(vec![2, 2], 4, &[200_000, 200_000]);
        let cfg = SimConfig::default();
        let rt = program_round(&d, &cfg).total();
        let rec = RecoverySpec {
            deadline_ticks: Some(u64::MAX),
            ..RecoverySpec::default()
        };
        let cases: Vec<Vec<Time>> = vec![
            vec![0; 16],
            vec![0, 0, rt / 2, rt, 3 * rt, 3 * rt, 50 * rt, 50 * rt + 1],
        ];
        for arrivals in &cases {
            for overlap in [false, true] {
                for capacity in [1, 3, 4] {
                    let clean = simulate_batch_stream(&d, &cfg, arrivals, capacity, overlap);
                    let f = simulate_faulty_stream(
                        &d,
                        &cfg,
                        arrivals,
                        capacity,
                        overlap,
                        &FaultPlan::none(),
                        &rec,
                    );
                    assert_eq!(f.stream.admitted_ticks, clean.admitted_ticks);
                    assert_eq!(f.stream.completion_ticks, clean.completion_ticks);
                    assert_eq!(f.stream.round_fills, clean.round_fills);
                    assert_eq!(f.stream.exec_ticks, clean.exec_ticks);
                    assert_eq!(f.stream.transfer_ticks, clean.transfer_ticks);
                    assert_eq!(f.stream.overlapped_ticks, clean.overlapped_ticks);
                    assert_eq!(f.stream.makespan_ticks, clean.makespan_ticks);
                    assert!(f.statuses.iter().all(|&s| s == StreamStatus::Completed));
                }
            }
        }
    }

    #[test]
    fn retries_are_capped_and_fail_structured() {
        // Every attempt corrupts: each request burns 1 + max_retries
        // attempts and fails.
        let d = design(vec![2], 4, &[200_000]);
        let cfg = SimConfig::default();
        let plan = FaultPlan {
            corrupt_rate: 1.0,
            ..FaultPlan::transient(5, 0.0)
        };
        let rec = RecoverySpec {
            max_retries: 2,
            ..RecoverySpec::default()
        };
        for overlap in [false, true] {
            let out = simulate_faulty_stream(&d, &cfg, &[0; 8], 4, overlap, &plan, &rec);
            assert!(out.statuses.iter().all(|&s| s == StreamStatus::Failed));
            assert!(out.attempts.iter().all(|&a| a == 3), "{:?}", out.attempts);
            assert_eq!(out.corrupt_payloads, 24);
        }
    }

    #[test]
    fn backoff_delays_retries_in_tick_space() {
        let d = design(vec![2], 4, &[200_000]);
        let cfg = SimConfig::default();
        let plan = FaultPlan::transient(1, 1.0);
        let slow = RecoverySpec {
            max_retries: 2,
            backoff_ticks: 1_000_000,
            backoff_cap_ticks: 0,
            deadline_ticks: None,
        };
        let fast = RecoverySpec {
            max_retries: 2,
            ..RecoverySpec::default()
        };
        let a = simulate_faulty_stream(&d, &cfg, &[0; 4], 4, false, &plan, &slow);
        let b = simulate_faulty_stream(&d, &cfg, &[0; 4], 4, false, &plan, &fast);
        assert!(a.stream.makespan_ticks >= b.stream.makespan_ticks + 3_000_000 - 1);
    }

    #[test]
    fn deadlines_shed_requests_that_cannot_finish() {
        let d = design(vec![2], 4, &[200_000]);
        let cfg = SimConfig::default();
        let rt = program_round(&d, &cfg).total();
        // Capacity 1: request k starts at k*rt, so with a deadline of
        // 2.5 rounds only the first few can make it.
        let rec = RecoverySpec {
            deadline_ticks: Some(rt * 5 / 2),
            ..RecoverySpec::default()
        };
        let out = simulate_faulty_stream(&d, &cfg, &[0; 8], 1, false, &FaultPlan::none(), &rec);
        let done = out
            .statuses
            .iter()
            .filter(|&&s| s == StreamStatus::Completed)
            .count();
        let timed = out
            .statuses
            .iter()
            .filter(|&&s| s == StreamStatus::TimedOut)
            .count();
        assert_eq!(done, 2, "{:?}", out.statuses);
        assert_eq!(timed, 6);
        // Completed requests all made their deadline.
        for (i, &s) in out.statuses.iter().enumerate() {
            if s == StreamStatus::Completed {
                assert!(out.resolved_ticks[i] <= rec.deadline_ticks.unwrap());
            }
        }
    }

    #[test]
    fn outage_without_recovery_sheds_the_queue() {
        let d = design(vec![2], 4, &[200_000]);
        let cfg = SimConfig::default();
        let rt = program_round(&d, &cfg).total();
        let plan = FaultPlan {
            outage: Some(crate::fault::Outage {
                fail_at: rt + rt / 2,
                recover_at: None,
            }),
            ..FaultPlan::none()
        };
        let out = simulate_faulty_stream(
            &d,
            &cfg,
            &[0; 8],
            4,
            true, // degrades to serial under an armed outage
            &plan,
            &RecoverySpec::default(),
        );
        assert!(!out.stream.double_buffered);
        // Round 1 (requests 0-3) completed before the failure; round 2
        // was in flight and is lost, then shed.
        let done = out
            .statuses
            .iter()
            .filter(|&&s| s == StreamStatus::Completed)
            .count();
        let shed = out
            .statuses
            .iter()
            .filter(|&&s| s == StreamStatus::Shed)
            .count();
        assert_eq!(done, 4, "{:?}", out.statuses);
        assert_eq!(shed, 4);
        assert!(
            out.outage_requeues > 0,
            "in-flight round must requeue first"
        );
    }

    #[test]
    fn outage_with_recovery_drains_pauses_and_resumes() {
        let d = design(vec![2], 4, &[200_000]);
        let cfg = SimConfig::default();
        let rt = program_round(&d, &cfg).total();
        let fail_at = rt + rt / 2;
        let recover_at = 10 * rt;
        let plan = FaultPlan {
            outage: Some(crate::fault::Outage {
                fail_at,
                recover_at: Some(recover_at),
            }),
            ..FaultPlan::none()
        };
        let out =
            simulate_faulty_stream(&d, &cfg, &[0; 8], 4, false, &plan, &RecoverySpec::default());
        assert!(out.statuses.iter().all(|&s| s == StreamStatus::Completed));
        // The interrupted round re-runs after recovery.
        assert!(out.stream.makespan_ticks >= recover_at + rt);
        for (i, &c) in out.stream.completion_ticks.iter().enumerate() {
            if i < 4 {
                assert!(c < fail_at, "round 1 completed before the outage");
            } else {
                assert!(c >= recover_at, "round 2 only after recovery");
            }
        }
    }

    #[test]
    fn dma_stalls_inflate_transfers_only() {
        let d = design(vec![2], 4, &[200_000]);
        let cfg = SimConfig::default();
        let round = program_round(&d, &cfg);
        let plan = FaultPlan {
            stall_rate: 1.0,
            ..FaultPlan::transient(9, 0.0)
        };
        let out =
            simulate_faulty_stream(&d, &cfg, &[0; 8], 4, false, &plan, &RecoverySpec::default());
        assert!(out.statuses.iter().all(|&s| s == StreamStatus::Completed));
        assert_eq!(out.dma_stalls, 2);
        assert_eq!(
            out.stream.transfer_ticks,
            2 * (2 * round.t_in + round.t_out),
            "every input transfer doubled"
        );
        let clean = simulate_batch_stream(&d, &cfg, &[0; 8], 4, false);
        assert_eq!(out.stream.exec_ticks, clean.exec_ticks);
        assert_eq!(
            out.stream.makespan_ticks,
            clean.makespan_ticks + 2 * round.t_in
        );
    }

    #[test]
    fn faulty_stream_replays_identically() {
        let d = design(vec![2, 2], 4, &[100_000, 300_000]);
        let cfg = SimConfig::default();
        let plan = FaultPlan {
            stall_rate: 0.2,
            corrupt_rate: 0.1,
            ..FaultPlan::transient(1234, 0.25)
        };
        let rec = RecoverySpec {
            max_retries: 4,
            backoff_ticks: 50_000,
            backoff_cap_ticks: 400_000,
            deadline_ticks: Some(u64::MAX / 2),
        };
        for overlap in [false, true] {
            let a = simulate_faulty_stream(&d, &cfg, &vec![0; 32], 4, overlap, &plan, &rec);
            let b = simulate_faulty_stream(&d, &cfg, &vec![0; 32], 4, overlap, &plan, &rec);
            assert_eq!(a, b, "same (seed, plan, policy) must replay exactly");
        }
    }

    #[test]
    fn intersection_is_symmetric_and_exact() {
        let a = [(0u64, 10u64), (20, 30)];
        let b = [(5u64, 25u64)];
        assert_eq!(intervals_intersection(&a, &b), 10);
        assert_eq!(intervals_intersection(&b, &a), 10);
        assert_eq!(intervals_intersection(&a, &[]), 0);
    }
}
