//! Deterministic fault injection for the serving DES.
//!
//! A [`FaultPlan`] is a *pure function* of `(seed, round, request-id,
//! attempt)` — no wall clock, no hidden RNG state — so any schedule it
//! perturbs is fully replayable: the same `(seed, plan, policy)` always
//! reproduces the identical tick trace. Four fault classes model what a
//! real Zynq board does under stress:
//!
//! 1. **DMA transfer stalls** — a round's input transfer takes extra
//!    ticks (AXI back-pressure). Modelled as a doubled `t_in` for the
//!    stalled round; timing only, no data loss.
//! 2. **Transient errors** — a DMA or compute error aborts the round at
//!    the error interrupt (end of execution); the outputs never drain
//!    and the round's payloads are lost. Surviving requests re-enter
//!    admission under the runtime's retry policy.
//! 3. **Payload corruption** — a single request's output fails its
//!    checksum when the round drains; that request alone retries, the
//!    rest of the round completes.
//! 4. **Hard board failure** — the board dies at tick `fail_at`
//!    ([`Outage`]); in-flight work is lost and admission pauses. With
//!    `recover_at` set the board comes back (drain, pause, resume);
//!    without it every still-queued request is shed.
//!
//! The retry mechanics (attempt caps, capped exponential backoff,
//! per-request deadlines) are a [`RecoverySpec`] in tick space; the
//! `runtime` crate converts its user-facing `RecoveryPolicy` into one.

use crate::des::{secs, Time};

/// splitmix64 finalizer: the one hash every fault decision goes
/// through. Chosen for avalanche quality — neighbouring rounds or
/// request ids must not correlate.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hard board failure window (ticks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// Tick at which the board dies; rounds in flight abort here.
    pub fail_at: Time,
    /// Tick at which the board is usable again; `None` = never.
    pub recover_at: Option<Time>,
}

/// A seeded, replayable fault schedule. `FaultPlan::none()` injects
/// nothing and leaves every schedule tick-identical to the fault-free
/// simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Probability a round's input DMA stalls (class 1).
    pub stall_rate: f64,
    /// Probability a round fails transiently (class 2).
    pub transient_rate: f64,
    /// Probability one request's payload corrupts per attempt (class 3).
    pub corrupt_rate: f64,
    /// Hard board failure (class 4).
    pub outage: Option<Outage>,
}

impl FaultPlan {
    /// The empty plan: injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            stall_rate: 0.0,
            transient_rate: 0.0,
            corrupt_rate: 0.0,
            outage: None,
        }
    }

    /// Transient-errors-only plan (the common smoke-test shape).
    pub fn transient(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_rate: rate,
            ..FaultPlan::none()
        }
    }

    /// Whether the plan can inject anything at all. An unarmed plan
    /// must leave the scheduler on the fault-free fast path (including
    /// the closed-tick fast-forward).
    pub fn armed(&self) -> bool {
        self.stall_rate > 0.0
            || self.transient_rate > 0.0
            || self.corrupt_rate > 0.0
            || self.outage.is_some()
    }

    /// Whether the plan holds an outage the board never recovers from.
    /// Only such outages shed requests ([`crate::StreamStatus::Shed`]),
    /// so this is exactly the "queued work needs another board" case a
    /// fleet dispatcher drains and requeues.
    pub fn fatal_outage(&self) -> bool {
        matches!(
            self.outage,
            Some(Outage {
                recover_at: None,
                ..
            })
        )
    }

    /// One Bernoulli draw, pure in `(seed, domain, a, b)`.
    fn decide(&self, domain: u64, a: u64, b: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = mix(self.seed ^ mix(domain ^ mix(a ^ mix(b))));
        // Top 53 bits → uniform in [0, 1).
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < rate
    }

    /// Does round `round_idx`'s input DMA stall? (Doubles `t_in`.)
    pub fn dma_stalls(&self, round_idx: u64) -> bool {
        self.decide(1, round_idx, 0, self.stall_rate)
    }

    /// Does round `round_idx` fail transiently? (Payloads lost.)
    pub fn round_fails(&self, round_idx: u64) -> bool {
        self.decide(2, round_idx, 0, self.transient_rate)
    }

    /// Does `request`'s attempt number `attempt` fail its output
    /// checksum? Retries re-draw (different `attempt`), so a corrupted
    /// request can succeed later.
    pub fn corrupts(&self, request: u64, attempt: u32) -> bool {
        self.decide(3, request, attempt as u64, self.corrupt_rate)
    }

    /// Parse a CLI spec: `SEED:SPEC` where `SPEC` is either a bare
    /// transient-error rate (`7:0.1`) or comma-separated `key=value`
    /// pairs from `transient`, `stall`, `corrupt` (rates in `[0, 1]`)
    /// and `fail`, `recover` (seconds): `7:transient=0.1,stall=0.05,
    /// fail=0.5,recover=0.8`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (seed_s, rest) = spec
            .split_once(':')
            .ok_or_else(|| format!("fault spec '{spec}' needs the form seed:rate"))?;
        let seed: u64 = seed_s
            .parse()
            .map_err(|_| format!("fault spec seed '{seed_s}' is not a u64"))?;
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::none()
        };
        let mut fail_s: Option<f64> = None;
        let mut recover_s: Option<f64> = None;
        let rate = |key: &str, v: &str| -> Result<f64, String> {
            match v.parse::<f64>() {
                Ok(r) if r.is_finite() && (0.0..=1.0).contains(&r) => Ok(r),
                _ => Err(format!(
                    "fault {key} rate '{v}' must be a finite number in [0, 1]"
                )),
            }
        };
        let when = |key: &str, v: &str| -> Result<f64, String> {
            match v.parse::<f64>() {
                Ok(t) if t.is_finite() && t >= 0.0 => Ok(t),
                _ => Err(format!(
                    "fault {key} time '{v}' must be a finite number of seconds >= 0"
                )),
            }
        };
        for item in rest.split(',') {
            match item.split_once('=') {
                None => plan.transient_rate = rate("transient", item)?,
                Some(("transient", v)) => plan.transient_rate = rate("transient", v)?,
                Some(("stall", v)) => plan.stall_rate = rate("stall", v)?,
                Some(("corrupt", v)) => plan.corrupt_rate = rate("corrupt", v)?,
                Some(("fail", v)) => fail_s = Some(when("fail", v)?),
                Some(("recover", v)) => recover_s = Some(when("recover", v)?),
                Some((k, _)) => {
                    return Err(format!(
                        "unknown fault key '{k}' (transient | stall | corrupt | fail | recover)"
                    ))
                }
            }
        }
        match (fail_s, recover_s) {
            (None, None) => {}
            (None, Some(_)) => return Err("fault 'recover' needs a 'fail' time".into()),
            (Some(f), r) => {
                if let Some(r) = r {
                    if r <= f {
                        return Err(format!(
                            "fault recover time {r} must be after fail time {f}"
                        ));
                    }
                }
                plan.outage = Some(Outage {
                    fail_at: secs(f),
                    recover_at: r.map(secs),
                });
            }
        }
        Ok(plan)
    }

    /// Canonical display label (stable: the report replay guarantee
    /// covers this string too).
    pub fn label(&self) -> String {
        if !self.armed() {
            return "none".into();
        }
        let mut parts = vec![format!("seed={}", self.seed)];
        if self.transient_rate > 0.0 {
            parts.push(format!("transient={}", self.transient_rate));
        }
        if self.stall_rate > 0.0 {
            parts.push(format!("stall={}", self.stall_rate));
        }
        if self.corrupt_rate > 0.0 {
            parts.push(format!("corrupt={}", self.corrupt_rate));
        }
        if let Some(o) = &self.outage {
            parts.push(format!("fail@{}", o.fail_at));
            if let Some(r) = o.recover_at {
                parts.push(format!("recover@{r}"));
            }
        }
        parts.join(",")
    }
}

/// Retry/timeout mechanics in tick space (the scheduler's view of the
/// runtime's `RecoveryPolicy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverySpec {
    /// Retries allowed after the first attempt (so at most
    /// `max_retries + 1` attempts per request).
    pub max_retries: u32,
    /// Base backoff after the first failure; doubles per further
    /// failure. 0 = requeue immediately.
    pub backoff_ticks: u64,
    /// Cap on the exponential backoff.
    pub backoff_cap_ticks: u64,
    /// Per-request latency budget from arrival; a request that cannot
    /// (or did not) complete inside it is timed out.
    pub deadline_ticks: Option<u64>,
}

impl Default for RecoverySpec {
    fn default() -> Self {
        RecoverySpec {
            max_retries: 3,
            backoff_ticks: 0,
            backoff_cap_ticks: 0,
            deadline_ticks: None,
        }
    }
}

impl RecoverySpec {
    /// Backoff delay after the `failures`-th failure (1-based), capped
    /// exponential: `base * 2^(failures-1)`, clamped to the cap.
    pub fn backoff_after(&self, failures: u32) -> u64 {
        if self.backoff_ticks == 0 || failures == 0 {
            return 0;
        }
        let shifted = if failures > 63 {
            u64::MAX
        } else {
            self.backoff_ticks.saturating_mul(1u64 << (failures - 1))
        };
        if self.backoff_cap_ticks > 0 {
            shifted.min(self.backoff_cap_ticks)
        } else {
            shifted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seed_sensitive() {
        let a = FaultPlan::transient(7, 0.3);
        let b = FaultPlan::transient(7, 0.3);
        let c = FaultPlan::transient(8, 0.3);
        let fires_a: Vec<bool> = (0..256).map(|r| a.round_fails(r)).collect();
        let fires_b: Vec<bool> = (0..256).map(|r| b.round_fails(r)).collect();
        let fires_c: Vec<bool> = (0..256).map(|r| c.round_fails(r)).collect();
        assert_eq!(fires_a, fires_b, "same seed, same plan, same draws");
        assert_ne!(fires_a, fires_c, "seed changes the draws");
        let hits = fires_a.iter().filter(|&&f| f).count();
        assert!(
            (32..=128).contains(&hits),
            "0.3 rate fired {hits}/256 times"
        );
    }

    #[test]
    fn rate_extremes_are_exact() {
        let never = FaultPlan::transient(3, 0.0);
        let always = FaultPlan::transient(3, 1.0);
        assert!((0..64).all(|r| !never.round_fails(r)));
        assert!((0..64).all(|r| always.round_fails(r)));
        assert!(!never.armed());
        assert!(always.armed());
        assert!(!FaultPlan::none().armed());
    }

    #[test]
    fn corrupt_draws_vary_by_attempt() {
        let p = FaultPlan {
            corrupt_rate: 0.5,
            ..FaultPlan::transient(11, 0.0)
        };
        // Some request must corrupt on one attempt and pass on another —
        // retries re-draw.
        let varies = (0..64u64).any(|req| p.corrupts(req, 1) != p.corrupts(req, 2));
        assert!(varies, "attempt number never changed the draw");
    }

    #[test]
    fn spec_parsing_roundtrips_and_rejects_garbage() {
        let p = FaultPlan::parse("7:0.1").unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.transient_rate, 0.1);
        assert!(p.armed());

        let full = FaultPlan::parse("42:transient=0.2,stall=0.1,corrupt=0.05,fail=0.5,recover=0.8")
            .unwrap();
        assert_eq!(full.seed, 42);
        assert_eq!(full.stall_rate, 0.1);
        assert_eq!(full.corrupt_rate, 0.05);
        let o = full.outage.unwrap();
        assert_eq!(o.fail_at, secs(0.5));
        assert_eq!(o.recover_at, Some(secs(0.8)));

        for bad in [
            "no-colon",
            "x:0.1",
            "7:1.5",
            "7:nan",
            "7:-0.1",
            "7:bogus=1",
            "7:recover=0.5",
            "7:fail=0.8,recover=0.5",
            "7:fail=inf",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn labels_are_canonical() {
        assert_eq!(FaultPlan::none().label(), "none");
        let p = FaultPlan::parse("7:0.1,corrupt=0.05").unwrap();
        assert_eq!(p.label(), "seed=7,transient=0.1,corrupt=0.05");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RecoverySpec {
            max_retries: 8,
            backoff_ticks: 100,
            backoff_cap_ticks: 350,
            deadline_ticks: None,
        };
        assert_eq!(r.backoff_after(0), 0);
        assert_eq!(r.backoff_after(1), 100);
        assert_eq!(r.backoff_after(2), 200);
        assert_eq!(r.backoff_after(3), 350, "capped");
        assert_eq!(r.backoff_after(40), 350, "still capped far out");
        let immediate = RecoverySpec::default();
        assert_eq!(immediate.backoff_after(5), 0, "no base, no delay");
        let uncapped = RecoverySpec {
            backoff_ticks: 1,
            backoff_cap_ticks: 0,
            ..RecoverySpec::default()
        };
        assert_eq!(uncapped.backoff_after(70), u64::MAX, "saturates");
    }
}
