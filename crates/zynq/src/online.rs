//! Online serving: a deterministic virtual-clock event loop in which
//! admission, batch formation, DMA, and completion interleave.
//!
//! [`crate::stream`] folds over a pre-generated request list: every
//! request exists before the first round is formed, and the scheduler
//! only ever looks at the head of the queue. This module replays the
//! same virtual clock as a *reactor*: arrivals enter the system at
//! their arrival tick, batch formation is a decision point that can
//! wait, close early, reorder by priority, or refuse admission — and
//! the whole thing stays exact integer-tick arithmetic, so a neutral
//! policy reproduces the offline scheduler bit for bit.
//!
//! Policies layered on the loop (all per [`OnlineSpec`]):
//!
//! * **SLO-aware adaptive batching** — with `slo_ticks` set, a round
//!   below capacity waits for more arrivals while the oldest queued
//!   request's budget still covers a full fault-free round, and closes
//!   early the moment it no longer does. The SLO also acts as the
//!   per-request latency budget: work that cannot complete inside it
//!   is shed at dispatch or timed out at drain, which is what bounds
//!   the completed-set p99 under overload.
//! * **Priority tiers** — `tiers[pos]` classes requests (0 = highest);
//!   batch formation takes eligible requests in `(tier, arrival)`
//!   order, so a high tier preempts queued low-tier work at every
//!   round boundary. Retries keep their tier.
//! * **Backpressure shedding** — with `max_queue` set, an arrival that
//!   finds the wait queue at depth `max_queue` is shed at its own
//!   arrival tick instead of joining (retries are already in the
//!   system and bypass the gate).
//!
//! With every policy disabled (`OnlineSpec::fifo()`) and an unarmed
//! fault plan, the serial loop terminates through the same closed-tick
//! fast-forward as [`crate::stream::simulate_batch_stream`] and both
//! loops produce tick- and bit-identical [`StreamOutcome`]s — enforced
//! by differential proptests at the workspace root.

use crate::des::Time;
use crate::fault::{FaultPlan, RecoverySpec};
use crate::sim::{program_round, ProgramRound, SimConfig};
use crate::stream::{
    drain_faulty, intervals_intersection, shed_expired, FaultAcc, FaultStreamOutcome, Pend,
    StreamStatus,
};
use std::collections::VecDeque;
use sysgen::MultiSystemDesign;

/// Serving policy for the online event loop.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OnlineSpec {
    /// Per-request latency budget (p99 SLO) in ticks; also arms the
    /// adaptive batcher. `None` = capacity-fill with no budget.
    pub slo_ticks: Option<u64>,
    /// Wait-queue depth beyond which new arrivals are shed. `None` =
    /// unbounded queue.
    pub max_queue: Option<usize>,
    /// Priority tier per arrival-order position (0 = highest). Empty =
    /// one tier (FIFO).
    pub tiers: Vec<u8>,
}

impl OnlineSpec {
    /// The neutral policy: FIFO capacity-fill, no budget, no shedding.
    pub fn fifo() -> OnlineSpec {
        OnlineSpec::default()
    }

    /// Whether any policy deviates from FIFO capacity-fill.
    pub fn armed(&self) -> bool {
        self.slo_ticks.is_some() || self.max_queue.is_some() || self.has_tiers()
    }

    fn has_tiers(&self) -> bool {
        self.tiers.iter().any(|&t| t != 0)
    }

    fn tier_of(&self, pos: usize) -> u8 {
        self.tiers.get(pos).copied().unwrap_or(0)
    }
}

/// [`FaultStreamOutcome`] plus the online loop's policy counters.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineOutcome {
    pub fault: FaultStreamOutcome,
    /// Arrivals shed at admission because the wait queue was full.
    pub backpressure_shed: usize,
    /// Rounds dispatched below capacity because the oldest queued
    /// request's SLO budget could no longer cover another wait.
    pub early_closed_rounds: usize,
}

/// Serve `arrivals` (sorted arrival ticks) through the online event
/// loop under `plan`, `rec`, and the online policy `spec`.
///
/// The effective per-request deadline is the tighter of `rec`'s
/// deadline and the SLO budget. Like [`crate::simulate_faulty_stream`],
/// an armed outage degrades double buffering to the serial loop (an
/// outage tears down DMA and chain at one tick).
#[allow(clippy::too_many_arguments)]
pub fn simulate_online_stream(
    design: &MultiSystemDesign,
    cfg: &SimConfig,
    arrivals: &[Time],
    capacity: usize,
    overlap: bool,
    plan: &FaultPlan,
    rec: &RecoverySpec,
    spec: &OnlineSpec,
) -> OnlineOutcome {
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be sorted"
    );
    assert!(
        spec.tiers.is_empty() || spec.tiers.len() == arrivals.len(),
        "tiers must be empty or one per request"
    );
    let capacity = capacity.clamp(1, design.config.m);
    let round = program_round(design, cfg);
    let overlap = overlap && design.config.ks.iter().all(|&k| design.config.m >= 2 * k);
    let rec_eff = RecoverySpec {
        deadline_ticks: match (spec.slo_ticks, rec.deadline_ticks) {
            (Some(s), Some(d)) => Some(s.min(d)),
            (Some(s), None) => Some(s),
            (None, d) => d,
        },
        ..*rec
    };
    if overlap && plan.outage.is_none() {
        online_overlapped(arrivals, capacity, &round, plan, &rec_eff, spec)
    } else {
        online_serial(arrivals, capacity, &round, plan, &rec_eff, spec)
    }
}

/// Arrival/admission state shared by both loops: the not-yet-admitted
/// arrival stream (only populated when backpressure is armed) and the
/// policy counters.
struct Reactor<'a> {
    spec: &'a OnlineSpec,
    incoming: VecDeque<Pend>,
    backpressure_shed: usize,
    early_closed_rounds: usize,
}

impl<'a> Reactor<'a> {
    /// Split the arrival stream: without a queue bound every request
    /// sits in the wait queue from the start (exactly the offline
    /// fold's view); with one, arrivals are events that admission
    /// processes at each decision point.
    fn new(arrivals: &[Time], spec: &'a OnlineSpec) -> (Reactor<'a>, Vec<Pend>) {
        let mk = |(pos, &a): (usize, &Time)| Pend {
            pos,
            arrival: a,
            eligible: a,
            attempts: 0,
            failures: 0,
        };
        let (pending, incoming) = if spec.max_queue.is_some() {
            (Vec::new(), arrivals.iter().enumerate().map(mk).collect())
        } else {
            (
                arrivals.iter().enumerate().map(mk).collect(),
                VecDeque::new(),
            )
        };
        let st = Reactor {
            spec,
            incoming,
            backpressure_shed: 0,
            early_closed_rounds: 0,
        };
        (st, pending)
    }

    fn next_arrival(&self) -> Option<Time> {
        self.incoming.front().map(|p| p.arrival)
    }

    /// Admit every arrival up to `t` into the wait queue, shedding the
    /// ones that find it full (at their own arrival tick).
    fn admit(&mut self, pending: &mut Vec<Pend>, acc: &mut FaultAcc, t: Time) {
        let Some(q) = self.spec.max_queue else {
            return;
        };
        let mut joined = false;
        while self.incoming.front().is_some_and(|p| p.arrival <= t) {
            let p = self.incoming.pop_front().unwrap();
            if pending.len() >= q {
                acc.resolve(&p, StreamStatus::Shed, p.arrival);
                self.backpressure_shed += 1;
            } else {
                pending.push(p);
                joined = true;
            }
        }
        if joined {
            // Retries already in the queue keep their arrival priority.
            pending.sort_by_key(|p| p.pos);
        }
    }

    /// Drop every unadmitted arrival (the board died with no recovery).
    fn shed_incoming(&mut self, acc: &mut FaultAcc, at: Time) {
        while let Some(p) = self.incoming.pop_front() {
            let t = at.max(p.arrival);
            acc.resolve(&p, StreamStatus::Shed, t);
            self.backpressure_shed += 1;
        }
    }

    fn finish(self, acc: FaultAcc, overlapped_ticks: u64, double_buffered: bool) -> OnlineOutcome {
        OnlineOutcome {
            fault: acc.finish(overlapped_ticks, double_buffered),
            backpressure_shed: self.backpressure_shed,
            early_closed_rounds: self.early_closed_rounds,
        }
    }
}

/// Batch-formation verdict at one decision point.
enum Gate {
    /// Form the round now; `early` marks an SLO-forced below-capacity
    /// close with more work still on the way.
    Dispatch { early: bool },
    /// Idle until `t` (a future arrival/eligibility or the close
    /// budget, whichever is nearer) and re-evaluate.
    Wait(Time),
}

/// The SLO batcher: a round below capacity waits while the oldest
/// eligible request's budget still covers a full fault-free round
/// starting later, and closes early once it no longer does.
fn slo_gate(
    pending: &[Pend],
    next_arrival: Option<Time>,
    start: Time,
    capacity: usize,
    rt: u64,
    spec: &OnlineSpec,
) -> Gate {
    let Some(slo) = spec.slo_ticks else {
        return Gate::Dispatch { early: false };
    };
    let eligible = pending.iter().filter(|p| p.eligible <= start).count();
    if eligible >= capacity {
        return Gate::Dispatch { early: false };
    }
    // The next event that could grow the batch.
    let next_t = pending
        .iter()
        .filter(|p| p.eligible > start)
        .map(|p| p.eligible)
        .chain(next_arrival)
        .min();
    let Some(next_t) = next_t else {
        // Tail of the stream: nothing else is coming, dispatch.
        return Gate::Dispatch { early: false };
    };
    let oldest = pending
        .iter()
        .filter(|p| p.eligible <= start)
        .map(|p| p.arrival)
        .min()
        .expect("gate runs only with at least one eligible request");
    let latest_safe = oldest.saturating_add(slo).saturating_sub(rt);
    if start >= latest_safe {
        return Gate::Dispatch { early: true };
    }
    Gate::Wait(next_t.min(latest_safe))
}

/// Pick the round's requests: eligible work in `(tier, arrival)` order
/// up to `capacity`, returned as ascending indices into `pending`.
fn select_fill(pending: &[Pend], spec: &OnlineSpec, start: Time, capacity: usize) -> Vec<usize> {
    let mut fill: Vec<usize> = pending
        .iter()
        .enumerate()
        .filter(|(_, p)| p.eligible <= start)
        .map(|(j, _)| j)
        .collect();
    if spec.has_tiers() {
        fill.sort_by_key(|&j| (spec.tier_of(pending[j].pos), pending[j].pos));
    }
    fill.truncate(capacity);
    // Ascending order so reverse-removal below stays valid.
    fill.sort_unstable();
    fill
}

/// The serial event loop. With every policy neutral and no faults it
/// terminates through the same closed-tick fast-forward as the offline
/// serial scheduler and is bit-identical to it.
fn online_serial(
    arrivals: &[Time],
    capacity: usize,
    round: &ProgramRound,
    plan: &FaultPlan,
    rec: &RecoverySpec,
    spec: &OnlineSpec,
) -> OnlineOutcome {
    let n = arrivals.len();
    let exec = round.exec();
    let rt = round.total();
    let mut acc = FaultAcc::new(n);
    let (mut st, mut pending) = Reactor::new(arrivals, spec);
    let collapse_allowed = !plan.armed()
        && rec.deadline_ticks.is_none()
        && spec.max_queue.is_none()
        && !spec.has_tiers();
    let mut fast_forwarded = 0usize;
    let mut now: Time = 0;
    let mut round_idx: u64 = 0;
    while !pending.is_empty() || !st.incoming.is_empty() {
        let t_min = pending
            .iter()
            .map(|p| p.eligible)
            .chain(st.next_arrival())
            .min()
            .unwrap();
        let mut start = now.max(t_min);
        // Admission pauses while the board is down; without recovery the
        // rest of the queue (admitted or not) sheds at the failure tick.
        if let Some(o) = plan.outage {
            if start >= o.fail_at {
                match o.recover_at {
                    Some(r) if start < r => start = r,
                    Some(_) => {}
                    None => {
                        let at = now.max(o.fail_at);
                        for p in std::mem::take(&mut pending) {
                            acc.resolve(&p, StreamStatus::Shed, at);
                        }
                        st.shed_incoming(&mut acc, at);
                        break;
                    }
                }
            }
        }
        st.admit(&mut pending, &mut acc, start);
        if pending.is_empty() {
            // Everything arrived so far was shed at admission; the next
            // iteration jumps to the next arrival.
            continue;
        }
        if shed_expired(&mut pending, &mut acc, rec, start, rt) {
            continue;
        }
        // Backpressure can shed the very arrival that set `t_min`; idle
        // until something in the queue becomes eligible.
        if pending.iter().all(|p| p.eligible > start) {
            now = pending.iter().map(|p| p.eligible).min().unwrap();
            continue;
        }
        // Once every remaining request is in the queue and eligible, the
        // neutral policy's tail is the offline fast-forward, untouched.
        if collapse_allowed && pending.last().is_some_and(|p| p.arrival <= start) {
            let rounds = pending.len().div_ceil(capacity);
            for (b, chunk) in pending.chunks(capacity).enumerate() {
                acc.fills.push(chunk.len());
                let adm = start + b as u64 * rt;
                for p in chunk {
                    acc.admitted[p.pos] = adm;
                    let mut done = p.clone();
                    done.attempts = 1;
                    acc.resolve(&done, StreamStatus::Completed, adm + rt);
                }
            }
            acc.exec_ticks += rounds as u64 * exec;
            acc.transfer_ticks += rounds as u64 * (round.t_in + round.t_out);
            fast_forwarded = rounds;
            break;
        }
        match slo_gate(&pending, st.next_arrival(), start, capacity, rt, spec) {
            Gate::Wait(t) => {
                now = t;
                continue;
            }
            Gate::Dispatch { early } => {
                let fill = select_fill(&pending, spec, start, capacity);
                round_idx += 1;
                let stalled = plan.dma_stalls(round_idx);
                let t_in = if stalled {
                    acc.dma_stalls += 1;
                    2 * round.t_in
                } else {
                    round.t_in
                };
                let in_done = start + t_in;
                let exec_done = in_done + exec;
                let out_done = exec_done + round.t_out;
                // Hard failure mid-round: in-flight work is lost at the
                // failure tick; the aborted round bills nothing and does
                // not consume an attempt.
                if let Some(o) = plan.outage {
                    if o.fail_at > start && o.fail_at <= out_done {
                        acc.outage_requeues += fill.len();
                        for &j in &fill {
                            pending[j].eligible = o.recover_at.unwrap_or(Time::MAX);
                        }
                        now = o.fail_at;
                        acc.makespan = acc.makespan.max(now);
                        continue;
                    }
                }
                for &j in &fill {
                    let p = &mut pending[j];
                    p.attempts += 1;
                    acc.admitted[p.pos] = start;
                }
                acc.fills.push(fill.len());
                if early {
                    st.early_closed_rounds += 1;
                }
                if plan.round_fails(round_idx) {
                    acc.transient_faults += 1;
                    acc.exec_ticks += exec;
                    acc.transfer_ticks += t_in;
                    now = exec_done;
                    acc.makespan = acc.makespan.max(now);
                    for &j in fill.iter().rev() {
                        pending[j].failures += 1;
                        if pending[j].failures > rec.max_retries {
                            let p = pending.remove(j);
                            acc.resolve(&p, StreamStatus::Failed, exec_done);
                        } else {
                            let f = pending[j].failures;
                            pending[j].eligible = exec_done + rec.backoff_after(f);
                        }
                    }
                    continue;
                }
                acc.exec_ticks += exec;
                acc.transfer_ticks += t_in + round.t_out;
                now = out_done;
                acc.makespan = acc.makespan.max(now);
                for &j in fill.iter().rev() {
                    let p = &mut pending[j];
                    if plan.corrupts(p.pos as u64, p.attempts) {
                        acc.corrupt_payloads += 1;
                        p.failures += 1;
                        if p.failures > rec.max_retries {
                            let p = pending.remove(j);
                            acc.resolve(&p, StreamStatus::Failed, out_done);
                        } else {
                            let f = p.failures;
                            pending[j].eligible = out_done + rec.backoff_after(f);
                        }
                    } else {
                        let status = match rec.deadline_ticks {
                            Some(d) if out_done > p.arrival.saturating_add(d) => {
                                StreamStatus::TimedOut
                            }
                            _ => StreamStatus::Completed,
                        };
                        let p = pending.remove(j);
                        acc.resolve(&p, status, out_done);
                    }
                }
            }
        }
    }
    let mut out = st.finish(acc, 0, false);
    out.fault.stream.fast_forwarded_rounds = fast_forwarded;
    out
}

/// The double-buffered event loop (no outage — see
/// [`simulate_online_stream`]). With every policy neutral it is
/// bit-identical to the offline overlapped scheduler.
fn online_overlapped(
    arrivals: &[Time],
    capacity: usize,
    round: &ProgramRound,
    plan: &FaultPlan,
    rec: &RecoverySpec,
    spec: &OnlineSpec,
) -> OnlineOutcome {
    let n = arrivals.len();
    let exec = round.exec();
    let rt = round.total();
    let mut acc = FaultAcc::new(n);
    let (mut st, mut pending) = Reactor::new(arrivals, spec);
    let mut dma_iv: Vec<(Time, Time)> = Vec::new();
    let mut chain_iv: Vec<(Time, Time)> = Vec::new();
    let mut dma_free: Time = 0;
    let mut chain_free: Time = 0;
    let mut pending_out: Option<(Time, Vec<Pend>)> = None;
    let mut round_idx: u64 = 0;
    // While the SLO batcher idles, the decision point is pinned forward
    // of every already-known event; reset at each dispatch.
    let mut wait_floor: Time = 0;
    while !pending.is_empty() || pending_out.is_some() || !st.incoming.is_empty() {
        if pending.is_empty() && st.incoming.is_empty() {
            let (ready, ents) = pending_out.take().unwrap();
            drain_faulty(
                ready,
                ents,
                round,
                plan,
                rec,
                &mut acc,
                &mut pending,
                &mut dma_free,
                &mut dma_iv,
            );
            continue;
        }
        let t_min = pending
            .iter()
            .map(|p| p.eligible)
            .chain(st.next_arrival())
            .min()
            .unwrap()
            .max(wait_floor);
        // Sparse queue: drain a finished round if it fits before the
        // next load could even start.
        if let Some((ready, _)) = &pending_out {
            let out_start = (*ready).max(dma_free);
            if out_start + round.t_out <= t_min {
                let (ready, ents) = pending_out.take().unwrap();
                drain_faulty(
                    ready,
                    ents,
                    round,
                    plan,
                    rec,
                    &mut acc,
                    &mut pending,
                    &mut dma_free,
                    &mut dma_iv,
                );
                continue;
            }
        }
        let load_at = dma_free.max(t_min);
        st.admit(&mut pending, &mut acc, load_at);
        if pending.is_empty() {
            continue;
        }
        if shed_expired(&mut pending, &mut acc, rec, load_at, rt) {
            continue;
        }
        // Backpressure can shed the arrival that set `t_min`; idle until
        // the next queue eligibility or arrival.
        if pending.iter().all(|p| p.eligible > load_at) {
            let nxt = pending.iter().map(|p| p.eligible).min().unwrap();
            wait_floor = st.next_arrival().map_or(nxt, |a| nxt.min(a));
            continue;
        }
        match slo_gate(&pending, st.next_arrival(), load_at, capacity, rt, spec) {
            Gate::Wait(t) => {
                wait_floor = t;
                continue;
            }
            Gate::Dispatch { early } => {
                let fill = select_fill(&pending, spec, load_at, capacity);
                let mut ents: Vec<Pend> = Vec::with_capacity(fill.len());
                for &j in fill.iter().rev() {
                    ents.push(pending.remove(j));
                }
                ents.reverse();
                wait_floor = 0;
                round_idx += 1;
                let stalled = plan.dma_stalls(round_idx);
                let t_in = if stalled {
                    acc.dma_stalls += 1;
                    2 * round.t_in
                } else {
                    round.t_in
                };
                let in_done = load_at + t_in;
                dma_free = in_done;
                acc.transfer_ticks += t_in;
                dma_iv.push((load_at, in_done));
                for p in &mut ents {
                    p.attempts += 1;
                    acc.admitted[p.pos] = load_at;
                }
                acc.fills.push(ents.len());
                if early {
                    st.early_closed_rounds += 1;
                }
                let exec_start = in_done.max(chain_free);
                let exec_done = exec_start + exec;
                chain_free = exec_done;
                acc.exec_ticks += exec;
                chain_iv.push((exec_start, exec_done));
                acc.makespan = acc.makespan.max(exec_done);
                // Drain the previous round's outputs while this one
                // executes.
                if let Some((ready, prev)) = pending_out.take() {
                    drain_faulty(
                        ready,
                        prev,
                        round,
                        plan,
                        rec,
                        &mut acc,
                        &mut pending,
                        &mut dma_free,
                        &mut dma_iv,
                    );
                }
                if plan.round_fails(round_idx) {
                    acc.transient_faults += 1;
                    let mut requeued = false;
                    for mut p in ents {
                        p.failures += 1;
                        if p.failures > rec.max_retries {
                            acc.resolve(&p, StreamStatus::Failed, exec_done);
                        } else {
                            p.eligible = exec_done + rec.backoff_after(p.failures);
                            pending.push(p);
                            requeued = true;
                        }
                    }
                    if requeued {
                        pending.sort_by_key(|p| p.pos);
                    }
                } else {
                    pending_out = Some((exec_done, ents));
                }
            }
        }
    }
    let overlapped = intervals_intersection(&dma_iv, &chain_iv);
    st.finish(acc, overlapped, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::secs;
    use crate::fault::Outage;
    use crate::stream::{simulate_batch_stream, simulate_faulty_stream};
    use sysgen::Platform;

    fn design() -> MultiSystemDesign {
        let platform = Platform::zcu106();
        let stages: Vec<(String, hls::HlsReport)> = [200_000u64, 300_000]
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                (
                    format!("stage{i}"),
                    hls::HlsReport {
                        kernel: format!("stage{i}"),
                        clock_mhz: platform.default_clock_mhz,
                        latency_cycles: l,
                        luts: 2_314,
                        ffs: 2_999,
                        dsps: 15,
                        brams: 0,
                        loops: vec![],
                    },
                )
            })
            .collect();
        let memory = mnemosyne::MemorySubsystem {
            units: vec![],
            brams: 16,
            luts: 450,
            ffs: 250,
        };
        let cfg = sysgen::ProgramSystemConfig {
            ks: vec![2, 2],
            m: 8,
        };
        let host = sysgen::ProgramHostProgram {
            config: cfg.clone(),
            stage_names: stages.iter().map(|(n, _)| n.clone()).collect(),
            bytes_in_per_element: (121 + 2 * 1331) * 8,
            bytes_out_per_element: 1331 * 8,
            handoff_bytes_per_element: 0,
        };
        MultiSystemDesign::build(&platform, &stages, &memory, cfg, host).unwrap()
    }

    fn poisson_like(n: usize, gap: Time) -> Vec<Time> {
        // Deterministic "bursty" arrivals: pairs arrive together, pairs
        // separated by `gap`.
        (0..n).map(|i| (i as Time / 2) * gap).collect()
    }

    #[test]
    fn neutral_fifo_is_bit_identical_to_the_offline_scheduler() {
        let d = design();
        let cfg = SimConfig::default();
        let arrivals = poisson_like(24, secs(0.0004));
        for overlap in [false, true] {
            for capacity in [1, 3, d.config.m] {
                let offline = simulate_batch_stream(&d, &cfg, &arrivals, capacity, overlap);
                let online = simulate_online_stream(
                    &d,
                    &cfg,
                    &arrivals,
                    capacity,
                    overlap,
                    &FaultPlan::none(),
                    &RecoverySpec::default(),
                    &OnlineSpec::fifo(),
                );
                assert_eq!(online.fault.stream, offline);
                assert_eq!(online.backpressure_shed, 0);
                assert_eq!(online.early_closed_rounds, 0);
            }
        }
    }

    #[test]
    fn neutral_fifo_matches_the_fault_loops_under_an_armed_plan() {
        let d = design();
        let cfg = SimConfig::default();
        let arrivals = poisson_like(20, secs(0.0003));
        let plans = [
            FaultPlan::transient(7, 0.2),
            FaultPlan::parse("11:transient=0.15,stall=0.3,corrupt=0.1").unwrap(),
            FaultPlan::parse("3:fail=0.002,recover=0.004").unwrap(),
        ];
        let rec = RecoverySpec {
            backoff_ticks: secs(0.0001),
            ..RecoverySpec::default()
        };
        for plan in &plans {
            for overlap in [false, true] {
                let offline = simulate_faulty_stream(&d, &cfg, &arrivals, 4, overlap, plan, &rec);
                let online = simulate_online_stream(
                    &d,
                    &cfg,
                    &arrivals,
                    4,
                    overlap,
                    plan,
                    &rec,
                    &OnlineSpec::fifo(),
                );
                assert_eq!(online.fault, offline, "plan {}", plan.label());
            }
        }
    }

    #[test]
    fn slo_budget_bounds_completed_latency_under_overload() {
        let d = design();
        let cfg = SimConfig::default();
        // Everyone arrives at once: far more work than one round's SLO
        // can cover.
        let arrivals = vec![0; 48];
        let rt = program_round(&d, &cfg).total();
        let slo = 3 * rt;
        let spec = OnlineSpec {
            slo_ticks: Some(slo),
            ..OnlineSpec::fifo()
        };
        let out = simulate_online_stream(
            &d,
            &cfg,
            &arrivals,
            4,
            false,
            &FaultPlan::none(),
            &RecoverySpec::default(),
            &spec,
        );
        let mut completed = 0;
        let mut timed_out = 0;
        for (pos, s) in out.fault.statuses.iter().enumerate() {
            match s {
                StreamStatus::Completed => {
                    completed += 1;
                    assert!(out.fault.stream.completion_ticks[pos] <= slo);
                }
                StreamStatus::TimedOut => timed_out += 1,
                other => panic!("unexpected status {other:?}"),
            }
        }
        assert!(completed > 0, "some requests beat the budget");
        assert!(timed_out > 0, "overload must time the tail out");
    }

    #[test]
    fn slo_batcher_waits_to_fill_and_closes_early() {
        let d = design();
        let cfg = SimConfig::default();
        let rt = program_round(&d, &cfg).total();
        // Second request lands well inside the first one's budget: the
        // batcher waits, coalesces both into one round, and still makes
        // the deadline. Capacity-fill would burn two rounds.
        let arrivals = vec![0, rt / 2];
        let spec = OnlineSpec {
            slo_ticks: Some(4 * rt),
            ..OnlineSpec::fifo()
        };
        let out = simulate_online_stream(
            &d,
            &cfg,
            &arrivals,
            4,
            false,
            &FaultPlan::none(),
            &RecoverySpec::default(),
            &spec,
        );
        assert_eq!(out.fault.stream.round_fills, vec![2]);
        let fifo = simulate_online_stream(
            &d,
            &cfg,
            &arrivals,
            4,
            false,
            &FaultPlan::none(),
            &RecoverySpec::default(),
            &OnlineSpec::fifo(),
        );
        assert_eq!(fifo.fault.stream.round_fills, vec![1, 1]);
        // A second arrival past the close budget forces an early,
        // below-capacity round; both requests still make their budgets.
        let tight = OnlineSpec {
            slo_ticks: Some(2 * rt),
            ..OnlineSpec::fifo()
        };
        let out = simulate_online_stream(
            &d,
            &cfg,
            &[0, 3 * rt / 2],
            4,
            false,
            &FaultPlan::none(),
            &RecoverySpec::default(),
            &tight,
        );
        assert_eq!(out.fault.stream.round_fills, vec![1, 1]);
        assert!(out.early_closed_rounds >= 1);
        assert!(out
            .fault
            .statuses
            .iter()
            .all(|s| *s == StreamStatus::Completed));
    }

    #[test]
    fn priority_tiers_preempt_at_round_boundaries() {
        let d = design();
        let cfg = SimConfig::default();
        let arrivals = vec![0; 6];
        let spec = OnlineSpec {
            tiers: vec![1, 1, 1, 0, 0, 0],
            ..OnlineSpec::fifo()
        };
        let out = simulate_online_stream(
            &d,
            &cfg,
            &arrivals,
            3,
            false,
            &FaultPlan::none(),
            &RecoverySpec::default(),
            &spec,
        );
        let adm = &out.fault.stream.admitted_ticks;
        // Tier 0 (positions 3..6) rides the first round.
        assert!(adm[3] < adm[0] && adm[4] < adm[1] && adm[5] < adm[2]);
        assert!(out
            .fault
            .statuses
            .iter()
            .all(|s| *s == StreamStatus::Completed));
    }

    #[test]
    fn backpressure_sheds_arrivals_beyond_the_queue_bound() {
        let d = design();
        let cfg = SimConfig::default();
        let arrivals = vec![0; 10];
        let spec = OnlineSpec {
            max_queue: Some(2),
            ..OnlineSpec::fifo()
        };
        let out = simulate_online_stream(
            &d,
            &cfg,
            &arrivals,
            1,
            false,
            &FaultPlan::none(),
            &RecoverySpec::default(),
            &spec,
        );
        assert_eq!(out.backpressure_shed, 8);
        let shed = out
            .fault
            .statuses
            .iter()
            .filter(|s| **s == StreamStatus::Shed)
            .count();
        assert_eq!(shed, 8);
        let completed = out
            .fault
            .statuses
            .iter()
            .filter(|s| **s == StreamStatus::Completed)
            .count();
        assert_eq!(completed, 2);
    }

    #[test]
    fn outage_without_recovery_sheds_unadmitted_arrivals_too() {
        let d = design();
        let cfg = SimConfig::default();
        let arrivals: Vec<Time> = (0..8).map(|i| i * secs(0.01)).collect();
        let plan = FaultPlan {
            outage: Some(Outage {
                fail_at: secs(0.015),
                recover_at: None,
            }),
            ..FaultPlan::none()
        };
        let spec = OnlineSpec {
            max_queue: Some(4),
            ..OnlineSpec::fifo()
        };
        let out = simulate_online_stream(
            &d,
            &cfg,
            &arrivals,
            2,
            true,
            &plan,
            &RecoverySpec::default(),
            &spec,
        );
        assert_eq!(out.fault.statuses.len(), 8);
        assert!(out.fault.statuses.contains(&StreamStatus::Shed));
        // Every request resolved one way or another.
        assert!(out
            .fault
            .statuses
            .iter()
            .all(|s| matches!(s, StreamStatus::Completed | StreamStatus::Shed)));
    }

    #[test]
    fn online_replays_identically() {
        let d = design();
        let cfg = SimConfig::default();
        let arrivals = poisson_like(16, secs(0.0002));
        let spec = OnlineSpec {
            slo_ticks: Some(secs(0.01)),
            max_queue: Some(8),
            tiers: (0..16).map(|i| (i % 2) as u8).collect(),
        };
        let plan = FaultPlan::parse("5:transient=0.1,corrupt=0.1").unwrap();
        let rec = RecoverySpec::default();
        let a = simulate_online_stream(&d, &cfg, &arrivals, 3, true, &plan, &rec, &spec);
        let b = simulate_online_stream(&d, &cfg, &arrivals, 3, true, &plan, &rec, &spec);
        assert_eq!(a, b);
    }
}
