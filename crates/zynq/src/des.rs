//! A small discrete-event simulation engine.
//!
//! Time is kept in integer picoseconds to make event ordering exact and
//! deterministic. Events carry an opaque payload; the driver (the system
//! simulation in [`crate::sim`]) schedules and consumes them.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in picoseconds.
pub type Time = u64;

/// Convert seconds to simulation time.
pub fn secs(s: f64) -> Time {
    (s * 1e12).round() as Time
}

/// Convert simulation time to seconds.
pub fn to_secs(t: Time) -> f64 {
    t as f64 * 1e-12
}

/// The event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Time, u64, EventSlot<E>)>>,
    now: Time,
    seq: u64,
}

#[derive(Debug)]
struct EventSlot<E>(E);

// Events are ordered by (time, insertion sequence); the payload never
// participates in ordering.
impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at absolute time `at` (must not be in the past).
    pub fn schedule_at(&mut self, at: Time, event: E) {
        assert!(at >= self.now, "scheduling into the past");
        self.heap.push(Reverse((at, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Schedule `event` after a delay.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing time.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse((t, _, slot)) = self.heap.pop()?;
        self.now = t;
        Some((t, slot.0))
    }

    /// Whether any events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(5, 1);
        q.schedule_at(5, 2);
        q.schedule_at(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn time_advances_with_pop() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_in(100, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 100);
        q.schedule_in(50, ());
        q.pop();
        assert_eq!(q.now(), 150);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at(100, ());
        q.pop();
        q.schedule_at(50, ());
    }

    #[test]
    fn secs_roundtrip() {
        let t = secs(1.5e-3);
        assert!((to_secs(t) - 1.5e-3).abs() < 1e-15);
    }
}
