//! Properties of the canonicalization transforms: `factorize`, `cse` and
//! `dce` must be idempotent and preserve interpreter semantics on every
//! example kernel the frontend ships.

use std::collections::HashMap;
use teil::interp::{Interpreter, Tensor};
use teil::ir::TensorKind;
use teil::transform::{cse, dce, factorize};
use teil::Module;

/// Every `cfdlang::examples` kernel at a few sizes.
fn example_kernels() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for p in [3usize, 4, 5] {
        out.push((
            format!("inverse_helmholtz({p})"),
            cfdlang::examples::inverse_helmholtz(p),
        ));
    }
    for (n, m) in [(3usize, 5usize), (4, 6)] {
        out.push((
            format!("interpolation({n}, {m})"),
            cfdlang::examples::interpolation(n, m),
        ));
    }
    for n in [3usize, 4] {
        out.push((
            format!("matrix_sandwich({n})"),
            cfdlang::examples::matrix_sandwich(n),
        ));
    }
    for n in [4usize, 7] {
        out.push((format!("axpy({n})"), cfdlang::examples::axpy(n)));
    }
    out
}

fn lower(src: &str) -> Module {
    let typed = cfdlang::check(&cfdlang::parse(src).unwrap()).unwrap();
    teil::lower(&typed).unwrap()
}

/// Deterministic pseudo-random inputs for a module.
fn random_inputs(module: &Module, seed: u64) -> HashMap<String, Tensor> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut inputs = HashMap::new();
    for id in module.of_kind(TensorKind::Input) {
        let t = Tensor::from_fn(module.shape(id), |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        inputs.insert(module.name(id).to_string(), t);
    }
    inputs
}

/// Maximum relative difference between the outputs of two semantically
/// equal modules on the same inputs.
fn output_diff(a: &Module, b: &Module, seed: u64) -> f64 {
    let inputs = random_inputs(a, seed);
    let ea = Interpreter::new(a).run(&inputs).unwrap();
    let eb = Interpreter::new(b).run(&inputs).unwrap();
    let mut max = 0.0f64;
    for id in a.of_kind(TensorKind::Output) {
        let name = a.name(id);
        let va = ea.value(a, name).unwrap();
        let vb = eb
            .value(b, name)
            .unwrap_or_else(|| panic!("output '{name}' lost by transform"));
        max = max.max(va.max_rel_diff(vb));
    }
    max
}

#[test]
fn transforms_are_idempotent_on_every_example() {
    for (name, src) in example_kernels() {
        let m = lower(&src);
        let f = factorize(&m);
        assert_eq!(factorize(&f), f, "factorize not idempotent on {name}");
        let c = cse(&m);
        assert_eq!(cse(&c), c, "cse not idempotent on {name}");
        let d = dce(&m);
        assert_eq!(dce(&d), d, "dce not idempotent on {name}");
        // The full canonicalization pass the middle end applies.
        let canon = dce(&cse(&factorize(&m)));
        assert_eq!(
            dce(&cse(&factorize(&canon))),
            canon,
            "canonicalization pipeline not idempotent on {name}"
        );
    }
}

#[test]
fn cse_and_dce_are_bitexact_on_every_example() {
    for (name, src) in example_kernels() {
        let m = lower(&src);
        for seed in [1u64, 42] {
            assert_eq!(
                output_diff(&m, &cse(&m), seed),
                0.0,
                "cse changed values on {name}"
            );
            assert_eq!(
                output_diff(&m, &dce(&m), seed),
                0.0,
                "dce changed values on {name}"
            );
        }
    }
}

#[test]
fn factorization_preserves_semantics_on_every_example() {
    for (name, src) in example_kernels() {
        let m = lower(&src);
        let f = factorize(&m);
        for seed in [7u64, 99] {
            let diff = output_diff(&m, &f, seed);
            assert!(
                diff < 1e-10,
                "factorize diverged on {name}: max rel diff {diff}"
            );
        }
    }
}

#[test]
fn canonicalization_preserves_semantics_on_every_example() {
    for (name, src) in example_kernels() {
        let m = lower(&src);
        let canon = dce(&cse(&factorize(&m)));
        for seed in [5u64, 1234] {
            let diff = output_diff(&m, &canon, seed);
            assert!(
                diff < 1e-10,
                "canonicalization diverged on {name}: max rel diff {diff}"
            );
        }
    }
}
