//! The flat-walk interpreter must be indistinguishable from the seed
//! multi-index walk: bit-identical tensors and identical operation
//! counts on every example kernel — and the element-access path must not
//! allocate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use teil::interp::{Interpreter, Tensor};
use teil::ir::TensorKind;
use teil::Module;

/// Counting wrapper around the system allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn example_kernels() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for p in [3usize, 4, 5] {
        out.push((
            format!("inverse_helmholtz({p})"),
            cfdlang::examples::inverse_helmholtz(p),
        ));
    }
    for (n, m) in [(3usize, 5usize), (4, 6)] {
        out.push((
            format!("interpolation({n}, {m})"),
            cfdlang::examples::interpolation(n, m),
        ));
    }
    for n in [3usize, 4] {
        out.push((
            format!("matrix_sandwich({n})"),
            cfdlang::examples::matrix_sandwich(n),
        ));
    }
    for n in [4usize, 7] {
        out.push((format!("axpy({n})"), cfdlang::examples::axpy(n)));
    }
    out
}

fn lower(src: &str) -> Module {
    let typed = cfdlang::check(&cfdlang::parse(src).unwrap()).unwrap();
    teil::lower(&typed).unwrap()
}

fn random_inputs(module: &Module, seed: u64) -> HashMap<String, Tensor> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut inputs = HashMap::new();
    for id in module.of_kind(TensorKind::Input) {
        let t = Tensor::from_fn(module.shape(id), |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        inputs.insert(module.name(id).to_string(), t);
    }
    inputs
}

#[test]
fn flat_walk_is_bit_identical_to_multi_index_walk() {
    for (name, src) in example_kernels() {
        for factored in [false, true] {
            let mut m = lower(&src);
            if factored {
                m = teil::transform::factorize(&m);
            }
            let inputs = random_inputs(&m, 0xC0FFEE ^ m.stmts.len() as u64);
            let interp = Interpreter::new(&m);
            let flat = interp.run(&inputs).unwrap();
            let reference = interp.run_reference(&inputs).unwrap();
            assert_eq!(
                flat.stats, reference.stats,
                "{name} (factored={factored}): op counts diverged"
            );
            assert_eq!(
                flat.values.len(),
                reference.values.len(),
                "{name}: tensor count"
            );
            for (i, (a, b)) in flat.values.iter().zip(&reference.values).enumerate() {
                assert_eq!(a.shape, b.shape, "{name}: shape of tensor {i}");
                // Bit-identical, not approximately equal: the flat walk
                // must evaluate the same operations in the same order.
                let ab: Vec<u64> = a.data.iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u64> = b.data.iter().map(|v| v.to_bits()).collect();
                assert_eq!(ab, bb, "{name} (factored={factored}): tensor {i} bits");
            }
        }
    }
}

#[test]
fn tensor_element_access_does_not_allocate() {
    let t = Tensor::from_fn(&[7, 5, 3], |i| (i[0] * 15 + i[1] * 3 + i[2]) as f64);
    let idx = [4usize, 2, 1];
    // Warm up (the closure and any lazy statics).
    let _ = t.offset(&idx);
    let _ = t.get(&idx);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut acc = 0.0;
    let mut off = 0usize;
    for _ in 0..10_000 {
        off = off.wrapping_add(t.offset(&idx));
        acc += t.get(&idx);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "Tensor::offset/get allocated on the access path"
    );
    assert!(acc > 0.0 && off > 0);
}

#[test]
fn flat_walk_inner_loop_does_not_allocate_per_element() {
    // The interpreter allocates the result tensor, the compiled plans and
    // the odometer once per statement — but nothing per element. Running
    // the same kernel at two sizes must show allocation counts that do
    // not scale with the iteration volume (3^6 = 729 vs 5^6 = 15,625
    // inner iterations for the unfactored Helmholtz contraction).
    let count_run = |p: usize| {
        let m = lower(&cfdlang::examples::inverse_helmholtz(p));
        let inputs = random_inputs(&m, 42);
        let interp = Interpreter::new(&m);
        let _ = interp.run(&inputs).unwrap(); // warm-up
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let _ = interp.run(&inputs).unwrap();
        ALLOCATIONS.load(Ordering::Relaxed) - before
    };
    let small = count_run(3);
    let large = count_run(5);
    // Identical statement structure -> identical allocation count modulo
    // the handful of Vec growth differences from larger shapes.
    assert!(
        large <= small + 16,
        "per-element allocations detected: {small} allocs at p=3 vs {large} at p=5"
    );
}
