//! IR canonicalization (step ⓘ of Figure 4).
//!
//! The central transform is **contraction factorization**: a contraction
//! with `q` independent reduction dimensions and a pure-product body is
//! rewritten into `q` staged binary contractions, lowering the asymptotic
//! cost from `O(p^{2q})` to `O(q · p^{q+1})` per element. For the Inverse
//! Helmholtz operator this is the rewrite of Section IV-A:
//!
//! ```text
//! t = ( S ⊗ ( S ⊗ (S ⊗ u)ᶜᶻₓᵧᶻ )ᵇʸ꜀ₓᵧ )ᵃˣᵦ꜀ₓ
//! ```
//!
//! turning one `O(p⁶)` loop nest into three `O(p⁴)` nests with two new
//! temporaries per contraction (`t0, t1, ...` — the temporaries visible in
//! Figure 6 of the paper).

use crate::ir::{Module, PointExpr, Stmt, TensorId, TensorKind};
use std::collections::HashMap;

/// Factorize every factorizable contraction in the module. Returns a new
/// module; the original is untouched.
pub fn factorize(module: &Module) -> Module {
    let mut out = Module {
        tensors: module.tensors.clone(),
        stmts: Vec::new(),
    };
    for stmt in &module.stmts {
        factorize_stmt(&mut out, module, stmt);
    }
    debug_assert_eq!(out.validate(), Ok(()));
    out
}

fn factorize_stmt(out: &mut Module, src: &Module, stmt: &Stmt) {
    let out_rank = src.shape(stmt.out).len();
    let mut reduce_extents = stmt.reduce_extents.clone();
    let factors = match stmt.expr.product_factors() {
        Some(f) if stmt.reduce_rank() >= 2 && f.len() >= 2 => f,
        _ => {
            out.stmts.push(stmt.clone());
            return;
        }
    };
    let mut factors: Vec<(TensorId, Vec<usize>)> = factors;

    // Eliminate reduction variables from the last one down; eliminating
    // the last keeps the numbering of the remaining variables stable.
    while reduce_extents.len() > 1 {
        let r = out_rank + reduce_extents.len() - 1;
        let touches: Vec<usize> = (0..factors.len())
            .filter(|&i| factors[i].1.contains(&r))
            .collect();
        // Splitting only helps if some factor does not touch r.
        if touches.is_empty() || touches.len() == factors.len() {
            break;
        }
        // The new temporary's dimensions: all iteration variables used by
        // the touching group except r, ascending.
        let mut temp_vars: Vec<usize> = Vec::new();
        for &fi in &touches {
            for &v in &factors[fi].1 {
                if v != r && !temp_vars.contains(&v) {
                    temp_vars.push(v);
                }
            }
        }
        temp_vars.sort_unstable();
        let extent_of = |v: usize| -> usize {
            if v < out_rank {
                src.shape(stmt.out)[v]
            } else {
                reduce_extents[v - out_rank]
            }
        };
        let temp_shape: Vec<usize> = temp_vars.iter().map(|&v| extent_of(v)).collect();
        let temp_name = out.fresh_temp_name("t");
        let temp = out.declare(temp_name, temp_shape, TensorKind::Temp);

        // Stage statement: temp[temp_vars...] = sum_r Π touching factors.
        // In the stage's iteration space, temp dim d is variable d and r
        // is variable temp_vars.len().
        let stage_var = |v: usize| -> usize {
            if v == r {
                temp_vars.len()
            } else {
                temp_vars
                    .iter()
                    .position(|&t| t == v)
                    .expect("var in temp dims")
            }
        };
        let stage_factors: Vec<PointExpr> = touches
            .iter()
            .map(|&fi| PointExpr::Access {
                tensor: factors[fi].0,
                index_map: factors[fi].1.iter().map(|&v| stage_var(v)).collect(),
            })
            .collect();
        out.stmts.push(Stmt {
            out: temp,
            reduce_extents: vec![extent_of(r)],
            expr: PointExpr::product(stage_factors),
        });

        // Replace the touching group by an access to the temporary.
        let mut new_factors: Vec<(TensorId, Vec<usize>)> = Vec::new();
        for (i, f) in factors.iter().enumerate() {
            if !touches.contains(&i) {
                new_factors.push(f.clone());
            }
        }
        new_factors.push((temp, temp_vars.clone()));
        factors = new_factors;
        reduce_extents.pop();
    }

    let exprs: Vec<PointExpr> = factors
        .into_iter()
        .map(|(tensor, index_map)| PointExpr::Access { tensor, index_map })
        .collect();
    out.stmts.push(Stmt {
        out: stmt.out,
        reduce_extents,
        expr: PointExpr::product(exprs),
    });
}

/// Dead-code elimination: drop statements defining temporaries that are
/// never read (transitively) and remove the now-unreferenced tensor
/// declarations, remapping ids.
pub fn dce(module: &Module) -> Module {
    // Mark live tensors backwards from outputs.
    let mut live = vec![false; module.tensors.len()];
    for id in module.of_kind(TensorKind::Output) {
        live[id.0] = true;
    }
    // Inputs stay part of the interface even if unread.
    for id in module.of_kind(TensorKind::Input) {
        live[id.0] = true;
    }
    loop {
        let mut changed = false;
        for stmt in module.stmts.iter().rev() {
            if live[stmt.out.0] {
                for t in stmt.reads() {
                    if !live[t.0] {
                        live[t.0] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Remap ids.
    let mut remap: HashMap<TensorId, TensorId> = HashMap::new();
    let mut out = Module::default();
    for (i, t) in module.tensors.iter().enumerate() {
        if live[i] {
            let new = out.declare(t.name.clone(), t.shape.clone(), t.kind);
            remap.insert(TensorId(i), new);
        }
    }
    for stmt in &module.stmts {
        if !live[stmt.out.0] {
            continue;
        }
        out.stmts.push(Stmt {
            out: remap[&stmt.out],
            reduce_extents: stmt.reduce_extents.clone(),
            expr: remap_expr(&stmt.expr, &remap),
        });
    }
    debug_assert_eq!(out.validate(), Ok(()));
    out
}

/// Common-subexpression elimination for whole statements: if two
/// statements compute identical right-hand sides into temporaries, reuse
/// the first. (The paper's pseudo-SSA form makes this sound: tensors are
/// assigned once and never mutated.)
pub fn cse(module: &Module) -> Module {
    let mut replace: HashMap<TensorId, TensorId> = HashMap::new();
    let mut seen: Vec<(Vec<usize>, PointExpr, TensorId)> = Vec::new();
    let mut out = Module {
        tensors: module.tensors.clone(),
        stmts: Vec::new(),
    };
    for stmt in &module.stmts {
        let expr = remap_expr(&stmt.expr, &replace);
        let dup = seen.iter().find(|(re, e, prev)| {
            re == &stmt.reduce_extents
                && e == &expr
                && module.shape(*prev) == module.shape(stmt.out)
        });
        match dup {
            Some((_, _, prev)) if module.decl(stmt.out).kind == TensorKind::Temp => {
                replace.insert(stmt.out, *prev);
            }
            _ => {
                seen.push((stmt.reduce_extents.clone(), expr.clone(), stmt.out));
                out.stmts.push(Stmt {
                    out: stmt.out,
                    reduce_extents: stmt.reduce_extents.clone(),
                    expr,
                });
            }
        }
    }
    // Drop now-dead duplicate definitions and their declarations.
    dce(&out)
}

fn remap_expr(e: &PointExpr, remap: &HashMap<TensorId, TensorId>) -> PointExpr {
    match e {
        PointExpr::Access { tensor, index_map } => PointExpr::Access {
            tensor: *remap.get(tensor).unwrap_or(tensor),
            index_map: index_map.clone(),
        },
        PointExpr::Const(c) => PointExpr::Const(*c),
        PointExpr::Bin { op, lhs, rhs } => PointExpr::Bin {
            op: *op,
            lhs: Box::new(remap_expr(lhs, remap)),
            rhs: Box::new(remap_expr(rhs, remap)),
        },
    }
}

/// Total multiply–add work (in scalar FLOPs) of a module: per-point
/// expression FLOPs plus one accumulation add per reduction iteration.
pub fn flop_count(module: &Module) -> usize {
    module
        .stmts
        .iter()
        .map(|s| {
            let vol = module.iter_volume(s);
            let per_point = s.expr.flops();
            let acc = if s.is_reduction() { 1 } else { 0 };
            vol * (per_point + acc)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;

    fn helmholtz(n: usize) -> Module {
        let typed =
            cfdlang::check(&cfdlang::parse(&cfdlang::examples::inverse_helmholtz(n)).unwrap())
                .unwrap();
        lower(&typed).unwrap()
    }

    #[test]
    fn factorize_helmholtz_creates_four_temps() {
        let m = factorize(&helmholtz(11));
        // 3 stages per contraction × 2 contractions + Hadamard = 7 stmts.
        assert_eq!(m.stmts.len(), 7);
        let temp_names: Vec<&str> = m
            .of_kind(TensorKind::Temp)
            .iter()
            .map(|&id| m.name(id))
            .collect();
        // Paper Figure 6: temporaries t, r, t0, t1, t2, t3.
        assert_eq!(temp_names, vec!["t", "r", "t0", "t1", "t2", "t3"]);
    }

    #[test]
    fn factorize_reduces_flops() {
        let m = helmholtz(11);
        let f = factorize(&m);
        let naive = flop_count(&m);
        let factored = flop_count(&f);
        // O(p^6) -> O(p^4): enormous reduction at p = 11.
        assert!(factored * 10 < naive, "naive {naive}, factored {factored}");
        // Exact counts: naive contraction = 11^6 * (3 muls + 1 add) * 2
        // contractions + 11^3 hadamard.
        assert_eq!(naive, 2 * 11usize.pow(6) * 4 + 11usize.pow(3));
        // Factored: per contraction 3 stages of 11^4 * 2 flops.
        assert_eq!(factored, 2 * 3 * 11usize.pow(4) * 2 + 11usize.pow(3));
    }

    #[test]
    fn factorize_stage_iteration_spaces_are_p4() {
        let m = factorize(&helmholtz(11));
        for s in &m.stmts {
            let vol = m.iter_volume(s);
            assert!(
                vol == 11usize.pow(4) || vol == 11usize.pow(3),
                "unexpected stage volume {vol}"
            );
        }
    }

    #[test]
    fn factorize_preserves_nonproduct_statements() {
        let m = helmholtz(4);
        let f = factorize(&m);
        // Hadamard statement survives untouched.
        assert!(f
            .stmts
            .iter()
            .any(|s| !s.is_reduction() && s.expr.flops() == 1));
    }

    #[test]
    fn dce_removes_unused_temp() {
        let typed = cfdlang::check(
            &cfdlang::parse("var input a : [3]\nvar w : [3]\nvar output o : [3]\nw = a + a\no = a")
                .unwrap(),
        )
        .unwrap();
        let m = lower(&typed).unwrap();
        assert_eq!(m.stmts.len(), 2);
        let d = dce(&m);
        assert_eq!(d.stmts.len(), 1);
        assert!(d.find("w").is_none());
        assert!(d.find("a").is_some(), "inputs stay in the interface");
    }

    #[test]
    fn dce_keeps_transitive_chains() {
        let m = helmholtz(4);
        let d = dce(&m);
        assert_eq!(d.stmts.len(), m.stmts.len());
    }

    #[test]
    fn cse_merges_duplicate_statements() {
        let typed = cfdlang::check(
            &cfdlang::parse(
                "var input a : [3]\nvar x : [3]\nvar y : [3]\nvar output o : [3]\n\
                 x = a + a\ny = a + a\no = x * y",
            )
            .unwrap(),
        )
        .unwrap();
        let m = lower(&typed).unwrap();
        let c = cse(&m);
        // y = a + a collapses into x.
        assert_eq!(c.stmts.len(), 2);
    }

    #[test]
    fn factorized_helmholtz_validates() {
        factorize(&helmholtz(5)).validate().unwrap();
        dce(&factorize(&helmholtz(5))).validate().unwrap();
    }
}
