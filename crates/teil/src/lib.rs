//! `teil` — a value-based tensor intermediate representation.
//!
//! This crate is the middle end of the CFDlang-to-FPGA flow, modelled on
//! the TeIL tensor IR [Rink et al., ARRAY'19] referenced by the paper.
//! Unlike memory-based IRs (e.g. MLIR's memref-based `linalg`), tensors
//! here are *values*: every statement defines all elements of a unique,
//! statically-shaped, non-aliasing tensor (Section IV-B of the paper).
//!
//! The IR has exactly one statement form — a perfectly-nested loop
//! computation
//!
//! ```text
//! out[o0..o_{p-1}] (+)= expr(o, r0..r_{q-1})
//! ```
//!
//! where `expr` is a scalar expression tree over tensor accesses whose
//! index maps select iteration variables, and `r*` are reduction
//! dimensions that are summed over. Contractions, Hadamard products and
//! entry-wise arithmetic all lower to this form ([`ir`]).
//!
//! The crate provides:
//!
//! * [`ir`] — the IR itself,
//! * [`lower`] — CFDlang AST → IR lowering (step ⓘ of Figure 4),
//! * [`transform`] — canonicalization: contraction factorization via
//!   associativity (the `t = (S ⊗ (S ⊗ (S ⊗ u)..)..)..` rewrite of
//!   Section IV-A), dead-code elimination, duplicate-statement CSE,
//! * [`layout`] — layout materialization (step ⓘⓘ): affine tensor→array
//!   placements with row-major defaults and explicit address-space
//!   sharing,
//! * [`interp`] — a reference interpreter with operation counting, used
//!   for functional validation and as the ARM software cost-model input.
//!
//! # Example
//!
//! ```
//! use teil::{lower::lower, transform};
//!
//! let src = cfdlang::examples::inverse_helmholtz(11);
//! let typed = cfdlang::check(&cfdlang::parse(&src).unwrap()).unwrap();
//! let module = lower(&typed).unwrap();
//! assert_eq!(module.stmts.len(), 3); // t, r, v
//!
//! // Factorization splits each 3-pair contraction into three stages.
//! let factored = transform::factorize(&module);
//! assert_eq!(factored.stmts.len(), 7); // 3 + 1 + 3
//! ```

pub mod interp;
pub mod ir;
pub mod layout;
pub mod lower;
pub mod transform;

pub use interp::{ExecStats, Interpreter, Tensor};
pub use ir::{Module, PointExpr, Stmt, TensorDecl, TensorId, TensorKind};
pub use layout::{ArrayDecl, ArrayId, LayoutPlan, Placement};
pub use lower::lower;
