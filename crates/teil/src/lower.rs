//! Lowering from the CFDlang AST to the tensor IR (step ⓘ of Figure 4).
//!
//! Every DSL assignment becomes one IR statement in the uniform loop-nest
//! form; nested contractions or products inside entry-wise expressions
//! are materialized into compiler temporaries first (pseudo-SSA).

use crate::ir::{Module, PointExpr, Stmt, TensorId, TensorKind};
use cfdlang::ast::{DeclKind, Expr};
use cfdlang::sema::{infer, TypedProgram};

/// Lower a checked program into a [`Module`].
pub fn lower(typed: &TypedProgram) -> Result<Module, String> {
    let mut module = Module::default();
    for name in &typed.order {
        let kind = match typed.kinds[name] {
            DeclKind::Input => TensorKind::Input,
            DeclKind::Output => TensorKind::Output,
            DeclKind::Local => TensorKind::Temp,
        };
        module.declare(name.clone(), typed.shapes[name].clone(), kind);
    }
    for stmt in &typed.program.stmts {
        let out = module
            .find(&stmt.lhs)
            .ok_or_else(|| format!("unknown lhs '{}'", stmt.lhs))?;
        lower_assign(&mut module, typed, out, &stmt.rhs)?;
    }
    module.validate()?;
    Ok(module)
}

/// Lower `out = expr` into one statement (materializing temporaries for
/// nested non-entry-wise subexpressions).
fn lower_assign(
    module: &mut Module,
    typed: &TypedProgram,
    out: TensorId,
    expr: &Expr,
) -> Result<(), String> {
    match expr {
        Expr::Contract { operand, pairs, .. } => {
            let atoms = flatten_product(operand);
            // Materialize every atom to a tensor value.
            let mut atom_ids = Vec::with_capacity(atoms.len());
            for a in atoms {
                atom_ids.push(lower_to_value(module, typed, a)?);
            }
            lower_contraction(module, out, &atom_ids, pairs)
        }
        Expr::Product { .. } => {
            let atoms = flatten_product(expr);
            let mut atom_ids = Vec::with_capacity(atoms.len());
            for a in atoms {
                atom_ids.push(lower_to_value(module, typed, a)?);
            }
            lower_contraction(module, out, &atom_ids, &[])
        }
        // Entry-wise expression (possibly containing nested contractions
        // that get materialized).
        _ => {
            let out_rank = module.shape(out).len();
            let pe = lower_pointwise(module, typed, expr, out_rank)?;
            module.stmts.push(Stmt {
                out,
                reduce_extents: vec![],
                expr: pe,
            });
            Ok(())
        }
    }
}

/// Lower an expression to a tensor value, materializing a temporary if it
/// is not already an identifier.
fn lower_to_value(
    module: &mut Module,
    typed: &TypedProgram,
    expr: &Expr,
) -> Result<TensorId, String> {
    if let Expr::Ident(name, _) = expr {
        return module
            .find(name)
            .ok_or_else(|| format!("unknown tensor '{name}'"));
    }
    let shape = infer(expr, &typed.shapes).map_err(|d| d.to_string())?;
    let name = module.fresh_temp_name("tmp");
    let id = module.declare(name, shape, TensorKind::Temp);
    lower_assign(module, typed, id, expr)?;
    Ok(id)
}

/// Flatten nested `#` products into a list of atom expressions.
fn flatten_product(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::Product { operands, .. } => operands.iter().flat_map(flatten_product).collect(),
        other => vec![other],
    }
}

/// Lower a contraction of materialized atoms.
///
/// The dimensions of the outer product `a0 # a1 # ...` are numbered
/// consecutively; `pairs` contracts pairs of them. Remaining dimensions,
/// in order, become the output iteration variables `0..out_rank`; each
/// pair gets one reduction variable.
fn lower_contraction(
    module: &mut Module,
    out: TensorId,
    atoms: &[TensorId],
    pairs: &[(usize, usize)],
) -> Result<(), String> {
    // Product dimension table: (atom index, dim within atom, extent).
    let mut prod_dims: Vec<(usize, usize, usize)> = Vec::new();
    for (ai, &a) in atoms.iter().enumerate() {
        for (d, &ext) in module.shape(a).iter().enumerate() {
            prod_dims.push((ai, d, ext));
        }
    }
    let rank = prod_dims.len();
    let mut pair_of: Vec<Option<usize>> = vec![None; rank];
    for (pi, &(a, b)) in pairs.iter().enumerate() {
        if a >= rank || b >= rank {
            return Err(format!("contraction pair ({a},{b}) out of range"));
        }
        pair_of[a] = Some(pi);
        pair_of[b] = Some(pi);
    }
    // Assign iteration variables.
    let out_rank = module.shape(out).len();
    let mut var_of_dim: Vec<usize> = vec![usize::MAX; rank];
    let mut next_out = 0usize;
    for (d, p) in pair_of.iter().enumerate() {
        match p {
            None => {
                var_of_dim[d] = next_out;
                next_out += 1;
            }
            Some(pi) => {
                var_of_dim[d] = out_rank + pi;
            }
        }
    }
    if next_out != out_rank {
        return Err(format!(
            "contraction produces rank {next_out}, output has rank {out_rank}"
        ));
    }
    let reduce_extents: Vec<usize> = pairs.iter().map(|&(a, _)| prod_dims[a].2).collect();
    // Build access factors.
    let mut factors = Vec::with_capacity(atoms.len());
    let mut cursor = 0usize;
    for &a in atoms {
        let r = module.shape(a).len();
        let index_map: Vec<usize> = (0..r).map(|d| var_of_dim[cursor + d]).collect();
        cursor += r;
        factors.push(PointExpr::Access {
            tensor: a,
            index_map,
        });
    }
    module.stmts.push(Stmt {
        out,
        reduce_extents,
        expr: PointExpr::product(factors),
    });
    Ok(())
}

/// Lower an entry-wise expression tree; identifiers access with the
/// identity index map over the output iteration variables, scalars access
/// with an empty map (broadcast).
#[allow(clippy::only_used_in_recursion)]
fn lower_pointwise(
    module: &mut Module,
    typed: &TypedProgram,
    expr: &Expr,
    out_rank: usize,
) -> Result<PointExpr, String> {
    match expr {
        Expr::Num(v, _) => Ok(PointExpr::Const(*v)),
        Expr::Ident(name, _) => {
            let id = module
                .find(name)
                .ok_or_else(|| format!("unknown tensor '{name}'"))?;
            let rank = module.shape(id).len();
            Ok(PointExpr::Access {
                tensor: id,
                index_map: (0..rank).collect(),
            })
        }
        Expr::Binary { op, lhs, rhs, .. } => Ok(PointExpr::Bin {
            op: *op,
            lhs: Box::new(lower_pointwise(module, typed, lhs, out_rank)?),
            rhs: Box::new(lower_pointwise(module, typed, rhs, out_rank)?),
        }),
        // Nested contraction/product inside an entry-wise expression:
        // materialize it, then access it entry-wise.
        Expr::Contract { .. } | Expr::Product { .. } => {
            let id = lower_to_value(module, typed, expr)?;
            let rank = module.shape(id).len();
            Ok(PointExpr::Access {
                tensor: id,
                index_map: (0..rank).collect(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::TensorKind;

    fn lower_src(src: &str) -> Module {
        let typed = cfdlang::check(&cfdlang::parse(src).unwrap()).unwrap();
        lower(&typed).unwrap()
    }

    #[test]
    fn helmholtz_lowers_to_three_statements() {
        let m = lower_src(&cfdlang::examples::inverse_helmholtz(11));
        assert_eq!(m.stmts.len(), 3);
        // t-statement: 3 reduction dims, 4 factors.
        let t = &m.stmts[0];
        assert_eq!(t.reduce_extents, vec![11, 11, 11]);
        assert_eq!(t.expr.product_factors().unwrap().len(), 4);
        // r-statement: Hadamard, no reduction.
        let r = &m.stmts[1];
        assert!(!r.is_reduction());
        m.validate().unwrap();
    }

    #[test]
    fn helmholtz_first_contraction_index_maps() {
        // t_ijk = sum_{l,m,n} S[i,l] S[j,m] S[k,n] u[l,m,n]
        // Iteration vars: i=0 j=1 k=2 l=3 m=4 n=5.
        let m = lower_src(&cfdlang::examples::inverse_helmholtz(11));
        let fs = m.stmts[0].expr.product_factors().unwrap();
        assert_eq!(fs[0].1, vec![0, 3]); // S[i,l]
        assert_eq!(fs[1].1, vec![1, 4]); // S[j,m]
        assert_eq!(fs[2].1, vec![2, 5]); // S[k,n]
        assert_eq!(fs[3].1, vec![3, 4, 5]); // u[l,m,n]
    }

    #[test]
    fn helmholtz_second_contraction_transposed() {
        // v_ijk = sum_{l,m,n} S[l,i] S[m,j] S[n,k] r[l,m,n]
        let m = lower_src(&cfdlang::examples::inverse_helmholtz(11));
        let fs = m.stmts[2].expr.product_factors().unwrap();
        assert_eq!(fs[0].1, vec![3, 0]); // S[l,i]
        assert_eq!(fs[1].1, vec![4, 1]);
        assert_eq!(fs[2].1, vec![5, 2]);
        assert_eq!(fs[3].1, vec![3, 4, 5]);
    }

    #[test]
    fn pointwise_mixed_ops() {
        let m =
            lower_src("var input a : [3]\nvar input b : [3]\nvar output o : [3]\no = a * b + a");
        assert_eq!(m.stmts.len(), 1);
        assert_eq!(m.stmts[0].expr.flops(), 2);
    }

    #[test]
    fn scalar_broadcast_has_empty_map() {
        let m = lower_src(&cfdlang::examples::axpy(4));
        let accesses = m.stmts[0].expr.accesses();
        // a (scalar) has empty index map.
        assert!(accesses
            .iter()
            .any(|(t, im)| m.name(**t) == "a" && im.is_empty()));
    }

    #[test]
    fn nested_contraction_materializes_temp() {
        // o = D * (S # u . [[1 2]]) — contraction inside Hadamard.
        let m = lower_src(
            "var input S : [3 3]\nvar input u : [3]\nvar input D : [3]\nvar output o : [3]\n\
             o = D * (S # u . [[1 2]])",
        );
        assert_eq!(m.stmts.len(), 2);
        assert_eq!(m.of_kind(TensorKind::Temp).len(), 1);
        m.validate().unwrap();
    }

    #[test]
    fn outer_product_without_contraction() {
        let m = lower_src("var input a : [2]\nvar input b : [3]\nvar output o : [2 3]\no = a # b");
        assert_eq!(m.stmts.len(), 1);
        assert!(!m.stmts[0].is_reduction());
        let fs = m.stmts[0].expr.product_factors().unwrap();
        assert_eq!(fs[0].1, vec![0]);
        assert_eq!(fs[1].1, vec![1]);
    }

    #[test]
    fn plain_copy_statement() {
        let m = lower_src("var input a : [4]\nvar output o : [4]\no = a");
        assert_eq!(m.stmts.len(), 1);
        assert!(matches!(m.stmts[0].expr, PointExpr::Access { .. }));
    }

    #[test]
    fn matrix_sandwich_two_contractions() {
        let m = lower_src(&cfdlang::examples::matrix_sandwich(4));
        assert_eq!(m.stmts.len(), 2);
        // w = S # A . [[0 2]] : w[i,j] = sum_l S[l,i] A[l,j]
        let fs = m.stmts[0].expr.product_factors().unwrap();
        assert_eq!(fs[0].1, vec![2, 0]);
        assert_eq!(fs[1].1, vec![2, 1]);
    }
}
