//! Reference interpreter with operation counting.
//!
//! The interpreter defines the functional semantics of the IR; every other
//! execution path in the repository (generated C-like loop nests, the HLS
//! accelerator model, the full-system simulation) is validated against it.
//! The operation counts it produces feed the ARM software cost model of
//! the `zynq` crate.
//!
//! # Execution strategy
//!
//! [`Interpreter::run`] walks each statement's iteration space with a
//! **flat counter and pre-resolved affine offsets**: every tensor access
//! is compiled once per statement into per-iteration-variable stride
//! weights, and the odometer advance updates one flat offset per access
//! by a precomputed delta — the element access path performs no
//! multi-index arithmetic and **zero heap allocations**. The seed
//! multi-index walk is kept as [`Interpreter::run_reference`]; the two
//! are bit-identical in results and operation counts (enforced by
//! `tests/interp_equiv.rs`).

use crate::ir::{Module, PointExpr, Stmt, TensorKind};
use cfdlang::BinOp;
use std::collections::HashMap;

/// A dense row-major tensor of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    pub shape: Vec<usize>,
    pub data: Vec<f64>,
}

impl Tensor {
    /// All-zero tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Fill from a function of the multi-index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let mut t = Tensor::zeros(shape);
        let mut idx = vec![0usize; shape.len()];
        for flat in 0..t.data.len() {
            t.data[flat] = f(&idx);
            advance(&mut idx, shape);
        }
        t
    }

    /// Number of elements.
    #[inline]
    pub fn volume(&self) -> usize {
        self.data.len()
    }

    /// Row-major strides.
    pub fn strides(&self) -> Vec<usize> {
        row_major_strides(&self.shape)
    }

    /// Flat offset of a multi-index. Folds the row-major strides on the
    /// fly from the innermost dimension outward — no stride vector is
    /// materialized, so element access never touches the heap.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        let mut off = 0usize;
        let mut stride = 1usize;
        for d in (0..self.shape.len()).rev() {
            off += idx[d] * stride;
            stride *= self.shape[d];
        }
        off
    }

    /// Element access by multi-index.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[self.offset(idx)]
    }

    /// Mutable element access by multi-index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: f64) {
        let o = self.offset(idx);
        self.data[o] = v;
    }

    /// Maximum relative difference to another tensor (0 for identical).
    pub fn max_rel_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| {
                let scale = a.abs().max(b.abs()).max(1.0);
                (a - b).abs() / scale
            })
            .fold(0.0, f64::max)
    }
}

/// Row-major strides for a shape.
pub fn row_major_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for d in (0..shape.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * shape[d + 1];
    }
    strides
}

/// Advance a multi-index odometer-style; wraps to all-zero at the end.
/// Mutates the caller's index buffer in place — a full iteration-space
/// walk reuses one buffer and never allocates.
#[inline]
pub fn advance(idx: &mut [usize], shape: &[usize]) {
    for d in (0..idx.len()).rev() {
        idx[d] += 1;
        if idx[d] < shape[d] {
            return;
        }
        idx[d] = 0;
    }
}

/// Scalar operation counts accumulated during execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    pub fp_add: u64,
    pub fp_sub: u64,
    pub fp_mul: u64,
    pub fp_div: u64,
    pub loads: u64,
    pub stores: u64,
    /// Total innermost iteration count (used for loop-overhead modelling).
    pub iters: u64,
}

impl ExecStats {
    /// All floating-point operations.
    pub fn flops(&self) -> u64 {
        self.fp_add + self.fp_sub + self.fp_mul + self.fp_div
    }

    /// Element-wise sum of two stat records.
    pub fn merge(&self, o: &ExecStats) -> ExecStats {
        ExecStats {
            fp_add: self.fp_add + o.fp_add,
            fp_sub: self.fp_sub + o.fp_sub,
            fp_mul: self.fp_mul + o.fp_mul,
            fp_div: self.fp_div + o.fp_div,
            loads: self.loads + o.loads,
            stores: self.stores + o.stores,
            iters: self.iters + o.iters,
        }
    }
}

/// Result of running a module.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Value of every tensor after execution (indexed by `TensorId`).
    pub values: Vec<Tensor>,
    pub stats: ExecStats,
}

impl Execution {
    /// Value of a tensor by name.
    pub fn value(&self, module: &Module, name: &str) -> Option<&Tensor> {
        module.find(name).map(|id| &self.values[id.0])
    }
}

/// The reference interpreter.
pub struct Interpreter<'m> {
    module: &'m Module,
}

impl<'m> Interpreter<'m> {
    pub fn new(module: &'m Module) -> Self {
        Interpreter { module }
    }

    /// Execute the module on the given inputs (by tensor name). Every
    /// input tensor must be provided with the declared shape.
    ///
    /// Uses the flat-walk engine: per statement, accesses are compiled to
    /// flat affine offsets updated by delta strides as the iteration
    /// odometer advances. Results and operation counts are bit-identical
    /// to [`Interpreter::run_reference`].
    pub fn run(&self, inputs: &HashMap<String, Tensor>) -> Result<Execution, String> {
        let mut values = self.bind_inputs(inputs)?;
        let mut stats = ExecStats::default();
        for stmt in &self.module.stmts {
            self.exec_stmt_flat(stmt, &mut values, &mut stats)?;
        }
        Ok(Execution { values, stats })
    }

    /// Execute with the seed multi-index walk (`advance` + per-access
    /// offset recomputation). Kept as the oracle the flat path is
    /// validated against.
    pub fn run_reference(&self, inputs: &HashMap<String, Tensor>) -> Result<Execution, String> {
        let mut values = self.bind_inputs(inputs)?;
        let mut stats = ExecStats::default();
        for stmt in &self.module.stmts {
            self.exec_stmt(stmt, &mut values, &mut stats)?;
        }
        Ok(Execution { values, stats })
    }

    fn bind_inputs(&self, inputs: &HashMap<String, Tensor>) -> Result<Vec<Tensor>, String> {
        let m = self.module;
        let mut values: Vec<Tensor> = Vec::with_capacity(m.tensors.len());
        for decl in &m.tensors {
            match decl.kind {
                TensorKind::Input => {
                    let t = inputs
                        .get(&decl.name)
                        .ok_or_else(|| format!("missing input '{}'", decl.name))?;
                    if t.shape != decl.shape {
                        return Err(format!(
                            "input '{}' has shape {:?}, declared {:?}",
                            decl.name, t.shape, decl.shape
                        ));
                    }
                    values.push(t.clone());
                }
                _ => values.push(Tensor::zeros(&decl.shape)),
            }
        }
        Ok(values)
    }

    /// Flat-walk execution of one statement: the expression tree is
    /// compiled once (index maps → per-iteration-variable stride
    /// weights), and the walk advances one flat offset per access by a
    /// precomputed delta per odometer step — the inner loop does no
    /// index-vector arithmetic and no allocation.
    fn exec_stmt_flat(
        &self,
        stmt: &Stmt,
        values: &mut [Tensor],
        stats: &mut ExecStats,
    ) -> Result<(), String> {
        let m = self.module;
        let out_shape = m.shape(stmt.out).to_vec();
        let out_rank = out_shape.len();
        let ext = m.iter_extents(stmt);
        let rank = ext.len();
        let out_vol: usize = out_shape.iter().product();
        let red_vol: usize = stmt.reduce_extents.iter().product();

        let mut plans: Vec<AccessPlan> = Vec::new();
        let cexpr = compile_expr(&stmt.expr, values, &ext, &mut plans);
        // Per-plan rollover sums: rs[j] = Σ_{w ≥ j} (ext[w]-1)·weight[w],
        // so the delta of incrementing digit j (digits j+1..end rolling
        // to zero) is weight[j] - (rs[j+1] - rs[end]).
        for p in &mut plans {
            let mut rs = vec![0i64; rank + 1];
            for j in (0..rank).rev() {
                rs[j] = rs[j + 1] + (ext[j] as i64 - 1) * p.weights[j];
            }
            p.roll_sums = rs;
        }

        let mut result = Tensor::zeros(&out_shape);
        let mut idx = vec![0usize; rank];
        let mut offs: Vec<usize> = vec![0; plans.len()];
        let is_reduction = stmt.is_reduction();
        for o in 0..out_vol {
            let mut acc = 0.0f64;
            for _ in 0..red_vol.max(1) {
                let v = eval_flat(&cexpr, &offs, values, stats);
                if is_reduction {
                    acc += v;
                    stats.fp_add += 1;
                } else {
                    acc = v;
                }
                stats.iters += 1;
                // Advance the reduction part of the odometer, sliding
                // every access offset by its delta.
                advance_region(&mut idx, &ext, out_rank, rank, &plans, &mut offs);
            }
            result.data[o] = acc;
            stats.stores += 1;
            // Advance the output part (reduction digits are all zero).
            advance_region(&mut idx, &ext, 0, out_rank, &plans, &mut offs);
        }
        values[stmt.out.0] = result;
        Ok(())
    }

    fn exec_stmt(
        &self,
        stmt: &Stmt,
        values: &mut [Tensor],
        stats: &mut ExecStats,
    ) -> Result<(), String> {
        let m = self.module;
        let out_shape = m.shape(stmt.out).to_vec();
        let out_rank = out_shape.len();
        let ext = m.iter_extents(stmt);
        let out_vol: usize = out_shape.iter().product();
        let red_vol: usize = stmt.reduce_extents.iter().product();

        let mut result = Tensor::zeros(&out_shape);
        let mut idx = vec![0usize; ext.len()];
        for o in 0..out_vol {
            let mut acc = 0.0f64;
            for _ in 0..red_vol.max(1) {
                let v = eval(m, &stmt.expr, &idx, values, stats);
                if stmt.is_reduction() {
                    acc += v;
                    stats.fp_add += 1;
                } else {
                    acc = v;
                }
                stats.iters += 1;
                // Advance reduction part of the odometer.
                advance(&mut idx[out_rank..], &ext[out_rank..]);
            }
            result.data[o] = acc;
            stats.stores += 1;
            advance(&mut idx[..out_rank], &ext[..out_rank]);
        }
        values[stmt.out.0] = result;
        Ok(())
    }
}

#[allow(clippy::only_used_in_recursion)]
fn eval(m: &Module, e: &PointExpr, idx: &[usize], values: &[Tensor], stats: &mut ExecStats) -> f64 {
    match e {
        PointExpr::Const(c) => *c,
        PointExpr::Access { tensor, index_map } => {
            stats.loads += 1;
            let t = &values[tensor.0];
            let mut flat = 0usize;
            let strides = row_major_strides(&t.shape);
            for (d, &v) in index_map.iter().enumerate() {
                flat += idx[v] * strides[d];
            }
            t.data[flat]
        }
        PointExpr::Bin { op, lhs, rhs } => {
            let a = eval(m, lhs, idx, values, stats);
            let b = eval(m, rhs, idx, values, stats);
            match op {
                BinOp::Add => {
                    stats.fp_add += 1;
                    a + b
                }
                BinOp::Sub => {
                    stats.fp_sub += 1;
                    a - b
                }
                BinOp::Mul => {
                    stats.fp_mul += 1;
                    a * b
                }
                BinOp::Div => {
                    stats.fp_div += 1;
                    a / b
                }
            }
        }
    }
}

/// One compiled tensor access: the flat affine image of the iteration
/// vector under the access's index map and the operand's row-major
/// layout.
#[derive(Debug)]
struct AccessPlan {
    /// `weights[v]` — stride contribution of iteration variable `v` to
    /// the flat offset (a variable indexing several operand dims sums
    /// their strides).
    weights: Vec<i64>,
    /// Suffix rollover sums over the full iteration rank (see
    /// `exec_stmt_flat`).
    roll_sums: Vec<i64>,
}

/// Expression tree with accesses resolved to offset slots.
#[derive(Debug)]
enum FlatExpr {
    Const(f64),
    Access {
        tensor: usize,
        slot: usize,
    },
    Bin {
        op: BinOp,
        lhs: Box<FlatExpr>,
        rhs: Box<FlatExpr>,
    },
}

/// Compile a [`PointExpr`] tree: each access gets an [`AccessPlan`] (in
/// evaluation order) and a slot into the shared offset vector.
fn compile_expr(
    e: &PointExpr,
    values: &[Tensor],
    ext: &[usize],
    plans: &mut Vec<AccessPlan>,
) -> FlatExpr {
    match e {
        PointExpr::Const(c) => FlatExpr::Const(*c),
        PointExpr::Access { tensor, index_map } => {
            let strides = row_major_strides(&values[tensor.0].shape);
            let mut weights = vec![0i64; ext.len()];
            for (d, &v) in index_map.iter().enumerate() {
                weights[v] += strides[d] as i64;
            }
            let slot = plans.len();
            plans.push(AccessPlan {
                weights,
                roll_sums: Vec::new(),
            });
            FlatExpr::Access {
                tensor: tensor.0,
                slot,
            }
        }
        PointExpr::Bin { op, lhs, rhs } => FlatExpr::Bin {
            op: *op,
            lhs: Box::new(compile_expr(lhs, values, ext, plans)),
            rhs: Box::new(compile_expr(rhs, values, ext, plans)),
        },
    }
}

/// Odometer advance over digits `[base, end)` of `idx`, applying each
/// access's offset delta for the digit that increments (and the digits
/// that roll over). Wrapping the whole region subtracts the full region
/// roll sum — offsets return to the region's all-zero state exactly.
#[inline]
fn advance_region(
    idx: &mut [usize],
    ext: &[usize],
    base: usize,
    end: usize,
    plans: &[AccessPlan],
    offs: &mut [usize],
) {
    let mut d = end;
    while d > base {
        d -= 1;
        idx[d] += 1;
        if idx[d] < ext[d] {
            for (p, o) in plans.iter().zip(offs.iter_mut()) {
                let delta = p.weights[d] - (p.roll_sums[d + 1] - p.roll_sums[end]);
                *o = (*o as i64 + delta) as usize;
            }
            return;
        }
        idx[d] = 0;
    }
    // Full wrap of the region.
    for (p, o) in plans.iter().zip(offs.iter_mut()) {
        *o = (*o as i64 - (p.roll_sums[base] - p.roll_sums[end])) as usize;
    }
}

/// Evaluate a compiled expression at the current offsets. Mirrors `eval`
/// exactly (same traversal order, same operation counting), but every
/// access is a single indexed load.
fn eval_flat(e: &FlatExpr, offs: &[usize], values: &[Tensor], stats: &mut ExecStats) -> f64 {
    match e {
        FlatExpr::Const(c) => *c,
        FlatExpr::Access { tensor, slot } => {
            stats.loads += 1;
            values[*tensor].data[offs[*slot]]
        }
        FlatExpr::Bin { op, lhs, rhs } => {
            let a = eval_flat(lhs, offs, values, stats);
            let b = eval_flat(rhs, offs, values, stats);
            match op {
                BinOp::Add => {
                    stats.fp_add += 1;
                    a + b
                }
                BinOp::Sub => {
                    stats.fp_sub += 1;
                    a - b
                }
                BinOp::Mul => {
                    stats.fp_mul += 1;
                    a * b
                }
                BinOp::Div => {
                    stats.fp_div += 1;
                    a / b
                }
            }
        }
    }
}

/// Build the input map for a module from `(name, tensor)` pairs.
pub fn inputs_from(pairs: Vec<(&str, Tensor)>) -> HashMap<String, Tensor> {
    pairs.into_iter().map(|(n, t)| (n.to_string(), t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::transform::factorize;

    fn lower_src(src: &str) -> Module {
        lower(&cfdlang::check(&cfdlang::parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn tensor_row_major_layout() {
        let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 10 + idx[1]) as f64);
        assert_eq!(t.data, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(t.get(&[1, 2]), 12.0);
        assert_eq!(t.strides(), vec![3, 1]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = lower_src(
            "var input S : [2 2]\nvar input u : [2]\nvar output o : [2]\no = S # u . [[1 2]]",
        );
        let s = Tensor {
            shape: vec![2, 2],
            data: vec![1.0, 2.0, 3.0, 4.0],
        };
        let u = Tensor {
            shape: vec![2],
            data: vec![5.0, 6.0],
        };
        let ex = Interpreter::new(&m)
            .run(&inputs_from(vec![("S", s), ("u", u)]))
            .unwrap();
        let o = ex.value(&m, "o").unwrap();
        assert_eq!(o.data, vec![1.0 * 5.0 + 2.0 * 6.0, 3.0 * 5.0 + 4.0 * 6.0]);
    }

    #[test]
    fn hadamard_and_axpy() {
        let m = lower_src(&cfdlang::examples::axpy(2));
        let x = Tensor::from_fn(&[2, 2, 2], |i| (i[0] + i[1] + i[2]) as f64);
        let y = Tensor::from_fn(&[2, 2, 2], |_| 1.0);
        let a = Tensor {
            shape: vec![],
            data: vec![2.0],
        };
        let ex = Interpreter::new(&m)
            .run(&inputs_from(vec![("x", x.clone()), ("y", y), ("a", a)]))
            .unwrap();
        let o = ex.value(&m, "o").unwrap();
        for (i, v) in o.data.iter().enumerate() {
            assert_eq!(*v, 2.0 * x.data[i] + 1.0);
        }
    }

    #[test]
    fn factorization_preserves_semantics() {
        let m = lower_src(&cfdlang::examples::inverse_helmholtz(4));
        let f = factorize(&m);
        let mk = |seed: usize| {
            Tensor::from_fn(&[4, 4, 4], |i| {
                ((i[0] * 31 + i[1] * 17 + i[2] * 7 + seed) % 13) as f64 * 0.25 - 1.0
            })
        };
        let s = Tensor::from_fn(&[4, 4], |i| ((i[0] * 5 + i[1] * 3) % 7) as f64 * 0.5 - 1.0);
        let inputs = inputs_from(vec![("S", s), ("D", mk(1)), ("u", mk(2))]);
        let e1 = Interpreter::new(&m).run(&inputs).unwrap();
        let e2 = Interpreter::new(&f).run(&inputs).unwrap();
        let v1 = e1.value(&m, "v").unwrap();
        let v2 = e2.value(&f, "v").unwrap();
        assert!(
            v1.max_rel_diff(v2) < 1e-12,
            "factorized result diverged: {}",
            v1.max_rel_diff(v2)
        );
    }

    #[test]
    fn identity_helmholtz_is_identity() {
        // With S = I and D = 1, the operator reduces to v = u.
        let m = lower_src(&cfdlang::examples::inverse_helmholtz(3));
        let s = Tensor::from_fn(&[3, 3], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        let d = Tensor::from_fn(&[3, 3, 3], |_| 1.0);
        let u = Tensor::from_fn(&[3, 3, 3], |i| (i[0] * 9 + i[1] * 3 + i[2]) as f64);
        let ex = Interpreter::new(&m)
            .run(&inputs_from(vec![("S", s), ("D", d), ("u", u.clone())]))
            .unwrap();
        assert_eq!(ex.value(&m, "v").unwrap().data, u.data);
    }

    #[test]
    fn op_counts_match_formula() {
        let m = lower_src(&cfdlang::examples::inverse_helmholtz(4));
        let n = 4usize;
        let s = Tensor::zeros(&[n, n]);
        let d = Tensor::zeros(&[n, n, n]);
        let u = Tensor::zeros(&[n, n, n]);
        let ex = Interpreter::new(&m)
            .run(&inputs_from(vec![("S", s), ("D", d), ("u", u)]))
            .unwrap();
        // Two contractions: n^6 iterations × 3 muls; Hadamard: n^3 muls.
        let expected_mul = 2 * n.pow(6) * 3 + n.pow(3);
        assert_eq!(ex.stats.fp_mul, expected_mul as u64);
        // Accumulation adds: one per reduction iteration.
        assert_eq!(ex.stats.fp_add, (2 * n.pow(6)) as u64);
        // Stores: each statement writes its whole output once.
        assert_eq!(ex.stats.stores, (3 * n.pow(3)) as u64);
    }

    #[test]
    fn missing_input_is_error() {
        let m = lower_src("var input a : [2]\nvar output o : [2]\no = a");
        let err = Interpreter::new(&m).run(&HashMap::new()).unwrap_err();
        assert!(err.contains("missing input 'a'"));
    }

    #[test]
    fn wrong_shape_is_error() {
        let m = lower_src("var input a : [2]\nvar output o : [2]\no = a");
        let err = Interpreter::new(&m)
            .run(&inputs_from(vec![("a", Tensor::zeros(&[3]))]))
            .unwrap_err();
        assert!(err.contains("shape"));
    }

    #[test]
    fn max_rel_diff_detects_difference() {
        let a = Tensor {
            shape: vec![2],
            data: vec![1.0, 2.0],
        };
        let b = Tensor {
            shape: vec![2],
            data: vec![1.0, 2.2],
        };
        assert!(a.max_rel_diff(&b) > 0.05);
        assert_eq!(a.max_rel_diff(&a), 0.0);
    }
}
