//! The tensor IR: modules, tensor declarations, and the uniform
//! loop-nest statement form.

use cfdlang::BinOp;
use std::fmt;

/// Index of a tensor within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorId(pub usize);

/// Storage class of an IR tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorKind {
    /// Part of the kernel interface, written by the host.
    Input,
    /// Part of the kernel interface, read back by the host.
    Output,
    /// Kernel-local temporary (named in the DSL or compiler-generated).
    Temp,
}

/// A tensor declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorDecl {
    pub name: String,
    pub shape: Vec<usize>,
    pub kind: TensorKind,
}

impl TensorDecl {
    /// Total number of scalar elements.
    pub fn volume(&self) -> usize {
        self.shape.iter().product()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }
}

/// A scalar expression tree evaluated at each iteration point.
///
/// Leaves access tensors through *index maps*: `index_map[d]` names the
/// iteration variable used for the operand's `d`-th dimension. Iteration
/// variables `0..out_rank` are the output dimensions; variables
/// `out_rank..out_rank+reduce_rank` are reduction dimensions.
#[derive(Debug, Clone, PartialEq)]
pub enum PointExpr {
    /// Read `tensor[x_{index_map[0]}, x_{index_map[1]}, ...]`.
    Access {
        tensor: TensorId,
        index_map: Vec<usize>,
    },
    /// A scalar constant.
    Const(f64),
    /// Binary entry-wise operation.
    Bin {
        op: BinOp,
        lhs: Box<PointExpr>,
        rhs: Box<PointExpr>,
    },
}

impl PointExpr {
    /// Multiply a list of expressions into a left-leaning product tree.
    pub fn product(mut factors: Vec<PointExpr>) -> PointExpr {
        assert!(!factors.is_empty());
        let mut acc = factors.remove(0);
        for f in factors {
            acc = PointExpr::Bin {
                op: BinOp::Mul,
                lhs: Box::new(acc),
                rhs: Box::new(f),
            };
        }
        acc
    }

    /// Collect all accesses in evaluation order.
    pub fn accesses(&self) -> Vec<(&TensorId, &Vec<usize>)> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let PointExpr::Access { tensor, index_map } = e {
                out.push((tensor, index_map));
            }
        });
        out
    }

    /// Whether the tree is a pure product of accesses (factorizable
    /// contraction body).
    pub fn is_pure_product(&self) -> bool {
        match self {
            PointExpr::Access { .. } => true,
            PointExpr::Const(_) => false,
            PointExpr::Bin { op, lhs, rhs } => {
                *op == BinOp::Mul && lhs.is_pure_product() && rhs.is_pure_product()
            }
        }
    }

    /// Flatten a pure product into its access factors. Returns `None` if
    /// the tree is not a pure product.
    pub fn product_factors(&self) -> Option<Vec<(TensorId, Vec<usize>)>> {
        let mut out = Vec::new();
        if self.collect_factors(&mut out) {
            Some(out)
        } else {
            None
        }
    }

    fn collect_factors(&self, out: &mut Vec<(TensorId, Vec<usize>)>) -> bool {
        match self {
            PointExpr::Access { tensor, index_map } => {
                out.push((*tensor, index_map.clone()));
                true
            }
            PointExpr::Const(_) => false,
            PointExpr::Bin { op, lhs, rhs } => {
                *op == BinOp::Mul && lhs.collect_factors(out) && rhs.collect_factors(out)
            }
        }
    }

    /// Pre-order traversal.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a PointExpr)) {
        f(self);
        if let PointExpr::Bin { lhs, rhs, .. } = self {
            lhs.walk(f);
            rhs.walk(f);
        }
    }

    /// Number of scalar floating-point operations per evaluation
    /// (additions from reduction accumulation are *not* included).
    pub fn flops(&self) -> usize {
        match self {
            PointExpr::Access { .. } | PointExpr::Const(_) => 0,
            PointExpr::Bin { lhs, rhs, .. } => 1 + lhs.flops() + rhs.flops(),
        }
    }

    /// Remap iteration-variable indices through `f`.
    pub fn remap_vars(&self, f: &impl Fn(usize) -> usize) -> PointExpr {
        match self {
            PointExpr::Access { tensor, index_map } => PointExpr::Access {
                tensor: *tensor,
                index_map: index_map.iter().map(|&v| f(v)).collect(),
            },
            PointExpr::Const(c) => PointExpr::Const(*c),
            PointExpr::Bin { op, lhs, rhs } => PointExpr::Bin {
                op: *op,
                lhs: Box::new(lhs.remap_vars(f)),
                rhs: Box::new(rhs.remap_vars(f)),
            },
        }
    }
}

/// One IR statement: a perfectly-nested loop computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The defined tensor. Its rank fixes the number of output iteration
    /// variables.
    pub out: TensorId,
    /// Extents of the reduction dimensions (iteration variables
    /// `out_rank..out_rank + reduce_extents.len()`), summed over.
    pub reduce_extents: Vec<usize>,
    /// The per-point scalar expression.
    pub expr: PointExpr,
}

impl Stmt {
    /// Number of reduction dimensions.
    pub fn reduce_rank(&self) -> usize {
        self.reduce_extents.len()
    }

    /// Whether this is a reduction (contraction-like) statement.
    pub fn is_reduction(&self) -> bool {
        !self.reduce_extents.is_empty()
    }

    /// Tensors read by this statement (with duplicates).
    pub fn reads(&self) -> Vec<TensorId> {
        self.expr.accesses().iter().map(|(t, _)| **t).collect()
    }
}

/// A whole tensor program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    pub tensors: Vec<TensorDecl>,
    pub stmts: Vec<Stmt>,
}

impl Module {
    /// Declare a tensor, returning its id.
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        shape: Vec<usize>,
        kind: TensorKind,
    ) -> TensorId {
        let name = name.into();
        assert!(
            self.find(&name).is_none(),
            "duplicate tensor declaration '{name}'"
        );
        self.tensors.push(TensorDecl { name, shape, kind });
        TensorId(self.tensors.len() - 1)
    }

    /// Look up a tensor by name.
    pub fn find(&self, name: &str) -> Option<TensorId> {
        self.tensors
            .iter()
            .position(|t| t.name == name)
            .map(TensorId)
    }

    /// Declaration of a tensor.
    pub fn decl(&self, id: TensorId) -> &TensorDecl {
        &self.tensors[id.0]
    }

    /// Name of a tensor.
    pub fn name(&self, id: TensorId) -> &str {
        &self.tensors[id.0].name
    }

    /// Shape of a tensor.
    pub fn shape(&self, id: TensorId) -> &[usize] {
        &self.tensors[id.0].shape
    }

    /// Ids of all tensors of a given kind, in declaration order.
    pub fn of_kind(&self, kind: TensorKind) -> Vec<TensorId> {
        (0..self.tensors.len())
            .map(TensorId)
            .filter(|id| self.decl(*id).kind == kind)
            .collect()
    }

    /// Look up a tensor by name *and* kind — the lookup multi-kernel
    /// linking performs when matching a later kernel's input against an
    /// earlier kernel's equally named output.
    pub fn find_of_kind(&self, name: &str, kind: TensorKind) -> Option<TensorId> {
        self.find(name).filter(|&id| self.decl(id).kind == kind)
    }

    /// Iteration-space extents of a statement: output dims then reduce
    /// dims.
    pub fn iter_extents(&self, stmt: &Stmt) -> Vec<usize> {
        let mut ext = self.shape(stmt.out).to_vec();
        ext.extend_from_slice(&stmt.reduce_extents);
        ext
    }

    /// Total loop iterations of a statement.
    pub fn iter_volume(&self, stmt: &Stmt) -> usize {
        self.iter_extents(stmt).iter().product()
    }

    /// Generate a temporary name not colliding with existing tensors.
    /// Names follow the paper's `t0, t1, ...` convention (Figure 6).
    pub fn fresh_temp_name(&self, hint: &str) -> String {
        for n in 0.. {
            let cand = format!("{hint}{n}");
            if self.find(&cand).is_none() {
                return cand;
            }
        }
        unreachable!()
    }

    /// Validate internal consistency: every access's index map is within
    /// the iteration space and matches the operand's rank and extents.
    pub fn validate(&self) -> Result<(), String> {
        for (si, stmt) in self.stmts.iter().enumerate() {
            let ext = self.iter_extents(stmt);
            for (tid, imap) in stmt.expr.accesses() {
                let decl = self.decl(*tid);
                if imap.len() != decl.rank() {
                    return Err(format!(
                        "stmt {si}: access to '{}' has {} indices, tensor has rank {}",
                        decl.name,
                        imap.len(),
                        decl.rank()
                    ));
                }
                for (d, &v) in imap.iter().enumerate() {
                    if v >= ext.len() {
                        return Err(format!(
                            "stmt {si}: access to '{}' uses iteration var {v} out of {}",
                            decl.name,
                            ext.len()
                        ));
                    }
                    if ext[v] != decl.shape[d] {
                        return Err(format!(
                            "stmt {si}: access to '{}' dim {d} extent {} != iter var {} extent {}",
                            decl.name, decl.shape[d], v, ext[v]
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tensors {
            writeln!(
                f,
                "{} {} : {:?}",
                match t.kind {
                    TensorKind::Input => "input ",
                    TensorKind::Output => "output",
                    TensorKind::Temp => "temp  ",
                },
                t.name,
                t.shape
            )?;
        }
        for s in &self.stmts {
            let out_rank = self.shape(s.out).len();
            let ovars: Vec<String> = (0..out_rank).map(|v| format!("x{v}")).collect();
            let rvars: Vec<String> = (out_rank..out_rank + s.reduce_rank())
                .map(|v| format!("x{v}"))
                .collect();
            write!(f, "{}[{}] ", self.name(s.out), ovars.join(","))?;
            if s.is_reduction() {
                write!(f, "= sum[{}] ", rvars.join(","))?;
            } else {
                write!(f, "= ")?;
            }
            writeln!(f, "{}", display_expr(self, &s.expr))?;
        }
        Ok(())
    }
}

fn display_expr(m: &Module, e: &PointExpr) -> String {
    match e {
        PointExpr::Access { tensor, index_map } => {
            let idx: Vec<String> = index_map.iter().map(|v| format!("x{v}")).collect();
            format!("{}[{}]", m.name(*tensor), idx.join(","))
        }
        PointExpr::Const(c) => format!("{c}"),
        PointExpr::Bin { op, lhs, rhs } => format!(
            "({} {} {})",
            display_expr(m, lhs),
            op.c_symbol(),
            display_expr(m, rhs)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_module() -> Module {
        let mut m = Module::default();
        let s = m.declare("S", vec![4, 4], TensorKind::Input);
        let u = m.declare("u", vec![4], TensorKind::Input);
        let o = m.declare("o", vec![4], TensorKind::Output);
        // o[i] = sum_l S[i,l] * u[l]
        m.stmts.push(Stmt {
            out: o,
            reduce_extents: vec![4],
            expr: PointExpr::product(vec![
                PointExpr::Access {
                    tensor: s,
                    index_map: vec![0, 1],
                },
                PointExpr::Access {
                    tensor: u,
                    index_map: vec![1],
                },
            ]),
        });
        m
    }

    #[test]
    fn declare_and_find() {
        let m = tiny_module();
        assert_eq!(m.find("S"), Some(TensorId(0)));
        assert_eq!(m.find("nope"), None);
        assert_eq!(m.decl(TensorId(1)).volume(), 4);
    }

    #[test]
    fn iter_extents_include_reduction() {
        let m = tiny_module();
        assert_eq!(m.iter_extents(&m.stmts[0]), vec![4, 4]);
        assert_eq!(m.iter_volume(&m.stmts[0]), 16);
    }

    #[test]
    fn validate_accepts_consistent() {
        tiny_module().validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_rank() {
        let mut m = tiny_module();
        if let PointExpr::Bin { lhs, .. } = &mut m.stmts[0].expr {
            if let PointExpr::Access { index_map, .. } = lhs.as_mut() {
                index_map.push(0);
            }
        }
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_rejects_extent_mismatch() {
        let mut m = tiny_module();
        if let PointExpr::Bin { rhs, .. } = &mut m.stmts[0].expr {
            if let PointExpr::Access { index_map, .. } = rhs.as_mut() {
                index_map[0] = 0; // u is [4] and var 0 also has extent 4 — fine
            }
        }
        m.validate().unwrap();
        // Now break it: resize u.
        m.tensors[1].shape = vec![5];
        assert!(m.validate().is_err());
    }

    #[test]
    fn pure_product_detection() {
        let m = tiny_module();
        assert!(m.stmts[0].expr.is_pure_product());
        let e = PointExpr::Bin {
            op: cfdlang::BinOp::Add,
            lhs: Box::new(PointExpr::Const(1.0)),
            rhs: Box::new(PointExpr::Const(2.0)),
        };
        assert!(!e.is_pure_product());
    }

    #[test]
    fn product_factors_flatten() {
        let m = tiny_module();
        let fs = m.stmts[0].expr.product_factors().unwrap();
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0].1, vec![0, 1]);
        assert_eq!(fs[1].1, vec![1]);
    }

    #[test]
    fn fresh_temp_names_skip_collisions() {
        let mut m = Module::default();
        m.declare("t0", vec![1], TensorKind::Temp);
        assert_eq!(m.fresh_temp_name("t"), "t1");
    }

    #[test]
    fn flops_counts_bin_nodes() {
        let m = tiny_module();
        assert_eq!(m.stmts[0].expr.flops(), 1);
    }

    #[test]
    fn display_is_readable() {
        let m = tiny_module();
        let s = m.to_string();
        assert!(s.contains("o[x0] = sum[x1] (S[x0,x1] * u[x1])"), "{s}");
    }
}
