//! Layout materialization (step ⓘⓘ of Figure 4).
//!
//! Tensors are values; before scheduling, the compiler concretizes their
//! memory layouts as *placements* into one-dimensional arrays. The
//! default is the C99 row-major layout (`t[i,j,k] ↦ t[121i + 11j + k]`
//! for the paper's running example). Placements are affine, so every
//! placement exports a [`polyhedra::Map`] for the layout-aware dependence
//! and liveness analyses of the `pschedule` crate.
//!
//! Partitioning maps (array → array) can split and merge arrays; here we
//! provide the merge direction (explicit address-space sharing), whose
//! legality is checked downstream by liveness analysis (Section V-A2).

use crate::ir::{Module, TensorId, TensorKind};
use polyhedra::{LinExpr, Map, Space};

/// Index of an array within a [`LayoutPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// A one-dimensional array, later implemented as a PLM unit (a set of
/// BRAMs) by the memory generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    pub name: String,
    /// Number of 64-bit words.
    pub size: usize,
    /// Whether the array is part of the kernel interface (host-visible).
    pub interface: bool,
}

/// An affine placement of a tensor into an array:
/// `addr = Σ strides[d] · x_d + offset`.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    pub tensor: TensorId,
    pub array: ArrayId,
    pub strides: Vec<i64>,
    pub offset: i64,
}

impl Placement {
    /// Flat address of a tensor multi-index.
    pub fn addr(&self, idx: &[usize]) -> i64 {
        debug_assert_eq!(idx.len(), self.strides.len());
        self.offset
            + idx
                .iter()
                .zip(&self.strides)
                .map(|(&i, &s)| i as i64 * s)
                .sum::<i64>()
    }
}

/// The complete tensor→array mapping of a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutPlan {
    pub arrays: Vec<ArrayDecl>,
    /// Indexed by `TensorId`.
    pub placements: Vec<Placement>,
}

impl LayoutPlan {
    /// The default layout: one array per tensor, row-major strides,
    /// offset 0 (Section IV-D's "C99 standard innermost dimension
    /// layout").
    pub fn row_major(module: &Module) -> LayoutPlan {
        let mut arrays = Vec::with_capacity(module.tensors.len());
        let mut placements = Vec::with_capacity(module.tensors.len());
        for (i, t) in module.tensors.iter().enumerate() {
            arrays.push(ArrayDecl {
                name: t.name.clone(),
                size: t.volume(),
                interface: t.kind != TensorKind::Temp,
            });
            let strides: Vec<i64> = crate::interp::row_major_strides(&t.shape)
                .into_iter()
                .map(|s| s as i64)
                .collect();
            placements.push(Placement {
                tensor: TensorId(i),
                array: ArrayId(i),
                strides,
                offset: 0,
            });
        }
        LayoutPlan { arrays, placements }
    }

    /// Replace a tensor's strides/offset (custom layout expression, e.g.
    /// implicit reshaping at the host-device interface).
    pub fn with_strides(&mut self, tensor: TensorId, strides: Vec<i64>, offset: i64) {
        let p = &mut self.placements[tensor.0];
        assert_eq!(p.strides.len(), strides.len(), "rank mismatch");
        p.strides = strides;
        p.offset = offset;
    }

    /// Merge array `b` into array `a` (explicit address-space sharing):
    /// all placements into `b` are redirected into `a`, and `a` grows to
    /// cover both. Legality (non-overlapping lifetimes) is the caller's
    /// obligation, checked by liveness analysis downstream.
    pub fn merge_arrays(&mut self, a: ArrayId, b: ArrayId) {
        assert_ne!(a, b, "cannot merge an array into itself");
        let b_size = self.arrays[b.0].size;
        if b_size > self.arrays[a.0].size {
            self.arrays[a.0].size = b_size;
        }
        self.arrays[a.0].interface |= self.arrays[b.0].interface;
        for p in &mut self.placements {
            if p.array == b {
                p.array = a;
            }
        }
        // The dropped array keeps its slot (ids stay stable) but becomes
        // zero-sized and unreferenced.
        self.arrays[b.0].size = 0;
    }

    /// Arrays that still hold at least one tensor.
    pub fn live_arrays(&self) -> Vec<ArrayId> {
        let mut seen: Vec<ArrayId> = Vec::new();
        for p in &self.placements {
            if !seen.contains(&p.array) {
                seen.push(p.array);
            }
        }
        seen
    }

    /// Placement of a tensor.
    pub fn placement(&self, tensor: TensorId) -> &Placement {
        &self.placements[tensor.0]
    }

    /// Total words across live arrays.
    pub fn total_words(&self) -> usize {
        self.live_arrays()
            .iter()
            .map(|a| self.arrays[a.0].size)
            .sum()
    }

    /// Export a placement as a polyhedral map
    /// `tensor[i0..] -> array[addr]`.
    pub fn to_map(&self, module: &Module, tensor: TensorId) -> Map {
        let p = self.placement(tensor);
        let decl = module.decl(tensor);
        let rank = decl.rank();
        let dims: Vec<String> = (0..rank).map(|d| format!("i{d}")).collect();
        let dim_refs: Vec<&str> = dims.iter().map(String::as_str).collect();
        let in_space = Space::set(&decl.name, &dim_refs);
        let out_space = Space::set(&self.arrays[p.array.0].name, &["addr"]);
        let expr = LinExpr::new(&p.strides, p.offset);
        Map::from_affine(in_space, out_space, &[expr])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;

    fn helmholtz(n: usize) -> Module {
        lower(
            &cfdlang::check(&cfdlang::parse(&cfdlang::examples::inverse_helmholtz(n)).unwrap())
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn row_major_matches_paper_formula() {
        // t[i,j,k] -> 121i + 11j + k for p = 11.
        let m = helmholtz(11);
        let plan = LayoutPlan::row_major(&m);
        let t = m.find("t").unwrap();
        assert_eq!(plan.placement(t).strides, vec![121, 11, 1]);
        assert_eq!(plan.placement(t).addr(&[1, 2, 3]), 121 + 22 + 3);
    }

    #[test]
    fn interface_flags_follow_kinds() {
        let m = helmholtz(4);
        let plan = LayoutPlan::row_major(&m);
        let s = m.find("S").unwrap();
        let t = m.find("t").unwrap();
        assert!(plan.arrays[plan.placement(s).array.0].interface);
        assert!(!plan.arrays[plan.placement(t).array.0].interface);
    }

    #[test]
    fn merge_redirects_placements() {
        let m = helmholtz(4);
        let mut plan = LayoutPlan::row_major(&m);
        let t = m.find("t").unwrap();
        let r = m.find("r").unwrap();
        let (at, ar) = (plan.placement(t).array, plan.placement(r).array);
        let before = plan.live_arrays().len();
        plan.merge_arrays(at, ar);
        assert_eq!(plan.placement(r).array, at);
        assert_eq!(plan.live_arrays().len(), before - 1);
    }

    #[test]
    fn merge_grows_target() {
        let mut module = Module::default();
        let x = module.declare("x", vec![2], crate::ir::TensorKind::Temp);
        let y = module.declare("y", vec![9], crate::ir::TensorKind::Temp);
        let mut plan = LayoutPlan::row_major(&module);
        let (ax, ay) = (plan.placement(x).array, plan.placement(y).array);
        plan.merge_arrays(ax, ay);
        assert_eq!(plan.arrays[ax.0].size, 9);
    }

    #[test]
    fn total_words_counts_live_only() {
        let m = helmholtz(11);
        let mut plan = LayoutPlan::row_major(&m);
        let total = plan.total_words();
        // S=121, five 1331-word arrays (D,u,v,t,r).
        assert_eq!(total, 121 + 5 * 1331);
        let t = m.find("t").unwrap();
        let r = m.find("r").unwrap();
        plan.merge_arrays(plan.placement(t).array, plan.placement(r).array);
        assert_eq!(plan.total_words(), 121 + 4 * 1331);
    }

    #[test]
    fn polyhedral_map_matches_addr() {
        let m = helmholtz(11);
        let plan = LayoutPlan::row_major(&m);
        let t = m.find("t").unwrap();
        let map = plan.to_map(&m, t);
        assert!(map.contains(&[1, 2, 3], &[146]));
        assert!(!map.contains(&[1, 2, 3], &[147]));
    }

    #[test]
    fn custom_strides_reshape() {
        let m = helmholtz(4);
        let mut plan = LayoutPlan::row_major(&m);
        let t = m.find("t").unwrap();
        // Column-major layout.
        plan.with_strides(t, vec![1, 4, 16], 0);
        assert_eq!(plan.placement(t).addr(&[1, 2, 3]), 1 + 8 + 48);
    }
}
