//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section VI).
//!
//! Each `fig*`/`table*` function returns the data series of the
//! corresponding artifact; the `paper_figures` binary renders them next
//! to the paper's reference values, and the Criterion benches in
//! `benches/` time the underlying flows.

use cfd_core::dse::{DseEngine, DseGrid, DseReport};
use cfd_core::{Artifacts, Flow, FlowOptions};
use mnemosyne::MemoryOptions;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use sysgen::{Platform, SystemConfig};
use zynq::{ArmCostModel, SimConfig};

/// Polynomial degree of the paper's evaluation kernel.
pub const PAPER_P: usize = 11;
/// CFD problem size of the paper's evaluation.
pub const PAPER_ELEMENTS: usize = 50_000;

/// The shared exploration engine for the paper kernel: frontend, middle
/// end and scheduling run **once per process**, and every table/figure
/// variant below derives from the same staged artifacts instead of
/// recompiling from source.
pub fn paper_engine() -> &'static DseEngine {
    static ENGINE: OnceLock<DseEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let src = cfdlang::examples::inverse_helmholtz(PAPER_P);
        DseEngine::prepare(&src, &FlowOptions::default()).expect("paper kernel compiles")
    })
}

fn paper_options(sharing: bool, decoupled: bool, system: Option<SystemConfig>) -> FlowOptions {
    FlowOptions {
        decoupled,
        memory: MemoryOptions {
            sharing,
            ..Default::default()
        },
        system,
        ..Default::default()
    }
}

/// Compile the paper's Inverse Helmholtz kernel. Backend/system stages
/// run on the shared [`paper_engine`]; results are memoized per option
/// combination.
pub fn compile_paper_kernel(sharing: bool, decoupled: bool) -> Artifacts {
    static CACHE: OnceLock<Mutex<HashMap<(bool, bool), Artifacts>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().unwrap();
    cache
        .entry((sharing, decoupled))
        .or_insert_with(|| {
            paper_engine()
                .artifacts_for(&paper_options(sharing, decoupled, None))
                .expect("paper kernel compiles")
        })
        .clone()
}

/// Compile with an explicit system configuration (on the shared engine).
pub fn compile_with_system(sharing: bool, k: usize, m: usize) -> Option<Artifacts> {
    paper_engine()
        .artifacts_for(&paper_options(sharing, true, Some(SystemConfig { k, m })))
        .ok()
}

/// The full design-space sweep over the paper kernel (the generalized
/// form of Table I / Figures 8–9): every (k, batch, sharing, decoupling)
/// point evaluated in parallel on the shared engine.
pub fn dse_sweep(elements: usize, jobs: usize) -> DseReport {
    paper_engine().run(&DseGrid::default(), jobs, elements)
}

// ---------------------------------------------------------------------
// In-text kernel / PLM reports
// ---------------------------------------------------------------------

/// The in-text kernel report: `(luts, ffs, dsps)`; paper: 2,314 / 2,999
/// / 15.
pub fn kernel_report() -> (usize, usize, usize) {
    let a = compile_paper_kernel(true, true);
    (a.hls_report.luts, a.hls_report.ffs, a.hls_report.dsps)
}

/// PLM BRAMs `(no_sharing, sharing)`; paper: 31 / 18 (Vivado mapping;
/// our 512-word BRAM model: 28 / 16).
pub fn plm_report() -> (usize, usize) {
    (
        compile_paper_kernel(false, true).memory.brams,
        compile_paper_kernel(true, true).memory.brams,
    )
}

/// Temporaries-inside comparison `(memory_subsystem, accelerator,
/// total)`; paper: 9 / 24 / 33.
pub fn temporaries_inside_report() -> (usize, usize, usize) {
    let a = compile_paper_kernel(false, false);
    let mem = a.memory.brams;
    let acc = a.hls_report.brams;
    (mem, acc, mem + acc)
}

// ---------------------------------------------------------------------
// Figure 5: memory compatibility graph
// ---------------------------------------------------------------------

/// The compatibility graph in Graphviz dot syntax.
pub fn fig5_dot() -> String {
    compile_paper_kernel(true, true).compat.to_dot()
}

/// Compatibility summary: `(array, interface?, #addr-compat edges)`.
pub fn fig5_summary() -> Vec<(String, bool, usize)> {
    let a = compile_paper_kernel(true, true);
    let g = &a.compat;
    g.nodes
        .iter()
        .enumerate()
        .map(|(i, (_, name, _, iface))| {
            let deg = g
                .edges
                .iter()
                .filter(|&&(x, y, k)| {
                    (x == i || y == i) && k == pschedule::CompatKind::AddressSpace
                })
                .count();
            (name.clone(), *iface, deg)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table I: resource utilization
// ---------------------------------------------------------------------

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    pub sharing: bool,
    pub m: usize,
    pub luts: usize,
    pub ffs: usize,
    pub dsps: usize,
    pub lut_pct: f64,
    pub ff_pct: f64,
    pub dsp_pct: f64,
}

/// Regenerate Table I (both halves).
pub fn table1() -> Vec<Table1Row> {
    let board = Platform::zcu106().board;
    let mut rows = Vec::new();
    for sharing in [false, true] {
        let ms = if sharing {
            vec![1usize, 2, 4, 8, 16]
        } else {
            vec![1, 2, 4, 8]
        };
        for m in ms {
            if let Some(a) = compile_with_system(sharing, m, m) {
                let d = a.system.expect("fits");
                rows.push(Table1Row {
                    sharing,
                    m,
                    luts: d.luts,
                    ffs: d.ffs,
                    dsps: d.dsps,
                    lut_pct: board.lut_pct(d.luts),
                    ff_pct: board.ff_pct(d.ffs),
                    dsp_pct: board.dsp_pct(d.dsps),
                });
            }
        }
    }
    rows
}

/// Paper reference values for Table I: `(sharing, m, lut, ff, dsp)`.
pub const TABLE1_PAPER: &[(bool, usize, usize, usize, usize)] = &[
    (false, 1, 11_318, 9_523, 15),
    (false, 2, 15_929, 12_583, 30),
    (false, 4, 25_728, 18_663, 60),
    (false, 8, 42_679, 30_795, 120),
    (true, 1, 11_292, 9_533, 15),
    (true, 2, 15_572, 12_596, 30),
    (true, 4, 24_480, 18_663, 60),
    (true, 8, 42_141, 30_782, 120),
    (true, 16, 77_235, 55_053, 240),
];

// ---------------------------------------------------------------------
// Figure 8: BRAM utilization
// ---------------------------------------------------------------------

/// One point of Figure 8: `(m, no_sharing_brams, sharing_brams)`.
/// Entries above the board limit are "theory" points, like the paper's
/// m=16 no-sharing bar.
pub fn fig8() -> (Vec<(usize, usize, usize)>, usize) {
    let no = compile_paper_kernel(false, true).memory.brams;
    let sh = compile_paper_kernel(true, true).memory.brams;
    let series = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&m| (m, no * m, sh * m))
        .collect();
    (series, Platform::zcu106().board.brams)
}

/// Paper reference for Figure 8: `(m, no_sharing, sharing)`, max = 312.
pub const FIG8_PAPER: &[(usize, usize, usize)] = &[
    (1, 31, 18),
    (2, 62, 36),
    (4, 124, 72),
    (8, 248, 144),
    (16, 496, 288),
];

// ---------------------------------------------------------------------
// Figure 9: accelerator and total speedup
// ---------------------------------------------------------------------

/// One point of Figure 9: `(m, accelerator_speedup, total_speedup)`.
pub fn fig9(elements: usize) -> Vec<(usize, f64, f64)> {
    let art = compile_paper_kernel(true, true);
    let base = simulate(&art, 1, 1, elements);
    [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&m| {
            let r = simulate(&art, m, m, elements);
            (m, base.exec_s / r.exec_s, base.total_s / r.total_s)
        })
        .collect()
}

/// Paper reference for Figure 9.
pub const FIG9_PAPER: &[(usize, f64, f64)] = &[
    (1, 1.00, 1.00),
    (2, 2.00, 1.96),
    (4, 3.97, 3.78),
    (8, 7.91, 7.09),
    (16, 15.76, 12.58),
];

// ---------------------------------------------------------------------
// Figure 10: comparison against ARM software execution
// ---------------------------------------------------------------------

/// The bars of Figure 10: `(label, speedup vs SW Ref)`.
pub fn fig10(elements: usize) -> Vec<(String, f64)> {
    let art = compile_paper_kernel(true, true);
    let model = ArmCostModel::a53_1200mhz();
    let sw_ref = zynq::sim::sw_reference(&art.module, &model, elements).expect("sw ref");
    let sw_hls = zynq::sim::sw_hls_code(&art.kernel, &model, elements).expect("sw hls");
    let mut out = vec![
        ("SW Ref.".to_string(), 1.0),
        ("SW HLS code".to_string(), sw_ref.total_s / sw_hls.total_s),
    ];
    for k in [1usize, 8, 16] {
        let r = simulate(&art, k, k, elements);
        out.push((format!("HW k = {k}"), sw_ref.total_s / r.total_s));
    }
    out
}

/// Paper reference for Figure 10.
pub const FIG10_PAPER: &[(&str, f64)] = &[
    ("SW Ref.", 1.00),
    ("SW HLS code", 0.90),
    ("HW k = 1", 0.69),
    ("HW k = 8", 4.86),
    ("HW k = 16", 8.62),
];

// ---------------------------------------------------------------------
// In-text: k < m batching
// ---------------------------------------------------------------------

/// Batch experiment: `(k, m, total_s)` for k ≤ m variants.
pub fn batch_report(elements: usize) -> Vec<(usize, usize, f64)> {
    let art = compile_paper_kernel(true, true);
    let mut out = Vec::new();
    for (k, m) in [
        (1usize, 1usize),
        (1, 2),
        (1, 4),
        (2, 2),
        (2, 4),
        (2, 8),
        (4, 4),
        (4, 8),
    ] {
        out.push((k, m, simulate(&art, k, m, elements).total_s));
    }
    out
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Ablation summary comparing design choices.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablation {
    /// Kernel latency (cycles): factored vs naive contraction.
    pub latency_factored: u64,
    pub latency_naive: u64,
    /// Kernel BRAMs: decoupled (0) vs temporaries inside.
    pub brams_decoupled: usize,
    pub brams_inside: usize,
    /// Memory subsystem BRAMs with/without sharing.
    pub plm_sharing: usize,
    pub plm_no_sharing: usize,
    /// Maximum k = m with/without sharing.
    pub max_k_sharing: usize,
    pub max_k_no_sharing: usize,
}

/// Run the ablation suite.
pub fn ablation() -> Ablation {
    let fact = compile_paper_kernel(true, true);
    let no_share = compile_paper_kernel(false, true);
    let inside = compile_paper_kernel(false, false);
    let naive = {
        let src = cfdlang::examples::inverse_helmholtz(PAPER_P);
        let opts = FlowOptions {
            factorize: false,
            ..Default::default()
        };
        Flow::compile(&src, &opts).expect("naive compiles")
    };
    Ablation {
        latency_factored: fact.hls_report.latency_cycles,
        latency_naive: naive.hls_report.latency_cycles,
        brams_decoupled: fact.hls_report.brams,
        brams_inside: inside.hls_report.brams,
        plm_sharing: fact.memory.brams,
        plm_no_sharing: no_share.memory.brams,
        max_k_sharing: fact.system.as_ref().map(|s| s.config.k).unwrap_or(0),
        max_k_no_sharing: no_share.system.as_ref().map(|s| s.config.k).unwrap_or(0),
    }
}

/// Transfer-overlap extension (the paper's future work): `(k, m,
/// serial_total_s, overlapped_total_s)`.
pub fn overlap_report(elements: usize) -> Vec<(usize, usize, f64, f64)> {
    let art = compile_paper_kernel(true, true);
    let mut out = Vec::new();
    for (k, m) in [(1usize, 2usize), (2, 4), (4, 8), (8, 16)] {
        let serial = simulate(&art, k, m, elements);
        let over = simulate_with(&art, k, m, elements, true);
        out.push((k, m, serial.total_s, over.total_s));
    }
    out
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

/// Simulate one configuration of a compiled kernel.
pub fn simulate(art: &Artifacts, k: usize, m: usize, elements: usize) -> zynq::HwResult {
    simulate_with(art, k, m, elements, false)
}

/// Simulate with an explicit transfer-overlap setting.
pub fn simulate_with(
    art: &Artifacts,
    k: usize,
    m: usize,
    elements: usize,
    overlap: bool,
) -> zynq::HwResult {
    let platform = Platform::zcu106();
    let cfg = SystemConfig { k, m };
    let host = sysgen::HostProgram::from_kernel(&art.kernel, cfg);
    let design = sysgen::SystemDesign::build(&platform, &art.hls_report, &art.memory, cfg, host)
        .expect("configuration fits");
    zynq::simulate_hw(
        &design,
        &SimConfig {
            elements,
            overlap_transfers: overlap,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_scales_linearly() {
        let (series, max) = fig8();
        assert_eq!(max, 312);
        let (m0, n0, s0) = series[0];
        assert_eq!(m0, 1);
        for &(m, n, s) in &series {
            assert_eq!(n, n0 * m);
            assert_eq!(s, s0 * m);
        }
        // Sharing fits at m=16, no-sharing does not (the paper's point).
        let last = series.last().unwrap();
        assert!(last.1 > max);
        assert!(last.2 <= max);
    }

    #[test]
    fn table1_has_all_rows() {
        let rows = table1();
        assert_eq!(rows.len(), 9);
        assert!(rows.iter().any(|r| r.sharing && r.m == 16));
        assert!(!rows.iter().any(|r| !r.sharing && r.m == 16));
    }
}
