//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! paper_figures [--report kernel|plm|compat|table1|fig8|fig9|fig10|batch|ablation|dse|all]
//!               [--elements N]
//! ```
//!
//! All reports share one staged compilation of the paper kernel
//! ([`bench::paper_engine`]): the frontend and middle end run once per
//! invocation no matter how many reports are requested.
//!
//! Each report prints the model's numbers next to the paper's, so the
//! reproduction quality is visible at a glance.

use bench::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut report = "all".to_string();
    let mut elements = PAPER_ELEMENTS;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--report" => {
                report = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--elements" => {
                elements = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(PAPER_ELEMENTS);
                i += 2;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let all = report == "all";
    if all || report == "kernel" {
        kernel();
    }
    if all || report == "plm" {
        plm();
    }
    if all || report == "compat" {
        compat();
    }
    if all || report == "table1" {
        table_one();
    }
    if all || report == "fig8" {
        figure8();
    }
    if all || report == "fig9" {
        figure9(elements);
    }
    if all || report == "fig10" {
        figure10(elements);
    }
    if all || report == "batch" {
        batch(elements);
    }
    if all || report == "ablation" {
        ablation_report();
    }
    if all || report == "overlap" {
        overlap(elements.min(4_096));
    }
    if all || report == "dse" {
        dse(elements.min(10_000));
    }
}

fn dse(elements: usize) {
    println!("== Design-space sweep (staged pipeline, parallel backend) ==");
    // Other reports share the engine; count only this sweep's stage work.
    let before = bench::paper_engine().pipeline().counters();
    let report = bench::dse_sweep(elements, 0);
    print!("{}", report.render_table());
    println!(
        "  (sweep ran frontend {}×, middle end {}×, backend {}×; shared totals since startup: {}/{}/{})",
        report.counts.frontend - before.frontend,
        report.counts.middle_end - before.middle_end,
        report.counts.backend - before.backend,
        report.counts.frontend,
        report.counts.middle_end,
        report.counts.backend,
    );
    println!();
}

fn overlap(elements: usize) {
    println!("== Extension: overlapped transfers (paper future work, {elements} elements) ==");
    println!("   k    m    serial        overlapped    improvement");
    for (k, m, serial, over) in bench::overlap_report(elements) {
        println!(
            "  {k:>2}  {m:>3}   {serial:>9.4} s   {over:>9.4} s    {:+.2}%",
            100.0 * (over - serial) / serial
        );
    }
    println!("  (double-buffered PLM slices hide the ~2% DMA time behind execution)");
    println!();
}

fn kernel() {
    let (l, f, d) = kernel_report();
    println!("== In-text kernel report (Inverse Helmholtz, p = 11) ==");
    println!("                 model    paper");
    println!("  LUT         {l:>8}    2,314");
    println!("  FF          {f:>8}    2,999");
    println!("  DSP         {d:>8}       15");
    println!();
}

fn plm() {
    let (no, sh) = plm_report();
    let (mem_in, acc_in, tot_in) = temporaries_inside_report();
    println!("== In-text PLM report (BRAM36 per kernel) ==");
    println!("                          model    paper");
    println!("  no sharing            {no:>7}       31");
    println!("  sharing               {sh:>7}       18");
    println!("  temporaries inside:");
    println!("    memory subsystem    {mem_in:>7}        9");
    println!("    accelerator         {acc_in:>7}       24");
    println!("    total               {tot_in:>7}       33");
    println!();
}

fn compat() {
    println!("== Figure 5: memory compatibility graph ==");
    for (name, iface, deg) in fig5_summary() {
        println!(
            "  {:<4} {:<10} {} address-space compatibilities",
            name,
            if iface { "interface" } else { "temporary" },
            deg
        );
    }
    println!("\n--- graphviz ---\n{}", fig5_dot());
}

fn table_one() {
    println!("== Table I: resource utilization ==");
    println!("              m        LUT (model/paper)      FF (model/paper)    DSP (model/paper)");
    for row in table1() {
        let paper = TABLE1_PAPER
            .iter()
            .find(|(s, m, ..)| *s == row.sharing && *m == row.m);
        let (pl, pf, pd) = paper.map(|&(_, _, l, f, d)| (l, f, d)).unwrap_or((0, 0, 0));
        println!(
            "  {:<10} {:>2}   {:>7} ({:4.1}%) / {:>6}   {:>7} ({:4.1}%) / {:>6}   {:>4} ({:4.1}%) / {:>4}",
            if row.sharing { "sharing" } else { "no sharing" },
            row.m,
            row.luts,
            row.lut_pct,
            pl,
            row.ffs,
            row.ff_pct,
            pf,
            row.dsps,
            row.dsp_pct,
            pd
        );
    }
    println!();
}

fn figure8() {
    let (series, max) = fig8();
    println!("== Figure 8: BRAM utilization of parallel accelerators ==");
    println!("   m    no-sharing (model/paper)    sharing (model/paper)   [max {max}]");
    for (i, &(m, no, sh)) in series.iter().enumerate() {
        let (pm, pno, psh) = FIG8_PAPER[i];
        assert_eq!(m, pm);
        let mark = |v: usize| if v > max { " (theory)" } else { "" };
        println!(
            "  {m:>2}        {no:>4} / {pno:<4}{}            {sh:>4} / {psh:<4}{}",
            mark(no),
            mark(sh)
        );
    }
    println!();
}

fn figure9(elements: usize) {
    println!("== Figure 9: speedup vs m = k = 1 ({elements} elements) ==");
    println!("   m=k    accelerator (model/paper)    total (model/paper)");
    for (i, (m, acc, tot)) in fig9(elements).iter().enumerate() {
        let (_, pa, pt) = FIG9_PAPER[i];
        println!("  {m:>4}       {acc:>5.2} / {pa:<5.2}             {tot:>5.2} / {pt:<5.2}");
    }
    println!();
}

fn figure10(elements: usize) {
    println!("== Figure 10: speedup vs ARM A53 software ({elements} elements) ==");
    println!("   configuration      model    paper");
    for (i, (label, s)) in fig10(elements).iter().enumerate() {
        let (_, p) = FIG10_PAPER[i];
        println!("  {label:<16}  {s:>7.2}  {p:>7.2}");
    }
    println!();
}

fn batch(elements: usize) {
    println!("== In-text: k < m batching experiments ({elements} elements) ==");
    println!("   k   m   batch   total time     vs k=m");
    let rows = batch_report(elements);
    for &(k, m, t) in &rows {
        let base = rows
            .iter()
            .find(|&&(bk, bm, _)| bk == k && bm == k)
            .map(|&(_, _, bt)| bt)
            .unwrap_or(t);
        println!(
            "  {k:>2}  {m:>2}   {:>3}    {:>9.4} s   {:+.2}%",
            m / k,
            t,
            100.0 * (t - base) / base
        );
    }
    println!("  (the paper found no improvement from k < m; neither do we)");
    println!();
}

fn ablation_report() {
    let a = ablation();
    println!("== Ablations ==");
    println!(
        "  contraction factorization:  {} -> {} kernel cycles ({:.1}x)",
        a.latency_naive,
        a.latency_factored,
        a.latency_naive as f64 / a.latency_factored as f64
    );
    println!(
        "  decoupled PLM:              {} internal BRAMs vs {} inside HLS",
        a.brams_decoupled, a.brams_inside
    );
    println!(
        "  memory sharing:             {} -> {} PLM BRAMs",
        a.plm_no_sharing, a.plm_sharing
    );
    println!(
        "  max parallel kernels:       {} -> {}",
        a.max_k_no_sharing, a.max_k_sharing
    );
    println!();
}
