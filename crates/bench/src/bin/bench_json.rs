//! Machine-readable perf baseline emitter.
//!
//! Times the hot paths this repository optimizes — compiler stages,
//! interpreter, full-system simulation, and the DSE sweep — and writes
//! `BENCH_pr2.json` (schema documented in README.md, "Reading
//! `BENCH_*.json`"). The committed file carries both the numbers of the
//! tree it was generated from (`current`) and the frozen pre-PR-2 seed
//! medians (`baseline_pr1`, measured on the same machine before the
//! hot-path overhaul), so the perf trajectory is tracked in-repo and
//! regressions are diffable.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_json            # writes BENCH_pr2.json
//! cargo run --release -p bench --bin bench_json -- --smoke # 3 samples, stdout only
//! ```

use cfd_core::FlowOptions;
use pschedule::{Dependences, KernelModel, Liveness, SchedulerOptions};
use std::collections::HashMap;
use std::time::Instant;
use teil::interp::{Interpreter, Tensor};
use teil::layout::LayoutPlan;

/// Seed (pre-PR-2) medians in nanoseconds, measured with the same
/// harness on the commit before the hot-path overhaul. Frozen here so
/// every regeneration of the JSON keeps the before/after comparison.
const BASELINE_PR1_NS: &[(&str, u64)] = &[
    ("compiler/parse_and_check", 7_484),
    ("compiler/lower", 1_977),
    ("compiler/factorize", 2_440),
    ("compiler/polyhedral_model", 66_724),
    ("compiler/dependence_analysis", 754_219),
    ("compiler/reschedule", 1_712_000),
    ("compiler/liveness", 267_712_000),
    ("compiler/codegen_c99", 21_427),
    ("ablation/flow_factored", 279_984_000),
    ("ablation/flow_naive", 726_237_000),
    ("fig9/simulate_k1", 199_659),
    ("fig9/simulate_k16", 98_607),
];

struct Args {
    samples: usize,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut samples = 9usize;
    let mut out = Some("BENCH_pr2.json".to_string());
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {
                samples = 3;
                out = None;
            }
            "--samples" => {
                samples = it.next().and_then(|v| v.parse().ok()).expect("--samples N");
            }
            "-o" | "--out" => out = Some(it.next().expect("-o PATH")),
            other => panic!("unknown argument '{other}'"),
        }
    }
    Args {
        samples: samples.max(1),
        out,
    }
}

/// Median wall time of `f` over `samples` runs, in nanoseconds.
fn median_ns<T>(samples: usize, mut f: impl FnMut() -> T) -> u64 {
    std::hint::black_box(f()); // warm-up
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let args = parse_args();
    let samples = args.samples;
    let mut rows: Vec<(String, u64, usize)> = Vec::new();
    let mut push = |name: &str, ns: u64, n: usize| {
        println!("  {name}: median {:.3} ms ({n} samples)", ns as f64 / 1e6);
        rows.push((name.to_string(), ns, n));
    };

    // --- Compiler stages on the paper kernel (mirrors benches/compiler_stages.rs).
    println!("compiler stages (p = {}):", bench::PAPER_P);
    let src = cfdlang::examples::inverse_helmholtz(bench::PAPER_P);
    let ast = cfdlang::parse(&src).unwrap();
    let typed = cfdlang::check(&ast).unwrap();
    let lowered = teil::lower(&typed).unwrap();
    let module = teil::transform::factorize(&lowered);
    let layout = LayoutPlan::row_major(&module);
    let model = KernelModel::build(&module, &layout);
    let deps = Dependences::analyze(&model);
    let sched = pschedule::reschedule(&module, &model, &deps, &SchedulerOptions::default());

    push(
        "compiler/parse_and_check",
        median_ns(samples, || {
            cfdlang::check(&cfdlang::parse(&src).unwrap()).unwrap()
        }),
        samples,
    );
    push(
        "compiler/lower",
        median_ns(samples, || teil::lower(&typed).unwrap()),
        samples,
    );
    push(
        "compiler/factorize",
        median_ns(samples, || teil::transform::factorize(&lowered)),
        samples,
    );
    push(
        "compiler/polyhedral_model",
        median_ns(samples, || KernelModel::build(&module, &layout)),
        samples,
    );
    push(
        "compiler/dependence_analysis",
        median_ns(samples, || Dependences::analyze(&model)),
        samples,
    );
    push(
        "compiler/reschedule",
        median_ns(samples, || {
            pschedule::reschedule(&module, &model, &deps, &SchedulerOptions::default())
        }),
        samples,
    );
    push(
        "compiler/liveness",
        median_ns(samples, || Liveness::analyze(&module, &model, &sched)),
        samples,
    );
    push(
        "compiler/codegen_c99",
        median_ns(samples, || {
            let k = cgen::build_kernel(&module, &model, &sched, &cgen::CodegenOptions::default());
            cgen::emit_c99(&k)
        }),
        samples,
    );

    // --- Whole-flow ablation (mirrors benches/ablation.rs).
    println!("flow:");
    push(
        "ablation/flow_factored",
        median_ns(samples, || {
            cfd_core::Flow::compile(&src, &FlowOptions::default()).unwrap()
        }),
        samples,
    );
    push(
        "ablation/flow_naive",
        median_ns(samples, || {
            cfd_core::Flow::compile(
                &src,
                &FlowOptions {
                    factorize: false,
                    ..Default::default()
                },
            )
            .unwrap()
        }),
        samples,
    );

    // --- Full-system simulation (mirrors benches/parallel_speedup.rs).
    println!("simulation:");
    let art = bench::compile_paper_kernel(true, true);
    for k in [1usize, 16] {
        push(
            &format!("fig9/simulate_k{k}"),
            median_ns(samples, || bench::simulate(&art, k, k, 4_000)),
            samples,
        );
    }

    // --- Interpreter (flat walk vs the seed multi-index oracle).
    println!("interpreter (p = 7):");
    let imod = teil::transform::factorize(
        &teil::lower(
            &cfdlang::check(&cfdlang::parse(&cfdlang::examples::inverse_helmholtz(7)).unwrap())
                .unwrap(),
        )
        .unwrap(),
    );
    let mut inputs: HashMap<String, Tensor> = HashMap::new();
    for id in imod.of_kind(teil::TensorKind::Input) {
        inputs.insert(
            imod.name(id).to_string(),
            Tensor::from_fn(imod.shape(id), |i| {
                i.iter().sum::<usize>() as f64 * 0.25 - 1.0
            }),
        );
    }
    let interp = Interpreter::new(&imod);
    push(
        "interp/flat_walk",
        median_ns(samples, || interp.run(&inputs).unwrap()),
        samples,
    );
    push(
        "interp/multi_index_reference",
        median_ns(samples, || interp.run_reference(&inputs).unwrap()),
        samples,
    );

    // --- DSE sweep: wall clock + the engine's own per-point accounting.
    println!("dse sweep:");
    let t = Instant::now();
    let report = bench::dse_sweep(2_000, 4);
    let sweep_ns = t.elapsed().as_nanos() as u64;
    push("dse/sweep_32pt_wall", sweep_ns, 1);

    // --- Emit JSON.
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"cfdfpga-bench-v1\",\n");
    s.push_str("  \"pr\": 2,\n");
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str("  \"benches\": [\n");
    for (i, (name, ns, n)) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{name}\", \"median_ns\": {ns}, \"samples\": {n}}}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"dse\": {{\"points\": {}, \"feasible\": {}, \"backend_compiles\": {}, \
         \"backend_reuses\": {}, \"backend_compile_s\": {:.6}, \"eval_total_s\": {:.6}, \
         \"eval_mean_s\": {:.6}, \"eval_max_s\": {:.6}, \"wall_s\": {:.6}}},\n",
        report.evaluated,
        report.feasible,
        report.backend_compiles,
        report.backend_reuses,
        report.backend_s,
        report.eval_total_s,
        report.eval_mean_s,
        report.eval_max_s,
        report.wall_s,
    ));
    s.push_str("  \"baseline_pr1\": {\n");
    for (i, (name, ns)) in BASELINE_PR1_NS.iter().enumerate() {
        s.push_str(&format!(
            "    \"{name}\": {ns}{}\n",
            if i + 1 == BASELINE_PR1_NS.len() {
                ""
            } else {
                ","
            }
        ));
    }
    s.push_str("  }\n}\n");

    match &args.out {
        Some(path) => {
            std::fs::write(path, &s).expect("write bench json");
            println!("wrote {path}");
        }
        None => print!("{s}"),
    }

    // Sanity: the flat walk and the reference walk agree (cheap spot
    // check so a bench run can't silently time diverging paths).
    let a = interp.run(&inputs).unwrap();
    let b = interp.run_reference(&inputs).unwrap();
    assert_eq!(a.stats, b.stats, "flat walk diverged from reference");
}
