//! Machine-readable perf baseline emitter.
//!
//! Times the hot paths this repository optimizes — compiler stages,
//! interpreter, full-system simulation, the DSE sweep, the multi-kernel
//! program flow, the compile cache, the multi-board portfolio sweep,
//! and the batched multi-request serving runtime — and writes
//! `BENCH_pr10.json` (schema `cfdfpga-bench-v1`, documented in
//! README.md, "Reading `BENCH_*.json`"). The committed file carries
//! both the numbers of the tree it was generated from and the frozen
//! PR-9 medians (`baseline_pr9`, lifted from the committed
//! `BENCH_pr9.json`), so the perf trajectory is tracked in-repo and
//! regressions are diffable. The `fleet` section records the PR-9
//! acceptance figures: a 64-requests-per-board backlog sharded across
//! the whole board catalog under predictive routing must reach >= 3x
//! the single-board `runtime/serve64_batched` aggregate req/s. The
//! `polyhedra` section records the
//! feasibility-oracle counters accumulated across the whole run —
//! simplex calls, memo hits/misses, FM fallbacks (PR 8). The
//! `platforms` section records, per
//! catalog platform, the paper kernel's largest feasible replication
//! and its simulated time — the portfolio figures. The `runtime`
//! section records the serving acceptance figures: batched vs
//! sequential requests/sec on the zcu106 (the emitter asserts the 2x or
//! better speedup), p99 latency, the DMA/compute overlap fraction, and
//! the PR-7 fault-tolerance figure: the same backlog served under a 10%
//! transient-error plan must keep goodput at >= 0.8x the fault-free
//! throughput (`runtime/serve_faulty_10pct`). The `compile_cache`
//! section records the PR-6 acceptance figures: cold (parallel +
//! optimized) and warm (content-hash hit) program compiles against the
//! frozen PR-5 `program/compile_simstep` median — the emitter asserts
//! >= 2x cold and >= 10x warm.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_json            # writes BENCH_pr10.json
//! cargo run --release -p bench --bin bench_json -- --smoke # 3 samples, stdout only
//! cargo run --release -p bench --bin bench_json -- --check # CI gate: committed
//!                        # BENCH_pr10.json medians vs BENCH_pr9.json,
//!                        # >25% after drift correction fails
//! ```

use cfd_core::program::{ProgramFlow, ProgramOptions};
use cfd_core::{CompileCache, FleetBoard, FleetOptions, FlowOptions, RoutePolicy};
use pschedule::{Dependences, KernelModel, Liveness, SchedulerOptions};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use teil::interp::{Interpreter, Tensor};
use teil::layout::LayoutPlan;

struct Args {
    samples: usize,
    out: Option<String>,
    /// `--check`: compare committed BENCH_pr10.json against the frozen
    /// BENCH_pr9.json baselines instead of measuring.
    check: bool,
}

/// Wall-clock benches (whole-sweep timings) repeat this many times and
/// report the median — `samples: 1` point estimates were too noisy to
/// gate on.
const WALL_REPS: usize = 3;

/// Median wall time over `reps` runs of `f`, with no warm-up run —
/// these are whole-sweep timings where an extra run is expensive.
/// Returns the median and the last run's result so the caller can keep
/// reporting from a real sweep.
fn median_wall<T>(reps: usize, mut f: impl FnMut() -> T) -> (u64, T) {
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        last = Some(std::hint::black_box(f()));
        times.push(t.elapsed().as_nanos() as u64);
    }
    times.sort_unstable();
    (times[times.len() / 2], last.expect("reps >= 1"))
}

fn parse_args() -> Args {
    let mut samples = 9usize;
    let mut out = Some("BENCH_pr10.json".to_string());
    let mut check = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {
                samples = 3;
                out = None;
            }
            "--samples" => {
                samples = it.next().and_then(|v| v.parse().ok()).expect("--samples N");
            }
            "-o" | "--out" => out = Some(it.next().expect("-o PATH")),
            "--check" => check = true,
            other => panic!("unknown argument '{other}'"),
        }
    }
    Args {
        samples: samples.max(1),
        out,
        check,
    }
}

/// Extract `(name, median_ns)` pairs from a `cfdfpga-bench-v1` JSON
/// file's `benches` array (hand-rolled — the dependency set has no
/// serde_json).
fn read_bench_medians(path: &str) -> Vec<(String, u64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read '{path}': {e} (run bench_json to generate it)"));
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = &rest[..name_end];
        let Some(med_at) = line.find("\"median_ns\": ") else {
            continue;
        };
        let digits: String = line[med_at + 13..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if let Ok(ns) = digits.parse::<u64>() {
            out.push((name.to_string(), ns));
        }
    }
    out
}

/// CI regression gate: every bench name present in both committed files
/// must not have regressed by more than `CHECK_TOLERANCE` from PR 9 to
/// PR 10 **after correcting for tree-wide machine drift**. Purely
/// file-vs-file (deterministic — no timing in CI).
///
/// The two committed files are wall-clock medians measured in different
/// sessions, possibly under different host contention; on a shared
/// single-core box the whole tree drifts ±50% between windows. Such
/// drift is uniform, so the gate first estimates a machine factor from
/// the current/baseline ratios of the stable (>= 1 ms) benches and then
/// flags only *differential* regressions: a path slower than the
/// tree-wide factor times the tolerance. A genuine regression in one
/// subsystem moves a few benches, not the whole distribution.
///
/// The factor is the *densest cluster* of the ratios (the geometric
/// mean of the shortest log-ratio window covering half the benches —
/// the least-median-of-squares location estimate), not their plain
/// median. Uniform machine drift shifts every untouched bench by the
/// same factor, so the untouched majority forms a tight cluster, while
/// paths the PR genuinely changed land outside it. A plain median is
/// biased whenever a PR deliberately speeds up several stable benches:
/// the improved ratios drag the estimate below the true machine factor
/// and every untouched bench then reads as a spurious regression.
///
/// Microsecond-scale benches drift well past the tolerance from binary
/// layout and CPU state alone, so a regression must also exceed an
/// absolute noise floor (scaled by the drift factor) to fail the gate:
/// relative checks on a 2 us median gate nothing but the weather.
const CHECK_NOISE_FLOOR_NS: u64 = 100_000;
/// Differential tolerance on top of the drift factor. Wider than the
/// old 20% absolute gate because the factor is itself a point estimate
/// from ~10 benches and parallel (`--jobs`) sweeps do not scale with
/// scalar benches under contention.
const CHECK_TOLERANCE: f64 = 1.25;
/// Benches with a baseline at least this large feed the drift estimate;
/// sub-millisecond medians are too layout-sensitive to vote.
const DRIFT_ESTIMATE_MIN_NS: u64 = 1_000_000;

fn run_check() -> ! {
    let baseline = read_bench_medians("BENCH_pr9.json");
    let current = read_bench_medians("BENCH_pr10.json");
    assert!(!baseline.is_empty(), "no benches in BENCH_pr9.json");
    assert!(!current.is_empty(), "no benches in BENCH_pr10.json");

    // Tree-wide drift factor: densest half-cluster of the ratios over
    // the stable benches (falling back to all overlapping benches if
    // too few qualify) — see the doc comment above for why not the
    // plain median. Clamped to >= 1 so a *faster* machine never
    // tightens the gate.
    let ratios = |min_ns: u64| -> Vec<f64> {
        baseline
            .iter()
            .filter(|(_, b)| *b >= min_ns)
            .filter_map(|(name, b)| {
                current
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, c)| *c as f64 / (*b).max(1) as f64)
            })
            .collect()
    };
    let mut drift = ratios(DRIFT_ESTIMATE_MIN_NS);
    if drift.len() < 3 {
        drift = ratios(0);
    }
    let machine = if drift.is_empty() {
        1.0
    } else {
        // Shortest half in log space: drift is multiplicative, so the
        // cluster search runs on log-ratios and the estimate is the
        // geometric mean of the tightest window holding half the
        // benches.
        let mut logs: Vec<f64> = drift.iter().map(|r| r.ln()).collect();
        logs.sort_by(f64::total_cmp);
        let h = logs.len() / 2 + 1;
        let best = (0..=logs.len() - h)
            .min_by(|&a, &b| (logs[a + h - 1] - logs[a]).total_cmp(&(logs[b + h - 1] - logs[b])))
            .unwrap();
        let window = &logs[best..best + h];
        (window.iter().sum::<f64>() / h as f64).exp()
    }
    .max(1.0);
    println!(
        "  machine drift factor: {machine:.3}x (densest half-cluster of {} stable benches)",
        drift.len()
    );

    let mut compared = 0usize;
    let mut failures = Vec::new();
    let mut missing = Vec::new();
    for (name, base_ns) in &baseline {
        let Some((_, cur_ns)) = current.iter().find(|(n, _)| n == name) else {
            // A baseline path that vanished from the current file would
            // silently escape the gate — treat it as a failure so
            // renames/drops are conscious decisions.
            missing.push(name.clone());
            continue;
        };
        compared += 1;
        let ratio = *cur_ns as f64 / (*base_ns).max(1) as f64;
        let adjusted_base = *base_ns as f64 * machine;
        let over_floor = *cur_ns as f64 > adjusted_base + CHECK_NOISE_FLOOR_NS as f64 * machine;
        let verdict = if ratio > machine * CHECK_TOLERANCE && over_floor {
            failures.push(name.clone());
            "REGRESSED"
        } else if ratio > machine * CHECK_TOLERANCE {
            "noise (below absolute floor)"
        } else {
            "ok"
        };
        println!(
            "  {name}: {:.3} ms -> {:.3} ms ({:+.1}%, {:+.1}% after drift) {verdict}",
            *base_ns as f64 / 1e6,
            *cur_ns as f64 / 1e6,
            (ratio - 1.0) * 100.0,
            (ratio / machine - 1.0) * 100.0,
        );
    }
    assert!(compared > 0, "no overlapping bench names to compare");
    if failures.is_empty() && missing.is_empty() {
        println!(
            "bench check: {compared} medians within {:.0}% of BENCH_pr9.json (drift {machine:.3}x)",
            (CHECK_TOLERANCE - 1.0) * 100.0
        );
        std::process::exit(0)
    }
    if !failures.is_empty() {
        eprintln!(
            "bench check FAILED: {} medians regressed >{:.0}% beyond tree drift: {}",
            failures.len(),
            (CHECK_TOLERANCE - 1.0) * 100.0,
            failures.join(", ")
        );
    }
    if !missing.is_empty() {
        eprintln!(
            "bench check FAILED: {} baseline benches missing from BENCH_pr10.json: {}",
            missing.len(),
            missing.join(", ")
        );
    }
    std::process::exit(1)
}

/// Median wall time of `f` over `samples` runs, in nanoseconds.
fn median_ns<T>(samples: usize, mut f: impl FnMut() -> T) -> u64 {
    std::hint::black_box(f()); // warm-up
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let args = parse_args();
    if args.check {
        run_check();
    }
    let samples = args.samples;
    let mut rows: Vec<(String, u64, usize)> = Vec::new();
    let mut push = |name: &str, ns: u64, n: usize| {
        println!("  {name}: median {:.3} ms ({n} samples)", ns as f64 / 1e6);
        rows.push((name.to_string(), ns, n));
    };

    // --- Compiler stages on the paper kernel (mirrors benches/compiler_stages.rs).
    println!("compiler stages (p = {}):", bench::PAPER_P);
    let src = cfdlang::examples::inverse_helmholtz(bench::PAPER_P);
    let ast = cfdlang::parse(&src).unwrap();
    let typed = cfdlang::check(&ast).unwrap();
    let lowered = teil::lower(&typed).unwrap();
    let module = teil::transform::factorize(&lowered);
    let layout = LayoutPlan::row_major(&module);
    let model = KernelModel::build(&module, &layout);
    let deps = Dependences::analyze(&model);
    let sched = pschedule::reschedule(&module, &model, &deps, &SchedulerOptions::default());

    push(
        "compiler/parse_and_check",
        median_ns(samples, || {
            cfdlang::check(&cfdlang::parse(&src).unwrap()).unwrap()
        }),
        samples,
    );
    push(
        "compiler/lower",
        median_ns(samples, || teil::lower(&typed).unwrap()),
        samples,
    );
    push(
        "compiler/factorize",
        median_ns(samples, || teil::transform::factorize(&lowered)),
        samples,
    );
    push(
        "compiler/polyhedral_model",
        median_ns(samples, || KernelModel::build(&module, &layout)),
        samples,
    );
    push(
        "compiler/dependence_analysis",
        median_ns(samples, || Dependences::analyze(&model)),
        samples,
    );
    push(
        "compiler/reschedule",
        median_ns(samples, || {
            pschedule::reschedule(&module, &model, &deps, &SchedulerOptions::default())
        }),
        samples,
    );
    push(
        "compiler/liveness",
        median_ns(samples, || Liveness::analyze(&module, &model, &sched)),
        samples,
    );
    push(
        "compiler/codegen_c99",
        median_ns(samples, || {
            let k = cgen::build_kernel(&module, &model, &sched, &cgen::CodegenOptions::default());
            cgen::emit_c99(&k)
        }),
        samples,
    );

    // --- Whole-flow ablation (mirrors benches/ablation.rs).
    println!("flow:");
    push(
        "ablation/flow_factored",
        median_ns(samples, || {
            cfd_core::Flow::compile(&src, &FlowOptions::default()).unwrap()
        }),
        samples,
    );
    push(
        "ablation/flow_naive",
        median_ns(samples, || {
            cfd_core::Flow::compile(
                &src,
                &FlowOptions {
                    factorize: false,
                    ..Default::default()
                },
            )
            .unwrap()
        }),
        samples,
    );

    // --- Full-system simulation (mirrors benches/parallel_speedup.rs).
    println!("simulation:");
    let art = bench::compile_paper_kernel(true, true);
    for k in [1usize, 16] {
        push(
            &format!("fig9/simulate_k{k}"),
            median_ns(samples, || bench::simulate(&art, k, k, 4_000)),
            samples,
        );
    }

    // --- Interpreter (flat walk vs the seed multi-index oracle).
    println!("interpreter (p = 7):");
    let imod = teil::transform::factorize(
        &teil::lower(
            &cfdlang::check(&cfdlang::parse(&cfdlang::examples::inverse_helmholtz(7)).unwrap())
                .unwrap(),
        )
        .unwrap(),
    );
    let mut inputs: HashMap<String, Tensor> = HashMap::new();
    for id in imod.of_kind(teil::TensorKind::Input) {
        inputs.insert(
            imod.name(id).to_string(),
            Tensor::from_fn(imod.shape(id), |i| {
                i.iter().sum::<usize>() as f64 * 0.25 - 1.0
            }),
        );
    }
    let interp = Interpreter::new(&imod);
    push(
        "interp/flat_walk",
        median_ns(samples, || interp.run(&inputs).unwrap()),
        samples,
    );
    push(
        "interp/multi_index_reference",
        median_ns(samples, || interp.run_reference(&inputs).unwrap()),
        samples,
    );

    // --- DSE sweep: wall clock (median over repetitions) + the
    // engine's own per-point accounting from the last sweep.
    println!("dse sweep:");
    let (sweep_ns, report) = median_wall(WALL_REPS, || bench::dse_sweep(2_000, 4));
    push("dse/sweep_32pt_wall", sweep_ns, WALL_REPS);

    // --- Multi-kernel program flow: the whole simulation_step chain
    // (interpolation → inverse Helmholtz → projection) compiled into
    // one shared-memory system, plus its chained simulation.
    println!("multi-kernel program (simulation_step, p = 7):");
    let psrc = cfdlang::examples::simulation_step(7);
    let popts = ProgramOptions::default();
    let cold_ns = median_ns(samples, || ProgramFlow::compile(&psrc, &popts).unwrap());
    push("program/compile_simstep", cold_ns, samples);
    let part = ProgramFlow::compile(&psrc, &popts).unwrap();
    let psys = part.system.as_ref().expect("program fits");
    push(
        "program/simulate_simstep",
        median_ns(samples, || {
            zynq::simulate_program(
                psys,
                &zynq::SimConfig {
                    elements: 4_000,
                    ..Default::default()
                },
            )
        }),
        samples,
    );
    let program_brams = (part.memory.brams, part.per_kernel_plm_brams());
    // Multi-kernel liveness: re-run `Liveness::analyze` over every
    // kernel of the compiled simstep program — the cross-kernel analog
    // of `compiler/liveness`, and the path the memoized simplex oracle
    // accelerates hardest (the three kernels share many systems).
    push(
        "compiler/liveness_simstep",
        median_ns(samples, || {
            for a in &part.kernels {
                std::hint::black_box(Liveness::analyze(&a.module, &a.model, &a.schedule));
            }
        }),
        samples,
    );

    // --- Incremental compile cache: warm (in-memory content-hash hit)
    // and disk-warm (fresh cache over a populated directory, modeling a
    // new process) program compiles. The PR-6 acceptance gates compare
    // against the frozen PR-5 `program/compile_simstep` median: the
    // cold path must be >= 2x faster and the warm path >= 10x.
    println!("compile cache (simulation_step, p = 7):");
    let ccache = Arc::new(CompileCache::in_memory());
    ProgramFlow::compile_cached(&psrc, &popts, Arc::clone(&ccache)).unwrap();
    let warm_ns = median_ns(samples, || {
        ProgramFlow::compile_cached(&psrc, &popts, Arc::clone(&ccache)).unwrap()
    });
    push("compile_cache/warm_simstep", warm_ns, samples);
    let cache_dir =
        std::env::temp_dir().join(format!("cfdfpga-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let writer = Arc::new(CompileCache::with_dir(&cache_dir).expect("usable cache dir"));
    ProgramFlow::compile_cached(&psrc, &popts, writer).unwrap();
    let disk_warm_ns = median_ns(samples, || {
        let fresh = Arc::new(CompileCache::with_dir(&cache_dir).expect("usable cache dir"));
        ProgramFlow::compile_cached(&psrc, &popts, fresh).unwrap()
    });
    push("compile_cache/disk_warm_simstep", disk_warm_ns, samples);
    // Disk-warm acceptance: reviving the scheduling products from disk
    // (fresh process, populated store) must stay at least 2x under a
    // cold compile — the canonical-row fast path skips per-constraint
    // normalization and quadratic dedup when parsing entries.
    let disk_warm_x = cold_ns as f64 / disk_warm_ns as f64;
    println!("  disk-warm revival: {disk_warm_x:.2}x under cold");
    assert!(
        disk_warm_x >= 2.0,
        "disk-warm compile must stay >= 2x under cold (got {disk_warm_x:.2}x)"
    );
    let cache_counters = ccache.counters();
    let _ = std::fs::remove_dir_all(&cache_dir);
    let baseline_pr5 = read_bench_medians("BENCH_pr5.json");
    let pr5_compile = baseline_pr5
        .iter()
        .find(|(name, _)| name == "program/compile_simstep")
        .map(|(_, ns)| *ns);
    let (mut cold_x, mut warm_x) = (0.0f64, 0.0f64);
    if let Some(base) = pr5_compile {
        cold_x = base as f64 / cold_ns as f64;
        warm_x = base as f64 / warm_ns as f64;
        println!(
            "  vs PR-5 compile_simstep ({base} ns): cold {cold_x:.1}x, warm {warm_x:.1}x, \
             disk-warm {:.1}x",
            base as f64 / disk_warm_ns as f64
        );
        assert!(
            cold_x >= 2.0,
            "cold program compile must be >= 2x PR-5 (got {cold_x:.2}x)"
        );
        assert!(
            warm_x >= 10.0,
            "warm-cache program compile must be >= 10x PR-5 (got {warm_x:.2}x)"
        );
    }

    // --- Batched serving runtime: 64 queued requests on the zcu106
    // simstep system, batched (auto fill + double-buffered DMA) vs the
    // sequential per-request baseline — the PR-5 acceptance figures.
    println!("serving runtime (simulation_step, p = 7, 64 requests):");
    let serve_opts = cfd_core::RuntimeOptions {
        requests: 64,
        ..Default::default()
    };
    push(
        "runtime/serve64_batched",
        median_ns(samples, || part.serve(&serve_opts).unwrap()),
        samples,
    );
    push(
        "runtime/serve64_sequential",
        median_ns(samples, || {
            part.serve_sequential_baseline(&serve_opts).unwrap()
        }),
        samples,
    );
    let batched = part.serve(&serve_opts).unwrap().report;
    let sequential = part.serve_sequential_baseline(&serve_opts).unwrap();
    let serve_speedup = batched.throughput_rps / sequential.throughput_rps;
    println!(
        "  batched {:.1} req/s vs sequential {:.1} req/s -> {serve_speedup:.2}x, \
         p99 {:.4} s, overlap {:.2}",
        batched.throughput_rps,
        sequential.throughput_rps,
        batched.latency_p99_s,
        batched.overlap_fraction,
    );
    assert!(
        serve_speedup >= 2.0,
        "batched serving must be >= 2x sequential (got {serve_speedup:.2}x)"
    );
    // Double-buffered variant: halve the replication (k = m/2) so every
    // stage keeps a spare PLM set and the DMA overlaps compute.
    let m = part.system.as_ref().expect("simstep fits").config.m;
    let overlapped = ProgramFlow::compile(
        &psrc,
        &ProgramOptions {
            system: Some(sysgen::ProgramSystemConfig::uniform(m / 2, m, 3)),
            ..Default::default()
        },
    )
    .unwrap()
    .serve(&serve_opts)
    .unwrap()
    .report;
    println!(
        "  double-buffered (k={}, m={m}): {:.1} req/s, overlap fraction {:.2}",
        m / 2,
        overlapped.throughput_rps,
        overlapped.overlap_fraction,
    );
    assert!(
        overlapped.overlap_fraction > 0.0,
        "spare PLM sets must overlap DMA with compute"
    );
    // Fault tolerance: the same backlog under a 10% transient-error
    // plan (stock recovery policy: 3 retries, no backoff), at a fixed
    // fill of 4 so the plan draws across 16+ rounds rather than 4. The
    // PR-7 acceptance figure — goodput must stay at >= 0.8x the
    // fault-free throughput of the identical policy, and the
    // deterministic plan completes every request.
    let faulty_base = cfd_core::RuntimeOptions {
        requests: 64,
        batch: cfd_core::BatchPolicy::Fixed(4),
        ..Default::default()
    };
    let faulty_opts = cfd_core::RuntimeOptions {
        faults: cfd_core::FaultPlan::transient(7, 0.10),
        ..faulty_base.clone()
    };
    push(
        "runtime/serve_faulty_10pct",
        median_ns(samples, || part.serve(&faulty_opts).unwrap()),
        samples,
    );
    let fault_free = part.serve(&faulty_base).unwrap().report;
    let faulty = part.serve(&faulty_opts).unwrap().report;
    let goodput_ratio = faulty.goodput_rps.unwrap_or(0.0) / fault_free.throughput_rps;
    println!(
        "  faulty [{}]: goodput {:.1} req/s ({:.2}x fault-free), \
         {} completed / {} retried / {} failed, {} transient rounds",
        faulty.fault_plan,
        faulty.goodput_rps.unwrap_or(0.0),
        goodput_ratio,
        faulty.completed,
        faulty.retried,
        faulty.failed,
        faulty.transient_faults,
    );
    assert!(
        goodput_ratio >= 0.8,
        "10% transient faults must keep goodput >= 0.8x fault-free (got {goodput_ratio:.2}x)"
    );
    assert_eq!(
        faulty.completed, 64,
        "the retry policy must complete every request under the smoke plan"
    );
    assert!(
        faulty.transient_faults > 0,
        "the 10% plan must actually fire over 16 rounds (vacuous figure otherwise)"
    );

    // --- Online serving: the PR-10 event loop at a Poisson overload
    // point. Offered load is 4x the closed-backlog service rate, so the
    // queue grows and the capacity-fill FIFO's completed-request p99
    // inflates with the backlog. The SLO batcher sheds structurally
    // hopeless requests at admission and closes batches early when the
    // oldest queued request's budget is at risk, so its *completed* p99
    // stays bounded by the budget — the PR-10 acceptance figure: SLO
    // p99 strictly below capacity-fill p99 at the same overload point.
    let service_rps = batched.throughput_rps;
    let overload_rps = 4.0 * service_rps;
    // ~4 effective round cadences: comfortably serveable when admitted
    // promptly, far below the latency the overload backlog builds up.
    let slo_s = 4.0 * batched.capacity as f64 / service_rps;
    println!(
        "online serving (simulation_step, p = 7, 64 Poisson requests at {overload_rps:.0} req/s, \
         slo {slo_s:.4} s):"
    );
    let fifo_opts = cfd_core::RuntimeOptions {
        requests: 64,
        arrival: cfd_core::Arrival::Poisson {
            rate_rps: overload_rps,
        },
        online: cfd_core::OnlinePolicy {
            event_loop: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let slo_opts = cfd_core::RuntimeOptions {
        online: cfd_core::OnlinePolicy {
            event_loop: true,
            slo_s: Some(slo_s),
            ..Default::default()
        },
        ..fifo_opts.clone()
    };
    push(
        "runtime/serve_online_fifo64",
        median_ns(samples, || part.serve(&fifo_opts).unwrap()),
        samples,
    );
    push(
        "runtime/serve_online_slo64",
        median_ns(samples, || part.serve(&slo_opts).unwrap()),
        samples,
    );
    let online_fifo = part.serve(&fifo_opts).unwrap().report;
    let online_slo = part.serve(&slo_opts).unwrap().report;
    let fifo_p99 = online_fifo
        .latency_p99_completed_s
        .expect("capacity-fill FIFO completes the whole backlog");
    let slo_p99 = online_slo
        .latency_p99_completed_s
        .expect("the SLO policy must complete requests at this operating point");
    println!(
        "  capacity-fill p99 {fifo_p99:.4} s ({} completed) vs slo-aware p99 {slo_p99:.4} s \
         ({} completed, {} early-closed rounds, {} shed) -> {:.2}x p99 improvement",
        online_fifo.completed,
        online_slo.completed,
        online_slo.early_closed_rounds,
        online_slo.timed_out + online_slo.shed,
        fifo_p99 / slo_p99,
    );
    assert!(
        online_slo.completed > 0,
        "the SLO policy must keep serving under overload"
    );
    assert!(
        slo_p99 < fifo_p99,
        "SLO-aware batching must beat capacity-fill p99 under Poisson overload \
         (got {slo_p99:.4} s vs {fifo_p99:.4} s)"
    );
    assert!(
        slo_p99 <= slo_s + 1e-9,
        "completed-request p99 must respect the SLO budget (got {slo_p99:.4} s > {slo_s:.4} s)"
    );

    // --- Fleet serving: a 64-requests-per-board backlog (the serve64
    // per-board load, scaled to the fleet width) sharded across every
    // catalog board that fits the simstep program, under predictive
    // (cost-model) routing on scoped threads. Batching rounds cost the
    // same regardless of fill, so the aggregate-rate comparison holds
    // per-board load fixed rather than starving five boards on one
    // board's backlog. The PR-9 acceptance figure: fleet-aggregate
    // req/s must be >= 3x the single-board `runtime/serve64_batched`
    // rate.
    println!("fleet serving (simulation_step, p = 7, 64 requests/board, catalog):");
    let mut fleet_boards: Vec<FleetBoard> = Vec::new();
    for platform in sysgen::Platform::catalog() {
        let fopts = ProgramOptions {
            flow: cfd_core::FlowOptions::for_platform(platform.clone()),
            ..Default::default()
        };
        match ProgramFlow::compile(&psrc, &fopts).unwrap().system {
            Some(design) => fleet_boards.push(FleetBoard::healthy(design)),
            None => println!("  {}: program does not fit, skipped", platform.id),
        }
    }
    assert!(
        fleet_boards.len() >= 3,
        "the fleet must span at least 3 catalog boards"
    );
    let fleet_backlog = 64 * fleet_boards.len();
    let fleet_opts = FleetOptions {
        route: RoutePolicy::Predictive,
        parallel: true,
        base: cfd_core::RuntimeOptions {
            requests: fleet_backlog,
            ..serve_opts.clone()
        },
    };
    let (fleet_ns, fleet_out) = median_wall(WALL_REPS, || {
        part.serve_fleet(&fleet_boards, &fleet_opts).unwrap()
    });
    push("fleet/serve_5board_wall", fleet_ns, WALL_REPS);
    let fleet = fleet_out.report;
    let fleet_speedup = fleet.aggregate_rps / batched.throughput_rps;
    println!(
        "  {} boards [{}]: aggregate {:.1} req/s ({fleet_speedup:.2}x single-board batched), \
         goodput {:.1} req/s, p99 {:.4} s",
        fleet.boards.len(),
        fleet.route.label(),
        fleet.aggregate_rps,
        fleet.goodput_rps.unwrap_or(0.0),
        fleet.latency_p99_s,
    );
    for b in &fleet.boards {
        println!(
            "    {}: assigned {}, utilization {:.2}, {:.1} req/s/kLUT",
            b.name, b.assigned, b.utilization, b.rps_per_kluts
        );
    }
    assert_eq!(
        fleet.completed, fleet_backlog,
        "the fleet must complete the backlog"
    );
    assert!(
        fleet_speedup >= 3.0,
        "fleet aggregate must be >= 3x single-board serve64 (got {fleet_speedup:.2}x)"
    );

    // --- Large-N execute-path regression guard: 2048 executed requests
    // through a cheap kernel. The completion-order lookup used to be a
    // linear scan per request (quadratic in N); the precomputed inverse
    // index keeps this wall time linear.
    println!("large-N serving (axpy, 2048 executed requests):");
    let nsrc = cfdlang::examples::axpy(4);
    let npart = ProgramFlow::compile(&nsrc, &ProgramOptions::default()).unwrap();
    let nopts = cfd_core::RuntimeOptions {
        requests: 2048,
        execute: true,
        ..Default::default()
    };
    let (large_n_ns, _) = median_wall(WALL_REPS, || npart.serve(&nopts).unwrap());
    push("runtime/serve2048_execute_wall", large_n_ns, WALL_REPS);

    // --- Multi-board portfolio: per-platform figures for the paper
    // kernel (largest feasible k = m at the default clock + simulated
    // time), plus the portfolio sweep wall time.
    println!("platform portfolio (paper kernel):");
    let mut platform_rows: Vec<(String, f64, usize, usize, usize, f64)> = Vec::new();
    for platform in sysgen::Platform::catalog() {
        let popts = cfd_core::FlowOptions::for_platform(platform.clone());
        let part = bench::paper_engine()
            .artifacts_for(&popts)
            .expect("paper kernel compiles on every platform");
        match &part.system {
            Some(sys) => {
                let r = zynq::simulate_hw(
                    sys,
                    &zynq::SimConfig {
                        elements: 4_000,
                        ..Default::default()
                    },
                );
                println!(
                    "  {}: k=m={} @ {:.0} MHz, {:.4} s / 4000 elements",
                    platform.id, sys.config.k, platform.default_clock_mhz, r.total_s
                );
                platform_rows.push((
                    platform.id.clone(),
                    platform.default_clock_mhz,
                    sys.config.k,
                    sys.luts,
                    sys.brams,
                    r.total_s,
                ));
            }
            None => {
                println!("  {}: nothing fits", platform.id);
                platform_rows.push((
                    platform.id.clone(),
                    platform.default_clock_mhz,
                    0,
                    0,
                    0,
                    0.0,
                ));
            }
        }
    }
    let (portfolio_ns, portfolio) = median_wall(WALL_REPS, || {
        bench::paper_engine().run_portfolio(
            &sysgen::Platform::catalog(),
            &cfd_core::dse::DseGrid::default(),
            4,
            2_000,
        )
    });
    push("portfolio/sweep_catalog_wall", portfolio_ns, WALL_REPS);
    assert!(
        portfolio.feasible_platforms().len() >= 3,
        "portfolio must span the catalog"
    );
    // Thousand-point sweep: a dense grid (11 replications × 3 batch
    // factors × sharing × decoupling × 2 partitions = 264 points) across
    // the full catalog and every clock ladder — 4000+ evaluated design
    // points. The PR-8 acceptance figure: with the memoized simplex
    // oracle the whole sweep stays under a second of wall clock.
    let dense_grid = cfd_core::dse::DseGrid {
        k: vec![1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16],
        batch: vec![1, 2, 4],
        sharing: vec![true, false],
        decoupled: vec![true, false],
        partition: vec![1, 2],
    };
    let (dense_ns, dense) = median_wall(WALL_REPS, || {
        bench::paper_engine().run_portfolio(&sysgen::Platform::catalog(), &dense_grid, 4, 2_000)
    });
    push("portfolio/sweep_4096pt_wall", dense_ns, WALL_REPS);
    println!(
        "  dense sweep: {} points evaluated, {} feasible, {:.1} ms",
        dense.evaluated,
        dense.feasible,
        dense_ns as f64 / 1e6
    );
    assert!(
        dense.evaluated >= 4096,
        "dense sweep must evaluate >= 4096 points (got {})",
        dense.evaluated
    );
    assert!(
        dense_ns < 1_000_000_000,
        "dense {}-point sweep must finish under 1 s (got {:.3} s)",
        dense.evaluated,
        dense_ns as f64 / 1e9
    );

    // --- Emit JSON.
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"cfdfpga-bench-v1\",\n");
    s.push_str("  \"pr\": 10,\n");
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str("  \"benches\": [\n");
    for (i, (name, ns, n)) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{name}\", \"median_ns\": {ns}, \"samples\": {n}}}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"dse\": {{\"points\": {}, \"feasible\": {}, \"backend_compiles\": {}, \
         \"backend_reuses\": {}, \"backend_compile_s\": {:.6}, \"eval_total_s\": {:.6}, \
         \"eval_mean_s\": {:.6}, \"eval_max_s\": {:.6}, \"wall_s\": {:.6}}},\n",
        report.evaluated,
        report.feasible,
        report.backend_compiles,
        report.backend_reuses,
        report.backend_s,
        report.eval_total_s,
        report.eval_mean_s,
        report.eval_max_s,
        report.wall_s,
    ));
    s.push_str(&format!(
        "  \"program\": {{\"kernels\": 3, \"plm_brams_shared\": {}, \"plm_brams_concat\": {}}},\n",
        program_brams.0, program_brams.1
    ));
    // Compile-cache acceptance figures: cold / warm / disk-warm program
    // compile medians, speedups vs the frozen PR-5 cold compile
    // (asserted above: >= 2x cold, >= 10x warm), and the in-memory
    // cache's cumulative counters from the warm runs.
    s.push_str(&format!(
        "  \"compile_cache\": {{\"cold_ns\": {cold_ns}, \"warm_ns\": {warm_ns}, \
         \"disk_warm_ns\": {disk_warm_ns}, \"cold_speedup_vs_pr5\": {cold_x:.3}, \
         \"warm_speedup_vs_pr5\": {warm_x:.3}, \"disk_warm_speedup_vs_cold\": {disk_warm_x:.3}, \
         \"hits\": {}, \"disk_hits\": {}, \
         \"misses\": {}, \"stores\": {}, \"invalidations\": {}}},\n",
        cache_counters.hits,
        cache_counters.disk_hits,
        cache_counters.misses,
        cache_counters.stores,
        cache_counters.invalidations,
    ));
    // Serving acceptance figures: batched vs sequential requests/sec on
    // the zcu106 (>= 2x asserted above), p99, overlap, and the PR-7
    // fault-tolerance figure (goodput >= 0.8x fault-free asserted
    // above).
    s.push_str(&format!(
        "  \"runtime\": {{\"requests\": 64, \"board\": \"zcu106\", \"batched_rps\": {:.3}, \
         \"sequential_rps\": {:.3}, \"speedup\": {:.3}, \"p99_s\": {:.6}, \
         \"rounds\": {}, \"capacity\": {}, \
         \"double_buffered\": {{\"ks\": {}, \"m\": {}, \"rps\": {:.3}, \"overlap_fraction\": {:.4}}}, \
         \"faulty\": {{\"plan\": \"{}\", \"goodput_rps\": {:.3}, \"goodput_ratio\": {:.4}, \
         \"completed\": {}, \"retried\": {}, \"failed\": {}, \"transient_faults\": {}}}}},\n",
        batched.throughput_rps,
        sequential.throughput_rps,
        serve_speedup,
        batched.latency_p99_s,
        batched.rounds,
        batched.capacity,
        overlapped.capacity / 2,
        overlapped.capacity,
        overlapped.throughput_rps,
        overlapped.overlap_fraction,
        faulty.fault_plan,
        faulty.goodput_rps.unwrap_or(0.0),
        goodput_ratio,
        faulty.completed,
        faulty.retried,
        faulty.failed,
        faulty.transient_faults,
    ));
    // Online-serving acceptance figures: SLO-aware adaptive batching vs
    // capacity-fill FIFO at the same Poisson overload point (the p99
    // improvement is asserted above before anything is written).
    s.push_str(&format!(
        "  \"online\": {{\"requests\": 64, \"offered_rps\": {:.3}, \"slo_s\": {:.6}, \
         \"fifo_p99_completed_s\": {:.6}, \"slo_p99_completed_s\": {:.6}, \
         \"p99_improvement\": {:.3}, \"slo_completed\": {}, \"slo_timed_out\": {}, \
         \"slo_shed\": {}, \"early_closed_rounds\": {}}},\n",
        overload_rps,
        slo_s,
        fifo_p99,
        slo_p99,
        fifo_p99 / slo_p99,
        online_slo.completed,
        online_slo.timed_out,
        online_slo.shed,
        online_slo.early_closed_rounds,
    ));
    // Fleet acceptance figures: the serve64 backlog across the board
    // catalog under predictive routing (>= 3x single-board asserted
    // above), with the per-board utilization / cost-efficiency split.
    s.push_str(&format!(
        "  \"fleet\": {{\"route\": \"{}\", \"boards\": {}, \"requests\": {}, \
         \"aggregate_rps\": {:.3}, \"goodput_rps\": {:.3}, \"speedup_vs_single\": {:.3}, \
         \"p99_s\": {:.6}, \"requeued\": {}, \"per_board\": [",
        fleet.route.label(),
        fleet.boards.len(),
        fleet.requests,
        fleet.aggregate_rps,
        fleet.goodput_rps.unwrap_or(0.0),
        fleet_speedup,
        fleet.latency_p99_s,
        fleet.requeued,
    ));
    for (i, b) in fleet.boards.iter().enumerate() {
        s.push_str(&format!(
            "{{\"name\": \"{}\", \"assigned\": {}, \"utilization\": {:.4}, \
             \"rps_per_kluts\": {:.3}}}{}",
            b.name,
            b.assigned,
            b.utilization,
            b.rps_per_kluts,
            if i + 1 == fleet.boards.len() {
                ""
            } else {
                ", "
            }
        ));
    }
    s.push_str("]},\n");
    // Per-platform portfolio figures for the paper kernel.
    s.push_str("  \"platforms\": [\n");
    for (i, (id, clock, k, luts, brams, total_s)) in platform_rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"platform\": \"{id}\", \"clock_mhz\": {clock:.1}, \"max_k\": {k}, \
             \"luts\": {luts}, \"brams\": {brams}, \"total_s_4000\": {total_s:.6}, \
             \"feasible\": {}}}{}\n",
            *k > 0,
            if i + 1 == platform_rows.len() {
                ""
            } else {
                ","
            }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"portfolio\": {{\"evaluated\": {}, \"feasible\": {}, \"backend_compiles\": {}, \
         \"backend_reuses\": {}, \"pareto_points\": {}, \"platforms_spanned\": {}, \
         \"dense_evaluated\": {}, \"dense_feasible\": {}, \"dense_wall_ns\": {dense_ns}}},\n",
        portfolio.evaluated,
        portfolio.feasible,
        portfolio.backend_compiles,
        portfolio.backend_reuses,
        portfolio.pareto_frontier().len(),
        portfolio.feasible_platforms().len(),
        dense.evaluated,
        dense.feasible,
    ));
    // Feasibility-oracle counters accumulated over the entire bench run
    // (same schema as `cfdc --json` and the DSE/portfolio reports):
    // layered quick exits, verdict-memo traffic, simplex calls and FM
    // fallbacks, projection-memo traffic.
    s.push_str(&format!(
        "  \"polyhedra\": {},\n",
        polyhedra::OracleCounters::snapshot().json()
    ));
    // Freeze the PR-9 medians from the committed file so the
    // before/after comparison travels with this one.
    let baseline_pr9 = read_bench_medians("BENCH_pr9.json");
    s.push_str("  \"baseline_pr9\": {\n");
    for (i, (name, ns)) in baseline_pr9.iter().enumerate() {
        s.push_str(&format!(
            "    \"{name}\": {ns}{}\n",
            if i + 1 == baseline_pr9.len() { "" } else { "," }
        ));
    }
    s.push_str("  }\n}\n");

    match &args.out {
        Some(path) => {
            std::fs::write(path, &s).expect("write bench json");
            println!("wrote {path}");
        }
        None => print!("{s}"),
    }

    // Sanity: the flat walk and the reference walk agree (cheap spot
    // check so a bench run can't silently time diverging paths).
    let a = interp.run(&inputs).unwrap();
    let b = interp.run_reference(&inputs).unwrap();
    assert_eq!(a.stats, b.stats, "flat walk diverged from reference");
}
