//! Compiler-stage microbenchmarks: the cost of each step of Figure 4
//! (frontend, lowering, canonicalization, polyhedral model, dependence
//! analysis, rescheduling, liveness, code generation) on the paper's
//! kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use pschedule::{Dependences, KernelModel, Liveness, Schedule, SchedulerOptions};
use std::hint::black_box;
use teil::layout::LayoutPlan;

fn bench(c: &mut Criterion) {
    let src = cfdlang::examples::inverse_helmholtz(bench::PAPER_P);
    let ast = cfdlang::parse(&src).unwrap();
    let typed = cfdlang::check(&ast).unwrap();
    let lowered = teil::lower(&typed).unwrap();
    let module = teil::transform::factorize(&lowered);
    let layout = LayoutPlan::row_major(&module);
    let model = KernelModel::build(&module, &layout);
    let deps = Dependences::analyze(&model);
    let sched = pschedule::reschedule(&module, &model, &deps, &SchedulerOptions::default());

    let mut g = c.benchmark_group("compiler");
    g.bench_function("parse_and_check", |b| {
        b.iter(|| cfdlang::check(&cfdlang::parse(black_box(&src)).unwrap()).unwrap())
    });
    g.bench_function("lower", |b| {
        b.iter(|| teil::lower(black_box(&typed)).unwrap())
    });
    g.bench_function("factorize", |b| {
        b.iter(|| teil::transform::factorize(black_box(&lowered)))
    });
    g.sample_size(20);
    g.bench_function("polyhedral_model", |b| {
        b.iter(|| KernelModel::build(black_box(&module), &layout))
    });
    g.bench_function("dependence_analysis", |b| {
        b.iter(|| Dependences::analyze(black_box(&model)))
    });
    g.sample_size(10);
    g.bench_function("reschedule", |b| {
        b.iter(|| pschedule::reschedule(&module, &model, &deps, &SchedulerOptions::default()))
    });
    g.bench_function("liveness", |b| {
        b.iter(|| Liveness::analyze(&module, &model, black_box(&sched)))
    });
    g.bench_function("codegen_c99", |b| {
        b.iter(|| {
            let k = cgen::build_kernel(&module, &model, &sched, &cgen::CodegenOptions::default());
            cgen::emit_c99(&k)
        })
    });
    // Sanity: the reference schedule is the legality fallback.
    assert!(pschedule::legal(
        &model,
        &deps,
        &Schedule::reference(&model)
    ));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
