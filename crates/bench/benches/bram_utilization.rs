//! Figure 8: BRAM utilization of parallel accelerators with and without
//! memory sharing; checks the feasibility crossover (no-sharing stops at
//! m = 8, sharing reaches m = 16 under the 312-BRAM budget).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let (series, max) = bench::fig8();
    // Same conclusions as the paper's Figure 8.
    let at = |m: usize| series.iter().find(|&&(mm, _, _)| mm == m).copied().unwrap();
    assert!(at(8).1 <= max, "no-sharing fits 8");
    assert!(at(16).1 > max, "no-sharing cannot fit 16");
    assert!(at(16).2 <= max, "sharing fits 16");

    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("bram_series", |b| b.iter(bench::fig8));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
