//! Ablation benches for the design choices DESIGN.md calls out:
//! contraction factorization, decoupled PLM, memory sharing.

use cfd_core::{Flow, FlowOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let a = bench::ablation();
    // Factorization: an order of magnitude in kernel cycles at p = 11.
    assert!(a.latency_naive > 10 * a.latency_factored);
    // Decoupling: temporaries inside cost 24 BRAMs (paper: 24).
    assert_eq!(a.brams_inside, 24);
    assert_eq!(a.brams_decoupled, 0);
    // Sharing doubles the kernel count (paper's headline).
    assert_eq!(a.max_k_no_sharing, 8);
    assert_eq!(a.max_k_sharing, 16);

    let src = cfdlang::examples::inverse_helmholtz(bench::PAPER_P);
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("flow_factored", |b| {
        b.iter(|| Flow::compile(&src, &FlowOptions::default()).unwrap())
    });
    g.bench_function("flow_naive", |b| {
        b.iter(|| {
            Flow::compile(
                &src,
                &FlowOptions {
                    factorize: false,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
