//! Figure 10: speedup over ARM A53 software execution, checked against
//! the paper within 8%.

use criterion::{criterion_group, criterion_main, Criterion};
use zynq::ArmCostModel;

const ELEMENTS: usize = 2_000;

fn bench(c: &mut Criterion) {
    let bars = bench::fig10(ELEMENTS);
    for (i, (label, s)) in bars.iter().enumerate() {
        let (plabel, p) = bench::FIG10_PAPER[i];
        assert_eq!(label, plabel);
        assert!(
            (s - p).abs() / p < 0.08,
            "{label}: model {s:.2} vs paper {p}"
        );
    }

    let art = bench::compile_paper_kernel(true, true);
    let model = ArmCostModel::a53_1200mhz();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("sw_reference_model", |b| {
        b.iter(|| zynq::sim::sw_reference(&art.module, &model, ELEMENTS).unwrap())
    });
    g.bench_function("sw_hls_code_model", |b| {
        b.iter(|| zynq::sim::sw_hls_code(&art.kernel, &model, ELEMENTS).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
