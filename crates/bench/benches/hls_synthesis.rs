//! In-text kernel report: times HLS synthesis of the p=11 Inverse
//! Helmholtz kernel and checks the resource numbers against the paper
//! (2,314 LUT / 2,999 FF / 15 DSP).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let art = bench::compile_paper_kernel(true, true);
    assert_eq!(art.hls_report.dsps, 15, "paper: 15 DSPs");
    assert!(
        (2100..=2600).contains(&art.hls_report.luts),
        "paper: 2,314 LUTs"
    );
    assert!(
        (2700..=3300).contains(&art.hls_report.ffs),
        "paper: 2,999 FFs"
    );

    let mut g = c.benchmark_group("hls_synthesis");
    g.sample_size(20);
    g.bench_function("inverse_helmholtz_p11", |b| {
        b.iter(|| hls::synthesize(black_box(&art.kernel), &hls::HlsOptions::default()))
    });
    g.bench_function("latency_model_only", |b| {
        b.iter(|| {
            hls::kernel_latency(
                black_box(&art.kernel),
                &hls::HlsOptions::default(),
                &hls::OpLibrary::ultrascale_200mhz(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
