//! In-text k < m batching experiment: verifies the paper's finding that
//! batched PLMs do not improve the end-to-end time, and benches the
//! discrete-event simulation of batched configurations.

use criterion::{criterion_group, criterion_main, Criterion};

const ELEMENTS: usize = 2_048;

fn bench(c: &mut Criterion) {
    let rows = bench::batch_report(ELEMENTS);
    for &(k, m, t) in &rows {
        if k == m {
            continue;
        }
        let base = rows
            .iter()
            .find(|&&(bk, bm, _)| bk == k && bm == k)
            .map(|&(_, _, bt)| bt)
            .expect("baseline");
        let rel = (t - base).abs() / base;
        assert!(
            rel < 0.02,
            "k={k} m={m}: batching changed total by {:.1}%",
            rel * 100.0
        );
    }

    let art = bench::compile_paper_kernel(true, true);
    let mut g = c.benchmark_group("batch");
    g.sample_size(10);
    g.bench_function("des_k2_m8", |b| {
        b.iter(|| bench::simulate(&art, 2, 8, ELEMENTS))
    });
    g.bench_function("des_k2_m2", |b| {
        b.iter(|| bench::simulate(&art, 2, 2, ELEMENTS))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
