//! Figure 9: accelerator and total speedup of the parallel
//! architectures, checked against the paper within 4%.

use criterion::{criterion_group, criterion_main, Criterion};

const ELEMENTS: usize = 4_000; // ratios are element-count independent

fn bench(c: &mut Criterion) {
    let pts = bench::fig9(ELEMENTS);
    for (i, &(m, acc, tot)) in pts.iter().enumerate() {
        let (pm, pacc, ptot) = bench::FIG9_PAPER[i];
        assert_eq!(m, pm);
        assert!(
            (acc - pacc).abs() / pacc < 0.04,
            "m={m}: accel {acc:.2} vs paper {pacc}"
        );
        assert!(
            (tot - ptot).abs() / ptot < 0.04,
            "m={m}: total {tot:.2} vs paper {ptot}"
        );
    }

    let art = bench::compile_paper_kernel(true, true);
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    for k in [1usize, 16] {
        g.bench_function(format!("simulate_k{k}"), |b| {
            b.iter(|| bench::simulate(&art, k, k, ELEMENTS))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
