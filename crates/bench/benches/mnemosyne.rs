//! In-text PLM report: times memory-subsystem synthesis (sharing vs no
//! sharing) and checks the BRAM counts against the paper (31 → 18 with
//! Vivado's mapping; 28 → 16 with this model's tight 512-word packing).

use criterion::{criterion_group, criterion_main, Criterion};
use mnemosyne::MemoryOptions;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let art = bench::compile_paper_kernel(true, true);
    let cfg = &art.mnemosyne_config;
    let sharing = mnemosyne::synthesize(cfg, &MemoryOptions::default());
    let no_sharing = mnemosyne::synthesize(
        cfg,
        &MemoryOptions {
            sharing: false,
            ..Default::default()
        },
    );
    assert_eq!(no_sharing.brams, 28, "paper: 31 (Vivado packing)");
    assert_eq!(sharing.brams, 16, "paper: 18 (Vivado packing)");

    let mut g = c.benchmark_group("mnemosyne");
    g.bench_function("synthesize_sharing", |b| {
        b.iter(|| mnemosyne::synthesize(black_box(cfg), &MemoryOptions::default()))
    });
    g.bench_function("synthesize_no_sharing", |b| {
        b.iter(|| {
            mnemosyne::synthesize(
                black_box(cfg),
                &MemoryOptions {
                    sharing: false,
                    ..Default::default()
                },
            )
        })
    });
    g.bench_function("clique_cover", |b| {
        b.iter(|| mnemosyne::share_groups(black_box(cfg), false))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
