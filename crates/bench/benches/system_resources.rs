//! Table I: times system construction for every (m, k) row and checks
//! the resource totals against the paper within 10%.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Verify the full table against the paper's rows.
    let rows = bench::table1();
    for &(sharing, m, lut, _ff, dsp) in bench::TABLE1_PAPER {
        let row = rows
            .iter()
            .find(|r| r.sharing == sharing && r.m == m)
            .unwrap_or_else(|| panic!("missing row sharing={sharing} m={m}"));
        assert_eq!(row.dsps, dsp, "DSPs are exact");
        let rel = (row.luts as f64 - lut as f64).abs() / lut as f64;
        assert!(
            rel < 0.10,
            "m={m} sharing={sharing}: LUT {} vs {lut}",
            row.luts
        );
    }

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    let art = bench::compile_paper_kernel(true, true);
    g.bench_function("build_row_m16", |b| {
        b.iter(|| {
            let cfg = sysgen::SystemConfig { k: 16, m: 16 };
            let host = sysgen::HostProgram::from_kernel(&art.kernel, cfg);
            sysgen::SystemDesign::build(
                &sysgen::Platform::zcu106(),
                &art.hls_report,
                &art.memory,
                cfg,
                host,
            )
            .unwrap()
        })
    });
    g.bench_function("eq3_enumeration", |b| {
        b.iter(|| {
            sysgen::enumerate_configs(&sysgen::Platform::zcu106(), &art.hls_report, &art.memory)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
