//! Property test: cross-kernel PLM sharing never violates
//! [`SharingSolution::validate`].
//!
//! Random chained programs are generated directly at the analysis level
//! — random per-kernel array sets (sizes, port demands, intra-kernel
//! interval compatibilities) plus a random but *structurally valid*
//! kernel-sequence liveness (temporaries live `[k, k]`, external inputs
//! `[0, k]`, external outputs `[k, K-1]`, handoffs `[from, to]` at both
//! ends). The merged configuration's greedy clique cover must validate
//! for every instance, and the no-cross-sharing merge must always be
//! the plain concatenation.

use mnemosyne::{merge_configs, share_groups, ArraySpec, MemoryOptions, MnemosyneConfig};
use proptest::prelude::*;
use pschedule::link::{ArraySeqInfo, CrossLiveness, Handoff};

/// One randomly generated kernel: `(n_temps, n_inputs, has_output,
/// words_seed)`.
type KernelGene = (usize, usize, bool, u64);

/// Build a random chained program from per-kernel genes. Kernel `k`'s
/// first input consumes kernel `k-1`'s output when one exists — a
/// linear chain with external side inputs, the shape real CFD steps
/// have.
fn build_program(genes: &[KernelGene]) -> (Vec<MnemosyneConfig>, CrossLiveness) {
    let nk = genes.len();
    let mut configs = Vec::with_capacity(nk);
    let mut handoffs: Vec<Handoff> = Vec::new();
    let mut infos: Vec<Vec<ArraySeqInfo>> = Vec::with_capacity(nk);
    for (k, &(n_temps, n_inputs, has_output, seed)) in genes.iter().enumerate() {
        let words = |i: u64| 32 + ((seed.wrapping_mul(31).wrapping_add(i * 97)) % 480) as usize;
        let mut arrays: Vec<ArraySpec> = Vec::new();
        let mut kinfos: Vec<ArraySeqInfo> = Vec::new();
        let upstream = k > 0 && genes[k - 1].2;
        for i in 0..n_inputs.max(usize::from(upstream)) {
            let name = if upstream && i == 0 {
                format!("h{}", k - 1) // consume the predecessor's output
            } else {
                format!("in{k}_{i}")
            };
            let is_handoff = upstream && i == 0;
            let w = if is_handoff {
                // Handoff ends share one buffer — equal sizes.
                32 + ((genes[k - 1].3.wrapping_mul(7)) % 480) as usize
            } else {
                words(i as u64)
            };
            arrays.push(ArraySpec {
                name: name.clone(),
                words: w,
                interface: true,
                read_ports: 1 + (seed % 2) as u32,
                write_ports: 1,
            });
            if is_handoff {
                let hi = handoffs.len();
                handoffs.push(Handoff {
                    name: name.clone(),
                    from: k - 1,
                    to: k,
                    words: w,
                });
                kinfos.push(ArraySeqInfo {
                    name,
                    start: k - 1,
                    end: k,
                    external: false,
                    handoff: Some(hi),
                });
            } else {
                kinfos.push(ArraySeqInfo {
                    name,
                    start: 0,
                    end: k,
                    external: true,
                    handoff: None,
                });
            }
        }
        if has_output {
            let name = format!("h{k}");
            let w = 32 + ((seed.wrapping_mul(7)) % 480) as usize;
            arrays.push(ArraySpec {
                name: name.clone(),
                words: w,
                interface: true,
                read_ports: 1,
                write_ports: 1,
            });
            let consumed = k + 1 < nk; // the next kernel will consume it
            kinfos.push(ArraySeqInfo {
                name,
                start: k,
                end: if consumed { k + 1 } else { nk - 1 },
                external: !consumed,
                // The handoff record is appended when the consumer is
                // generated; patch the index afterwards.
                handoff: None,
            });
        }
        for i in 0..n_temps {
            arrays.push(ArraySpec {
                name: format!("t{k}_{i}"),
                words: words(1000 + i as u64),
                interface: false,
                read_ports: 1,
                write_ports: 1,
            });
            kinfos.push(ArraySeqInfo {
                name: format!("t{k}_{i}"),
                start: k,
                end: k,
                external: false,
                handoff: None,
            });
        }
        // Intra-kernel compatibility: every other temporary pair (an
        // arbitrary but symmetric-free interval-ish pattern).
        let mut compat = Vec::new();
        for a in 0..arrays.len() {
            for b in (a + 1)..arrays.len() {
                if !arrays[a].interface && !arrays[b].interface && (a + b) % 2 == 0 {
                    compat.push((a, b));
                }
            }
        }
        configs.push(MnemosyneConfig {
            arrays,
            address_space_compatible: compat,
            memory_interface_compatible: vec![],
        });
        infos.push(kinfos);
    }
    // Patch the producer-side handoff indices.
    for (hi, h) in handoffs.iter().enumerate() {
        if let Some(info) = infos[h.from].iter_mut().find(|a| a.name == h.name) {
            info.handoff = Some(hi);
        }
    }
    let cross = CrossLiveness {
        kernels: (0..nk).map(|k| format!("k{k}")).collect(),
        handoffs,
        arrays: infos,
    };
    (configs, cross)
}

fn kernel_gene() -> impl Strategy<Value = KernelGene> {
    (0usize..4, 0usize..3, proptest::bool::ANY, 0u64..1_000_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The merged configuration's greedy sharing solution validates for
    /// every random chained program — cross-kernel co-location never
    /// groups incompatible arrays, duplicates members or drops one.
    #[test]
    fn cross_kernel_sharing_always_validates(
        genes in proptest::collection::vec(kernel_gene(), 4)
    ) {
        let (configs, cross) = build_program(&genes);
        let parts: Vec<&MnemosyneConfig> = configs.iter().collect();
        for cross_sharing in [false, true] {
            let plan = merge_configs(&parts, &cross, cross_sharing);
            for share_interface in [false, true] {
                let sol = share_groups(&plan.config, share_interface);
                prop_assert_eq!(
                    sol.validate(&plan.config, share_interface),
                    Ok(()),
                    "cross_sharing={} share_interface={}",
                    cross_sharing,
                    share_interface
                );
            }
        }
    }

    /// Disabled cross-sharing is a plain concatenation: array count,
    /// per-array words, and total no-sharing BRAMs all equal the sum of
    /// the per-kernel subsystems.
    #[test]
    fn no_cross_sharing_is_concatenation(
        genes in proptest::collection::vec(kernel_gene(), 3)
    ) {
        let (configs, cross) = build_program(&genes);
        let parts: Vec<&MnemosyneConfig> = configs.iter().collect();
        let plan = merge_configs(&parts, &cross, false);
        prop_assert_eq!(plan.cross_edges, 0);
        let opts = MemoryOptions::default();
        let merged = mnemosyne::synthesize_program(&plan, &opts);
        let sum: usize = configs
            .iter()
            .map(|c| mnemosyne::synthesize(c, &opts).brams)
            .sum();
        prop_assert_eq!(merged.brams, sum);
    }

    /// Cross-kernel sharing can only reduce (never grow) the shared PLM
    /// BRAM budget relative to the concatenation.
    #[test]
    fn cross_sharing_never_costs_brams(
        genes in proptest::collection::vec(kernel_gene(), 4)
    ) {
        let (configs, cross) = build_program(&genes);
        let parts: Vec<&MnemosyneConfig> = configs.iter().collect();
        let opts = MemoryOptions::default();
        let concat = mnemosyne::synthesize_program(&merge_configs(&parts, &cross, false), &opts);
        let shared = mnemosyne::synthesize_program(&merge_configs(&parts, &cross, true), &opts);
        prop_assert!(shared.brams <= concat.brams,
            "shared {} > concat {}", shared.brams, concat.brams);
    }
}
