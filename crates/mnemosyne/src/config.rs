//! The Mnemosyne configuration — the metadata file the CFDlang compiler
//! generates during step ⓘⓥ ("Array definition and memory access
//! pattern" in Figure 3).

use pschedule::{CompatKind, CompatibilityGraph};
use serde::{Deserialize, Serialize};

/// One logical array of the kernel interface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArraySpec {
    pub name: String,
    /// Number of 64-bit words.
    pub words: usize,
    /// Host-visible (input/output) array — bound to the DMA engine and by
    /// default excluded from sharing.
    pub interface: bool,
    /// Concurrent read ports required by the HLS schedule.
    pub read_ports: u32,
    /// Concurrent write ports required by the HLS schedule.
    pub write_ports: u32,
}

/// The complete metadata handed from the compiler to Mnemosyne.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MnemosyneConfig {
    pub arrays: Vec<ArraySpec>,
    /// Pairs of arrays with disjoint lifetimes (may overlay addresses).
    pub address_space_compatible: Vec<(usize, usize)>,
    /// Pairs of arrays that never access ports of the same type at the
    /// same schedule point (may share physical banks).
    pub memory_interface_compatible: Vec<(usize, usize)>,
}

impl MnemosyneConfig {
    /// Build from the compiler's compatibility graph.
    pub fn from_graph(graph: &CompatibilityGraph) -> MnemosyneConfig {
        let arrays = graph
            .nodes
            .iter()
            .map(|(_, name, words, interface)| ArraySpec {
                name: name.clone(),
                words: *words,
                interface: *interface,
                read_ports: 1,
                write_ports: 1,
            })
            .collect();
        let mut addr = Vec::new();
        let mut iface = Vec::new();
        for &(a, b, kind) in &graph.edges {
            match kind {
                CompatKind::AddressSpace => addr.push((a, b)),
                CompatKind::MemoryInterface => iface.push((a, b)),
            }
        }
        MnemosyneConfig {
            arrays,
            address_space_compatible: addr,
            memory_interface_compatible: iface,
        }
    }

    /// Whether two arrays may share an address space.
    pub fn addr_compatible(&self, a: usize, b: usize) -> bool {
        let key = (a.min(b), a.max(b));
        self.address_space_compatible.contains(&key)
    }

    /// Index of an array by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.arrays.iter().position(|a| a.name == name)
    }

    /// Total words without any sharing.
    pub fn total_words(&self) -> usize {
        self.arrays.iter().map(|a| a.words).sum()
    }

    /// Override the port requirements of an array (set by the HLS tool
    /// when loop unrolling / array partitioning raises the demand).
    pub fn set_ports(&mut self, name: &str, read: u32, write: u32) {
        if let Some(i) = self.index_of(name) {
            self.arrays[i].read_ports = read;
            self.arrays[i].write_ports = write;
        }
    }

    /// Keep only the interface arrays, remapping compatibility edges —
    /// used when temporaries stay inside the accelerator (non-decoupled
    /// mode), where Mnemosyne only builds the host-visible memories.
    pub fn retain_interface(&self) -> MnemosyneConfig {
        let mut remap = vec![None; self.arrays.len()];
        let mut arrays = Vec::new();
        for (i, a) in self.arrays.iter().enumerate() {
            if a.interface {
                remap[i] = Some(arrays.len());
                arrays.push(a.clone());
            }
        }
        let remap_edges = |edges: &Vec<(usize, usize)>| {
            edges
                .iter()
                .filter_map(|&(a, b)| Some((remap[a]?, remap[b]?)))
                .collect()
        };
        MnemosyneConfig {
            arrays,
            address_space_compatible: remap_edges(&self.address_space_compatible),
            memory_interface_compatible: remap_edges(&self.memory_interface_compatible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg3() -> MnemosyneConfig {
        MnemosyneConfig {
            arrays: vec![
                ArraySpec {
                    name: "a".into(),
                    words: 100,
                    interface: false,
                    read_ports: 1,
                    write_ports: 1,
                },
                ArraySpec {
                    name: "b".into(),
                    words: 200,
                    interface: false,
                    read_ports: 1,
                    write_ports: 1,
                },
                ArraySpec {
                    name: "c".into(),
                    words: 50,
                    interface: true,
                    read_ports: 1,
                    write_ports: 1,
                },
            ],
            address_space_compatible: vec![(0, 1)],
            memory_interface_compatible: vec![(1, 2)],
        }
    }

    #[test]
    fn compatibility_lookup_is_symmetric() {
        let c = cfg3();
        assert!(c.addr_compatible(0, 1));
        assert!(c.addr_compatible(1, 0));
        assert!(!c.addr_compatible(0, 2));
    }

    #[test]
    fn totals_and_lookup() {
        let c = cfg3();
        assert_eq!(c.total_words(), 350);
        assert_eq!(c.index_of("b"), Some(1));
        assert_eq!(c.index_of("zz"), None);
    }

    #[test]
    fn port_override() {
        let mut c = cfg3();
        c.set_ports("a", 3, 1);
        assert_eq!(c.arrays[0].read_ports, 3);
    }

    #[test]
    fn retain_interface_filters_and_remaps() {
        let mut c = cfg3();
        // Make (1, 2) an address-space edge so we can check remapping.
        c.address_space_compatible.push((1, 2));
        c.arrays[1].interface = true;
        let r = c.retain_interface();
        // Arrays b (idx 1) and c (idx 2) survive as 0 and 1.
        assert_eq!(r.arrays.len(), 2);
        assert_eq!(r.arrays[0].name, "b");
        assert_eq!(r.arrays[1].name, "c");
        // Edge (1,2) remapped to (0,1); edge (0,1) dropped (a removed).
        assert_eq!(r.address_space_compatible, vec![(0, 1)]);
        assert_eq!(r.memory_interface_compatible, vec![(0, 1)]);
    }

    #[test]
    fn serde_roundtrip() {
        let c = cfg3();
        // serde_json is not in the dependency set; use the Debug format
        // plus a serde-level smoke check through serde's derive by
        // constructing and comparing a clone instead.
        let c2 = c.clone();
        assert_eq!(c, c2);
    }
}
