//! Address-space sharing: clique partitioning of the compatibility graph.
//!
//! Arrays placed in the same group overlay the same physical buffer, so
//! every pair in a group must be address-space compatible (a clique in
//! the compatibility graph). Finding the minimum clique cover is NP-hard
//! in general, but lifetimes of compiler temporaries form an *interval
//! graph* along the schedule's sequence dimension, for which greedy
//! first-fit in creation order is optimal. We run greedy first-fit and,
//! for small instances (≤ 12 shareable arrays), verify against an exact
//! exponential search in tests.

use crate::config::MnemosyneConfig;

/// A sharing solution: groups of array indices overlaid into one buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharingSolution {
    pub groups: Vec<Vec<usize>>,
}

impl SharingSolution {
    /// Buffer words of one group (max member size — members overlay).
    pub fn group_words(&self, cfg: &MnemosyneConfig, g: usize) -> usize {
        self.groups[g]
            .iter()
            .map(|&a| cfg.arrays[a].words)
            .max()
            .unwrap_or(0)
    }

    /// Total buffer words across groups.
    pub fn total_words(&self, cfg: &MnemosyneConfig) -> usize {
        (0..self.groups.len())
            .map(|g| self.group_words(cfg, g))
            .sum()
    }

    /// Validate that every group is a clique of compatible arrays.
    pub fn validate(&self, cfg: &MnemosyneConfig, share_interface: bool) -> Result<(), String> {
        let mut seen = vec![false; cfg.arrays.len()];
        for group in &self.groups {
            for (i, &a) in group.iter().enumerate() {
                if seen[a] {
                    return Err(format!("array {a} appears twice"));
                }
                seen[a] = true;
                if group.len() > 1 && cfg.arrays[a].interface && !share_interface {
                    return Err(format!(
                        "interface array '{}' in a shared group",
                        cfg.arrays[a].name
                    ));
                }
                for &b in &group[i + 1..] {
                    if !cfg.addr_compatible(a, b) {
                        return Err(format!(
                            "incompatible arrays '{}' and '{}' share a group",
                            cfg.arrays[a].name, cfg.arrays[b].name
                        ));
                    }
                }
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("some array missing from the solution".into());
        }
        Ok(())
    }
}

/// The trivial solution: one group per array.
pub fn no_sharing(cfg: &MnemosyneConfig) -> SharingSolution {
    SharingSolution {
        groups: (0..cfg.arrays.len()).map(|i| vec![i]).collect(),
    }
}

/// Greedy first-fit clique cover. Interface arrays stay alone unless
/// `share_interface` is set (they are wired to the DMA engine; the paper
/// shares only the kernel-private temporaries).
pub fn share_groups(cfg: &MnemosyneConfig, share_interface: bool) -> SharingSolution {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    // Process big arrays first so the overlay buffer is sized once.
    let mut order: Vec<usize> = (0..cfg.arrays.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cfg.arrays[i].words));
    for i in order {
        let sharable = share_interface || !cfg.arrays[i].interface;
        let mut placed = false;
        if sharable {
            for g in groups.iter_mut() {
                let group_sharable = g
                    .iter()
                    .all(|&m| share_interface || !cfg.arrays[m].interface);
                if group_sharable && g.iter().all(|&m| cfg.addr_compatible(i, m)) {
                    g.push(i);
                    placed = true;
                    break;
                }
            }
        }
        if !placed {
            groups.push(vec![i]);
        }
    }
    // Stable order: by smallest member index, so group naming is
    // deterministic.
    for g in groups.iter_mut() {
        g.sort_unstable();
    }
    groups.sort_by_key(|g| g[0]);
    let sol = SharingSolution { groups };
    debug_assert_eq!(sol.validate(cfg, share_interface), Ok(()));
    sol
}

/// Exact minimum clique cover by exhaustive search — exponential, only
/// for validation on small instances.
pub fn exact_min_groups(cfg: &MnemosyneConfig, share_interface: bool) -> usize {
    let n = cfg.arrays.len();
    assert!(n <= 12, "exact search is exponential");
    let mut best = n;
    let mut groups: Vec<Vec<usize>> = Vec::new();
    fn rec(
        i: usize,
        n: usize,
        cfg: &MnemosyneConfig,
        share_interface: bool,
        groups: &mut Vec<Vec<usize>>,
        best: &mut usize,
    ) {
        if groups.len() >= *best {
            return;
        }
        if i == n {
            *best = groups.len();
            return;
        }
        let sharable = share_interface || !cfg.arrays[i].interface;
        for g in 0..groups.len() {
            let ok = sharable
                && groups[g].iter().all(|&m| {
                    cfg.addr_compatible(i, m) && (share_interface || !cfg.arrays[m].interface)
                });
            if ok {
                groups[g].push(i);
                rec(i + 1, n, cfg, share_interface, groups, best);
                groups[g].pop();
            }
        }
        groups.push(vec![i]);
        rec(i + 1, n, cfg, share_interface, groups, best);
        groups.pop();
    }
    rec(0, n, cfg, share_interface, &mut groups, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArraySpec;

    fn arr(name: &str, words: usize, interface: bool) -> ArraySpec {
        ArraySpec {
            name: name.into(),
            words,
            interface,
            read_ports: 1,
            write_ports: 1,
        }
    }

    /// A chain of temporaries with interval lifetimes: t0..t5 where ti is
    /// compatible with tj iff |i - j| >= 2.
    fn chain(n: usize) -> MnemosyneConfig {
        let arrays = (0..n).map(|i| arr(&format!("t{i}"), 100, false)).collect();
        let mut compat = Vec::new();
        for i in 0..n {
            for j in (i + 2)..n {
                compat.push((i, j));
            }
        }
        MnemosyneConfig {
            arrays,
            address_space_compatible: compat,
            memory_interface_compatible: vec![],
        }
    }

    #[test]
    fn chain_of_six_needs_two_groups() {
        let cfg = chain(6);
        let sol = share_groups(&cfg, false);
        assert_eq!(sol.groups.len(), 2, "{sol:?}");
        sol.validate(&cfg, false).unwrap();
        assert_eq!(exact_min_groups(&cfg, false), 2);
    }

    #[test]
    fn greedy_matches_exact_on_intervals() {
        for n in 2..8 {
            let cfg = chain(n);
            let sol = share_groups(&cfg, false);
            assert_eq!(
                sol.groups.len(),
                exact_min_groups(&cfg, false),
                "chain({n})"
            );
        }
    }

    #[test]
    fn interface_arrays_stay_alone() {
        let mut cfg = chain(4);
        cfg.arrays[0].interface = true;
        // t0 is compatible with t2, t3 but must not share.
        let sol = share_groups(&cfg, false);
        sol.validate(&cfg, false).unwrap();
        let g0 = sol.groups.iter().find(|g| g.contains(&0)).unwrap();
        assert_eq!(g0.len(), 1);
    }

    #[test]
    fn share_interface_flag_allows_it() {
        let mut cfg = chain(4);
        cfg.arrays[0].interface = true;
        let sol = share_groups(&cfg, true);
        sol.validate(&cfg, true).unwrap();
        let g0 = sol.groups.iter().find(|g| g.contains(&0)).unwrap();
        assert!(g0.len() > 1, "{sol:?}");
    }

    #[test]
    fn no_sharing_is_identity() {
        let cfg = chain(5);
        let sol = no_sharing(&cfg);
        assert_eq!(sol.groups.len(), 5);
        assert_eq!(sol.total_words(&cfg), 500);
    }

    #[test]
    fn overlay_words_take_max() {
        let cfg = MnemosyneConfig {
            arrays: vec![arr("a", 100, false), arr("b", 300, false)],
            address_space_compatible: vec![(0, 1)],
            memory_interface_compatible: vec![],
        };
        let sol = share_groups(&cfg, false);
        assert_eq!(sol.groups.len(), 1);
        assert_eq!(sol.total_words(&cfg), 300);
    }

    #[test]
    fn validate_rejects_incompatible_group() {
        let cfg = chain(3);
        let bad = SharingSolution {
            groups: vec![vec![0, 1], vec![2]],
        };
        assert!(bad.validate(&cfg, false).is_err());
    }

    #[test]
    fn validate_rejects_duplicates_and_missing() {
        let cfg = chain(3);
        let dup = SharingSolution {
            groups: vec![vec![0, 2], vec![0], vec![1]],
        };
        assert!(dup.validate(&cfg, false).is_err());
        let missing = SharingSolution {
            groups: vec![vec![0, 2]],
        };
        assert!(missing.validate(&cfg, false).is_err());
    }
}
