//! PLM unit construction and BRAM bank packing.
//!
//! Every sharing group becomes one Private Local Memory unit: a set of
//! BRAM36 blocks plus the controller logic (address decode, bank mux,
//! port arbitration) that presents the standard CE/A/Q/WE memory
//! interface of Figure 6 to the accelerator with fixed single-cycle
//! latency.
//!
//! # BRAM model
//!
//! A Xilinx BRAM36 holds 36 Kib; in 512 × 72-bit mode it stores 512
//! 64-bit words (the 8 parity bits absorb ECC). Each block has two
//! physical ports. A PLM unit therefore needs
//!
//! ```text
//! depth_banks = ceil(words / 512)
//! replication = ceil((read_ports + write_ports) / 2)
//! brams       = depth_banks × replication
//! ```

use crate::config::MnemosyneConfig;
use crate::sharing::SharingSolution;
use serde::{Deserialize, Serialize};

/// BRAM device parameters (ZCU106's xczu7ev values by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BramSpec {
    /// 64-bit words per BRAM36 block.
    pub words_per_bram: usize,
    /// Ports per BRAM block (true dual port).
    pub ports_per_bram: u32,
}

impl Default for BramSpec {
    fn default() -> Self {
        BramSpec {
            words_per_bram: 512,
            ports_per_bram: 2,
        }
    }
}

/// Options for memory synthesis.
#[derive(Debug, Clone)]
pub struct MemoryOptions {
    /// Apply liveness-based sharing (the paper's optimization).
    pub sharing: bool,
    /// Allow interface arrays to join shared groups (off by default —
    /// they are wired to the DMA engine).
    pub share_interface: bool,
    pub bram: BramSpec,
}

impl Default for MemoryOptions {
    fn default() -> Self {
        MemoryOptions {
            sharing: true,
            share_interface: false,
            bram: BramSpec::default(),
        }
    }
}

/// One generated PLM unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlmUnit {
    pub name: String,
    /// Arrays overlaid in this unit (indices into the config).
    pub members: Vec<usize>,
    /// Buffer depth in words (max member size).
    pub words: usize,
    /// BRAM36 blocks used.
    pub brams: usize,
    pub read_ports: u32,
    pub write_ports: u32,
    /// Controller LUTs (decode + mux).
    pub luts: usize,
    /// Controller flip-flops.
    pub ffs: usize,
}

/// The memory subsystem of one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySubsystem {
    pub units: Vec<PlmUnit>,
    pub brams: usize,
    pub luts: usize,
    pub ffs: usize,
}

impl MemorySubsystem {
    /// The unit holding a given array index.
    pub fn unit_of(&self, array: usize) -> Option<&PlmUnit> {
        self.units.iter().find(|u| u.members.contains(&array))
    }
}

/// Controller resource model, calibrated against Mnemosyne's reported
/// overheads: a fixed decode cost per unit plus a per-bank mux term and a
/// small per-overlaid-array term (address rebasing).
const LUT_PER_UNIT: usize = 40;
const LUT_PER_BANK: usize = 10;
const LUT_PER_MEMBER: usize = 12;
const FF_PER_UNIT: usize = 24;
const FF_PER_BANK: usize = 6;

/// Build the subsystem for a sharing solution.
pub fn build_subsystem(
    cfg: &MnemosyneConfig,
    solution: &SharingSolution,
    opts: &MemoryOptions,
) -> MemorySubsystem {
    let mut units = Vec::with_capacity(solution.groups.len());
    for (gi, group) in solution.groups.iter().enumerate() {
        let words = solution.group_words(cfg, gi);
        let read_ports = group
            .iter()
            .map(|&a| cfg.arrays[a].read_ports)
            .max()
            .unwrap_or(1);
        let write_ports = group
            .iter()
            .map(|&a| cfg.arrays[a].write_ports)
            .max()
            .unwrap_or(1);
        let depth_banks = words.div_ceil(opts.bram.words_per_bram);
        let replication = (read_ports + write_ports).div_ceil(opts.bram.ports_per_bram) as usize;
        let brams = depth_banks * replication.max(1);
        let name = if group.len() == 1 {
            format!("plm_{}", cfg.arrays[group[0]].name)
        } else {
            let names: Vec<&str> = group.iter().map(|&a| cfg.arrays[a].name.as_str()).collect();
            format!("plm_{}", names.join("_"))
        };
        let luts = LUT_PER_UNIT + LUT_PER_BANK * brams + LUT_PER_MEMBER * (group.len() - 1);
        let ffs = FF_PER_UNIT + FF_PER_BANK * brams;
        units.push(PlmUnit {
            name,
            members: group.clone(),
            words,
            brams,
            read_ports,
            write_ports,
            luts,
            ffs,
        });
    }
    let brams = units.iter().map(|u| u.brams).sum();
    let luts = units.iter().map(|u| u.luts).sum();
    let ffs = units.iter().map(|u| u.ffs).sum();
    MemorySubsystem {
        units,
        brams,
        luts,
        ffs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArraySpec;

    fn helmholtz_cfg() -> MnemosyneConfig {
        // The p=11 Inverse Helmholtz array set with the factored
        // temporaries and their interval compatibilities (computed by the
        // pschedule liveness tests; hard-coded here to keep this crate's
        // tests independent of the analysis).
        let w = 1331;
        let arrays = vec![
            ArraySpec {
                name: "S".into(),
                words: 121,
                interface: true,
                read_ports: 1,
                write_ports: 1,
            },
            ArraySpec {
                name: "D".into(),
                words: w,
                interface: true,
                read_ports: 1,
                write_ports: 1,
            },
            ArraySpec {
                name: "u".into(),
                words: w,
                interface: true,
                read_ports: 1,
                write_ports: 1,
            },
            ArraySpec {
                name: "v".into(),
                words: w,
                interface: true,
                read_ports: 1,
                write_ports: 1,
            },
            ArraySpec {
                name: "t".into(),
                words: w,
                interface: false,
                read_ports: 1,
                write_ports: 1,
            },
            ArraySpec {
                name: "r".into(),
                words: w,
                interface: false,
                read_ports: 1,
                write_ports: 1,
            },
            ArraySpec {
                name: "t0".into(),
                words: w,
                interface: false,
                read_ports: 1,
                write_ports: 1,
            },
            ArraySpec {
                name: "t1".into(),
                words: w,
                interface: false,
                read_ports: 1,
                write_ports: 1,
            },
            ArraySpec {
                name: "t2".into(),
                words: w,
                interface: false,
                read_ports: 1,
                write_ports: 1,
            },
            ArraySpec {
                name: "t3".into(),
                words: w,
                interface: false,
                read_ports: 1,
                write_ports: 1,
            },
        ];
        // Temporaries in stage order: t0(0-1) t1(1-2) t(2-3) r(3-4)
        // t2(4-5) t3(5-6): compatible iff lifetimes disjoint.
        // Indices:         t=4 r=5 t0=6 t1=7 t2=8 t3=9.
        let lifetimes = [
            (4, 2, 3),
            (5, 3, 4),
            (6, 0, 1),
            (7, 1, 2),
            (8, 4, 5),
            (9, 5, 6),
        ];
        let mut compat = Vec::new();
        for (i, &(ai, s1, e1)) in lifetimes.iter().enumerate() {
            for &(aj, s2, e2) in &lifetimes[i + 1..] {
                if e1 < s2 || e2 < s1 {
                    compat.push((ai.min(aj), ai.max(aj)));
                }
            }
        }
        // u dies after stage 0; compatible with everything born later.
        for &(aj, s2, _) in &lifetimes {
            if s2 >= 1 && aj != 6 {
                compat.push((2, aj));
            }
        }
        // v born at stage 6.
        for &(aj, _, e2) in &lifetimes {
            if e2 < 6 {
                compat.push((3.min(aj), 3.max(aj)));
            }
        }
        compat.sort_unstable();
        compat.dedup();
        MnemosyneConfig {
            arrays,
            address_space_compatible: compat,
            memory_interface_compatible: vec![],
        }
    }

    #[test]
    fn no_sharing_brams_match_paper_shape() {
        // Paper (Vivado mapping): 31 BRAMs. Our 512-word BRAM model: 9
        // arrays of 1331 words → 3 BRAMs each, S → 1 BRAM: 28 total.
        let cfg = helmholtz_cfg();
        let ms = crate::synthesize(
            &cfg,
            &MemoryOptions {
                sharing: false,
                ..Default::default()
            },
        );
        assert_eq!(ms.units.len(), 10);
        assert_eq!(ms.brams, 28);
    }

    #[test]
    fn sharing_brams_match_paper_shape() {
        // Paper: 18 BRAMs with sharing. Our model: interface arrays
        // S(1) + D,u,v (3 each) + two overlaid temp buffers (3 each): 16.
        let cfg = helmholtz_cfg();
        let ms = crate::synthesize(&cfg, &MemoryOptions::default());
        assert_eq!(ms.brams, 16);
        // The six temporaries collapse into two PLM units.
        let temp_units: Vec<&PlmUnit> = ms
            .units
            .iter()
            .filter(|u| u.members.iter().all(|&m| !cfg.arrays[m].interface))
            .collect();
        assert_eq!(temp_units.len(), 2, "{temp_units:?}");
        for u in temp_units {
            assert_eq!(u.members.len(), 3);
        }
    }

    #[test]
    fn sharing_reduction_ratio_matches_paper() {
        // Paper: 18/31 = 0.58. Ours: 16/28 = 0.57.
        let cfg = helmholtz_cfg();
        let no = crate::synthesize(
            &cfg,
            &MemoryOptions {
                sharing: false,
                ..Default::default()
            },
        );
        let sh = crate::synthesize(&cfg, &MemoryOptions::default());
        let ratio = sh.brams as f64 / no.brams as f64;
        assert!((0.5..0.65).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn bank_packing_depth() {
        let spec = BramSpec::default();
        assert_eq!(1331usize.div_ceil(spec.words_per_bram), 3);
        assert_eq!(121usize.div_ceil(spec.words_per_bram), 1);
        assert_eq!(512usize.div_ceil(spec.words_per_bram), 1);
        assert_eq!(513usize.div_ceil(spec.words_per_bram), 2);
    }

    #[test]
    fn multiport_replicates_banks() {
        let mut cfg = helmholtz_cfg();
        // Demand 3 read ports + 1 write port on u: ceil(4/2) = 2×.
        cfg.set_ports("u", 3, 1);
        let ms = crate::synthesize(
            &cfg,
            &MemoryOptions {
                sharing: false,
                ..Default::default()
            },
        );
        let u = cfg.index_of("u").unwrap();
        assert_eq!(ms.unit_of(u).unwrap().brams, 6);
    }

    #[test]
    fn unit_names_reflect_members() {
        let cfg = helmholtz_cfg();
        let ms = crate::synthesize(&cfg, &MemoryOptions::default());
        assert!(ms.units.iter().any(|u| u.name == "plm_S"));
        assert!(ms
            .units
            .iter()
            .any(|u| u.members.len() == 3 && u.name.starts_with("plm_")));
    }

    #[test]
    fn controller_resources_scale_with_banks() {
        let cfg = helmholtz_cfg();
        let ms = crate::synthesize(&cfg, &MemoryOptions::default());
        for u in &ms.units {
            assert!(u.luts >= LUT_PER_UNIT + LUT_PER_BANK * u.brams);
            assert!(u.ffs > 0);
        }
        assert_eq!(ms.luts, ms.units.iter().map(|u| u.luts).sum::<usize>());
    }

    #[test]
    fn end_to_end_from_liveness_analysis() {
        // Full pipeline: DSL → IR → factorize → liveness → config →
        // subsystem; must agree with the hand-built expectation.
        use pschedule::{CompatibilityGraph, Dependences, KernelModel, Liveness, Schedule};
        use teil::layout::LayoutPlan;
        let typed =
            cfdlang::check(&cfdlang::parse(&cfdlang::examples::inverse_helmholtz(4)).unwrap())
                .unwrap();
        let m = teil::transform::factorize(&teil::lower::lower(&typed).unwrap());
        let layout = LayoutPlan::row_major(&m);
        let km = KernelModel::build(&m, &layout);
        let _deps = Dependences::analyze(&km);
        let sched = Schedule::reference(&km);
        let lv = Liveness::analyze(&m, &km, &sched);
        let graph = CompatibilityGraph::build(&km, &lv);
        let cfg = MnemosyneConfig::from_graph(&graph);
        let sh = crate::synthesize(&cfg, &MemoryOptions::default());
        let no = crate::synthesize(
            &cfg,
            &MemoryOptions {
                sharing: false,
                ..Default::default()
            },
        );
        // p=4: arrays are 64 words → 1 BRAM each; S: 16 words → 1.
        assert_eq!(no.brams, 10);
        // Sharing collapses the six temporaries into two buffers.
        assert_eq!(sh.brams, 6);
    }
}
