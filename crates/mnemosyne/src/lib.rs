//! `mnemosyne` — accelerator memory-subsystem generation.
//!
//! A reimplementation of the Mnemosyne memory optimizer [Pilato et al.,
//! TCAD'17] used by the paper (Section V-A2). Given the compiler's
//! metadata — array definitions plus the compatibility information from
//! liveness analysis (step ⓘⓥ of Figure 4) — it builds the Private Local
//! Memory (PLM) units of the accelerator:
//!
//! * **address-space sharing**: arrays whose lifetimes never overlap are
//!   overlaid into one physical buffer (clique partitioning of the
//!   compatibility graph),
//! * **bank packing**: each PLM unit is implemented by BRAM36 blocks
//!   (modelled as 512 × 64-bit words, two ports each), replicated for
//!   multi-port access when the HLS schedule demands it,
//! * **zero-conflict guarantee**: the generated architecture serves every
//!   scheduled access with fixed latency, because sharing is only applied
//!   between provably compatible arrays.
//!
//! The paper's headline memory result reproduces here: the Inverse
//! Helmholtz PLM drops from 28 BRAMs (no sharing; paper: 31 with
//! Vivado's mapping) to 16 (sharing; paper: 18) — a ~43% reduction that
//! doubles the number of kernel instances that fit on the board.

pub mod config;
pub mod plm;
pub mod program;
pub mod sharing;

pub use config::{ArraySpec, MnemosyneConfig};
pub use plm::{BramSpec, MemoryOptions, MemorySubsystem, PlmUnit};
pub use program::{merge_configs, synthesize_program, ProgramMemoryPlan};
pub use sharing::{share_groups, SharingSolution};

/// Synthesize the memory subsystem for a kernel.
pub fn synthesize(cfg: &MnemosyneConfig, opts: &MemoryOptions) -> MemorySubsystem {
    let solution = if opts.sharing {
        sharing::share_groups(cfg, opts.share_interface)
    } else {
        sharing::no_sharing(cfg)
    };
    plm::build_subsystem(cfg, &solution, opts)
}
