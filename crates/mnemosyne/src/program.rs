//! Program-wide memory synthesis: co-locating PLM groups **across**
//! kernels under one BRAM budget.
//!
//! A multi-kernel program executes its kernels sequentially on one
//! accelerator system, so arrays of different kernels are frequently
//! dead at the same time — every temporary of stage 0 is dead while
//! stage 1 runs, and a handoff buffer (producer output = consumer
//! input) is literally the *same* data at both ends. [`merge_configs`]
//! folds the per-kernel [`MnemosyneConfig`]s into one program-level
//! configuration whose compatibility relation is the union of
//!
//! * each kernel's own intra-kernel edges (from its liveness analysis),
//! * cross-kernel edges for pairs whose kernel-sequence live intervals
//!   are disjoint ([`CrossLiveness::cross_compatible`]), and
//! * aliasing edges between the two ends of every handoff.
//!
//! The existing sharing solver ([`share_groups`](crate::share_groups))
//! and PLM builder then run unchanged on the merged configuration —
//! cross-kernel co-location falls out of clique partitioning, and
//! [`SharingSolution::validate`](crate::SharingSolution::validate)
//! keeps holding (asserted by a property test in
//! `crates/mnemosyne/tests/cross_sharing.rs`).

use crate::config::{ArraySpec, MnemosyneConfig};
use crate::plm::{MemoryOptions, MemorySubsystem};
use pschedule::CrossLiveness;

/// The merged program-level memory configuration plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramMemoryPlan {
    /// Kernel names in execution order.
    pub kernels: Vec<String>,
    /// Merged configuration; arrays are namespaced `kernel.array`.
    pub config: MnemosyneConfig,
    /// Merged array index → `(kernel, index in that kernel's config)`.
    pub origin: Vec<(usize, usize)>,
    /// Cross-kernel address-space edges added (0 when cross-kernel
    /// sharing is disabled — the merge is then a plain concatenation).
    pub cross_edges: usize,
}

impl ProgramMemoryPlan {
    /// Kernel of a merged array index.
    pub fn kernel_of(&self, array: usize) -> usize {
        self.origin[array].0
    }

    /// Number of PLM units of a subsystem built from this plan whose
    /// members span more than one kernel — the co-location win.
    pub fn cross_kernel_units(&self, subsystem: &MemorySubsystem) -> usize {
        subsystem
            .units
            .iter()
            .filter(|u| {
                let k0 = self.kernel_of(u.members[0]);
                u.members.iter().any(|&m| self.kernel_of(m) != k0)
            })
            .count()
    }
}

/// Merge per-kernel configurations into one program configuration.
///
/// `parts[k]` is kernel `k`'s own configuration (its arrays may be a
/// subset of the IR tensors — e.g. `retain_interface` in non-decoupled
/// mode); `cross` supplies the kernel-sequence intervals. With
/// `cross_sharing` disabled no cross-kernel edge is added and the
/// result is the disjoint union of the parts, so synthesizing it
/// reproduces the concatenation of the per-kernel subsystems exactly.
pub fn merge_configs(
    parts: &[&MnemosyneConfig],
    cross: &CrossLiveness,
    cross_sharing: bool,
) -> ProgramMemoryPlan {
    assert_eq!(parts.len(), cross.kernels.len());
    let mut arrays: Vec<ArraySpec> = Vec::new();
    let mut origin: Vec<(usize, usize)> = Vec::new();
    let mut addr: Vec<(usize, usize)> = Vec::new();
    let mut iface: Vec<(usize, usize)> = Vec::new();
    let mut offset = vec![0usize; parts.len()];
    for (k, part) in parts.iter().enumerate() {
        offset[k] = arrays.len();
        for (i, a) in part.arrays.iter().enumerate() {
            // Host-visibility in the *merged* system comes from the
            // cross-kernel analysis: handoff buffers turn internal —
            // but only under cross-kernel sharing. Without it the
            // kernels keep their stand-alone DMA wiring (handoffs are
            // host-mediated copies) and the merge is an exact
            // concatenation.
            let external = if cross_sharing {
                cross
                    .info(k, &a.name)
                    .map(|s| s.external)
                    .unwrap_or(a.interface)
            } else {
                a.interface
            };
            arrays.push(ArraySpec {
                name: format!("{}.{}", cross.kernels[k], a.name),
                words: a.words,
                interface: external,
                read_ports: a.read_ports,
                write_ports: a.write_ports,
            });
            origin.push((k, i));
        }
        for &(a, b) in &part.address_space_compatible {
            addr.push((offset[k] + a, offset[k] + b));
        }
        for &(a, b) in &part.memory_interface_compatible {
            iface.push((offset[k] + a, offset[k] + b));
        }
    }
    let mut cross_edges = 0usize;
    if cross_sharing {
        for (gi, &(ka, ia)) in origin.iter().enumerate() {
            let Some(sa) = cross.info(ka, &parts[ka].arrays[ia].name) else {
                continue;
            };
            for (gj, &(kb, ib)) in origin.iter().enumerate().skip(gi + 1) {
                if ka == kb {
                    continue;
                }
                let Some(sb) = cross.info(kb, &parts[kb].arrays[ib].name) else {
                    continue;
                };
                if cross.cross_compatible(ka, sa, kb, sb) {
                    addr.push((gi, gj));
                    cross_edges += 1;
                }
            }
        }
    }
    addr.sort_unstable();
    addr.dedup();
    ProgramMemoryPlan {
        kernels: cross.kernels.clone(),
        config: MnemosyneConfig {
            arrays,
            address_space_compatible: addr,
            memory_interface_compatible: iface,
        },
        origin,
        cross_edges,
    }
}

/// Synthesize the shared program memory subsystem from a merged plan.
pub fn synthesize_program(plan: &ProgramMemoryPlan, opts: &MemoryOptions) -> MemorySubsystem {
    crate::synthesize(&plan.config, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharing;

    fn arr(name: &str, words: usize, interface: bool) -> ArraySpec {
        ArraySpec {
            name: name.into(),
            words,
            interface,
            read_ports: 1,
            write_ports: 1,
        }
    }

    /// Two tiny kernels: `a` produces `h`, `b` consumes it. Each kernel
    /// has one temporary and one external interface array.
    fn two_kernel_fixture() -> (Vec<MnemosyneConfig>, CrossLiveness) {
        use pschedule::link::{ArraySeqInfo, Handoff};
        let cfg_a = MnemosyneConfig {
            arrays: vec![arr("x", 64, true), arr("h", 64, true), arr("t", 64, false)],
            address_space_compatible: vec![],
            memory_interface_compatible: vec![],
        };
        let cfg_b = MnemosyneConfig {
            arrays: vec![arr("h", 64, true), arr("o", 64, true), arr("s", 64, false)],
            address_space_compatible: vec![],
            memory_interface_compatible: vec![],
        };
        let info = |name: &str, start, end, external, handoff| ArraySeqInfo {
            name: name.into(),
            start,
            end,
            external,
            handoff,
        };
        let cross = CrossLiveness {
            kernels: vec!["a".into(), "b".into()],
            handoffs: vec![Handoff {
                name: "h".into(),
                from: 0,
                to: 1,
                words: 64,
            }],
            arrays: vec![
                vec![
                    info("x", 0, 0, true, None),
                    info("h", 0, 1, false, Some(0)),
                    info("t", 0, 0, false, None),
                ],
                vec![
                    info("h", 0, 1, false, Some(0)),
                    info("o", 1, 1, true, None),
                    info("s", 1, 1, false, None),
                ],
            ],
        };
        (vec![cfg_a, cfg_b], cross)
    }

    #[test]
    fn disabled_cross_sharing_is_plain_concatenation() {
        let (cfgs, cross) = two_kernel_fixture();
        let parts: Vec<&MnemosyneConfig> = cfgs.iter().collect();
        let plan = merge_configs(&parts, &cross, false);
        assert_eq!(plan.cross_edges, 0);
        assert_eq!(plan.config.arrays.len(), 6);
        assert!(plan.config.address_space_compatible.is_empty());
        let ms = synthesize_program(&plan, &MemoryOptions::default());
        // One unit per array — exactly the per-kernel subsystems side
        // by side.
        assert_eq!(ms.units.len(), 6);
    }

    #[test]
    fn handoff_ends_colocate_and_temps_share() {
        let (cfgs, cross) = two_kernel_fixture();
        let parts: Vec<&MnemosyneConfig> = cfgs.iter().collect();
        let plan = merge_configs(&parts, &cross, true);
        assert!(plan.cross_edges > 0);
        let ms = synthesize_program(&plan, &MemoryOptions::default());
        let sol = sharing::share_groups(&plan.config, false);
        sol.validate(&plan.config, false).unwrap();
        // Both ends of h land in one unit.
        let ha = plan.config.index_of("a.h").unwrap();
        let hb = plan.config.index_of("b.h").unwrap();
        let unit = ms.unit_of(ha).unwrap();
        assert!(unit.members.contains(&hb), "{unit:?}");
        // The two temporaries have disjoint stage intervals → one unit.
        let ta = plan.config.index_of("a.t").unwrap();
        let sb = plan.config.index_of("b.s").unwrap();
        assert_eq!(ms.unit_of(ta).unwrap().name, ms.unit_of(sb).unwrap().name);
        assert!(plan.cross_kernel_units(&ms) >= 2);
        // External arrays stay alone (wired to the DMA).
        let x = plan.config.index_of("a.x").unwrap();
        assert_eq!(ms.unit_of(x).unwrap().members.len(), 1);
    }

    #[test]
    fn cross_sharing_cuts_bram_budget() {
        let (cfgs, cross) = two_kernel_fixture();
        let parts: Vec<&MnemosyneConfig> = cfgs.iter().collect();
        let concat = synthesize_program(
            &merge_configs(&parts, &cross, false),
            &MemoryOptions::default(),
        );
        let shared = synthesize_program(
            &merge_configs(&parts, &cross, true),
            &MemoryOptions::default(),
        );
        assert!(
            shared.brams < concat.brams,
            "{} vs {}",
            shared.brams,
            concat.brams
        );
    }
}
