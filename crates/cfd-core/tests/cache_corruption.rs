//! Robustness of the on-disk compile cache against corrupt entries.
//!
//! The store is plain text files under a user-supplied directory, so it
//! must survive anything a crash, a partial copy, or a hand edit can
//! leave behind: truncated entries, garbage bytes (UTF-8 or not), a
//! stale schema version, and the leftovers of an interrupted write.
//! The contract in every case is the same — **invalidate and
//! recompile**: the poisoned entry is detected (never panics), dropped
//! or overwritten (never served stale), and the recompiled artifacts
//! are bit-identical to an uncached compile.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cfd_core::cache::SCHEMA;
use cfd_core::program::{ProgramFlow, ProgramOptions};
use cfd_core::{CacheCounters, CompileCache, ProgramArtifacts};

/// A fresh scratch directory per test (parallel test binaries must not
/// share stores).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfdfpga-corrupt-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn source() -> String {
    cfdlang::examples::simulation_step(2)
}

/// One compile against a fresh cache handle over `dir` (a new process,
/// as far as the store is concerned). Returns the artifacts and the
/// compile's own cache counters.
fn compile_with(dir: &Path) -> (ProgramArtifacts, CacheCounters) {
    let cache = Arc::new(CompileCache::with_dir(dir).unwrap());
    let art = ProgramFlow::compile_cached(&source(), &ProgramOptions::default(), cache)
        .expect("cached compile succeeds");
    let counters = art.timings.cache;
    (art, counters)
}

/// The on-disk entry files of the store.
fn entries(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|f| f.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("cfdcache"))
        .collect();
    out.sort();
    assert!(!out.is_empty(), "seed compile wrote no cache entries");
    out
}

/// Bit-level artifact identity: the generated C, the host skeleton and
/// the canonical IR of every kernel.
fn assert_bit_identical(a: &ProgramArtifacts, b: &ProgramArtifacts) {
    assert_eq!(a.names, b.names);
    for (ka, kb) in a.kernels.iter().zip(&b.kernels) {
        assert_eq!(ka.c_source, kb.c_source, "generated C diverged");
        assert_eq!(ka.host_source, kb.host_source, "host skeleton diverged");
        assert_eq!(
            ka.module.to_string(),
            kb.module.to_string(),
            "scheduled IR diverged"
        );
    }
    assert_eq!(a.host_source, b.host_source);
}

#[test]
fn truncated_entries_invalidate_and_recompile_bit_identically() {
    let dir = scratch("truncated");
    let (reference, seeded) = compile_with(&dir);
    assert!(seeded.stores > 0, "seed compile must populate the store");

    // Simulate a crash mid-write / partial copy: keep half of each file.
    for path in entries(&dir) {
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    }

    let (recompiled, counters) = compile_with(&dir);
    assert!(
        counters.invalidations > 0,
        "truncated entries must be detected: {counters:?}"
    );
    assert_eq!(counters.disk_hits, 0, "nothing stale may be served");
    assert_bit_identical(&reference, &recompiled);

    // The recompile healed the store: a third run hits disk cleanly.
    let (_, healed) = compile_with(&dir);
    assert!(healed.disk_hits > 0, "healed store must hit: {healed:?}");
    assert_eq!(healed.invalidations, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn garbage_and_wrong_schema_entries_are_invalidated_not_served() {
    let dir = scratch("garbage");
    let (reference, _) = compile_with(&dir);
    let paths = entries(&dir);

    // First entry: UTF-8 garbage after a valid-looking prefix. The
    // rest: a schema bump — structurally plausible, but versioned away.
    for (i, p) in paths.iter().enumerate() {
        if i == 0 {
            fs::write(p, format!("{SCHEMA} schedule kernel oops ][")).unwrap();
        } else {
            let old = fs::read_to_string(p).unwrap();
            fs::write(p, old.replacen(SCHEMA, "cfdfpga-cache-v0", 1)).unwrap();
        }
    }

    let (recompiled, counters) = compile_with(&dir);
    assert_eq!(
        counters.invalidations,
        paths.len(),
        "every poisoned entry must be invalidated: {counters:?}"
    );
    assert_eq!(counters.disk_hits, 0);
    assert_bit_identical(&reference, &recompiled);

    // Poisoned files were removed and rewritten; the store serves again.
    let (_, healed) = compile_with(&dir);
    assert!(healed.disk_hits > 0);
    assert_eq!(healed.invalidations, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn binary_garbage_is_a_miss_and_gets_overwritten() {
    let dir = scratch("binary");
    let (reference, _) = compile_with(&dir);

    // Non-UTF-8 bytes: unreadable as text, reported as a plain miss.
    for path in entries(&dir) {
        fs::write(&path, [0xffu8, 0xfe, 0x00, 0x80, 0xc3]).unwrap();
    }

    let (recompiled, counters) = compile_with(&dir);
    assert_eq!(counters.disk_hits, 0, "binary garbage must never parse");
    assert!(counters.stores > 0, "recompile must rewrite the entries");
    assert_bit_identical(&reference, &recompiled);

    // The atomic-rename store replaced the garbage in place.
    let (_, healed) = compile_with(&dir);
    assert!(healed.disk_hits > 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_write_leftovers_are_harmless() {
    let dir = scratch("interrupted");
    let (reference, _) = compile_with(&dir);
    let paths = entries(&dir);

    // A crash between the temp write and the rename leaves a stray
    // `.tmp` beside a damaged entry. Neither may confuse the store.
    let stray = dir.join(".00000000000000000000000000000000.tmp.999");
    fs::write(&stray, "half a").unwrap();
    let bytes = fs::read(&paths[0]).unwrap();
    fs::write(&paths[0], &bytes[..bytes.len().min(7)]).unwrap();

    let (recompiled, counters) = compile_with(&dir);
    assert!(counters.invalidations > 0, "{counters:?}");
    assert_bit_identical(&reference, &recompiled);

    // Stray temp files are invisible to stats and clearing is complete.
    let (n, _) = CompileCache::disk_stats(&dir).unwrap();
    assert_eq!(n, paths.len(), "tmp leftovers must not count as entries");
    let removed = CompileCache::clear_disk(&dir).unwrap();
    assert_eq!(removed, paths.len());
    let (_, cold) = compile_with(&dir);
    assert_eq!(cold.disk_hits, 0);
    assert!(cold.stores > 0);
    let _ = fs::remove_dir_all(&dir);
}
