//! Golden-snapshot tests for `cfdc`'s machine-readable surfaces.
//!
//! Each test runs the real binary (`CARGO_BIN_EXE_cfdc`) and compares
//! its output against a committed fixture under `tests/snapshots/`.
//! JSON surfaces are compared **structurally**: the set of key paths
//! (with scalar/array/object kinds) must match exactly, so renaming or
//! dropping a key fails loudly in CI while numeric values — timings,
//! throughputs — are free to drift. The `boards` listing is plain text
//! and compared byte for byte.
//!
//! Regenerate after an intentional schema change with:
//!
//! ```sh
//! UPDATE_SNAPSHOTS=1 cargo test -p cfd-core --test snapshots
//! ```

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

// ---------------------------------------------------------------------
// A minimal JSON reader (the dependency set has no serde_json): just
// enough to extract the structural shape of cfdc's hand-rolled output.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Scalar,
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Reader<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Reader<'a> {
    fn new(s: &'a str) -> Reader<'a> {
        Reader {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.s
            .get(self.i)
            .copied()
            .ok_or_else(|| "unexpected end of JSON".to_string())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != c {
            return Err(format!(
                "expected '{}' at byte {}, found '{}'",
                c as char, self.i, got as char
            ));
        }
        self.i += 1;
        Ok(())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i] != b'"' {
            // cfdc's output never escapes quotes; reject if it starts to.
            if self.s[self.i] == b'\\' {
                return Err("escape sequences unsupported".into());
            }
            self.i += 1;
        }
        let out = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        self.expect(b'"')?;
        Ok(out)
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => {
                self.i += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.i += 1,
                        b'}' => {
                            self.i += 1;
                            return Ok(Json::Obj(fields));
                        }
                        c => return Err(format!("expected ',' or '}}', found '{}'", c as char)),
                    }
                }
            }
            b'[' => {
                self.i += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.i += 1,
                        b']' => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        c => return Err(format!("expected ',' or ']', found '{}'", c as char)),
                    }
                }
            }
            b'"' => {
                self.string()?;
                Ok(Json::Scalar)
            }
            _ => {
                // number / true / false / null — consume the token.
                let start = self.i;
                while self.i < self.s.len()
                    && !matches!(self.s[self.i], b',' | b'}' | b']')
                    && !(self.s[self.i] as char).is_whitespace()
                {
                    self.i += 1;
                }
                if self.i == start {
                    return Err(format!("empty scalar at byte {start}"));
                }
                Ok(Json::Scalar)
            }
        }
    }
}

fn parse_json(s: &str) -> Json {
    let mut r = Reader::new(s);
    let v = r
        .value()
        .unwrap_or_else(|e| panic!("unparsable JSON: {e}\n{s}"));
    r.skip_ws();
    assert!(r.i == r.s.len(), "trailing bytes after JSON document");
    v
}

/// The structural shape: every key path with its kind. Array elements
/// all fold into one `[]` segment, so optional/varying rows still
/// contribute their keys.
fn shape(j: &Json, prefix: &str, out: &mut BTreeSet<String>) {
    match j {
        Json::Scalar => {
            out.insert(format!("{prefix}:scalar"));
        }
        Json::Arr(items) => {
            out.insert(format!("{prefix}:array"));
            for it in items {
                shape(it, &format!("{prefix}[]"), out);
            }
        }
        Json::Obj(fields) => {
            out.insert(format!("{prefix}:object"));
            for (k, v) in fields {
                shape(v, &format!("{prefix}.{k}"), out);
            }
        }
    }
}

fn json_shape(s: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    shape(&parse_json(s), "$", &mut out);
    out
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(name)
}

fn run_cfdc(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_cfdc"))
        .args(args)
        .output()
        .expect("cfdc runs");
    assert!(
        out.status.success(),
        "cfdc {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

/// Compare (or, with UPDATE_SNAPSHOTS=1, rewrite) a fixture.
fn check_snapshot(name: &str, actual: &str, structural: bool) {
    let path = fixture_path(name);
    if std::env::var("UPDATE_SNAPSHOTS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {path:?} ({e}); run with UPDATE_SNAPSHOTS=1 to create it")
    });
    if structural {
        let want = json_shape(&expected);
        let got = json_shape(actual);
        if want != got {
            let missing: Vec<&String> = want.difference(&got).collect();
            let extra: Vec<&String> = got.difference(&want).collect();
            panic!(
                "JSON structure of {name} changed.\n\
                 Missing vs fixture: {missing:#?}\n\
                 New vs fixture: {extra:#?}\n\
                 If intentional, regenerate with UPDATE_SNAPSHOTS=1."
            );
        }
    } else {
        assert_eq!(
            actual, expected,
            "text snapshot {name} changed; regenerate with UPDATE_SNAPSHOTS=1 if intentional"
        );
    }
}

#[test]
fn explore_grid_json_schema_is_stable() {
    let out = run_cfdc(&[
        "explore",
        "helmholtz:4",
        "--grid",
        "--json",
        "--elements",
        "500",
        "--jobs",
        "2",
    ]);
    check_snapshot("explore_grid.json", &out, true);
    // Spot-check the keys the CI jobs and bench tooling grep for.
    for key in ["\"outcomes\"", "\"service_rps\"", "\"backend_cache\""] {
        assert!(out.contains(key), "missing {key}");
    }
}

#[test]
fn portfolio_json_schema_is_stable() {
    let out = run_cfdc(&[
        "explore",
        "helmholtz:4",
        "--boards",
        "all",
        "--json",
        "--elements",
        "500",
        "--jobs",
        "2",
    ]);
    check_snapshot("explore_portfolio.json", &out, true);
    for key in [
        "\"pareto_frontier\"",
        "\"service_frontier\"",
        "\"platforms\"",
    ] {
        assert!(out.contains(key), "missing {key}");
    }
}

#[test]
fn serve_json_schema_is_stable() {
    let out = run_cfdc(&[
        "serve",
        "simstep:4",
        "--requests",
        "8",
        "--seed",
        "7",
        "--json",
    ]);
    check_snapshot("serve.json", &out, true);
    for key in ["\"throughput_rps\"", "\"latency\"", "\"traces\""] {
        assert!(out.contains(key), "missing {key}");
    }
}

#[test]
fn serve_faults_json_schema_is_stable() {
    // An armed fault plan with the full recovery policy: the reliability
    // and fault sections plus the per-trace outcome fields must all be
    // present and stay stable.
    let out = run_cfdc(&[
        "serve",
        "simstep:4",
        "--requests",
        "8",
        "--seed",
        "7",
        "--faults",
        "7:transient=0.2,corrupt=0.1",
        "--retries",
        "6",
        "--backoff",
        "0.0001",
        "--deadline",
        "5",
        "--json",
    ]);
    check_snapshot("serve_faults.json", &out, true);
    for key in [
        "\"reliability\"",
        "\"goodput_rps\"",
        "\"faults\"",
        "\"outcome\"",
        "\"attempts\"",
    ] {
        assert!(out.contains(key), "missing {key}");
    }
}

#[test]
fn boards_listing_is_stable() {
    // Pure catalog data — deterministic, compared byte for byte.
    let out = run_cfdc(&["boards"]);
    check_snapshot("boards.txt", &out, false);
}

#[test]
fn structural_compare_catches_renames() {
    // The comparator itself: a renamed key must be a detected diff.
    let a = r#"{"requests": 3, "latency": {"p99_s": 0.5}, "rows": [{"id": 1}, {"id": 2}]}"#;
    let b = r#"{"requests": 9, "latency": {"p99_s": 1.5}, "rows": [{"id": 7}]}"#;
    let c = r#"{"request_count": 3, "latency": {"p99_s": 0.5}, "rows": [{"id": 1}]}"#;
    assert_eq!(json_shape(a), json_shape(b), "value drift must not trip");
    assert_ne!(json_shape(a), json_shape(c), "key rename must trip");
}
